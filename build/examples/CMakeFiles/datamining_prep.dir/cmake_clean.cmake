file(REMOVE_RECURSE
  "CMakeFiles/datamining_prep.dir/datamining_prep.cpp.o"
  "CMakeFiles/datamining_prep.dir/datamining_prep.cpp.o.d"
  "datamining_prep"
  "datamining_prep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datamining_prep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
