# Empty dependencies file for datamining_prep.
# This may be replaced when dependencies are built.
