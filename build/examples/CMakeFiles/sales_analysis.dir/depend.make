# Empty dependencies file for sales_analysis.
# This may be replaced when dependencies are built.
