file(REMOVE_RECURSE
  "CMakeFiles/sales_analysis.dir/sales_analysis.cpp.o"
  "CMakeFiles/sales_analysis.dir/sales_analysis.cpp.o.d"
  "sales_analysis"
  "sales_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sales_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
