file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_olap.dir/bench_table6_olap.cc.o"
  "CMakeFiles/bench_table6_olap.dir/bench_table6_olap.cc.o.d"
  "bench_table6_olap"
  "bench_table6_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
