# Empty dependencies file for bench_table6_olap.
# This may be replaced when dependencies are built.
