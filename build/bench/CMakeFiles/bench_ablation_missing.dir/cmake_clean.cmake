file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_missing.dir/bench_ablation_missing.cc.o"
  "CMakeFiles/bench_ablation_missing.dir/bench_ablation_missing.cc.o.d"
  "bench_ablation_missing"
  "bench_ablation_missing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_missing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
