# Empty compiler generated dependencies file for bench_ablation_missing.
# This may be replaced when dependencies are built.
