# Empty dependencies file for bench_dmkd_table3.
# This may be replaced when dependencies are built.
