file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_vpct.dir/bench_table4_vpct.cc.o"
  "CMakeFiles/bench_table4_vpct.dir/bench_table4_vpct.cc.o.d"
  "bench_table4_vpct"
  "bench_table4_vpct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_vpct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
