# Empty dependencies file for bench_table4_vpct.
# This may be replaced when dependencies are built.
