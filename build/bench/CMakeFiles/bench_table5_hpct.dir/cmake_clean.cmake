file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_hpct.dir/bench_table5_hpct.cc.o"
  "CMakeFiles/bench_table5_hpct.dir/bench_table5_hpct.cc.o.d"
  "bench_table5_hpct"
  "bench_table5_hpct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_hpct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
