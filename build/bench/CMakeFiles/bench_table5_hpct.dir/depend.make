# Empty dependencies file for bench_table5_hpct.
# This may be replaced when dependencies are built.
