file(REMOVE_RECURSE
  "CMakeFiles/pctagg_shell.dir/pctagg_shell.cc.o"
  "CMakeFiles/pctagg_shell.dir/pctagg_shell.cc.o.d"
  "pctagg_shell"
  "pctagg_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pctagg_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
