# Empty dependencies file for pctagg_shell.
# This may be replaced when dependencies are built.
