file(REMOVE_RECURSE
  "CMakeFiles/pctagg_core.dir/advisor.cc.o"
  "CMakeFiles/pctagg_core.dir/advisor.cc.o.d"
  "CMakeFiles/pctagg_core.dir/cost_model.cc.o"
  "CMakeFiles/pctagg_core.dir/cost_model.cc.o.d"
  "CMakeFiles/pctagg_core.dir/database.cc.o"
  "CMakeFiles/pctagg_core.dir/database.cc.o.d"
  "CMakeFiles/pctagg_core.dir/horizontal_planner.cc.o"
  "CMakeFiles/pctagg_core.dir/horizontal_planner.cc.o.d"
  "CMakeFiles/pctagg_core.dir/missing_rows.cc.o"
  "CMakeFiles/pctagg_core.dir/missing_rows.cc.o.d"
  "CMakeFiles/pctagg_core.dir/olap_planner.cc.o"
  "CMakeFiles/pctagg_core.dir/olap_planner.cc.o.d"
  "CMakeFiles/pctagg_core.dir/partition.cc.o"
  "CMakeFiles/pctagg_core.dir/partition.cc.o.d"
  "CMakeFiles/pctagg_core.dir/plan.cc.o"
  "CMakeFiles/pctagg_core.dir/plan.cc.o.d"
  "CMakeFiles/pctagg_core.dir/summary_cache.cc.o"
  "CMakeFiles/pctagg_core.dir/summary_cache.cc.o.d"
  "CMakeFiles/pctagg_core.dir/vpct_planner.cc.o"
  "CMakeFiles/pctagg_core.dir/vpct_planner.cc.o.d"
  "libpctagg_core.a"
  "libpctagg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pctagg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
