# Empty dependencies file for pctagg_core.
# This may be replaced when dependencies are built.
