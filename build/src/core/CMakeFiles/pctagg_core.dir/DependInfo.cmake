
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cc" "src/core/CMakeFiles/pctagg_core.dir/advisor.cc.o" "gcc" "src/core/CMakeFiles/pctagg_core.dir/advisor.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/pctagg_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/pctagg_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/database.cc" "src/core/CMakeFiles/pctagg_core.dir/database.cc.o" "gcc" "src/core/CMakeFiles/pctagg_core.dir/database.cc.o.d"
  "/root/repo/src/core/horizontal_planner.cc" "src/core/CMakeFiles/pctagg_core.dir/horizontal_planner.cc.o" "gcc" "src/core/CMakeFiles/pctagg_core.dir/horizontal_planner.cc.o.d"
  "/root/repo/src/core/missing_rows.cc" "src/core/CMakeFiles/pctagg_core.dir/missing_rows.cc.o" "gcc" "src/core/CMakeFiles/pctagg_core.dir/missing_rows.cc.o.d"
  "/root/repo/src/core/olap_planner.cc" "src/core/CMakeFiles/pctagg_core.dir/olap_planner.cc.o" "gcc" "src/core/CMakeFiles/pctagg_core.dir/olap_planner.cc.o.d"
  "/root/repo/src/core/partition.cc" "src/core/CMakeFiles/pctagg_core.dir/partition.cc.o" "gcc" "src/core/CMakeFiles/pctagg_core.dir/partition.cc.o.d"
  "/root/repo/src/core/plan.cc" "src/core/CMakeFiles/pctagg_core.dir/plan.cc.o" "gcc" "src/core/CMakeFiles/pctagg_core.dir/plan.cc.o.d"
  "/root/repo/src/core/summary_cache.cc" "src/core/CMakeFiles/pctagg_core.dir/summary_cache.cc.o" "gcc" "src/core/CMakeFiles/pctagg_core.dir/summary_cache.cc.o.d"
  "/root/repo/src/core/vpct_planner.cc" "src/core/CMakeFiles/pctagg_core.dir/vpct_planner.cc.o" "gcc" "src/core/CMakeFiles/pctagg_core.dir/vpct_planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/pctagg_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/pctagg_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pctagg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
