file(REMOVE_RECURSE
  "libpctagg_core.a"
)
