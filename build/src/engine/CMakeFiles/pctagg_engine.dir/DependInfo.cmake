
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/aggregate.cc" "src/engine/CMakeFiles/pctagg_engine.dir/aggregate.cc.o" "gcc" "src/engine/CMakeFiles/pctagg_engine.dir/aggregate.cc.o.d"
  "/root/repo/src/engine/catalog.cc" "src/engine/CMakeFiles/pctagg_engine.dir/catalog.cc.o" "gcc" "src/engine/CMakeFiles/pctagg_engine.dir/catalog.cc.o.d"
  "/root/repo/src/engine/column.cc" "src/engine/CMakeFiles/pctagg_engine.dir/column.cc.o" "gcc" "src/engine/CMakeFiles/pctagg_engine.dir/column.cc.o.d"
  "/root/repo/src/engine/csv.cc" "src/engine/CMakeFiles/pctagg_engine.dir/csv.cc.o" "gcc" "src/engine/CMakeFiles/pctagg_engine.dir/csv.cc.o.d"
  "/root/repo/src/engine/data_type.cc" "src/engine/CMakeFiles/pctagg_engine.dir/data_type.cc.o" "gcc" "src/engine/CMakeFiles/pctagg_engine.dir/data_type.cc.o.d"
  "/root/repo/src/engine/expression.cc" "src/engine/CMakeFiles/pctagg_engine.dir/expression.cc.o" "gcc" "src/engine/CMakeFiles/pctagg_engine.dir/expression.cc.o.d"
  "/root/repo/src/engine/index.cc" "src/engine/CMakeFiles/pctagg_engine.dir/index.cc.o" "gcc" "src/engine/CMakeFiles/pctagg_engine.dir/index.cc.o.d"
  "/root/repo/src/engine/join.cc" "src/engine/CMakeFiles/pctagg_engine.dir/join.cc.o" "gcc" "src/engine/CMakeFiles/pctagg_engine.dir/join.cc.o.d"
  "/root/repo/src/engine/pivot.cc" "src/engine/CMakeFiles/pctagg_engine.dir/pivot.cc.o" "gcc" "src/engine/CMakeFiles/pctagg_engine.dir/pivot.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/engine/CMakeFiles/pctagg_engine.dir/table.cc.o" "gcc" "src/engine/CMakeFiles/pctagg_engine.dir/table.cc.o.d"
  "/root/repo/src/engine/table_ops.cc" "src/engine/CMakeFiles/pctagg_engine.dir/table_ops.cc.o" "gcc" "src/engine/CMakeFiles/pctagg_engine.dir/table_ops.cc.o.d"
  "/root/repo/src/engine/update.cc" "src/engine/CMakeFiles/pctagg_engine.dir/update.cc.o" "gcc" "src/engine/CMakeFiles/pctagg_engine.dir/update.cc.o.d"
  "/root/repo/src/engine/value.cc" "src/engine/CMakeFiles/pctagg_engine.dir/value.cc.o" "gcc" "src/engine/CMakeFiles/pctagg_engine.dir/value.cc.o.d"
  "/root/repo/src/engine/window.cc" "src/engine/CMakeFiles/pctagg_engine.dir/window.cc.o" "gcc" "src/engine/CMakeFiles/pctagg_engine.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pctagg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
