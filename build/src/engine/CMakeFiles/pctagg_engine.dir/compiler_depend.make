# Empty compiler generated dependencies file for pctagg_engine.
# This may be replaced when dependencies are built.
