file(REMOVE_RECURSE
  "CMakeFiles/pctagg_engine.dir/aggregate.cc.o"
  "CMakeFiles/pctagg_engine.dir/aggregate.cc.o.d"
  "CMakeFiles/pctagg_engine.dir/catalog.cc.o"
  "CMakeFiles/pctagg_engine.dir/catalog.cc.o.d"
  "CMakeFiles/pctagg_engine.dir/column.cc.o"
  "CMakeFiles/pctagg_engine.dir/column.cc.o.d"
  "CMakeFiles/pctagg_engine.dir/csv.cc.o"
  "CMakeFiles/pctagg_engine.dir/csv.cc.o.d"
  "CMakeFiles/pctagg_engine.dir/data_type.cc.o"
  "CMakeFiles/pctagg_engine.dir/data_type.cc.o.d"
  "CMakeFiles/pctagg_engine.dir/expression.cc.o"
  "CMakeFiles/pctagg_engine.dir/expression.cc.o.d"
  "CMakeFiles/pctagg_engine.dir/index.cc.o"
  "CMakeFiles/pctagg_engine.dir/index.cc.o.d"
  "CMakeFiles/pctagg_engine.dir/join.cc.o"
  "CMakeFiles/pctagg_engine.dir/join.cc.o.d"
  "CMakeFiles/pctagg_engine.dir/pivot.cc.o"
  "CMakeFiles/pctagg_engine.dir/pivot.cc.o.d"
  "CMakeFiles/pctagg_engine.dir/table.cc.o"
  "CMakeFiles/pctagg_engine.dir/table.cc.o.d"
  "CMakeFiles/pctagg_engine.dir/table_ops.cc.o"
  "CMakeFiles/pctagg_engine.dir/table_ops.cc.o.d"
  "CMakeFiles/pctagg_engine.dir/update.cc.o"
  "CMakeFiles/pctagg_engine.dir/update.cc.o.d"
  "CMakeFiles/pctagg_engine.dir/value.cc.o"
  "CMakeFiles/pctagg_engine.dir/value.cc.o.d"
  "CMakeFiles/pctagg_engine.dir/window.cc.o"
  "CMakeFiles/pctagg_engine.dir/window.cc.o.d"
  "libpctagg_engine.a"
  "libpctagg_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pctagg_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
