file(REMOVE_RECURSE
  "libpctagg_engine.a"
)
