file(REMOVE_RECURSE
  "CMakeFiles/pctagg_common.dir/rng.cc.o"
  "CMakeFiles/pctagg_common.dir/rng.cc.o.d"
  "CMakeFiles/pctagg_common.dir/status.cc.o"
  "CMakeFiles/pctagg_common.dir/status.cc.o.d"
  "CMakeFiles/pctagg_common.dir/string_util.cc.o"
  "CMakeFiles/pctagg_common.dir/string_util.cc.o.d"
  "libpctagg_common.a"
  "libpctagg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pctagg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
