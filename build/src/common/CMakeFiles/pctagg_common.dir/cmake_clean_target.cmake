file(REMOVE_RECURSE
  "libpctagg_common.a"
)
