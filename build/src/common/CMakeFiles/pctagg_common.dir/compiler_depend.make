# Empty compiler generated dependencies file for pctagg_common.
# This may be replaced when dependencies are built.
