file(REMOVE_RECURSE
  "libpctagg_sql.a"
)
