# Empty compiler generated dependencies file for pctagg_sql.
# This may be replaced when dependencies are built.
