file(REMOVE_RECURSE
  "CMakeFiles/pctagg_sql.dir/analyzer.cc.o"
  "CMakeFiles/pctagg_sql.dir/analyzer.cc.o.d"
  "CMakeFiles/pctagg_sql.dir/ast.cc.o"
  "CMakeFiles/pctagg_sql.dir/ast.cc.o.d"
  "CMakeFiles/pctagg_sql.dir/lexer.cc.o"
  "CMakeFiles/pctagg_sql.dir/lexer.cc.o.d"
  "CMakeFiles/pctagg_sql.dir/parser.cc.o"
  "CMakeFiles/pctagg_sql.dir/parser.cc.o.d"
  "libpctagg_sql.a"
  "libpctagg_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pctagg_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
