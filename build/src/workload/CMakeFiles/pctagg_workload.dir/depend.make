# Empty dependencies file for pctagg_workload.
# This may be replaced when dependencies are built.
