file(REMOVE_RECURSE
  "libpctagg_workload.a"
)
