file(REMOVE_RECURSE
  "CMakeFiles/pctagg_workload.dir/generators.cc.o"
  "CMakeFiles/pctagg_workload.dir/generators.cc.o.d"
  "libpctagg_workload.a"
  "libpctagg_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pctagg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
