# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/value_column_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/expression_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/join_test[1]_include.cmake")
include("/root/repo/build/tests/table_ops_test[1]_include.cmake")
include("/root/repo/build/tests/update_window_pivot_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/vpct_planner_test[1]_include.cmake")
include("/root/repo/build/tests/horizontal_planner_test[1]_include.cmake")
include("/root/repo/build/tests/olap_planner_test[1]_include.cmake")
include("/root/repo/build/tests/core_misc_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sql_surface_test[1]_include.cmake")
include("/root/repo/build/tests/summary_cache_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/plan_sql_test[1]_include.cmake")
include("/root/repo/build/tests/engine_edge_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/database_test[1]_include.cmake")
