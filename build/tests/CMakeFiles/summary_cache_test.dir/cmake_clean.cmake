file(REMOVE_RECURSE
  "CMakeFiles/summary_cache_test.dir/summary_cache_test.cc.o"
  "CMakeFiles/summary_cache_test.dir/summary_cache_test.cc.o.d"
  "summary_cache_test"
  "summary_cache_test.pdb"
  "summary_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
