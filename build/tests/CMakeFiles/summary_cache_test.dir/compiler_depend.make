# Empty compiler generated dependencies file for summary_cache_test.
# This may be replaced when dependencies are built.
