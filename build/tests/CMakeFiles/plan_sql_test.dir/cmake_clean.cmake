file(REMOVE_RECURSE
  "CMakeFiles/plan_sql_test.dir/plan_sql_test.cc.o"
  "CMakeFiles/plan_sql_test.dir/plan_sql_test.cc.o.d"
  "plan_sql_test"
  "plan_sql_test.pdb"
  "plan_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
