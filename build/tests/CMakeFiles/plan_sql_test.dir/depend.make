# Empty dependencies file for plan_sql_test.
# This may be replaced when dependencies are built.
