file(REMOVE_RECURSE
  "CMakeFiles/value_column_test.dir/value_column_test.cc.o"
  "CMakeFiles/value_column_test.dir/value_column_test.cc.o.d"
  "value_column_test"
  "value_column_test.pdb"
  "value_column_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_column_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
