# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for vpct_planner_test.
