# Empty compiler generated dependencies file for vpct_planner_test.
# This may be replaced when dependencies are built.
