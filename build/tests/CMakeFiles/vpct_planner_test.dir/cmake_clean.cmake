file(REMOVE_RECURSE
  "CMakeFiles/vpct_planner_test.dir/vpct_planner_test.cc.o"
  "CMakeFiles/vpct_planner_test.dir/vpct_planner_test.cc.o.d"
  "vpct_planner_test"
  "vpct_planner_test.pdb"
  "vpct_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpct_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
