file(REMOVE_RECURSE
  "CMakeFiles/update_window_pivot_test.dir/update_window_pivot_test.cc.o"
  "CMakeFiles/update_window_pivot_test.dir/update_window_pivot_test.cc.o.d"
  "update_window_pivot_test"
  "update_window_pivot_test.pdb"
  "update_window_pivot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_window_pivot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
