# Empty dependencies file for update_window_pivot_test.
# This may be replaced when dependencies are built.
