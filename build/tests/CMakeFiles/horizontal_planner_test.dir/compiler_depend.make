# Empty compiler generated dependencies file for horizontal_planner_test.
# This may be replaced when dependencies are built.
