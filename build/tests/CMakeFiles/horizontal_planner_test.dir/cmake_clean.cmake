file(REMOVE_RECURSE
  "CMakeFiles/horizontal_planner_test.dir/horizontal_planner_test.cc.o"
  "CMakeFiles/horizontal_planner_test.dir/horizontal_planner_test.cc.o.d"
  "horizontal_planner_test"
  "horizontal_planner_test.pdb"
  "horizontal_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horizontal_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
