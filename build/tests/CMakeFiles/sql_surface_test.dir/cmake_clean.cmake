file(REMOVE_RECURSE
  "CMakeFiles/sql_surface_test.dir/sql_surface_test.cc.o"
  "CMakeFiles/sql_surface_test.dir/sql_surface_test.cc.o.d"
  "sql_surface_test"
  "sql_surface_test.pdb"
  "sql_surface_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_surface_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
