# Empty compiler generated dependencies file for sql_surface_test.
# This may be replaced when dependencies are built.
