# Empty dependencies file for olap_planner_test.
# This may be replaced when dependencies are built.
