file(REMOVE_RECURSE
  "CMakeFiles/olap_planner_test.dir/olap_planner_test.cc.o"
  "CMakeFiles/olap_planner_test.dir/olap_planner_test.cc.o.d"
  "olap_planner_test"
  "olap_planner_test.pdb"
  "olap_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
