#ifndef PCTAGG_COMMON_THREAD_POOL_H_
#define PCTAGG_COMMON_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pctagg {

// A fixed-size worker pool with a FIFO task queue. The query service uses it
// to decouple connection handling from query execution (connection threads
// enqueue work and wait on a WaitGroup, worker threads run the engine), and
// the engine's morsel dispatcher uses the same pool for intra-query
// parallelism — see SharedThreadPool() below.
//
// Shutdown() (also run by the destructor) stops accepting new tasks, drains
// everything already queued, and joins the workers — so any WaitGroup tied to
// a submitted task is guaranteed to become ready.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task`; returns false (without queueing) after Shutdown began.
  bool Submit(std::function<void()> task);

  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

  // Tasks currently waiting in the queue (excludes running ones).
  size_t queued() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

// Counts outstanding units of work and lets one or more threads block until
// the count returns to zero. The usual shape is:
//
//   WaitGroup wg;
//   wg.Add();                      // before handing work to another thread
//   pool.Submit([&] { ...; wg.Done(); });
//   wg.Wait();                     // or WaitFor(deadline) for a bounded wait
//
// Unlike a promise/future pair this supports batches (Add N times, Wait
// once), supports multiple waiters, and is reusable after the count drains.
// Done() must be called exactly once per Add(); the count dropping below
// zero is a programming error.
class WaitGroup {
 public:
  void Add(size_t n = 1);
  void Done();

  // Blocks until the count is zero. Returns immediately if it already is.
  void Wait();

  // Bounded Wait: true if the count reached zero within `timeout`, false on
  // deadline. The count keeps draining in the background either way.
  bool WaitFor(std::chrono::milliseconds timeout);

  int64_t count() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int64_t count_ = 0;
};

// Process-wide pool shared by the engine's morsel dispatcher, the query
// executor (when ExecutorConfig.worker_threads == 0), and benchmarks. Sized
// to hardware_concurrency (min 2), constructed on first use, never torn down
// before exit. Tasks submitted here must not block indefinitely on other
// tasks in the same queue — the morsel dispatcher guarantees this by letting
// the dispatching thread drain its own morsels (see engine/parallel.h).
ThreadPool& SharedThreadPool();

}  // namespace pctagg

#endif  // PCTAGG_COMMON_THREAD_POOL_H_
