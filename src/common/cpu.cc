#include "common/cpu.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace pctagg {

namespace {

bool ProbeSse42() {
#if defined(__x86_64__)
  return __builtin_cpu_supports("sse4.2");
#else
  return false;
#endif
}

bool ProbeAvx2() {
#if defined(__x86_64__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool EnvSimdEnabled() {
  const char* v = std::getenv("PCTAGG_DISABLE_SIMD");
  if (v == nullptr || *v == '\0') return true;
  return std::strcmp(v, "0") == 0;
}

// -1 = follow the environment, 0/1 = forced by a test.
std::atomic<int> g_simd_override{-1};

}  // namespace

bool CpuHasSse42() {
  static const bool have = ProbeSse42();
  return have;
}

bool CpuHasAvx2() {
  static const bool have = ProbeAvx2();
  return have;
}

bool SimdEnabled() {
  int forced = g_simd_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool env_enabled = EnvSimdEnabled();
  return env_enabled;
}

namespace internal {

void SetSimdEnabledForTest(bool enabled) {
  g_simd_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void ResetSimdEnabledForTest() {
  g_simd_override.store(-1, std::memory_order_relaxed);
}

}  // namespace internal

}  // namespace pctagg
