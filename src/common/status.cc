#include "common/status.h"

namespace pctagg {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kAnalysisError:
      return "AnalysisError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kLimitExceeded:
      return "LimitExceeded";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace pctagg
