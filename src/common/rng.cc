#include "common/rng.h"

#include <cmath>

namespace pctagg {

uint64_t Rng::Zipf(uint64_t n, double theta) {
  if (n <= 1) return 0;
  // Inverse-CDF sampling against the (unnormalized) harmonic weights.
  // O(log n) via the standard approximation: draw u, then solve for rank
  // using the continuous integral of x^-theta.
  double u = NextDouble();
  if (theta == 1.0) {
    double h = std::log(static_cast<double>(n) + 1.0);
    double r = std::exp(u * h) - 1.0;
    uint64_t rank = static_cast<uint64_t>(r);
    return rank >= n ? n - 1 : rank;
  }
  double one_minus = 1.0 - theta;
  double h = (std::pow(static_cast<double>(n) + 1.0, one_minus) - 1.0) / one_minus;
  double r = std::pow(u * h * one_minus + 1.0, 1.0 / one_minus) - 1.0;
  uint64_t rank = static_cast<uint64_t>(r);
  return rank >= n ? n - 1 : rank;
}

}  // namespace pctagg
