#ifndef PCTAGG_COMMON_CPU_H_
#define PCTAGG_COMMON_CPU_H_

// Runtime CPU-feature detection shared by every kernel that carries a
// hand-vectorized path (crc32c, packed-key probing, fused aggregation).
// All probes are cached after the first call and safe to call concurrently.

namespace pctagg {

// True when the CPU executing this process supports SSE4.2 (CRC32
// instruction). Always false on non-x86-64 builds.
bool CpuHasSse42();

// True when the CPU supports AVX2 (256-bit integer gather/compare). Always
// false on non-x86-64 builds.
bool CpuHasAvx2();

// Master switch consulted in addition to the hardware probes: false when the
// PCTAGG_DISABLE_SIMD environment variable is set to a non-empty value other
// than "0" (read once at first use), or when overridden for tests. Kernels
// gate their vector paths on `SimdEnabled() && CpuHas...()` so CI can force
// every scalar fallback with PCTAGG_DISABLE_SIMD=1.
bool SimdEnabled();

namespace internal {
// Test hook: force SimdEnabled() to the given value (ignoring the
// environment) until restored. Not for production code paths.
void SetSimdEnabledForTest(bool enabled);
void ResetSimdEnabledForTest();
}  // namespace internal

}  // namespace pctagg

#endif  // PCTAGG_COMMON_CPU_H_
