#ifndef PCTAGG_COMMON_STATUS_H_
#define PCTAGG_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace pctagg {

// Error categories used across the library. Modeled after the Status idiom
// used by production database libraries (RocksDB, Arrow): no exceptions cross
// the public API; every fallible operation returns a Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kParseError,        // SQL text could not be tokenized/parsed
  kAnalysisError,     // query violates the paper's usage rules
  kNotFound,          // table/column does not exist
  kAlreadyExists,     // catalog name collision
  kTypeMismatch,      // expression/value typing error
  kLimitExceeded,     // e.g. DBMS max-column limit reached
  kTimeout,           // query exceeded its wall-clock deadline
  kUnavailable,       // server overloaded; retry later
  kInternal,          // invariant violation inside the engine
  kDataLoss,          // on-disk corruption: checksum/framing failure
};

// Returns a short human-readable name such as "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A cheap, copyable success-or-error value.
//
//   Status s = table.AppendRow(values);
//   if (!s.ok()) return s;
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status AnalysisError(std::string msg) {
    return Status(StatusCode::kAnalysisError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status LimitExceeded(std::string msg) {
    return Status(StatusCode::kLimitExceeded, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Propagates a non-OK Status from an expression to the caller.
#define PCTAGG_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::pctagg::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (false)

}  // namespace pctagg

#endif  // PCTAGG_COMMON_STATUS_H_
