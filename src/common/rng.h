#ifndef PCTAGG_COMMON_RNG_H_
#define PCTAGG_COMMON_RNG_H_

#include <cstdint>

namespace pctagg {

// Deterministic 64-bit pseudo-random generator (splitmix64 core). Every
// workload generator seeds one of these so that test and benchmark data are
// reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  // Uniform 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Zipf-like skewed integer in [0, n): rank r is picked with probability
  // proportional to 1/(r+1)^theta. Used by the census-like generator to model
  // the skewed value distributions the paper's real data set exhibits.
  uint64_t Zipf(uint64_t n, double theta);

 private:
  uint64_t state_;
};

}  // namespace pctagg

#endif  // PCTAGG_COMMON_RNG_H_
