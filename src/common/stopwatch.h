#ifndef PCTAGG_COMMON_STOPWATCH_H_
#define PCTAGG_COMMON_STOPWATCH_H_

#include <chrono>

namespace pctagg {

// Wall-clock stopwatch used by the benchmark harnesses to report
// per-statement times the way the paper's tables do.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pctagg

#endif  // PCTAGG_COMMON_STOPWATCH_H_
