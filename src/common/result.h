#ifndef PCTAGG_COMMON_RESULT_H_
#define PCTAGG_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace pctagg {

// Holds either a value of type T or an error Status (never both). The
// database-library equivalent of StatusOr/arrow::Result.
//
//   Result<Table> r = RunQuery(...);
//   if (!r.ok()) return r.status();
//   Table t = std::move(r).value();
template <typename T>
class Result {
 public:
  // Implicit construction from a value or from an error Status keeps call
  // sites readable ("return table;" / "return Status::NotFound(...)").
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

// Propagates an error Result, otherwise moves the value into `lhs`.
#define PCTAGG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define PCTAGG_TOKEN_PASTE2(x, y) x##y
#define PCTAGG_TOKEN_PASTE(x, y) PCTAGG_TOKEN_PASTE2(x, y)

#define PCTAGG_ASSIGN_OR_RETURN(lhs, expr)                                    \
  PCTAGG_ASSIGN_OR_RETURN_IMPL(PCTAGG_TOKEN_PASTE(_result_, __LINE__), lhs, \
                               expr)

}  // namespace pctagg

#endif  // PCTAGG_COMMON_RESULT_H_
