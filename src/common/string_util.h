#ifndef PCTAGG_COMMON_STRING_UTIL_H_
#define PCTAGG_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace pctagg {

// Joins `parts` with `sep` ("a", "b" -> "a, b" for sep ", ").
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

// Case-insensitive ASCII equality, used by the SQL lexer for keywords.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

// Lower-cases ASCII letters.
std::string ToLower(const std::string& s);

// True if `s` parses fully as an integer / floating literal.
bool IsInteger(const std::string& s);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...);

}  // namespace pctagg

#endif  // PCTAGG_COMMON_STRING_UTIL_H_
