#include "common/thread_pool.h"

namespace pctagg {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      // Second caller (e.g. destructor after explicit Shutdown): workers are
      // already stopping; just fall through to join below.
    }
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void WaitGroup::Add(size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  count_ += static_cast<int64_t>(n);
}

void WaitGroup::Done() {
  // Notify while still holding the mutex: a waiter may only return from
  // Wait() after reacquiring it, which orders this broadcast before any
  // destruction of the WaitGroup on the waiting thread. Notifying after the
  // unlock would let the waiter wake early (spuriously or via a sibling
  // Done), observe zero, and destroy the condition variable mid-broadcast.
  std::lock_guard<std::mutex> lock(mutex_);
  --count_;
  if (count_ <= 0) cv_.notify_all();
}

void WaitGroup::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return count_ <= 0; });
}

bool WaitGroup::WaitFor(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, timeout, [this] { return count_ <= 0; });
}

int64_t WaitGroup::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

ThreadPool& SharedThreadPool() {
  static ThreadPool* pool = [] {
    size_t hw = std::thread::hardware_concurrency();
    return new ThreadPool(hw > 2 ? hw : 2);  // leaked: outlives static dtors
  }();
  return *pool;
}

}  // namespace pctagg
