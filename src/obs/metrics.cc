#include "obs/metrics.h"

#include <algorithm>

#include "common/string_util.h"

namespace pctagg {
namespace obs {

namespace internal {

size_t ThreadShard() {
  // A small dense id per thread, assigned on first use. Hashing
  // std::this_thread::get_id() would work too, but a counter guarantees the
  // first kMetricShards threads land on distinct shards.
  static std::atomic<size_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricShards - 1);
  return shard;
}

}  // namespace internal

namespace {

std::atomic<bool> g_enabled{true};

size_t BucketFor(uint64_t micros) {
  size_t b = 0;
  while (micros >= 2 && b + 1 < Histogram::kBuckets) {
    micros >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

void Histogram::Observe(uint64_t micros) {
  HistShard& s = shards_[internal::ThreadShard()];
  s.bucket[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(micros, std::memory_order_relaxed);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const HistShard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Sum() const {
  uint64_t total = 0;
  for (const HistShard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Snapshot(std::vector<uint64_t>* cumulative,
                         std::vector<uint64_t>* bounds_out) const {
  cumulative->assign(kBuckets, 0);
  bounds_out->assign(kBuckets, 0);
  for (const HistShard& s : shards_) {
    for (size_t b = 0; b < kBuckets; ++b) {
      (*cumulative)[b] += s.bucket[b].load(std::memory_order_relaxed);
    }
  }
  uint64_t running = 0;
  uint64_t bound = 1;  // bucket 0 covers [0, 2)
  for (size_t b = 0; b < kBuckets; ++b) {
    running += (*cumulative)[b];
    (*cumulative)[b] = running;
    (*bounds_out)[b] = bound;
    bound = bound >= (uint64_t{1} << 62) ? bound : bound * 2;
  }
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[name];
  if (e.counter == nullptr) {
    e.kind = Kind::kCounter;
    e.help = help;
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[name];
  if (e.gauge == nullptr) {
    e.kind = Kind::kGauge;
    e.help = help;
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[name];
  if (e.histogram == nullptr) {
    e.kind = Kind::kHistogram;
    e.help = help;
    e.histogram = std::make_unique<Histogram>();
  }
  return *e.histogram;
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.counter == nullptr) return 0;
  return it->second.counter->Value();
}

int64_t MetricsRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.gauge == nullptr) return 0;
  return it->second.gauge->Value();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, e] : entries_) {
    if (!e.help.empty()) {
      out += "# HELP " + name + " " + e.help + "\n";
    }
    switch (e.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(e.counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + std::to_string(e.gauge->Value()) + "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        std::vector<uint64_t> cumulative, bounds;
        e.histogram->Snapshot(&cumulative, &bounds);
        uint64_t total = e.histogram->Count();
        for (size_t b = 0; b < cumulative.size(); ++b) {
          // Skip interior all-below buckets once everything is counted, to
          // keep the dump short; always emit the first bucket and +Inf.
          if (b > 0 && cumulative[b] == total &&
              cumulative[b - 1] == total) {
            continue;
          }
          out += name + "_bucket{le=\"" + std::to_string(bounds[b]) + "\"} " +
                 std::to_string(cumulative[b]) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(total) + "\n";
        out += name + "_sum " + std::to_string(e.histogram->Sum()) + "\n";
        out += name + "_count " + std::to_string(total) + "\n";
        break;
      }
    }
  }
  return out;
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

}  // namespace obs
}  // namespace pctagg
