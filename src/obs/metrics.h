#ifndef PCTAGG_OBS_METRICS_H_
#define PCTAGG_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pctagg {
namespace obs {

// Process-wide metrics for the query service and the engine underneath it —
// the instrumentation layer COMPARE-style plan tuning needs to be auditable.
// Three metric kinds, Prometheus text exposition:
//
//   Counter    monotone; lock-free per-thread shards so morsel workers and
//              connection threads never contend on one cache line
//   Gauge      a settable level (pool queue depth, active sessions)
//   Histogram  log2-bucketed latencies in microseconds, sharded like Counter
//
// Hot-path cost: Counter::Add / Histogram::Observe are one relaxed atomic
// add on a shard picked by thread id — no locks, no false sharing. Metric
// *registration* (GetCounter etc.) takes a mutex and should be hoisted out of
// loops; the returned references stay valid for the registry's lifetime.
//
// The process-wide switch SetEnabled(false) turns the engine's per-operator
// recording sites into branches on one relaxed atomic load; BENCH_obs.json
// records the enabled-vs-disabled delta (budget: <= 3%).

// Number of shards. Power of two; 16 covers the worker counts this engine
// runs (shared pool = hardware_concurrency) while keeping a dump cheap.
inline constexpr size_t kMetricShards = 16;

namespace internal {
// One cache line per shard so two threads bumping the same counter from
// different shards never write-share.
struct alignas(64) Shard {
  std::atomic<uint64_t> value{0};
};
// Stable small id for the calling thread, used to pick a shard.
size_t ThreadShard();
}  // namespace internal

class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[internal::ThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const internal::Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  internal::Shard shards_[kMetricShards];
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log2-bucketed histogram of microsecond durations: bucket b counts
// observations in [2^b, 2^(b+1)) with bucket 0 holding [0, 2). 32 buckets
// reach ~71 minutes. Tracks count and sum for mean/rate queries.
class Histogram {
 public:
  static constexpr size_t kBuckets = 32;

  void Observe(uint64_t micros);

  uint64_t Count() const;
  uint64_t Sum() const;  // total micros
  // Cumulative count at or below each bucket's upper bound, Prometheus
  // `le`-style. `bounds_out` receives the upper bound per bucket.
  void Snapshot(std::vector<uint64_t>* cumulative,
                std::vector<uint64_t>* bounds_out) const;

 private:
  struct alignas(64) HistShard {
    std::atomic<uint64_t> bucket[kBuckets] = {};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
  };
  HistShard shards_[kMetricShards];
};

// Named metrics, one per process (see GlobalMetrics). Names follow the
// Prometheus convention: pctagg_<subsystem>_<what>[_total].
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates. `help` is kept from the first registration.
  Counter& GetCounter(const std::string& name, const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& help = "");
  Histogram& GetHistogram(const std::string& name,
                          const std::string& help = "");

  // Prometheus text exposition format, metrics sorted by name.
  std::string RenderPrometheus() const;

  // Testing hook: current value of a counter/gauge by name (0 if absent).
  uint64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

// The process-wide registry every subsystem records into.
MetricsRegistry& GlobalMetrics();

// Master switch for the engine's per-operator recording sites (the server
// keeps it on; benchmarks toggle it to measure overhead). Counters touched
// directly through GlobalMetrics() are unaffected.
void SetEnabled(bool enabled);
bool Enabled();

}  // namespace obs
}  // namespace pctagg

#endif  // PCTAGG_OBS_METRICS_H_
