#include "obs/trace.h"

#include <time.h>

#include <chrono>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace pctagg {
namespace obs {

namespace {

thread_local TraceNode* g_current_op = nullptr;

double WallMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RenderNode(const TraceNode& node, size_t depth, std::string* out) {
  std::string indent(depth * 2, ' ');
  const OpStats& s = node.stats;
  *out += indent + node.label;
  if (!node.detail.empty()) *out += ": " + node.detail;
  *out += "\n";
  // One stats line per node that recorded anything.
  std::string stats_line;
  if (s.cache_hit) stats_line += " cache=hit";
  if (s.rows_in != 0 || s.rows_out != 0) {
    stats_line += StrFormat(" rows_in=%llu rows_out=%llu",
                            (unsigned long long)s.rows_in,
                            (unsigned long long)s.rows_out);
  }
  if (s.morsels != 0) {
    stats_line += StrFormat(" morsels=%llu workers=%llu",
                            (unsigned long long)s.morsels,
                            (unsigned long long)s.workers);
  }
  if (s.hash_slots != 0) {
    stats_line += StrFormat(" hash_groups=%llu hash_slots=%llu load=%.2f",
                            (unsigned long long)s.hash_groups,
                            (unsigned long long)s.hash_slots, s.hash_load());
  }
  if (s.partials_merged != 0) {
    stats_line += StrFormat(" partials_merged=%llu",
                            (unsigned long long)s.partials_merged);
  }
  if (s.wall_ms != 0) {
    stats_line += StrFormat(" wall=%.3fms cpu=%.3fms", s.wall_ms, s.cpu_ms);
  }
  if (!stats_line.empty()) {
    *out += indent + "  [" + stats_line.substr(1) + "]\n";
  }
  for (const auto& child : node.children) {
    RenderNode(*child, depth + 1, out);
  }
}

}  // namespace

TraceNode* TraceNode::AddChild(std::string child_label,
                               std::string child_detail) {
  children.push_back(std::make_unique<TraceNode>());
  TraceNode* child = children.back().get();
  child->label = std::move(child_label);
  child->detail = std::move(child_detail);
  return child;
}

uint64_t QueryTrace::ActualRowOps() const {
  uint64_t total = 0;
  // Statement nodes hold operator children; only leaves scan rows, so
  // summing rows_in over every node (statement nodes record none) is the
  // row-operation count.
  struct Walk {
    static void Visit(const TraceNode& n, uint64_t* total) {
      *total += n.stats.rows_in;
      for (const auto& c : n.children) Visit(*c, total);
    }
  };
  Walk::Visit(root_, &total);
  return total;
}

std::string QueryTrace::Render() const {
  std::string out;
  out += "query class: " + query_class + "\n";
  if (!strategy.empty()) {
    out += "strategy: " + strategy + " (" + strategy_source + ")\n";
  }
  if (!predicted_costs.empty()) {
    out += "cost model:";
    for (const PredictedCost& pc : predicted_costs) {
      out += StrFormat(" %s=%.0f%s", pc.name.c_str(), pc.cost,
                       pc.chosen ? "*" : "");
    }
    out += "  (*=chosen, abstract row-op units)\n";
  }
  if (predicted_group_rows >= 0) {
    out += StrFormat("predicted group rows: %.0f", predicted_group_rows);
    if (actual_group_rows >= 0) {
      out += StrFormat("  actual: %.0f", actual_group_rows);
    }
    out += "\n";
  }
  out += StrFormat("actual row ops: %llu\n",
                   (unsigned long long)ActualRowOps());
  out += StrFormat("total: %.3f ms\n", total_ms);
  out += "plan:\n";
  for (const auto& child : root_.children) {
    RenderNode(*child, 1, &out);
  }
  return out;
}

TraceNode* CurrentOp() { return g_current_op; }

namespace internal {
TraceNode* SwapCurrentOp(TraceNode* node) {
  TraceNode* previous = g_current_op;
  g_current_op = node;
  return previous;
}
}  // namespace internal

double ThreadCpuMs() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

ScopedTraceNode::ScopedTraceNode(TraceNode* node)
    : node_(node), previous_(nullptr) {
  if (node_ == nullptr) return;
  previous_ = internal::SwapCurrentOp(node_);
  wall_start_ms_ = WallMs();
  cpu_start_ms_ = ThreadCpuMs();
}

ScopedTraceNode::~ScopedTraceNode() {
  if (node_ == nullptr) return;
  node_->stats.wall_ms += WallMs() - wall_start_ms_;
  node_->stats.cpu_ms += ThreadCpuMs() - cpu_start_ms_;
  internal::SwapCurrentOp(previous_);
}

OpScope::OpScope(const char* label) {
  TraceNode* parent = g_current_op;
  if (parent == nullptr || !Enabled()) return;
  node_ = parent->AddChild(label);
  scope_ = std::make_unique<ScopedTraceNode>(node_);
}

OpScope::~OpScope() = default;

void MarkCacheHit() {
  if (g_current_op != nullptr) g_current_op->stats.cache_hit = true;
}

}  // namespace obs
}  // namespace pctagg
