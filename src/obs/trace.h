#ifndef PCTAGG_OBS_TRACE_H_
#define PCTAGG_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pctagg {
namespace obs {

// Per-operator execution statistics, collected into a per-query QueryTrace
// tree. This is what EXPLAIN ANALYZE renders and what `SET trace on` ships
// back over the wire next to the result — the visibility layer that makes
// the CostModel/StrategyAdvisor auditable (which physical strategy actually
// ran, where the time went, how loaded the hash tables were).
//
// Collection is pull-free and thread-local: Plan::Execute opens one node per
// generated statement, engine kernels running on that thread attach operator
// child nodes through CurrentOp()/OpScope, and morsel workers stay
// uninstrumented (the dispatching thread records the merged totals after
// RunMorsels returns). When no trace is active, CurrentOp() is null and
// every recording site is a single thread-local load + branch.
struct OpStats {
  uint64_t rows_in = 0;    // input rows scanned / probed
  uint64_t rows_out = 0;   // result rows / matches emitted
  uint64_t morsels = 0;    // morsel count of the parallel dispatch (0=serial)
  uint64_t workers = 0;    // workers that participated
  uint64_t hash_groups = 0;   // entries in the operator's hash table (peak)
  uint64_t hash_slots = 0;    // open-addressing slots backing them (peak)
  uint64_t partials_merged = 0;  // thread-local partial tables merged
  double wall_ms = 0;
  double cpu_ms = 0;       // dispatching thread's CPU time only
  bool cache_hit = false;  // summary cache answered; no scan happened

  double hash_load() const {
    return hash_slots == 0
               ? 0.0
               : static_cast<double>(hash_groups) /
                     static_cast<double>(hash_slots);
  }
};

// One node of the executed-plan tree: a generated statement, or one engine
// operator invoked while running it.
struct TraceNode {
  std::string label;   // "statement", "aggregate", "join-lookup", ...
  std::string detail;  // the generated SQL / operator annotation
  OpStats stats;
  std::vector<std::unique_ptr<TraceNode>> children;

  TraceNode* AddChild(std::string child_label, std::string child_detail = "");
};

// The trace of one query: the executed plan plus the planning metadata
// needed to audit the advisor (strategy chosen, cost model predicted vs
// actual).
class QueryTrace {
 public:
  TraceNode& root() { return root_; }
  const TraceNode& root() const { return root_; }

  // Planning metadata, filled by PctDatabase.
  std::string query_class;    // "Vpct", "Horizontal", ...
  std::string strategy;       // human name of the executed strategy
  std::string strategy_source;  // "advisor" | "forced" | "n/a"
  // Cost-model predictions per candidate strategy, in evaluation order;
  // `chosen` marks the one that ran. Costs are abstract row-operation units.
  struct PredictedCost {
    std::string name;
    double cost = 0;
    bool chosen = false;
  };
  std::vector<PredictedCost> predicted_costs;
  double predicted_group_rows = -1;  // cost model's |Fk| / |FV| estimate
  double actual_group_rows = -1;     // rows the finest aggregate produced
  double total_ms = 0;

  // Sum of rows_in over all operator nodes: the "actual row operations" the
  // cost model's abstract units predict.
  uint64_t ActualRowOps() const;

  // Human-readable multi-line rendering (EXPLAIN ANALYZE output).
  std::string Render() const;

 private:
  TraceNode root_{"query", "", {}, {}};
};

// The operator node engine kernels should attach children to; null when no
// trace is being collected on this thread.
TraceNode* CurrentOp();

// RAII scope that makes `node` the thread's current trace node and, on
// destruction, records wall + thread-CPU time into it. Used by Plan::Execute
// around each statement and by OpScope below.
class ScopedTraceNode {
 public:
  explicit ScopedTraceNode(TraceNode* node);  // node may be null (no-op)
  ~ScopedTraceNode();

  ScopedTraceNode(const ScopedTraceNode&) = delete;
  ScopedTraceNode& operator=(const ScopedTraceNode&) = delete;

 private:
  TraceNode* node_;
  TraceNode* previous_;
  double wall_start_ms_ = 0;
  double cpu_start_ms_ = 0;
};

// Kernel-side recording scope: attaches a child operator node to the
// thread's current node (if any) and exposes cheap setters. All methods are
// no-ops when tracing is off, so kernels call them unconditionally.
class OpScope {
 public:
  explicit OpScope(const char* label);
  ~OpScope();

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  bool active() const { return node_ != nullptr; }

  void SetRows(uint64_t rows_in, uint64_t rows_out) {
    if (node_ == nullptr) return;
    node_->stats.rows_in = rows_in;
    node_->stats.rows_out = rows_out;
  }
  void SetMorsels(uint64_t morsels, uint64_t workers) {
    if (node_ == nullptr) return;
    node_->stats.morsels = morsels;
    node_->stats.workers = workers;
  }
  void SetHashTable(uint64_t groups, uint64_t slots) {
    if (node_ == nullptr) return;
    node_->stats.hash_groups = groups;
    node_->stats.hash_slots = slots;
  }
  void SetPartialsMerged(uint64_t n) {
    if (node_ == nullptr) return;
    node_->stats.partials_merged = n;
  }
  void SetDetail(const std::string& detail) {
    if (node_ == nullptr) return;
    node_->detail = detail;
  }

 private:
  TraceNode* node_ = nullptr;
  std::unique_ptr<ScopedTraceNode> scope_;
};

// Marks the thread's current node as answered by the summary cache.
void MarkCacheHit();

// Thread-CPU clock in milliseconds (CLOCK_THREAD_CPUTIME_ID).
double ThreadCpuMs();

namespace internal {
// Installs `node` as the thread's current trace node; returns the previous
// one. Exposed for ScopedTraceNode and tests.
TraceNode* SwapCurrentOp(TraceNode* node);
}  // namespace internal

}  // namespace obs
}  // namespace pctagg

#endif  // PCTAGG_OBS_TRACE_H_
