#include "storage/serde.h"

#include <cstring>

#include "common/string_util.h"

namespace pctagg {
namespace storage {

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void AppendLenPrefixed(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

bool ByteReader::ReadU8(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = static_cast<uint8_t>(*p_++);
  return true;
}

bool ByteReader::ReadU32(uint32_t* v) {
  if (remaining() < 4) return false;
  std::memcpy(v, p_, 4);
  p_ += 4;
  return true;
}

bool ByteReader::ReadU64(uint64_t* v) {
  if (remaining() < 8) return false;
  std::memcpy(v, p_, 8);
  p_ += 8;
  return true;
}

bool ByteReader::ReadLenPrefixed(std::string_view* s) {
  uint32_t len;
  if (remaining() < 4) return false;
  std::memcpy(&len, p_, 4);
  if (remaining() - 4 < len) return false;
  p_ += 4;
  *s = std::string_view(p_, len);
  p_ += len;
  return true;
}

bool ByteReader::ReadBytes(size_t n, std::string_view* s) {
  if (remaining() < n) return false;
  *s = std::string_view(p_, n);
  p_ += n;
  return true;
}

bool ByteReader::Skip(size_t n) {
  if (remaining() < n) return false;
  p_ += n;
  return true;
}

namespace {

// Packs the engine's byte-per-row validity into an LSB-first bitmap.
void AppendValidityBitmap(const std::vector<uint8_t>& validity,
                          std::string* out) {
  const size_t n = validity.size();
  const size_t bytes = (n + 7) / 8;
  size_t start = out->size();
  out->resize(start + bytes, '\0');
  char* dst = out->data() + start;
  const uint8_t* src = validity.data();
  // Eight 0/1 bytes at a time: the multiply gathers byte i's low bit into
  // result bit 56+i (each diagonal term b_i * 2^(8i) * 2^(56-7i) lands on a
  // distinct bit and the off-diagonal terms stay below bit 56 or overflow
  // out, so no carries collide).
  const size_t full = n / 8;
  for (size_t i = 0; i < full; ++i) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, src + i * 8, 8);
    dst[i] = static_cast<char>((chunk * 0x0102040810204080ull) >> 56);
  }
  for (size_t r = full * 8; r < n; ++r) {
    if (src[r]) dst[r >> 3] |= static_cast<char>(1u << (r & 7));
  }
}

bool ReadValidityBitmap(ByteReader* in, size_t num_rows,
                        std::vector<uint8_t>* validity) {
  std::string_view bits;
  if (!in->ReadBytes((num_rows + 7) / 8, &bits)) return false;
  validity->resize(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    (*validity)[r] =
        (static_cast<uint8_t>(bits[r >> 3]) >> (r & 7)) & 1u;
  }
  return true;
}

Status Corrupt(const char* what) {
  return Status::DataLoss(std::string("corrupt column payload: ") + what);
}

}  // namespace

void EncodeColumn(const Column& column, std::string* out) {
  const size_t n = column.size();
  AppendU64(out, n);
  AppendValidityBitmap(column.validity(), out);
  switch (column.type()) {
    case DataType::kInt64:
      out->append(reinterpret_cast<const char*>(column.int64_data().data()),
                  n * sizeof(int64_t));
      break;
    case DataType::kFloat64:
      out->append(reinterpret_cast<const char*>(column.float64_data().data()),
                  n * sizeof(double));
      break;
    case DataType::kString: {
      const Dictionary& dict = *column.dict();
      const uint32_t dict_count = static_cast<uint32_t>(dict.size());
      AppendU32(out, dict_count);
      for (uint32_t code = 0; code < dict_count; ++code) {
        AppendLenPrefixed(out, dict.value(code));
      }
      out->append(reinterpret_cast<const char*>(column.codes().data()),
                  n * sizeof(uint32_t));
      break;
    }
  }
}

Result<Column> DecodeColumn(ByteReader* in, DataType type) {
  uint64_t n;
  if (!in->ReadU64(&n)) return Corrupt("truncated row count");
  // A length field can claim anything; make sure the bytes exist before
  // sizing vectors off it.
  std::vector<uint8_t> validity;
  if (!ReadValidityBitmap(in, n, &validity)) {
    return Corrupt("truncated null bitmap");
  }
  switch (type) {
    case DataType::kInt64: {
      std::string_view raw;
      if (!in->ReadBytes(n * sizeof(int64_t), &raw)) {
        return Corrupt("truncated INT64 values");
      }
      std::vector<int64_t> data(n);
      std::memcpy(data.data(), raw.data(), raw.size());
      return Column::FromInt64(std::move(data), std::move(validity));
    }
    case DataType::kFloat64: {
      std::string_view raw;
      if (!in->ReadBytes(n * sizeof(double), &raw)) {
        return Corrupt("truncated FLOAT64 values");
      }
      std::vector<double> data(n);
      std::memcpy(data.data(), raw.data(), raw.size());
      return Column::FromFloat64(std::move(data), std::move(validity));
    }
    case DataType::kString: {
      uint32_t dict_count;
      if (!in->ReadU32(&dict_count)) return Corrupt("truncated dictionary");
      auto dict = std::make_shared<Dictionary>();
      for (uint32_t i = 0; i < dict_count; ++i) {
        std::string_view s;
        if (!in->ReadLenPrefixed(&s)) {
          return Corrupt("truncated dictionary entry");
        }
        // GetOrAdd in written order reassigns exactly the original codes
        // (the dictionary is insert-ordered and codes are dense).
        if (dict->GetOrAdd(s) != i) {
          return Corrupt("duplicate dictionary entry");
        }
      }
      std::string_view raw;
      if (!in->ReadBytes(n * sizeof(uint32_t), &raw)) {
        return Corrupt("truncated code vector");
      }
      std::vector<uint32_t> codes(n);
      std::memcpy(codes.data(), raw.data(), raw.size());
      for (size_t r = 0; r < n; ++r) {
        if (validity[r] && codes[r] >= dict_count) {
          return Corrupt("code out of dictionary range");
        }
      }
      return Column::FromCodes(std::move(codes), std::move(validity),
                               std::move(dict));
    }
  }
  return Corrupt("unknown column type");
}

void EncodeSchema(const Schema& schema, std::string* out) {
  AppendU32(out, static_cast<uint32_t>(schema.num_columns()));
  for (const ColumnDef& def : schema.columns()) {
    AppendLenPrefixed(out, def.name);
    AppendU8(out, static_cast<uint8_t>(def.type));
  }
}

Result<Schema> DecodeSchema(ByteReader* in) {
  uint32_t ncols;
  if (!in->ReadU32(&ncols)) return Corrupt("truncated column count");
  Schema schema;
  for (uint32_t i = 0; i < ncols; ++i) {
    std::string_view name;
    uint8_t type;
    if (!in->ReadLenPrefixed(&name) || !in->ReadU8(&type)) {
      return Corrupt("truncated column definition");
    }
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return Corrupt("unknown data type");
    }
    schema.AddColumn({std::string(name), static_cast<DataType>(type)});
  }
  return schema;
}

void EncodeTable(const Table& table, std::string* out) {
  EncodeSchema(table.schema(), out);
  for (size_t i = 0; i < table.num_columns(); ++i) {
    EncodeColumn(table.column(i), out);
  }
}

void EncodeTablePieces(const Table& table, std::string* scratch,
                       std::vector<TablePiece>* pieces,
                       size_t first_run_offset) {
  size_t run_start = first_run_offset;
  // Closes the scratch bytes accumulated since the last cut as one piece.
  auto cut = [&] {
    if (scratch->size() > run_start) {
      pieces->push_back({nullptr, run_start, scratch->size() - run_start});
    }
    run_start = scratch->size();
  };
  EncodeSchema(table.schema(), scratch);
  for (size_t i = 0; i < table.num_columns(); ++i) {
    const Column& column = table.column(i);
    const size_t n = column.size();
    AppendU64(scratch, n);
    AppendValidityBitmap(column.validity(), scratch);
    switch (column.type()) {
      case DataType::kInt64:
        cut();
        pieces->push_back({column.int64_data().data(), 0, n * sizeof(int64_t)});
        break;
      case DataType::kFloat64:
        cut();
        pieces->push_back({column.float64_data().data(), 0, n * sizeof(double)});
        break;
      case DataType::kString: {
        const Dictionary& dict = *column.dict();
        const uint32_t dict_count = static_cast<uint32_t>(dict.size());
        AppendU32(scratch, dict_count);
        for (uint32_t code = 0; code < dict_count; ++code) {
          AppendLenPrefixed(scratch, dict.value(code));
        }
        cut();
        pieces->push_back({column.codes().data(), 0, n * sizeof(uint32_t)});
        break;
      }
    }
  }
  cut();
}

Result<Table> DecodeTable(ByteReader* in) {
  PCTAGG_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(in));
  std::vector<Column> columns;
  columns.reserve(schema.num_columns());
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    PCTAGG_ASSIGN_OR_RETURN(Column c, DecodeColumn(in, schema.column(i).type));
    if (i > 0 && c.size() != columns[0].size()) {
      return Corrupt("column length mismatch");
    }
    columns.push_back(std::move(c));
  }
  return Table(std::move(schema), std::move(columns));
}

}  // namespace storage
}  // namespace pctagg
