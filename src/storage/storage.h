#ifndef PCTAGG_STORAGE_STORAGE_H_
#define PCTAGG_STORAGE_STORAGE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/table.h"
#include "storage/manifest.h"
#include "storage/wal.h"

namespace pctagg {
namespace storage {

struct StorageOptions {
  std::string data_dir;
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  // Group-commit threshold for kBatch: unsynced WAL bytes accumulate up to
  // this before an fsync (below it the kernel is only nudged to start
  // writeback). Bounds the post-crash loss window under kBatch.
  uint64_t wal_batch_bytes = 8 << 20;
};

// What startup recovery found and did.
struct RecoveryStats {
  bool clean_shutdown = false;    // CLEAN marker was present
  bool opened_existing = false;   // a manifest existed (vs. fresh data dir)
  size_t tables_loaded = 0;       // tables materialized from segments
  uint64_t segment_rows = 0;      // rows read back from segments
  size_t wal_records_replayed = 0;
  uint64_t wal_rows_replayed = 0;
  uint64_t wal_bytes_replayed = 0;
  uint64_t wal_discarded_bytes = 0;  // torn tail dropped after the last
  std::string wal_tail_reason;       // intact record ("" = clean tail)
  size_t files_swept = 0;            // unreferenced files deleted
  double recovery_ms = 0;
};

// The durable half of a database instance: one data directory holding a
// manifest, one live WAL, and one immutable segment file per table.
//
//   Open        manifest -> segments -> WAL tail replay -> sweep
//   LogAppend   WAL-before-data for every acknowledged append batch
//   PersistTable/RemoveTable   DDL makes its own segment + manifest flip
//   Checkpoint  fresh segments -> fresh WAL -> manifest flip -> old files go
//
// Callers serialize data mutations (the server's executor runs DDL/append
// under an exclusive lock); an internal mutex additionally keeps direct
// PctDatabase users safe. Crash-safety rests on ordering alone: every step
// leaves either the old complete file set or the new one reachable from the
// manifest, never a mix.
class StorageManager {
 public:
  static Result<std::unique_ptr<StorageManager>> Open(StorageOptions options);

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  // Tables rebuilt during Open, for the caller to install into its catalog.
  // Valid once; the internal copies are released.
  std::vector<std::pair<std::string, Table>> TakeRecoveredTables();
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  // Logs one append batch (WAL-before-data). On return the record is as
  // durable as the fsync policy promises and the batch may be applied to the
  // in-memory table and acknowledged.
  Result<uint64_t> LogAppend(const std::string& table, const Table& batch);

  // Writes `table` to a fresh segment and publishes it in the manifest
  // (CREATE TABLE, CREATE TABLE AS, full replacement). Prior WAL records for
  // the table are superseded by the new flush LSN.
  Status PersistTable(const std::string& name, const Table& table);

  // Drops the table's manifest entry and segment file (DROP TABLE).
  Status RemoveTable(const std::string& name);

  struct CheckpointStats {
    size_t tables = 0;
    uint64_t rows = 0;
    uint64_t bytes = 0;  // segment bytes written
    double ms = 0;
  };

  // Flushes every passed table to a fresh segment, starts a fresh WAL, and
  // atomically publishes the new file set. The caller must hold writer
  // exclusivity over the tables for the duration.
  Result<CheckpointStats> Checkpoint(
      const std::vector<std::pair<std::string, const Table*>>& tables);

  // Forces batched WAL bytes to disk (fsync=batch barrier).
  Status SyncWal();

  // Final checkpointed shutdown marker; next Open reports clean_shutdown.
  Status MarkCleanShutdown();

  void set_fsync_policy(FsyncPolicy policy);
  FsyncPolicy fsync_policy() const;

  const std::string& data_dir() const { return options_.data_dir; }
  uint64_t wal_bytes_written() const;
  uint64_t wal_fsyncs() const;

 private:
  StorageManager() = default;

  Status Recover(bool clean_marker);
  std::string SegmentFileName(const std::string& table);
  std::string WalFileName();
  Status SweepUnreferenced();

  StorageOptions options_;
  mutable std::mutex mutex_;
  // Reused append-payload encode state (guarded by mutex_; scratch keeps its
  // capacity across batches, pieces reference it plus the batch's columns).
  std::string wal_scratch_;
  std::vector<TablePiece> wal_pieces_;
  Manifest manifest_;  // mirrors the file on disk
  WalWriter wal_;
  uint64_t file_seq_ = 1;  // monotone suffix for fresh file names
  std::vector<std::pair<std::string, Table>> recovered_;
  RecoveryStats recovery_stats_;
};

}  // namespace storage
}  // namespace pctagg

#endif  // PCTAGG_STORAGE_STORAGE_H_
