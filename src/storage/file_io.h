#ifndef PCTAGG_STORAGE_FILE_IO_H_
#define PCTAGG_STORAGE_FILE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pctagg {
namespace storage {

// Thin POSIX wrappers with typed errors. All paths are plain strings; the
// storage layer never walks outside its data directory.

// An append-only file handle (WAL, segment writes). Write errors are sticky:
// after the first failure every later call reports it, so a caller can't
// accidentally acknowledge data that never reached the OS.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;

  // Creates (or truncates) `path` for writing.
  Status Create(const std::string& path);
  // Opens `path` for appending at its current end.
  Status OpenForAppend(const std::string& path);

  Status Append(const void* data, size_t n);
  Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }
  Status Sync();   // fsync
  Status Close();  // close without sync

  bool is_open() const { return fd_ >= 0; }
  uint64_t bytes_written() const { return bytes_written_; }
  // The underlying descriptor, for callers that fsync off-thread. Stays
  // owned by (and valid for the lifetime of) this AppendFile.
  int raw_fd() const { return fd_; }

 private:
  int fd_ = -1;
  uint64_t bytes_written_ = 0;
  Status sticky_;
};

// Reads the whole file into a string. NotFound when absent.
Result<std::string> ReadFileToString(const std::string& path);

// Writes `data` to `path` atomically: write `path.tmp`, fsync, rename over
// `path`, fsync the directory. Readers see either the old or the new file,
// never a prefix.
Status AtomicWriteFile(const std::string& path, const std::string& data);

// fsyncs the directory containing `path` (durability of renames/creates).
Status SyncDirOf(const std::string& path);

Status EnsureDir(const std::string& path);  // mkdir -p (one level)
bool FileExists(const std::string& path);
Status RemoveFile(const std::string& path);          // ok if absent
Result<uint64_t> FileSize(const std::string& path);  // NotFound when absent

// Names of regular files directly inside `dir` (no subdirectories).
Result<std::vector<std::string>> ListDir(const std::string& dir);

}  // namespace storage
}  // namespace pctagg

#endif  // PCTAGG_STORAGE_FILE_IO_H_
