#include "storage/crc32c.h"

#include <array>

#include "common/cpu.h"

namespace pctagg {
namespace storage {

namespace {

// Slicing-by-8: eight 256-entry tables, each mapping one byte position of a
// 64-bit chunk to its CRC contribution. Built once at startup; the generator
// is the reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 bit-reflected

struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t k = 1; k < 8; ++k) {
        crc = (crc >> 8) ^ t[0][crc & 0xFF];
        t[k][i] = crc;
      }
    }
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}

#if defined(__x86_64__)
// SSE4.2 CRC32 instruction path (the instruction implements exactly the
// Castagnoli polynomial). Compiled with a target attribute and selected at
// runtime so the binary still runs on pre-Nehalem hardware.
__attribute__((target("sse4.2"))) uint32_t Crc32cHw(uint32_t crc,
                                                    const uint8_t* p,
                                                    size_t n) {
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --n;
  }
  while (n >= 8) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, p, 8);
    crc = static_cast<uint32_t>(__builtin_ia32_crc32di(crc, chunk));
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --n;
  }
  return ~crc;
}
#endif

}  // namespace

uint32_t Crc32c(uint32_t crc, const void* data, size_t n) {
#if defined(__x86_64__)
  // Shared probe from common/cpu.h; SimdEnabled() lets CI force the table
  // fallback (PCTAGG_DISABLE_SIMD=1) to keep it covered.
  if (CpuHasSse42() && SimdEnabled()) {
    return Crc32cHw(crc, static_cast<const uint8_t*>(data), n);
  }
#endif
  const Tables& tb = T();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Byte-at-a-time until 8-byte alignment (also covers short inputs).
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFF];
    --n;
  }
  while (n >= 8) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, p, 8);
    chunk ^= crc;  // little-endian hosts only (the on-disk format is LE)
    crc = tb.t[7][chunk & 0xFF] ^ tb.t[6][(chunk >> 8) & 0xFF] ^
          tb.t[5][(chunk >> 16) & 0xFF] ^ tb.t[4][(chunk >> 24) & 0xFF] ^
          tb.t[3][(chunk >> 32) & 0xFF] ^ tb.t[2][(chunk >> 40) & 0xFF] ^
          tb.t[1][(chunk >> 48) & 0xFF] ^ tb.t[0][(chunk >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFF];
    --n;
  }
  return ~crc;
}

uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8u;
}

uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xA282EAD8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace storage
}  // namespace pctagg
