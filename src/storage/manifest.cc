#include "storage/manifest.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "storage/crc32c.h"
#include "storage/fault.h"
#include "storage/file_io.h"

namespace pctagg {
namespace storage {

namespace {

constexpr char kHeaderLine[] = "pctagg-manifest v1";

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream in(line);
  std::string word;
  while (in >> word) words.push_back(std::move(word));
  return words;
}

bool ParseU64(const std::string& s, uint64_t* v) {
  if (s.empty()) return false;
  char* end = nullptr;
  *v = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

std::string EncodeManifest(const Manifest& manifest) {
  std::string out;
  out += kHeaderLine;
  out += '\n';
  char buf[512];
  std::snprintf(buf, sizeof(buf), "wal %s %llu\n", manifest.wal_file.c_str(),
                (unsigned long long)manifest.next_lsn);
  out += buf;
  for (const ManifestTable& t : manifest.tables) {
    std::snprintf(buf, sizeof(buf), "table %s %s %llu %llu\n", t.name.c_str(),
                  t.segment_file.c_str(), (unsigned long long)t.rows,
                  (unsigned long long)t.flush_lsn);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "crc %08x\n",
                MaskCrc(Crc32c(out.data(), out.size())));
  out += buf;
  return out;
}

Result<Manifest> DecodeManifest(const std::string& bytes) {
  // The crc line authenticates everything before it.
  size_t crc_at = bytes.rfind("crc ");
  if (crc_at == std::string::npos ||
      (crc_at != 0 && bytes[crc_at - 1] != '\n')) {
    return Status::DataLoss("manifest: missing crc line");
  }
  uint32_t masked = 0;
  if (std::sscanf(bytes.c_str() + crc_at, "crc %x", &masked) != 1 ||
      Crc32c(bytes.data(), crc_at) != UnmaskCrc(masked)) {
    return Status::DataLoss("manifest: checksum mismatch");
  }

  Manifest manifest;
  std::istringstream in(bytes.substr(0, crc_at));
  std::string line;
  bool saw_header = false, saw_wal = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kHeaderLine) {
        return Status::DataLoss("manifest: bad header line: " + line);
      }
      saw_header = true;
      continue;
    }
    std::vector<std::string> words = SplitWords(line);
    if (words.empty()) continue;
    if (words[0] == "wal") {
      if (words.size() != 3 || !ParseU64(words[2], &manifest.next_lsn)) {
        return Status::DataLoss("manifest: bad wal line: " + line);
      }
      manifest.wal_file = words[1];
      saw_wal = true;
    } else if (words[0] == "table") {
      ManifestTable t;
      if (words.size() != 5 || !ParseU64(words[3], &t.rows) ||
          !ParseU64(words[4], &t.flush_lsn)) {
        return Status::DataLoss("manifest: bad table line: " + line);
      }
      t.name = words[1];
      t.segment_file = words[2];
      manifest.tables.push_back(std::move(t));
    } else {
      return Status::DataLoss("manifest: unknown line: " + line);
    }
  }
  if (!saw_header || !saw_wal) {
    return Status::DataLoss("manifest: incomplete (missing header or wal)");
  }
  return manifest;
}

Status WriteManifest(const std::string& path, const Manifest& manifest) {
  const std::string data = EncodeManifest(manifest);
  const std::string tmp = path + ".tmp";
  {
    AppendFile f;
    PCTAGG_RETURN_IF_ERROR(f.Create(tmp));
    PCTAGG_RETURN_IF_ERROR(f.Append(data));
    PCTAGG_RETURN_IF_ERROR(f.Sync());
    PCTAGG_RETURN_IF_ERROR(f.Close());
  }
  CrashPoint("manifest_tmp");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    RemoveFile(tmp);
    return Status::Internal("manifest rename " + tmp + " -> " + path +
                            " failed");
  }
  return SyncDirOf(path);
}

Result<Manifest> ReadManifest(const std::string& path) {
  PCTAGG_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return DecodeManifest(bytes);
}

}  // namespace storage
}  // namespace pctagg
