#include "storage/file_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace pctagg {
namespace storage {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  const int err = errno;
  if (err == ENOENT) {
    return Status::NotFound(what + " " + path + ": " + std::strerror(err));
  }
  return Status::Internal(what + " " + path + ": " + std::strerror(err));
}

std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_),
      bytes_written_(other.bytes_written_),
      sticky_(std::move(other.sticky_)) {
  other.fd_ = -1;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    bytes_written_ = other.bytes_written_;
    sticky_ = std::move(other.sticky_);
    other.fd_ = -1;
  }
  return *this;
}

Status AppendFile::Create(const std::string& path) {
  if (fd_ >= 0) return Status::Internal("AppendFile already open");
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return Errno("create", path);
  bytes_written_ = 0;
  sticky_ = Status::OK();
  return Status::OK();
}

Status AppendFile::OpenForAppend(const std::string& path) {
  if (fd_ >= 0) return Status::Internal("AppendFile already open");
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) return Errno("open", path);
  sticky_ = Status::OK();
  return Status::OK();
}

Status AppendFile::Append(const void* data, size_t n) {
  if (!sticky_.ok()) return sticky_;
  if (fd_ < 0) return Status::Internal("AppendFile not open");
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t written = ::write(fd_, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      sticky_ = Errno("write", "appendfile");
      return sticky_;
    }
    p += written;
    n -= static_cast<size_t>(written);
    bytes_written_ += static_cast<uint64_t>(written);
  }
  return Status::OK();
}

Status AppendFile::Sync() {
  if (!sticky_.ok()) return sticky_;
  if (fd_ < 0) return Status::Internal("AppendFile not open");
  if (::fsync(fd_) != 0) {
    sticky_ = Errno("fsync", "appendfile");
    return sticky_;
  }
  return Status::OK();
}

Status AppendFile::Close() {
  if (fd_ < 0) return Status::OK();
  int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0 && sticky_.ok()) sticky_ = Errno("close", "appendfile");
  return sticky_;
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open", path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Errno("read", path);
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status AtomicWriteFile(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  {
    AppendFile f;
    PCTAGG_RETURN_IF_ERROR(f.Create(tmp));
    PCTAGG_RETURN_IF_ERROR(f.Append(data));
    PCTAGG_RETURN_IF_ERROR(f.Sync());
    PCTAGG_RETURN_IF_ERROR(f.Close());
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = Errno("rename", tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return st;
  }
  return SyncDirOf(path);
}

Status SyncDirOf(const std::string& path) {
  const std::string dir = DirOf(path);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync dir", dir);
  return Status::OK();
}

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Errno("mkdir", path);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) return Status::OK();
  return Errno("unlink", path);
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
  return static_cast<uint64_t>(st.st_size);
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  std::vector<std::string> names;
  for (struct dirent* e = ::readdir(d); e != nullptr; e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      names.push_back(std::move(name));
    }
  }
  ::closedir(d);
  return names;
}

}  // namespace storage
}  // namespace pctagg
