#ifndef PCTAGG_STORAGE_MANIFEST_H_
#define PCTAGG_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pctagg {
namespace storage {

// The catalog manifest: the single source of truth for which files make up
// the database. A line-oriented text file, always replaced atomically
// (tmp + fsync + rename + dir fsync), with a trailing checksum line:
//
//   pctagg-manifest v1
//   wal <wal file name> <replay-from lsn>
//   table <name> <segment file name> <rows> <flush_lsn>
//   ...
//   crc <8 hex digits: masked crc32c of every previous byte>
//
// `flush_lsn` is the WAL position already captured in the table's segment;
// replay skips append records at or below it. Table names are SQL
// identifiers (no whitespace), so plain token splitting is unambiguous.

struct ManifestTable {
  std::string name;
  std::string segment_file;  // file name inside the data dir
  uint64_t rows = 0;
  uint64_t flush_lsn = 0;
};

struct Manifest {
  std::string wal_file;   // file name inside the data dir
  uint64_t next_lsn = 1;  // first LSN the current WAL may contain
  std::vector<ManifestTable> tables;
};

std::string EncodeManifest(const Manifest& manifest);
Result<Manifest> DecodeManifest(const std::string& bytes);

// Atomically replaces the manifest at `path`. Fires the `manifest_tmp` crash
// point between writing the temp file and publishing the rename.
Status WriteManifest(const std::string& path, const Manifest& manifest);
Result<Manifest> ReadManifest(const std::string& path);

}  // namespace storage
}  // namespace pctagg

#endif  // PCTAGG_STORAGE_MANIFEST_H_
