#include "storage/wal.h"

#include <unistd.h>

#include <cerrno>
#include <algorithm>
#include <cstring>
#include <utility>

#include "storage/crc32c.h"
#include "storage/fault.h"
#include "storage/serde.h"

namespace pctagg {
namespace storage {

namespace {

constexpr size_t kRecordHeaderBytes = 4 + 8 + 4 + 4 + 4;

}  // namespace

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name) {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "batch") return FsyncPolicy::kBatch;
  if (name == "off") return FsyncPolicy::kOff;
  return Status::InvalidArgument("wal_fsync must be always|batch|off, got '" +
                                 name + "'");
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "unknown";
}

Result<WalWriter> WalWriter::Create(const std::string& path, uint64_t next_lsn,
                                    FsyncPolicy policy, uint64_t batch_bytes) {
  WalWriter w;
  PCTAGG_RETURN_IF_ERROR(w.file_.Create(path));
  PCTAGG_RETURN_IF_ERROR(w.file_.Sync());
  PCTAGG_RETURN_IF_ERROR(SyncDirOf(path));
  w.next_lsn_ = next_lsn;
  w.policy_ = policy;
  w.batch_bytes_ = batch_bytes;
  return w;
}

Result<WalWriter> WalWriter::Reopen(const std::string& path, uint64_t next_lsn,
                                    uint64_t valid_bytes, FsyncPolicy policy,
                                    uint64_t batch_bytes) {
  PCTAGG_ASSIGN_OR_RETURN(uint64_t size, FileSize(path));
  if (size > valid_bytes) {
    // Drop the torn tail so new records start on a record boundary.
    if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
      return Status::Internal("wal truncate " + path + " failed");
    }
  }
  WalWriter w;
  PCTAGG_RETURN_IF_ERROR(w.file_.OpenForAppend(path));
  PCTAGG_RETURN_IF_ERROR(w.file_.Sync());
  w.next_lsn_ = next_lsn;
  w.policy_ = policy;
  w.batch_bytes_ = batch_bytes;
  return w;
}

Result<uint64_t> WalWriter::AppendRecord(uint32_t type,
                                         std::string_view payload) {
  static const std::string kNoScratch;
  return AppendRecord(type, kNoScratch,
                      {TablePiece{payload.data(), 0, payload.size()}});
}

Result<uint64_t> WalWriter::AppendRecord(uint32_t type,
                                         const std::string& scratch,
                                         const std::vector<TablePiece>& pieces) {
  const uint64_t lsn = next_lsn_;
  size_t payload_size = 0;
  for (const TablePiece& p : pieces) payload_size += p.size;
  auto piece_data = [&](const TablePiece& p) {
    return p.data != nullptr ? static_cast<const char*>(p.data)
                             : scratch.data() + p.scratch_offset;
  };

  // The payload is written straight from the callers' buffers — at append
  // batch sizes a contiguous frame copy would double the memory traffic of
  // the whole WAL path. Only the 24-byte header is materialized.
  char header[kRecordHeaderBytes];
  std::memcpy(header, &kWalMagic, 4);
  std::memcpy(header + 4, &lsn, 8);
  std::memcpy(header + 12, &type, 4);
  const uint32_t len = static_cast<uint32_t>(payload_size);
  std::memcpy(header + 16, &len, 4);
  // The checksum covers everything after the magic, header fields included,
  // so a flipped length or LSN is caught as corruption, not obeyed.
  uint32_t crc = Crc32c(header + 4, 16);
  for (const TablePiece& p : pieces) {
    crc = Crc32c(crc, piece_data(p), p.size);
  }
  const uint32_t masked = MaskCrc(crc);
  std::memcpy(header + 20, &masked, 4);

  // Two writes, with a crash point between, model a record torn mid-write.
  // emit() writes out [begin, end) of the logical frame (header ++ pieces).
  const size_t total = kRecordHeaderBytes + payload_size;
  const size_t half = total / 2;
  auto emit = [&](size_t begin, size_t end) -> Status {
    size_t pos = 0;
    auto overlap = [&](const char* data, size_t size) -> Status {
      const size_t lo = std::max(begin, pos);
      const size_t hi = std::min(end, pos + size);
      Status st = lo < hi ? file_.Append(data + (lo - pos), hi - lo)
                          : Status::OK();
      pos += size;
      return st;
    };
    PCTAGG_RETURN_IF_ERROR(overlap(header, kRecordHeaderBytes));
    for (const TablePiece& p : pieces) {
      PCTAGG_RETURN_IF_ERROR(overlap(piece_data(p), p.size));
    }
    return Status::OK();
  };
  PCTAGG_RETURN_IF_ERROR(emit(0, half));
  CrashPoint("wal_partial");
  PCTAGG_RETURN_IF_ERROR(emit(half, total));
  CrashPoint("wal_record");

  bytes_written_ += total;
  unsynced_bytes_ += total;
  switch (policy_) {
    case FsyncPolicy::kAlways:
      PCTAGG_RETURN_IF_ERROR(Sync());
      break;
    case FsyncPolicy::kBatch:
      if (unsynced_bytes_ >= kGroupCommitHardCap * batch_bytes_) {
        // The device is falling behind sustained appends; block rather than
        // let the loss window grow without bound.
        PCTAGG_RETURN_IF_ERROR(Sync());
      } else if (unsynced_bytes_ >= batch_bytes_) {
        PCTAGG_RETURN_IF_ERROR(TryLaunchGroupCommit());
      }
      break;
    case FsyncPolicy::kOff:
      break;
  }
  next_lsn_ = lsn + 1;
  return lsn;
}

Status WalWriter::TryLaunchGroupCommit() {
  if (group_commit_.joinable() && group_commit_done_ != nullptr &&
      !group_commit_done_->load(std::memory_order_acquire)) {
    // The previous commit is still flushing; let these bytes roll into the
    // next window instead of blocking the append path on the device.
    return Status::OK();
  }
  PCTAGG_RETURN_IF_ERROR(JoinGroupCommit());
  if (group_commit_errno_ == nullptr) {
    group_commit_errno_ = std::make_shared<std::atomic<int>>(0);
    group_commit_done_ = std::make_shared<std::atomic<bool>>(false);
  }
  group_commit_done_->store(false, std::memory_order_relaxed);
  const int fd = file_.raw_fd();
  std::shared_ptr<std::atomic<int>> err = group_commit_errno_;
  std::shared_ptr<std::atomic<bool>> done = group_commit_done_;
  group_commit_ = std::thread([fd, err, done] {
    if (::fsync(fd) != 0) err->store(errno);
    done->store(true, std::memory_order_release);
  });
  unsynced_bytes_ = 0;
  ++fsyncs_;
  return Status::OK();
}

Status WalWriter::JoinGroupCommit() {
  if (group_commit_.joinable()) group_commit_.join();
  if (group_commit_errno_ != nullptr) {
    const int err = group_commit_errno_->exchange(0);
    if (err != 0) {
      return Status::Internal(std::string("wal group-commit fsync: ") +
                              std::strerror(err));
    }
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  PCTAGG_RETURN_IF_ERROR(JoinGroupCommit());
  if (unsynced_bytes_ == 0) return Status::OK();
  PCTAGG_RETURN_IF_ERROR(file_.Sync());
  unsynced_bytes_ = 0;
  ++fsyncs_;
  return Status::OK();
}

Status WalWriter::Close() {
  PCTAGG_RETURN_IF_ERROR(JoinGroupCommit());
  return file_.Close();
}

WalWriter::~WalWriter() {
  if (group_commit_.joinable()) group_commit_.join();
}

void EncodeAppendPayload(const std::string& table_name, const Table& rows,
                         std::string* out) {
  AppendLenPrefixed(out, table_name);
  EncodeTable(rows, out);
}

Result<WalReadResult> ReadWal(const std::string& path) {
  PCTAGG_ASSIGN_OR_RETURN(std::string file, ReadFileToString(path));
  WalReadResult result;
  ByteReader in(file.data(), file.size());
  uint64_t prev_lsn = 0;

  while (in.remaining() > 0) {
    const uint64_t offset = file.size() - in.remaining();
    auto tear = [&](const char* why) {
      result.valid_bytes = offset;
      result.discarded_bytes = file.size() - offset;
      result.tail_reason = why;
    };
    if (in.remaining() < kRecordHeaderBytes) {
      tear("short record header");
      break;
    }
    uint32_t magic = 0, type = 0, len = 0, masked = 0;
    uint64_t lsn = 0;
    in.ReadU32(&magic);
    in.ReadU64(&lsn);
    in.ReadU32(&type);
    in.ReadU32(&len);
    in.ReadU32(&masked);
    if (magic != kWalMagic) {
      tear("bad record magic");
      break;
    }
    std::string_view payload;
    if (!in.ReadBytes(len, &payload)) {
      tear("short record body");
      break;
    }
    uint32_t crc = Crc32c(file.data() + offset + 4, kRecordHeaderBytes - 8);
    crc = Crc32c(crc, payload.data(), payload.size());
    if (crc != UnmaskCrc(masked)) {
      tear("record checksum mismatch");
      break;
    }
    if (lsn <= prev_lsn) {
      tear("lsn regression");
      break;
    }
    prev_lsn = lsn;
    result.records.push_back(WalRecord{lsn, type, std::string(payload)});
    result.valid_bytes = file.size() - in.remaining();
  }
  if (result.tail_reason.empty()) {
    result.valid_bytes = file.size();
  }
  result.next_lsn = prev_lsn + 1;
  if (result.next_lsn < 1) result.next_lsn = 1;
  return result;
}

}  // namespace storage
}  // namespace pctagg
