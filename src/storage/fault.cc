#include "storage/fault.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace pctagg {
namespace storage {

namespace {

struct CrashSpec {
  std::string point;
  long long remaining = -1;  // -1 = disabled
};

CrashSpec ParseSpec() {
  CrashSpec spec;
  const char* env = std::getenv("PCTAGG_CRASH_AFTER");
  if (env == nullptr || *env == '\0') return spec;
  const char* colon = std::strrchr(env, ':');
  if (colon == nullptr) {
    spec.point = env;
    spec.remaining = 1;
    return spec;
  }
  spec.point.assign(env, colon - env);
  spec.remaining = std::atoll(colon + 1);
  if (spec.remaining < 1) spec.remaining = 1;
  return spec;
}

CrashSpec g_spec;
std::atomic<long long> g_hits{0};
std::once_flag g_load_once;

}  // namespace

void CrashPoint(const char* point) {
  std::call_once(g_load_once, [] { g_spec = ParseSpec(); });
  if (g_spec.remaining < 0 || g_spec.point != point) return;
  if (g_hits.fetch_add(1) + 1 == g_spec.remaining) {
    std::fprintf(stderr, "PCTAGG_CRASH_AFTER: crashing at %s:%lld\n", point,
                 g_spec.remaining);
    std::_Exit(kCrashExitCode);
  }
}

void ReloadCrashSpecForTesting() {
  // Mark the lazy load done (no-op if it already ran), then overwrite with a
  // fresh parse so a forked child can arm faults its parent never had.
  std::call_once(g_load_once, [] {});
  g_spec = ParseSpec();
  g_hits.store(0);
}

}  // namespace storage
}  // namespace pctagg
