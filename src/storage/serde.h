#ifndef PCTAGG_STORAGE_SERDE_H_
#define PCTAGG_STORAGE_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/table.h"

namespace pctagg {
namespace storage {

// Little-endian primitive encoding shared by the segment, WAL and manifest
// formats. Everything on disk is explicit-width and little-endian; readers
// never trust a length field without bounds-checking it against the bytes
// they actually have.

void AppendU8(std::string* out, uint8_t v);
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
void AppendLenPrefixed(std::string* out, std::string_view s);  // u32 len + bytes

// Cursor over an encoded byte range. Read* return false on underflow and
// leave the cursor unchanged, so callers can turn truncation into a typed
// corruption error instead of reading garbage.
class ByteReader {
 public:
  ByteReader(const void* data, size_t n)
      : p_(static_cast<const char*>(data)), end_(p_ + n) {}
  explicit ByteReader(std::string_view s) : ByteReader(s.data(), s.size()) {}

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  const char* cursor() const { return p_; }

  bool ReadU8(uint8_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadLenPrefixed(std::string_view* s);
  bool ReadBytes(size_t n, std::string_view* s);
  bool Skip(size_t n);

 private:
  const char* p_;
  const char* end_;
};

// --- Column payloads --------------------------------------------------------
//
// One column's bytes (the payload of a segment column block, and the unit the
// WAL's table payload repeats per column):
//
//   u64 num_rows
//   null bitmap: ceil(num_rows/8) bytes, bit r set = row r valid (LSB first)
//   values:
//     INT64 / FLOAT64   num_rows * 8 bytes, little-endian (doubles bit-cast)
//     STRING            u32 dict_count, dict_count * (u32 len + bytes) in
//                       insert-code order, then num_rows * u32 codes
//
// NULL rows write a zero placeholder value. The dictionary pool is written in
// code order and replayed through Dictionary::GetOrAdd on decode, so every
// code in the value vector decodes to exactly the string it encoded — the
// recovered column is bit-identical, codes included.

void EncodeColumn(const Column& column, std::string* out);
Result<Column> DecodeColumn(ByteReader* in, DataType type);

// --- Table payloads ---------------------------------------------------------
//
//   u32 num_columns
//   per column: u32 name_len + name bytes, u8 data_type
//   per column: the column payload above
//
// This is the WAL append record's body and the logical content of a segment
// (segments frame the same pieces as separate checksummed blocks).

void EncodeSchema(const Schema& schema, std::string* out);
Result<Schema> DecodeSchema(ByteReader* in);

void EncodeTable(const Table& table, std::string* out);
Result<Table> DecodeTable(ByteReader* in);

// --- Zero-copy table encoding -----------------------------------------------
//
// One span of an encoded table: either bytes appended to the shared scratch
// buffer (data == nullptr, located at [scratch_offset, scratch_offset+size))
// or a direct reference into the table's own value vectors. Scratch offsets
// must be resolved only after encoding finishes — the buffer may reallocate
// while it grows.
struct TablePiece {
  const void* data = nullptr;
  size_t scratch_offset = 0;
  size_t size = 0;
};

// Encodes `table` like EncodeTable, but without copying the large value
// vectors: schema, row counts, null bitmaps and dictionaries are appended to
// `scratch` while INT64/FLOAT64 values and STRING code vectors are referenced
// in place. The pieces concatenated in order (scratch ranges resolved against
// the final `scratch`) are byte-identical to EncodeTable's output. The first
// scratch piece starts at `first_run_offset`, so a caller can prepend its own
// header bytes to the scratch and have them carried in the first piece.
// `table` must outlive any use of the pieces.
void EncodeTablePieces(const Table& table, std::string* scratch,
                       std::vector<TablePiece>* pieces,
                       size_t first_run_offset);

}  // namespace storage
}  // namespace pctagg

#endif  // PCTAGG_STORAGE_SERDE_H_
