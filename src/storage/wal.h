#ifndef PCTAGG_STORAGE_WAL_H_
#define PCTAGG_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/table.h"
#include "storage/file_io.h"
#include "storage/serde.h"

namespace pctagg {
namespace storage {

// Write-ahead log for the append path. One record per AppendRows batch,
// framed:
//
//   u32 magic "WAL1"
//   u64 lsn          strictly increasing, global across WAL rotations
//   u32 type         kWalRecordAppend
//   u32 payload len
//   u32 masked crc32c over [lsn..len] header fields + payload
//   payload
//
// Append payloads are: len-prefixed table name + EncodeTable(batch). Replay
// stops at the first record that is short, mis-magiced, checksum-failing or
// LSN-regressing — a torn tail from a crash mid-write — and reports how much
// it discarded. Everything before the tear is trusted bit-for-bit.

inline constexpr uint32_t kWalMagic = 0x314C4157u;  // "WAL1" little-endian
inline constexpr uint32_t kWalRecordAppend = 1;

// How eagerly the WAL reaches stable storage.
//   kAlways  fsync after every record; an acknowledged append survives kill -9
//   kBatch   group commit: once `batch_bytes` accumulate the fsync runs on a
//            helper thread while appends continue; if it is still running at
//            the next threshold the bytes roll over (up to a hard cap of 4
//            windows, where appends block), so the post-crash loss window is
//            bounded by ~4*batch_bytes plus the in-flight fsync. Barriers
//            (checkpoint/shutdown/SyncWal) always sync fully.
//   kOff     never fsync from the append path; durability only at checkpoint
enum class FsyncPolicy { kAlways, kBatch, kOff };

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name);
const char* FsyncPolicyName(FsyncPolicy policy);

class WalWriter {
 public:
  // Creates a fresh WAL at `path`; records start at `next_lsn`.
  static Result<WalWriter> Create(const std::string& path, uint64_t next_lsn,
                                  FsyncPolicy policy, uint64_t batch_bytes);
  // Reopens an existing WAL for appending after `valid_bytes` of replayed
  // records (the file is truncated to drop any torn tail first).
  static Result<WalWriter> Reopen(const std::string& path, uint64_t next_lsn,
                                  uint64_t valid_bytes, FsyncPolicy policy,
                                  uint64_t batch_bytes);

  // An empty writer; assign from Create/Reopen before use.
  WalWriter() = default;
  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;
  ~WalWriter();  // joins any in-flight group-commit fsync

  // Appends one record and applies the fsync policy. Returns the record's
  // LSN once it is as durable as the policy promises.
  Result<uint64_t> AppendRecord(uint32_t type, std::string_view payload);

  // Same record format, but the payload arrives as EncodeTablePieces output:
  // scratch ranges resolve against `scratch`, direct pieces are written from
  // their owning buffers without ever materializing a contiguous payload.
  Result<uint64_t> AppendRecord(uint32_t type, const std::string& scratch,
                                const std::vector<TablePiece>& pieces);

  // Forces any batched bytes to disk (checkpoint barrier, shutdown).
  Status Sync();

  Status Close();

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t fsyncs() const { return fsyncs_; }
  void set_policy(FsyncPolicy policy) { policy_ = policy; }
  FsyncPolicy policy() const { return policy_; }

 private:
  // Hard backpressure for kBatch: once this many batch windows of WAL bytes
  // are unsynced, appends block on a full Sync() instead of launching
  // another background commit, bounding the post-crash loss window.
  static constexpr uint64_t kGroupCommitHardCap = 4;

  // Starts the group-commit fsync on a helper thread (kBatch threshold
  // crossing). If the previous commit is still running, does nothing — the
  // bytes roll into the next window. Otherwise joins the finished commit
  // (surfacing its failure, if any) and launches the next one.
  Status TryLaunchGroupCommit();
  // Waits for an in-flight group-commit fsync and surfaces its result.
  Status JoinGroupCommit();

  AppendFile file_;
  uint64_t next_lsn_ = 1;
  uint64_t bytes_written_ = 0;
  uint64_t unsynced_bytes_ = 0;
  uint64_t fsyncs_ = 0;
  FsyncPolicy policy_ = FsyncPolicy::kBatch;
  uint64_t batch_bytes_ = 1 << 20;
  std::thread group_commit_;
  // Heap-allocated so the writer stays movable; shared with the helper
  // thread, which parks its fsync errno / completion flag here.
  std::shared_ptr<std::atomic<int>> group_commit_errno_;
  std::shared_ptr<std::atomic<bool>> group_commit_done_;
};

// Encodes / decodes the append payload.
void EncodeAppendPayload(const std::string& table_name, const Table& rows,
                         std::string* out);

struct WalRecord {
  uint64_t lsn = 0;
  uint32_t type = 0;
  std::string payload;
};

struct WalReadResult {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;      // offset past the last intact record
  uint64_t discarded_bytes = 0;  // torn-tail bytes dropped after valid_bytes
  std::string tail_reason;       // empty when the file ended cleanly
  uint64_t next_lsn = 1;         // 1 + last intact record's lsn (min 1)
};

// Reads the whole WAL, verifying per-record checksums. Never fails on a torn
// tail (that is the expected crash shape) — only on I/O errors.
Result<WalReadResult> ReadWal(const std::string& path);

}  // namespace storage
}  // namespace pctagg

#endif  // PCTAGG_STORAGE_WAL_H_
