#ifndef PCTAGG_STORAGE_FAULT_H_
#define PCTAGG_STORAGE_FAULT_H_

namespace pctagg {
namespace storage {

// Crash-fault injection for recovery tests.
//
// PCTAGG_CRASH_AFTER=<point>:<n> makes the n-th execution of CrashPoint(
// "<point>") terminate the process immediately with _Exit(137) — no atexit
// handlers, no flushes, no destructors — the closest in-process stand-in for
// `kill -9` at a chosen instruction. Points wired into the storage layer:
//
//   wal_record    after a WAL record's bytes reach the OS, before fsync
//   wal_partial   after only the first half of a WAL record's bytes
//   segment       after one segment file is written during a checkpoint
//   manifest_tmp  after the manifest temp file is written, before rename
//
// The environment variable is read once per process (first CrashPoint call);
// unset means every point is free. Counting is process-wide and thread-safe.
void CrashPoint(const char* point);

// Re-reads PCTAGG_CRASH_AFTER and resets the hit counter. For fork-based
// recovery tests: a forked child inherits the parent's already-latched (and
// usually disabled) spec, so it must rearm after setting the variable.
void ReloadCrashSpecForTesting();

// Exit code CrashPoint dies with (matches a SIGKILL-ed shell's 128+9).
inline constexpr int kCrashExitCode = 137;

}  // namespace storage
}  // namespace pctagg

#endif  // PCTAGG_STORAGE_FAULT_H_
