#ifndef PCTAGG_STORAGE_SEGMENT_H_
#define PCTAGG_STORAGE_SEGMENT_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "engine/table.h"

namespace pctagg {
namespace storage {

// Columnar segment files: the at-rest image of one table, written whole at
// checkpoint and never modified afterwards. Layout:
//
//   [8]  magic "PCTSEG1\n"
//   schema block                      EncodeSchema payload
//   one column block per column       EncodeColumn payload, schema order
//   [24] footer
//
// Every block is framed [u32 len][u32 masked crc32c(payload)][payload], so a
// reader can detect truncation and bit rot per block without trusting any of
// the surrounding bytes. The footer is fixed-size so it can be located from
// the file tail:
//
//   u32 footer magic 0x50435446 ("PCTF")
//   u32 format version (1)
//   u64 num_rows
//   u32 num_columns
//   u32 masked crc32c of the previous 20 footer bytes
//
// Checkpoints write segments under fresh names and only then publish them via
// the manifest rename, so WriteSegment needs no tmp-file dance of its own —
// a crash mid-write leaves an unreferenced file the next Open sweeps away.

inline constexpr char kSegmentMagic[8] = {'P', 'C', 'T', 'S',
                                          'E', 'G', '1', '\n'};
inline constexpr uint32_t kSegmentFooterMagic = 0x50435446u;
inline constexpr uint32_t kSegmentVersion = 1;

// Serializes `table` to `path`, fsyncing the file and its directory.
Status WriteSegment(const std::string& path, const Table& table);

// Reads a segment back, verifying magic, footer and every block checksum.
// Corruption and truncation surface as Status::DataLoss naming the block.
Result<Table> ReadSegment(const std::string& path);

}  // namespace storage
}  // namespace pctagg

#endif  // PCTAGG_STORAGE_SEGMENT_H_
