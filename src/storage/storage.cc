#include "storage/storage.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>

#include "engine/table_ops.h"
#include "obs/metrics.h"
#include "storage/file_io.h"
#include "storage/segment.h"
#include "storage/serde.h"

namespace pctagg {
namespace storage {

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kCleanMarkerName[] = "CLEAN";

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

obs::Counter& WalRecordsCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_storage_wal_records_total", "WAL records written");
  return c;
}

obs::Counter& WalBytesCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_storage_wal_bytes_total", "WAL bytes written");
  return c;
}

obs::Counter& WalFsyncCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_storage_wal_fsyncs_total", "WAL fsync calls");
  return c;
}

obs::Counter& CheckpointCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_storage_checkpoints_total", "checkpoints completed");
  return c;
}

obs::Histogram& CheckpointMicros() {
  static obs::Histogram& h = obs::GlobalMetrics().GetHistogram(
      "pctagg_storage_checkpoint_micros", "checkpoint duration");
  return h;
}

// The file-name suffix counter survives restarts by scanning existing names:
// "seg-<seq>-<table>.seg" and "wal-<seq>.log".
uint64_t ParseFileSeq(const std::string& name) {
  size_t dash = name.find('-');
  if (dash == std::string::npos) return 0;
  return std::strtoull(name.c_str() + dash + 1, nullptr, 10);
}

}  // namespace

Result<std::unique_ptr<StorageManager>> StorageManager::Open(
    StorageOptions options) {
  auto start = std::chrono::steady_clock::now();
  PCTAGG_RETURN_IF_ERROR(EnsureDir(options.data_dir));

  std::unique_ptr<StorageManager> mgr(new StorageManager());
  mgr->options_ = std::move(options);

  const std::string marker = mgr->options_.data_dir + "/" + kCleanMarkerName;
  const bool clean_marker = FileExists(marker);
  // The marker certifies only the shutdown that wrote it; remove it up front
  // so a crash from here on reads as unclean.
  PCTAGG_RETURN_IF_ERROR(RemoveFile(marker));

  PCTAGG_RETURN_IF_ERROR(mgr->Recover(clean_marker));
  PCTAGG_RETURN_IF_ERROR(mgr->SweepUnreferenced());
  mgr->recovery_stats_.recovery_ms = MsSince(start);

  obs::GlobalMetrics()
      .GetGauge("pctagg_storage_recovery_ms", "last startup recovery time")
      .Set(static_cast<int64_t>(mgr->recovery_stats_.recovery_ms));
  obs::GlobalMetrics()
      .GetGauge("pctagg_storage_recovery_wal_records",
                "WAL records replayed at last startup")
      .Set(static_cast<int64_t>(mgr->recovery_stats_.wal_records_replayed));
  obs::GlobalMetrics()
      .GetGauge("pctagg_storage_recovery_discarded_bytes",
                "torn WAL tail bytes discarded at last startup")
      .Set(static_cast<int64_t>(mgr->recovery_stats_.wal_discarded_bytes));
  return mgr;
}

Status StorageManager::Recover(bool clean_marker) {
  recovery_stats_.clean_shutdown = clean_marker;
  const std::string manifest_path = options_.data_dir + "/" + kManifestName;

  if (!FileExists(manifest_path)) {
    // Fresh data directory: start an empty WAL and publish a manifest for it.
    manifest_.wal_file = WalFileName();
    manifest_.next_lsn = 1;
    PCTAGG_ASSIGN_OR_RETURN(
        wal_, WalWriter::Create(options_.data_dir + "/" + manifest_.wal_file, 1,
                                options_.fsync, options_.wal_batch_bytes));
    return WriteManifest(manifest_path, manifest_);
  }

  recovery_stats_.opened_existing = true;
  PCTAGG_ASSIGN_OR_RETURN(manifest_, ReadManifest(manifest_path));

  // Seed the name counter past every existing file so fresh names never
  // collide with live ones.
  PCTAGG_ASSIGN_OR_RETURN(std::vector<std::string> names,
                          ListDir(options_.data_dir));
  for (const std::string& name : names) {
    file_seq_ = std::max(file_seq_, ParseFileSeq(name) + 1);
  }

  // Segments first: each table's checkpointed image, checksum-verified.
  for (const ManifestTable& t : manifest_.tables) {
    PCTAGG_ASSIGN_OR_RETURN(
        Table table, ReadSegment(options_.data_dir + "/" + t.segment_file));
    if (table.num_rows() != t.rows) {
      return Status::DataLoss("segment " + t.segment_file + ": has " +
                              std::to_string(table.num_rows()) +
                              " rows, manifest says " + std::to_string(t.rows));
    }
    recovery_stats_.segment_rows += table.num_rows();
    recovered_.emplace_back(t.name, std::move(table));
  }
  recovery_stats_.tables_loaded = recovered_.size();

  // WAL tail: replay acknowledged appends past each table's flush LSN,
  // dropping any torn tail. A missing WAL (crash between segment writes and
  // the manifest flip of an interrupted checkpoint never leaves this state,
  // but an empty fresh directory copy might) reads as empty.
  const std::string wal_path = options_.data_dir + "/" + manifest_.wal_file;
  WalReadResult wal;
  if (FileExists(wal_path)) {
    PCTAGG_ASSIGN_OR_RETURN(wal, ReadWal(wal_path));
  }
  recovery_stats_.wal_bytes_replayed = wal.valid_bytes;
  recovery_stats_.wal_discarded_bytes = wal.discarded_bytes;
  recovery_stats_.wal_tail_reason = wal.tail_reason;

  for (const WalRecord& record : wal.records) {
    if (record.type != kWalRecordAppend) continue;  // forward compatibility
    ByteReader in(record.payload);
    std::string_view name;
    if (!in.ReadLenPrefixed(&name)) {
      return Status::DataLoss("wal: corrupt append payload at lsn " +
                              std::to_string(record.lsn));
    }
    auto it = std::find_if(
        recovered_.begin(), recovered_.end(),
        [&](const auto& entry) { return entry.first == name; });
    if (it == recovered_.end()) continue;  // table dropped after this record
    const ManifestTable* mt = nullptr;
    for (const ManifestTable& t : manifest_.tables) {
      if (t.name == it->first) mt = &t;
    }
    if (mt != nullptr && record.lsn <= mt->flush_lsn) {
      continue;  // already captured in the segment image
    }
    PCTAGG_ASSIGN_OR_RETURN(Table batch, DecodeTable(&in));
    // Same bulk append the live path uses (InsertInto), so recovered
    // dictionary codes come out identical to the pre-crash assignment.
    PCTAGG_RETURN_IF_ERROR(InsertInto(&it->second, batch));
    ++recovery_stats_.wal_records_replayed;
    recovery_stats_.wal_rows_replayed += batch.num_rows();
  }

  uint64_t next_lsn = std::max(manifest_.next_lsn, wal.next_lsn);
  PCTAGG_ASSIGN_OR_RETURN(
      wal_, WalWriter::Reopen(wal_path, next_lsn, wal.valid_bytes,
                              options_.fsync, options_.wal_batch_bytes));
  return Status::OK();
}

Status StorageManager::SweepUnreferenced() {
  std::set<std::string> keep = {kManifestName, manifest_.wal_file};
  for (const ManifestTable& t : manifest_.tables) keep.insert(t.segment_file);
  PCTAGG_ASSIGN_OR_RETURN(std::vector<std::string> names,
                          ListDir(options_.data_dir));
  for (const std::string& name : names) {
    if (keep.count(name)) continue;
    PCTAGG_RETURN_IF_ERROR(RemoveFile(options_.data_dir + "/" + name));
    ++recovery_stats_.files_swept;
  }
  return Status::OK();
}

std::vector<std::pair<std::string, Table>>
StorageManager::TakeRecoveredTables() {
  return std::move(recovered_);
}

std::string StorageManager::SegmentFileName(const std::string& table) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "seg-%06llu-",
                (unsigned long long)file_seq_++);
  return buf + table + ".seg";
}

std::string StorageManager::WalFileName() {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.log",
                (unsigned long long)file_seq_++);
  return buf;
}

Result<uint64_t> StorageManager::LogAppend(const std::string& table,
                                           const Table& batch) {
  std::lock_guard<std::mutex> lock(mutex_);
  wal_scratch_.clear();
  wal_pieces_.clear();
  AppendLenPrefixed(&wal_scratch_, table);
  EncodeTablePieces(batch, &wal_scratch_, &wal_pieces_,
                    /*first_run_offset=*/0);
  const uint64_t fsyncs_before = wal_.fsyncs();
  const uint64_t bytes_before = wal_.bytes_written();
  PCTAGG_ASSIGN_OR_RETURN(
      uint64_t lsn,
      wal_.AppendRecord(kWalRecordAppend, wal_scratch_, wal_pieces_));
  WalRecordsCounter().Add(1);
  WalBytesCounter().Add(wal_.bytes_written() - bytes_before);
  WalFsyncCounter().Add(wal_.fsyncs() - fsyncs_before);
  return lsn;
}

Status StorageManager::PersistTable(const std::string& name,
                                    const Table& table) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string file = SegmentFileName(name);
  PCTAGG_RETURN_IF_ERROR(
      WriteSegment(options_.data_dir + "/" + file, table));

  Manifest next = manifest_;
  std::string old_file;
  ManifestTable entry{name, file, table.num_rows(), wal_.next_lsn() - 1};
  bool replaced = false;
  for (ManifestTable& t : next.tables) {
    if (t.name == name) {
      old_file = t.segment_file;
      t = entry;
      replaced = true;
      break;
    }
  }
  if (!replaced) next.tables.push_back(std::move(entry));

  PCTAGG_RETURN_IF_ERROR(
      WriteManifest(options_.data_dir + "/" + kManifestName, next));
  manifest_ = std::move(next);
  if (!old_file.empty() && old_file != file) {
    PCTAGG_RETURN_IF_ERROR(RemoveFile(options_.data_dir + "/" + old_file));
  }
  return Status::OK();
}

Status StorageManager::RemoveTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Manifest next = manifest_;
  std::string old_file;
  for (auto it = next.tables.begin(); it != next.tables.end(); ++it) {
    if (it->name == name) {
      old_file = it->segment_file;
      next.tables.erase(it);
      break;
    }
  }
  if (old_file.empty()) return Status::OK();  // never persisted
  PCTAGG_RETURN_IF_ERROR(
      WriteManifest(options_.data_dir + "/" + kManifestName, next));
  manifest_ = std::move(next);
  return RemoveFile(options_.data_dir + "/" + old_file);
}

Result<StorageManager::CheckpointStats> StorageManager::Checkpoint(
    const std::vector<std::pair<std::string, const Table*>>& tables) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto start = std::chrono::steady_clock::now();
  CheckpointStats stats;

  // 1. Fresh segments. A crash here leaves them unreferenced; the old file
  //    set is still the published truth.
  Manifest next;
  for (const auto& [name, table] : tables) {
    const std::string file = SegmentFileName(name);
    PCTAGG_RETURN_IF_ERROR(
        WriteSegment(options_.data_dir + "/" + file, *table));
    PCTAGG_ASSIGN_OR_RETURN(uint64_t size,
                            FileSize(options_.data_dir + "/" + file));
    stats.bytes += size;
    stats.rows += table->num_rows();
    next.tables.push_back(
        ManifestTable{name, file, table->num_rows(), wal_.next_lsn() - 1});
  }
  stats.tables = tables.size();

  // 2. Fresh WAL, continuing the LSN sequence.
  next.wal_file = WalFileName();
  next.next_lsn = wal_.next_lsn();
  PCTAGG_ASSIGN_OR_RETURN(
      WalWriter fresh_wal,
      WalWriter::Create(options_.data_dir + "/" + next.wal_file,
                        next.next_lsn, wal_.policy(),
                        options_.wal_batch_bytes));

  // 3. Atomic flip: after this rename the new file set is the database.
  PCTAGG_RETURN_IF_ERROR(
      WriteManifest(options_.data_dir + "/" + kManifestName, next));

  // 4. Retire the old generation.
  const std::string old_wal = manifest_.wal_file;
  std::set<std::string> still_referenced;
  for (const ManifestTable& t : next.tables) {
    still_referenced.insert(t.segment_file);
  }
  wal_.Close();
  wal_ = std::move(fresh_wal);
  std::vector<ManifestTable> old_tables = std::move(manifest_.tables);
  manifest_ = std::move(next);
  PCTAGG_RETURN_IF_ERROR(RemoveFile(options_.data_dir + "/" + old_wal));
  for (const ManifestTable& t : old_tables) {
    if (!still_referenced.count(t.segment_file)) {
      PCTAGG_RETURN_IF_ERROR(
          RemoveFile(options_.data_dir + "/" + t.segment_file));
    }
  }

  stats.ms = MsSince(start);
  CheckpointCounter().Add(1);
  CheckpointMicros().Observe(static_cast<uint64_t>(stats.ms * 1000.0));
  return stats;
}

Status StorageManager::SyncWal() {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t before = wal_.fsyncs();
  PCTAGG_RETURN_IF_ERROR(wal_.Sync());
  WalFsyncCounter().Add(wal_.fsyncs() - before);
  return Status::OK();
}

Status StorageManager::MarkCleanShutdown() {
  std::lock_guard<std::mutex> lock(mutex_);
  PCTAGG_RETURN_IF_ERROR(wal_.Sync());
  return AtomicWriteFile(options_.data_dir + "/" + kCleanMarkerName, "clean\n");
}

void StorageManager::set_fsync_policy(FsyncPolicy policy) {
  std::lock_guard<std::mutex> lock(mutex_);
  wal_.set_policy(policy);
}

FsyncPolicy StorageManager::fsync_policy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wal_.policy();
}

uint64_t StorageManager::wal_bytes_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wal_.bytes_written();
}

uint64_t StorageManager::wal_fsyncs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wal_.fsyncs();
}

}  // namespace storage
}  // namespace pctagg
