#ifndef PCTAGG_STORAGE_CRC32C_H_
#define PCTAGG_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace pctagg {
namespace storage {

// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected) — the checksum every
// on-disk block in the storage subsystem carries (segments, WAL records, the
// manifest trailer). Chosen over plain CRC-32 for its better error-detection
// properties on short records; this is the same polynomial LevelDB, RocksDB
// and iSCSI use, computed here with a slicing-by-8 table so checksumming a
// segment costs a small fraction of writing it.

// CRC of `data[0..n)` continuing from `crc` (0 starts a fresh checksum).
uint32_t Crc32c(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32c(0, data, n);
}

// Masked form stored on disk (RocksDB-style rotation + constant), so that a
// file whose payload happens to contain its own CRC does not checksum to a
// fixed point, and an all-zero block never validates.
uint32_t MaskCrc(uint32_t crc);
uint32_t UnmaskCrc(uint32_t masked);

}  // namespace storage
}  // namespace pctagg

#endif  // PCTAGG_STORAGE_CRC32C_H_
