#include "storage/segment.h"

#include <cstring>
#include <utility>
#include <vector>

#include "storage/crc32c.h"
#include "storage/fault.h"
#include "storage/file_io.h"
#include "storage/serde.h"

namespace pctagg {
namespace storage {

namespace {

constexpr size_t kFooterBytes = 24;

void AppendBlock(std::string* out, const std::string& payload) {
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  AppendU32(out, MaskCrc(Crc32c(payload.data(), payload.size())));
  out->append(payload);
}

// Reads one framed block, verifying its checksum; `what` names the block in
// error messages ("schema", "column 3").
Result<std::string_view> ReadBlock(ByteReader* in, const std::string& path,
                                   const std::string& what) {
  uint32_t len = 0, masked = 0;
  if (!in->ReadU32(&len) || !in->ReadU32(&masked)) {
    return Status::DataLoss("segment " + path + ": truncated " + what +
                            " block header");
  }
  std::string_view payload;
  if (!in->ReadBytes(len, &payload)) {
    return Status::DataLoss("segment " + path + ": truncated " + what +
                            " block body");
  }
  if (Crc32c(payload.data(), payload.size()) != UnmaskCrc(masked)) {
    return Status::DataLoss("segment " + path + ": checksum mismatch in " +
                            what + " block");
  }
  return payload;
}

}  // namespace

Status WriteSegment(const std::string& path, const Table& table) {
  std::string file;
  file.append(kSegmentMagic, sizeof(kSegmentMagic));

  std::string payload;
  EncodeSchema(table.schema(), &payload);
  AppendBlock(&file, payload);

  for (size_t c = 0; c < table.num_columns(); ++c) {
    payload.clear();
    EncodeColumn(table.column(c), &payload);
    AppendBlock(&file, payload);
  }

  std::string footer;
  AppendU32(&footer, kSegmentFooterMagic);
  AppendU32(&footer, kSegmentVersion);
  AppendU64(&footer, table.num_rows());
  AppendU32(&footer, static_cast<uint32_t>(table.num_columns()));
  AppendU32(&footer, MaskCrc(Crc32c(footer.data(), footer.size())));
  file.append(footer);

  AppendFile f;
  PCTAGG_RETURN_IF_ERROR(f.Create(path));
  PCTAGG_RETURN_IF_ERROR(f.Append(file));
  PCTAGG_RETURN_IF_ERROR(f.Sync());
  PCTAGG_RETURN_IF_ERROR(f.Close());
  PCTAGG_RETURN_IF_ERROR(SyncDirOf(path));
  CrashPoint("segment");
  return Status::OK();
}

Result<Table> ReadSegment(const std::string& path) {
  PCTAGG_ASSIGN_OR_RETURN(std::string file, ReadFileToString(path));
  if (file.size() < sizeof(kSegmentMagic) + kFooterBytes ||
      std::memcmp(file.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return Status::DataLoss("segment " + path + ": bad magic or truncated");
  }

  // Footer first: it anchors the expected shape of everything before it.
  ByteReader footer(file.data() + file.size() - kFooterBytes, kFooterBytes);
  uint32_t magic = 0, version = 0, num_columns = 0, masked = 0;
  uint64_t num_rows = 0;
  footer.ReadU32(&magic);
  footer.ReadU32(&version);
  footer.ReadU64(&num_rows);
  footer.ReadU32(&num_columns);
  footer.ReadU32(&masked);
  const char* footer_start = file.data() + file.size() - kFooterBytes;
  if (magic != kSegmentFooterMagic ||
      Crc32c(footer_start, kFooterBytes - 4) != UnmaskCrc(masked)) {
    return Status::DataLoss("segment " + path + ": corrupt footer");
  }
  if (version != kSegmentVersion) {
    return Status::DataLoss("segment " + path + ": unsupported version " +
                            std::to_string(version));
  }

  ByteReader in(file.data() + sizeof(kSegmentMagic),
                file.size() - sizeof(kSegmentMagic) - kFooterBytes);

  PCTAGG_ASSIGN_OR_RETURN(std::string_view schema_bytes,
                          ReadBlock(&in, path, "schema"));
  ByteReader schema_in(schema_bytes);
  PCTAGG_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(&schema_in));
  if (schema.num_columns() != num_columns) {
    return Status::DataLoss("segment " + path +
                            ": schema column count disagrees with footer");
  }

  std::vector<Column> columns;
  columns.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    PCTAGG_ASSIGN_OR_RETURN(
        std::string_view col_bytes,
        ReadBlock(&in, path, "column " + std::to_string(c)));
    ByteReader col_in(col_bytes);
    PCTAGG_ASSIGN_OR_RETURN(Column column,
                            DecodeColumn(&col_in, schema.column(c).type));
    if (column.size() != num_rows) {
      return Status::DataLoss("segment " + path + ": column " +
                              std::to_string(c) + " row count disagrees");
    }
    columns.push_back(std::move(column));
  }
  if (in.remaining() != 0) {
    return Status::DataLoss("segment " + path + ": trailing bytes");
  }
  if (num_rows > 0 && num_columns == 0) {
    return Status::DataLoss("segment " + path + ": rows without columns");
  }
  return Table(std::move(schema), std::move(columns));
}

}  // namespace storage
}  // namespace pctagg
