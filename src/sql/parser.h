#ifndef PCTAGG_SQL_PARSER_H_
#define PCTAGG_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace pctagg {

// Parses one SELECT statement in the extended SQL dialect:
//
//   SELECT state, city, Vpct(salesAmt BY city)
//   FROM sales GROUP BY state, city;
//
//   SELECT store, Hpct(salesAmt BY dweek), sum(salesAmt)
//   FROM sales GROUP BY store;
//
//   SELECT transactionId, max(1 BY deptId DEFAULT 0)
//   FROM transactionLine GROUP BY transactionId;
//
//   SELECT D1, sum(A) OVER (PARTITION BY D1) FROM F;   -- OLAP baseline
//
// Scalar expressions support literals, column references, arithmetic,
// comparisons, AND/OR/NOT, IS [NOT] NULL and CASE WHEN.
Result<SelectStatement> ParseSelect(const std::string& sql);

// Parses one append statement:
//
//   INSERT INTO sales (state, city, salesAmt) VALUES
//     ('CA', 'la', 12.5), ('TX', NULL, 3);
//
// Literals are integers, floats (optionally negated), strings and NULL. An
// omitted column list means "all columns in schema order"; binding against
// the schema happens in the analyzer (BuildInsertDelta).
Result<InsertStatement> ParseInsert(const std::string& sql);

// Parses a bulk CSV append:
//
//   COPY sales FROM 'new_batch.csv' (APPEND);
Result<CopyStatement> ParseCopy(const std::string& sql);

// Parses a drop statement:
//
//   DROP TABLE [IF EXISTS] sales;
Result<DropStatement> ParseDrop(const std::string& sql);

// Statement-kind dispatch for the surfaces (shell, server, PctDatabase):
// recognizes an EXPLAIN [ANALYZE] prefix, classifies the wrapped statement
// (SELECT vs INSERT vs COPY vs DROP vs CHECKPOINT by its leading keyword)
// and hands back its text. A bare SELECT comes back unchanged with both
// flags false. CHECKPOINT takes no operands.
struct ParsedStatement {
  enum class Kind { kSelect, kInsert, kCopy, kDrop, kCheckpoint };
  bool explain = false;
  bool analyze = false;
  Kind kind = Kind::kSelect;
  std::string select_sql;  // the statement with any EXPLAIN prefix removed
};
Result<ParsedStatement> ParseStatementKind(const std::string& sql);

}  // namespace pctagg

#endif  // PCTAGG_SQL_PARSER_H_
