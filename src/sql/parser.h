#ifndef PCTAGG_SQL_PARSER_H_
#define PCTAGG_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace pctagg {

// Parses one SELECT statement in the extended SQL dialect:
//
//   SELECT state, city, Vpct(salesAmt BY city)
//   FROM sales GROUP BY state, city;
//
//   SELECT store, Hpct(salesAmt BY dweek), sum(salesAmt)
//   FROM sales GROUP BY store;
//
//   SELECT transactionId, max(1 BY deptId DEFAULT 0)
//   FROM transactionLine GROUP BY transactionId;
//
//   SELECT D1, sum(A) OVER (PARTITION BY D1) FROM F;   -- OLAP baseline
//
// Scalar expressions support literals, column references, arithmetic,
// comparisons, AND/OR/NOT, IS [NOT] NULL and CASE WHEN.
Result<SelectStatement> ParseSelect(const std::string& sql);

// Statement-kind dispatch for the surfaces (shell, server, PctDatabase):
// recognizes an EXPLAIN [ANALYZE] prefix and hands back the wrapped SELECT
// text. A bare SELECT comes back unchanged with both flags false.
struct ParsedStatement {
  bool explain = false;
  bool analyze = false;
  std::string select_sql;  // the statement with any EXPLAIN prefix removed
};
Result<ParsedStatement> ParseStatementKind(const std::string& sql);

}  // namespace pctagg

#endif  // PCTAGG_SQL_PARSER_H_
