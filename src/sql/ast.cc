#include "sql/ast.h"

#include "common/string_util.h"

namespace pctagg {

const char* TermFuncName(TermFunc func) {
  switch (func) {
    case TermFunc::kScalar:
      return "";
    case TermFunc::kSum:
      return "sum";
    case TermFunc::kCount:
    case TermFunc::kCountStar:
      return "count";
    case TermFunc::kAvg:
      return "avg";
    case TermFunc::kMin:
      return "min";
    case TermFunc::kMax:
      return "max";
    case TermFunc::kVpct:
      return "Vpct";
    case TermFunc::kHpct:
      return "Hpct";
    case TermFunc::kGrouping:
      return "GROUPING";
  }
  return "?";
}

std::string SelectTerm::ToString() const {
  std::string out;
  if (func == TermFunc::kScalar) {
    out = argument != nullptr ? argument->ToString() : "?";
  } else {
    out = TermFuncName(func);
    out += "(";
    if (distinct) out += "DISTINCT ";
    out += func == TermFunc::kCountStar ? "*" : argument->ToString();
    if (has_by) out += " BY " + Join(by_columns, ", ");
    if (has_default) out += StrFormat(" DEFAULT %g", default_value);
    out += ")";
    if (has_over) {
      out += " OVER (";
      if (!partition_by.empty()) out += "PARTITION BY " + Join(partition_by, ", ");
      out += ")";
    }
  }
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

std::string SelectStatement::ToString() const {
  std::vector<std::string> rendered;
  rendered.reserve(terms.size());
  for (const SelectTerm& t : terms) rendered.push_back(t.ToString());
  std::string out = "SELECT " + Join(rendered, ", ") + " FROM " + from_table;
  if (where != nullptr) out += " WHERE " + where->ToString();
  if (has_group_by) {
    switch (grouping_kind) {
      case GroupingSetsKind::kNone:
        out += " GROUP BY " + Join(group_by, ", ");
        break;
      case GroupingSetsKind::kCube:
        out += " GROUP BY CUBE(" + Join(grouping_columns, ", ") + ")";
        break;
      case GroupingSetsKind::kRollup:
        out += " GROUP BY ROLLUP(" + Join(grouping_columns, ", ") + ")";
        break;
      case GroupingSetsKind::kSets: {
        std::vector<std::string> sets;
        sets.reserve(grouping_sets.size());
        for (const std::vector<std::string>& s : grouping_sets) {
          sets.push_back("(" + Join(s, ", ") + ")");
        }
        out += " GROUP BY GROUPING SETS (" + Join(sets, ", ") + ")";
        break;
      }
    }
  }
  if (having != nullptr) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    std::vector<std::string> keys;
    keys.reserve(order_by.size());
    for (const OrderItem& o : order_by) {
      keys.push_back(o.column + (o.descending ? " DESC" : ""));
    }
    out += " ORDER BY " + Join(keys, ", ");
  }
  if (has_limit) out += " LIMIT " + std::to_string(limit);
  return out + ";";
}

std::string InsertStatement::ToString() const {
  std::string out = "INSERT INTO " + table;
  if (!columns.empty()) out += " (" + Join(columns, ", ") + ")";
  out += " VALUES ";
  std::vector<std::string> rendered;
  rendered.reserve(rows.size());
  for (const std::vector<Value>& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Value& v : row) cells.push_back(v.ToString());
    rendered.push_back("(" + Join(cells, ", ") + ")");
  }
  return out + Join(rendered, ", ") + ";";
}

std::string DropStatement::ToString() const {
  std::string out = "DROP TABLE ";
  if (if_exists) out += "IF EXISTS ";
  return out + table + ";";
}

std::string CopyStatement::ToString() const {
  std::string out = "COPY " + table + " FROM '" + path + "'";
  if (append) out += " (APPEND)";
  return out + ";";
}

}  // namespace pctagg
