#ifndef PCTAGG_SQL_AST_H_
#define PCTAGG_SQL_AST_H_

#include <string>
#include <vector>

#include "engine/expression.h"
#include "engine/value.h"

namespace pctagg {

// Which function heads a SELECT term. kScalar means a plain expression
// (typically a grouping column). Vpct/Hpct are the paper's new aggregates;
// the standard functions become horizontal aggregations (the DMKD extension)
// when a BY list is attached, and OLAP window aggregates when OVER is used.
enum class TermFunc {
  kScalar,
  kSum,
  kCount,
  kCountStar,
  kAvg,
  kMin,
  kMax,
  kVpct,
  kHpct,
  kGrouping,  // GROUPING(col): 0 when col participates in the row's level
};

const char* TermFuncName(TermFunc func);

// One item of the SELECT list as parsed.
struct SelectTerm {
  TermFunc func = TermFunc::kScalar;
  ExprPtr argument;                      // aggregate argument / scalar expr
  bool distinct = false;                 // count(DISTINCT ...)
  std::vector<std::string> by_columns;   // BY D_{j+1},..,D_k inside the call
  bool has_by = false;
  bool has_default = false;              // ... DEFAULT 0 (binary coding)
  double default_value = 0.0;
  bool has_over = false;                 // OVER (PARTITION BY ...)
  std::vector<std::string> partition_by;
  std::string alias;                     // AS name (may be empty)

  // SQL rendering of this term, used in error messages and plan output.
  std::string ToString() const;
};

// One ORDER BY entry.
struct OrderItem {
  std::string column;
  bool descending = false;

  bool operator==(const OrderItem& other) const = default;
};

// SELECT <terms> FROM <table> [WHERE <expr>] [GROUP BY <cols>]
// [HAVING <expr>] [ORDER BY <cols> [DESC]] [LIMIT <n>] — the query shape
// the paper's framework accepts.
struct SelectStatement {
  std::vector<SelectTerm> terms;
  std::string from_table;
  ExprPtr where;  // may be null
  bool has_group_by = false;
  // Entries are column names, or 1-based positions as written ("GROUP BY 1,2").
  std::vector<std::string> group_by;
  // GROUP BY CUBE(...) / ROLLUP(...) / GROUPING SETS ((...),...). When set,
  // `group_by` stays empty: `grouping_columns` holds the CUBE/ROLLUP column
  // list and `grouping_sets` the explicit GROUPING SETS lists (an empty inner
  // list is the grand-total level `()`).
  enum class GroupingSetsKind { kNone, kCube, kRollup, kSets };
  GroupingSetsKind grouping_kind = GroupingSetsKind::kNone;
  std::vector<std::string> grouping_columns;
  std::vector<std::vector<std::string>> grouping_sets;
  // Evaluated over the result columns (aliases included); may be null.
  ExprPtr having;
  std::vector<OrderItem> order_by;
  bool has_limit = false;
  size_t limit = 0;

  std::string ToString() const;
};

// INSERT INTO <table> [(<columns>)] VALUES (<literals>), ... — the append
// statement. An empty column list means schema order; named lists may omit
// columns, which are filled with NULL (the paper's missing-dimension rows).
struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;  // empty = full schema, in order
  std::vector<std::vector<Value>> rows;

  std::string ToString() const;
};

// DROP TABLE [IF EXISTS] <table> — removes the table from the catalog, its
// cached summaries, and (when a data directory is attached) its segment file
// and manifest entry.
struct DropStatement {
  std::string table;
  bool if_exists = false;

  std::string ToString() const;
};

// COPY <table> FROM '<path>' (APPEND) — bulk CSV append. The APPEND option
// is required today: it states the write is additive, which is what lets
// delta maintenance patch cached summaries instead of invalidating them.
struct CopyStatement {
  std::string table;
  std::string path;
  bool append = false;

  std::string ToString() const;
};

}  // namespace pctagg

#endif  // PCTAGG_SQL_AST_H_
