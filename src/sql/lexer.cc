#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace pctagg {

namespace {

bool IsKeywordWord(const std::string& upper) {
  static const char* kKeywords[] = {
      "SELECT", "FROM",  "WHERE",    "GROUP",     "BY",     "AS",
      "AND",    "OR",    "NOT",      "NULL",      "IS",     "CASE",
      "WHEN",   "THEN",  "ELSE",     "END",       "OVER",   "PARTITION",
      "ORDER",  "ASC",   "DESC",     "DISTINCT",  "DEFAULT", "HAVING",
      "LIMIT",  "EXPLAIN", "ANALYZE", "INSERT",   "INTO",   "VALUES",
      "COPY",   "APPEND",  "DROP",    "TABLE",    "IF",     "EXISTS",
      "CHECKPOINT", "CUBE", "ROLLUP",  "GROUPING", "SETS"};
  for (const char* kw : kKeywords) {
    if (upper == kw) return true;
  }
  return false;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (IsKeywordWord(upper)) {
        tokens.push_back({TokenType::kKeyword, upper, start});
      } else {
        tokens.push_back({TokenType::kIdentifier, word, start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      tokens.push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                        sql.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenType::kString, text, start});
      continue;
    }
    // Two-character operators first.
    if (i + 1 < n) {
      std::string two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        tokens.push_back(
            {TokenType::kSymbol, two == "!=" ? "<>" : two, start});
        i += 2;
        continue;
      }
    }
    static const std::string kSingle = "(),*+-/=<>.;";
    if (kSingle.find(c) != std::string::npos) {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::ParseError(StrFormat("unexpected character '%c' at offset %zu",
                                        c, start));
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace pctagg
