#include "sql/analyzer.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace pctagg {

namespace {

// Normalizes `name` to the schema's spelling; errors if absent.
Result<std::string> ResolveColumn(const Schema& schema,
                                  const std::string& name) {
  PCTAGG_ASSIGN_OR_RETURN(size_t idx, schema.FindColumn(name));
  return schema.column(idx).name;
}

Result<std::vector<std::string>> ResolveColumns(
    const Schema& schema, const std::vector<std::string>& names) {
  std::vector<std::string> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    PCTAGG_ASSIGN_OR_RETURN(std::string resolved, ResolveColumn(schema, n));
    out.push_back(std::move(resolved));
  }
  return out;
}

bool Contains(const std::vector<std::string>& haystack,
              const std::string& needle) {
  for (const std::string& h : haystack) {
    if (EqualsIgnoreCase(h, needle)) return true;
  }
  return false;
}

// Derives a column name from an expression, e.g. "vpct_salesAmt".
std::string SynthesizeName(const SelectTerm& term, size_t position) {
  if (!term.alias.empty()) return term.alias;
  if (term.func == TermFunc::kScalar) {
    return term.argument->ToString();
  }
  std::string base = ToLower(TermFuncName(term.func));
  if (term.func == TermFunc::kCountStar) return base + "_star_" + std::to_string(position);
  std::string arg = term.argument->ToString();
  // Keep simple column-name arguments readable; fall back to positions.
  bool simple = !arg.empty() && std::all_of(arg.begin(), arg.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  });
  return base + "_" + (simple ? arg : std::to_string(position));
}

}  // namespace

const char* QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kProjection:
      return "projection";
    case QueryClass::kVertical:
      return "vertical-aggregate";
    case QueryClass::kVpct:
      return "vertical-percentage";
    case QueryClass::kHorizontal:
      return "horizontal";
    case QueryClass::kWindow:
      return "olap-window";
  }
  return "?";
}

Result<AnalyzedQuery> Analyze(const SelectStatement& stmt,
                              const Schema& schema) {
  AnalyzedQuery out;
  out.table_name = stmt.from_table;
  out.schema = schema;
  out.where = stmt.where;
  out.has_group_by = stmt.has_group_by;
  out.having = stmt.having;
  out.order_by = stmt.order_by;
  out.has_limit = stmt.has_limit;
  out.limit = stmt.limit;

  if (stmt.terms.empty()) {
    return Status::AnalysisError("SELECT list is empty");
  }
  if (stmt.where != nullptr) {
    PCTAGG_RETURN_IF_ERROR(stmt.where->ResultType(schema).status());
  }

  // Resolve GROUP BY entries: names, or 1-based SELECT positions.
  for (const std::string& entry : stmt.group_by) {
    if (IsInteger(entry)) {
      size_t pos = static_cast<size_t>(std::stoll(entry));
      if (pos < 1 || pos > stmt.terms.size()) {
        return Status::AnalysisError("GROUP BY position " + entry +
                                     " out of range");
      }
      const SelectTerm& t = stmt.terms[pos - 1];
      if (t.func != TermFunc::kScalar) {
        return Status::AnalysisError(
            "GROUP BY position " + entry + " refers to an aggregate term");
      }
      std::string rendered = t.argument->ToString();
      PCTAGG_ASSIGN_OR_RETURN(std::string name,
                              ResolveColumn(schema, rendered));
      out.group_by.push_back(std::move(name));
    } else {
      PCTAGG_ASSIGN_OR_RETURN(std::string name, ResolveColumn(schema, entry));
      out.group_by.push_back(std::move(name));
    }
  }
  // Duplicate grouping columns are almost certainly a bug in the query.
  {
    std::set<std::string> seen;
    for (const std::string& g : out.group_by) {
      if (!seen.insert(ToLower(g)).second) {
        return Status::AnalysisError("duplicate GROUP BY column: " + g);
      }
    }
  }

  // Expand CUBE/ROLLUP/GROUPING SETS into explicit levels. The union of all
  // levels (first-appearance order) becomes the statement's GROUP BY, so the
  // per-term rules below (Vpct BY subset, Hpct disjointness, scalar
  // membership) apply unchanged against the union.
  if (stmt.grouping_kind != SelectStatement::GroupingSetsKind::kNone) {
    out.has_grouping_sets = true;
    std::vector<std::vector<std::string>> raw_sets;
    if (stmt.grouping_kind == SelectStatement::GroupingSetsKind::kSets) {
      for (const std::vector<std::string>& set : stmt.grouping_sets) {
        PCTAGG_ASSIGN_OR_RETURN(std::vector<std::string> cols,
                                ResolveColumns(schema, set));
        std::set<std::string> dup;
        for (const std::string& c : cols) {
          if (!dup.insert(ToLower(c)).second) {
            return Status::AnalysisError("duplicate column in grouping set: " +
                                         c);
          }
        }
        raw_sets.push_back(std::move(cols));
      }
    } else {
      PCTAGG_ASSIGN_OR_RETURN(std::vector<std::string> cols,
                              ResolveColumns(schema, stmt.grouping_columns));
      std::set<std::string> dup;
      for (const std::string& c : cols) {
        if (!dup.insert(ToLower(c)).second) {
          return Status::AnalysisError("duplicate CUBE/ROLLUP column: " + c);
        }
      }
      const size_t k = cols.size();
      if (stmt.grouping_kind == SelectStatement::GroupingSetsKind::kCube) {
        // 2^k levels; cap k so a typo cannot demand thousands of levels.
        constexpr size_t kMaxCubeColumns = 6;
        if (k > kMaxCubeColumns) {
          return Status::AnalysisError(
              StrFormat("CUBE supports at most %zu columns (%zu given)",
                        kMaxCubeColumns, k));
        }
        // Bit (k-1-i) = column i, so descending masks enumerate subsets in
        // the conventional order (a,b,c), (a,b), (a,c), (a), (b,c), ... ;
        // the size sort below then yields finest-to-coarsest.
        for (size_t mask = size_t{1} << k; mask-- > 0;) {
          std::vector<std::string> set;
          for (size_t i = 0; i < k; ++i) {
            if ((mask >> (k - 1 - i)) & 1) set.push_back(cols[i]);
          }
          raw_sets.push_back(std::move(set));
        }
        std::stable_sort(raw_sets.begin(), raw_sets.end(),
                         [](const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
                           return a.size() > b.size();
                         });
      } else {  // ROLLUP: every prefix, longest first, down to ().
        for (size_t len = k + 1; len-- > 0;) {
          raw_sets.emplace_back(cols.begin(), cols.begin() + len);
        }
      }
    }
    for (const std::vector<std::string>& set : raw_sets) {
      for (const std::string& c : set) {
        if (!Contains(out.group_by, c)) out.group_by.push_back(c);
      }
    }
    // Normalize each level to union order; duplicate levels collapse.
    std::set<std::string> seen_levels;
    for (const std::vector<std::string>& set : raw_sets) {
      std::vector<std::string> normalized;
      for (const std::string& g : out.group_by) {
        if (Contains(set, g)) normalized.push_back(g);
      }
      std::string key;
      for (const std::string& c : normalized) key += ToLower(c) + "\x1f";
      if (seen_levels.insert(key).second) {
        out.grouping_sets.push_back(std::move(normalized));
      }
    }
  }

  bool any_vpct = false;
  bool any_horizontal = false;
  bool any_window = false;
  bool any_vertical_agg = false;

  for (size_t i = 0; i < stmt.terms.size(); ++i) {
    const SelectTerm& t = stmt.terms[i];
    AnalyzedTerm a;
    a.func = t.func;
    a.argument = t.argument;
    a.distinct = t.distinct;
    a.has_by = t.has_by;
    a.has_default = t.has_default;
    a.default_value = t.default_value;
    a.has_over = t.has_over;
    a.output_name = SynthesizeName(t, i + 1);

    if (t.distinct && t.func != TermFunc::kCount) {
      return Status::AnalysisError("DISTINCT is only supported in count()");
    }
    if (t.has_default && !t.has_by) {
      return Status::AnalysisError(
          "DEFAULT requires a horizontal aggregation (BY clause)");
    }
    if (t.has_over && (t.has_by || t.has_default)) {
      return Status::AnalysisError(
          "OVER (...) cannot be combined with BY/DEFAULT in one term");
    }

    if (t.argument != nullptr) {
      PCTAGG_ASSIGN_OR_RETURN(DataType arg_type, t.argument->ResultType(schema));
      bool numeric_required =
          t.func == TermFunc::kSum || t.func == TermFunc::kAvg ||
          t.func == TermFunc::kVpct || t.func == TermFunc::kHpct;
      if (numeric_required && arg_type == DataType::kString) {
        return Status::AnalysisError(std::string(TermFuncName(t.func)) +
                                     "() requires a numeric argument");
      }
    }

    if (t.has_by) {
      PCTAGG_ASSIGN_OR_RETURN(a.by_columns, ResolveColumns(schema, t.by_columns));
      std::set<std::string> seen;
      for (const std::string& b : a.by_columns) {
        if (!seen.insert(ToLower(b)).second) {
          return Status::AnalysisError("duplicate BY column: " + b);
        }
      }
    }

    switch (t.func) {
      case TermFunc::kScalar: {
        // Plain projections accept arbitrary expressions; grouped queries
        // additionally require scalar terms to be grouping columns (checked
        // after all terms are classified).
        std::string rendered = t.argument->ToString();
        Result<std::string> col = ResolveColumn(schema, rendered);
        if (col.ok()) a.scalar_column = col.value();
        break;
      }
      case TermFunc::kVpct: {
        if (t.has_over) {
          return Status::AnalysisError("Vpct() does not accept OVER (...)");
        }
        // Rule (1): GROUP BY is required.
        if (!stmt.has_group_by) {
          return Status::AnalysisError(
              "Vpct() requires a GROUP BY clause (rule 1)");
        }
        // Rule (2): BY columns must come from the GROUP BY list.
        for (const std::string& b : a.by_columns) {
          if (!Contains(out.group_by, b)) {
            return Status::AnalysisError(
                "Vpct() BY column " + b +
                " must appear in the GROUP BY clause (rule 2)");
          }
        }
        // Totals grouping: GROUP BY minus BY, preserving GROUP BY order.
        // With no BY clause, "all rows in F are used to compute totals"
        // (grand total), so totals_by stays empty. (The paper is internally
        // inconsistent about the BY-absent and BY==GROUP-BY corners; see
        // DESIGN.md for the reading implemented here.)
        if (t.has_by) {
          for (const std::string& g : out.group_by) {
            if (!Contains(a.by_columns, g)) a.totals_by.push_back(g);
          }
        }
        any_vpct = true;
        break;
      }
      case TermFunc::kHpct: {
        if (t.has_over) {
          return Status::AnalysisError("Hpct() does not accept OVER (...)");
        }
        // Rule (2): BY required, non-empty, disjoint from GROUP BY.
        if (!t.has_by || a.by_columns.empty()) {
          return Status::AnalysisError(
              "Hpct() requires a non-empty BY clause (rule 2)");
        }
        for (const std::string& b : a.by_columns) {
          if (Contains(out.group_by, b)) {
            return Status::AnalysisError(
                "Hpct() BY column " + b +
                " must be disjoint from the GROUP BY clause (rule 2)");
          }
        }
        any_horizontal = true;
        break;
      }
      case TermFunc::kGrouping: {
        if (t.has_over || t.has_by || t.distinct || t.has_default) {
          return Status::AnalysisError(
              "GROUPING() takes a single column argument");
        }
        if (!out.has_grouping_sets) {
          return Status::AnalysisError(
              "GROUPING() requires GROUP BY CUBE/ROLLUP/GROUPING SETS");
        }
        std::string rendered = t.argument->ToString();
        PCTAGG_ASSIGN_OR_RETURN(std::string name,
                                ResolveColumn(schema, rendered));
        if (!Contains(out.group_by, name)) {
          return Status::AnalysisError(
              "GROUPING() argument " + name +
              " does not appear in any grouping set");
        }
        a.scalar_column = std::move(name);
        break;
      }
      default: {  // standard functions
        if (t.has_over) {
          if (stmt.has_group_by) {
            return Status::AnalysisError(
                "window aggregates cannot be combined with GROUP BY");
          }
          PCTAGG_ASSIGN_OR_RETURN(a.partition_by,
                                  ResolveColumns(schema, t.partition_by));
          any_window = true;
        } else if (t.has_by) {
          // Horizontal aggregation (DMKD rules 2 and 4).
          if (a.by_columns.empty()) {
            return Status::AnalysisError(
                "horizontal aggregation requires a non-empty BY list");
          }
          for (const std::string& b : a.by_columns) {
            if (Contains(out.group_by, b)) {
              return Status::AnalysisError(
                  "horizontal aggregation BY column " + b +
                  " must be disjoint from the GROUP BY clause");
            }
          }
          any_horizontal = true;
        } else {
          any_vertical_agg = true;
        }
        break;
      }
    }
    out.terms.push_back(std::move(a));
  }

  if (any_vpct && any_horizontal) {
    return Status::AnalysisError(
        "combining Vpct() with horizontal aggregations in one statement is "
        "not supported (listed as an open problem in the paper)");
  }
  if (any_window && (any_vpct || any_horizontal || any_vertical_agg)) {
    return Status::AnalysisError(
        "window aggregates cannot be mixed with group aggregates");
  }

  // Scalar terms must be grouping columns when grouping happens.
  bool aggregated = any_vpct || any_horizontal || any_vertical_agg;
  for (const AnalyzedTerm& a : out.terms) {
    if (a.func != TermFunc::kScalar) continue;
    if (stmt.has_group_by) {
      if (a.scalar_column.empty()) {
        return Status::AnalysisError(
            "scalar SELECT term must be a grouping column reference: " +
            a.argument->ToString());
      }
      if (!Contains(out.group_by, a.scalar_column)) {
        return Status::AnalysisError("column " + a.scalar_column +
                                     " must appear in the GROUP BY clause");
      }
    } else if (aggregated) {
      return Status::AnalysisError(
          "column " + a.argument->ToString() +
          " cannot be selected alongside aggregates without GROUP BY");
    }
  }

  if (any_vpct) {
    out.query_class = QueryClass::kVpct;
  } else if (any_horizontal) {
    out.query_class = QueryClass::kHorizontal;
  } else if (any_window) {
    out.query_class = QueryClass::kWindow;
  } else if (aggregated || stmt.has_group_by) {
    out.query_class = QueryClass::kVertical;
  } else {
    out.query_class = QueryClass::kProjection;
  }
  return out;
}

Result<Table> BuildInsertDelta(const InsertStatement& stmt,
                               const Schema& schema) {
  // Map each schema position to its literal index within a VALUES row, or
  // SIZE_MAX for columns the statement omits (filled with NULL below).
  std::vector<size_t> source_of(schema.num_columns(), SIZE_MAX);
  if (stmt.columns.empty()) {
    if (!stmt.rows.empty() && stmt.rows.front().size() != schema.num_columns()) {
      return Status::InvalidArgument(StrFormat(
          "INSERT INTO %s expects %zu values per row, got %zu", stmt.table.c_str(),
          schema.num_columns(), stmt.rows.front().size()));
    }
    for (size_t i = 0; i < schema.num_columns(); ++i) source_of[i] = i;
  } else {
    for (size_t j = 0; j < stmt.columns.size(); ++j) {
      PCTAGG_ASSIGN_OR_RETURN(size_t idx,
                              schema.FindColumn(stmt.columns[j]));
      if (source_of[idx] != SIZE_MAX) {
        return Status::InvalidArgument("INSERT names column " +
                                       stmt.columns[j] + " twice");
      }
      source_of[idx] = j;
    }
  }
  Table delta{schema};
  delta.Reserve(stmt.rows.size());
  std::vector<Value> bound(schema.num_columns());
  for (const std::vector<Value>& row : stmt.rows) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      bound[i] = source_of[i] == SIZE_MAX ? Value::Null() : row[source_of[i]];
    }
    // AppendRow type-checks each cell against the schema (and widens int
    // literals into FLOAT64 columns).
    PCTAGG_RETURN_IF_ERROR(delta.AppendRow(bound));
  }
  return delta;
}

Result<bool> AnalyzeDrop(const DropStatement& stmt, const Catalog& catalog) {
  if (stmt.table.empty()) {
    return Status::AnalysisError("DROP TABLE requires a table name");
  }
  if (!catalog.HasTable(stmt.table)) {
    if (stmt.if_exists) return false;
    return Status::NotFound("table not found: " + stmt.table);
  }
  return true;
}

}  // namespace pctagg
