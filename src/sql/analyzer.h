#ifndef PCTAGG_SQL_ANALYZER_H_
#define PCTAGG_SQL_ANALYZER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/catalog.h"
#include "engine/data_type.h"
#include "engine/table.h"
#include "sql/ast.h"

namespace pctagg {

// A SELECT term after binding and rule checking. Column lists are normalized
// to the schema's spelling; every term has a definite output name.
struct AnalyzedTerm {
  TermFunc func = TermFunc::kScalar;
  ExprPtr argument;  // null only for count(*)
  bool distinct = false;
  bool has_by = false;
  std::vector<std::string> by_columns;
  bool has_default = false;
  double default_value = 0.0;
  bool has_over = false;
  std::vector<std::string> partition_by;
  std::string output_name;
  // For kVpct: the totals grouping D1..Dj = GROUP BY minus BY, in GROUP BY
  // order (empty means totals over all rows).
  std::vector<std::string> totals_by;
  // For kScalar under GROUP BY and for kGrouping: the referenced grouping
  // column.
  std::string scalar_column;
};

// Query shape, used by the planner dispatch.
enum class QueryClass {
  kProjection,  // no aggregates, no GROUP BY
  kVertical,    // standard aggregates (with optional GROUP BY)
  kVpct,        // >=1 Vpct term (plus other vertical aggregates)
  kHorizontal,  // >=1 Hpct or Hagg (BY) term (plus vertical aggregates)
  kWindow,      // >=1 OVER (...) term
};

const char* QueryClassName(QueryClass c);

// The analyzed form of one SELECT statement against a known schema.
struct AnalyzedQuery {
  std::string table_name;
  Schema schema;           // schema of the FROM table
  ExprPtr where;           // may be null
  bool has_group_by = false;
  std::vector<std::string> group_by;  // normalized names
  // Grouping-set lattice (GROUP BY CUBE/ROLLUP/GROUPING SETS). When true,
  // `group_by` holds the union of all levels in first-appearance order and
  // `grouping_sets` the expanded levels, each normalized to union order and
  // deduplicated, in the order the statement's output emits them (CUBE and
  // ROLLUP expand finest-to-coarsest; explicit GROUPING SETS keep declared
  // order). All per-term rules (Vpct BY subset, Hpct disjointness, scalar
  // membership) are checked against the union.
  bool has_grouping_sets = false;
  std::vector<std::vector<std::string>> grouping_sets;
  std::vector<AnalyzedTerm> terms;
  // HAVING predicate over the result columns; may be null.
  ExprPtr having;
  // ORDER BY entries, validated against the result schema at sort time.
  std::vector<OrderItem> order_by;
  bool has_limit = false;
  size_t limit = 0;
  QueryClass query_class = QueryClass::kProjection;
};

// Binds `stmt` against `schema` and enforces the paper's usage rules:
//
// Vpct (Section 3.1): (1) GROUP BY is required. (2) BY is optional but its
// columns must come from the GROUP BY list (same columns everywhere => each
// row is 100%; absent BY => totals over all rows). (3)+(4) Vpct may be
// combined with other vertical aggregates on the same GROUP BY, and multiple
// Vpct terms may use different BY lists.
//
// Hpct (Section 3.2) and horizontal aggregations (DMKD paper, Section 3.1):
// (1) GROUP BY is optional. (2) BY is required, non-empty and disjoint from
// GROUP BY. (3) other vertical aggregates may appear, grouped by D1..Dj.
// (4) the argument is required. (5) multiple horizontal terms may use
// different BY lists, each disjoint from GROUP BY.
//
// Additional checks: scalar terms must be GROUP BY columns; DISTINCT is only
// accepted on count(); DEFAULT requires a BY clause; mixing Vpct and
// horizontal terms in one statement is rejected (the paper's stated open
// problem); window terms cannot carry BY/DEFAULT and preclude GROUP BY.
Result<AnalyzedQuery> Analyze(const SelectStatement& stmt, const Schema& schema);

// Binds an INSERT against the target table's schema and materializes the
// batch as a delta table with exactly that schema. Named column lists are
// resolved case-insensitively (no duplicates); columns the statement omits
// are filled with NULL — the paper's missing-rows rules treat an absent
// dimension value as a NULL group that percentage queries keep or pad
// explicitly, so partial inserts stay queryable. Integer literals widen to
// FLOAT64 columns; any other type mismatch is an error.
Result<Table> BuildInsertDelta(const InsertStatement& stmt,
                               const Schema& schema);

// Validates a DROP TABLE against the catalog. Returns true when the drop
// should proceed, false for the benign IF-EXISTS-and-absent case; a missing
// table without IF EXISTS is NotFound.
Result<bool> AnalyzeDrop(const DropStatement& stmt, const Catalog& catalog);

}  // namespace pctagg

#endif  // PCTAGG_SQL_ANALYZER_H_
