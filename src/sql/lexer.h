#ifndef PCTAGG_SQL_LEXER_H_
#define PCTAGG_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pctagg {

enum class TokenType {
  kIdentifier,
  kKeyword,     // normalized upper-case SQL keyword
  kInteger,
  kFloat,
  kString,      // 'quoted'
  kSymbol,      // ( ) , * + - / = < > <= >= <>
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;  // keywords upper-cased; identifiers as written
  size_t position;   // byte offset in the input, for error messages

  bool IsKeyword(const std::string& kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const std::string& s) const {
    return type == TokenType::kSymbol && text == s;
  }
};

// Tokenizes `sql`. Keywords are recognized case-insensitively from a fixed
// list (SELECT, FROM, WHERE, GROUP, BY, ...); everything else alphanumeric is
// an identifier. The token stream always ends with a kEnd token.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace pctagg

#endif  // PCTAGG_SQL_LEXER_H_
