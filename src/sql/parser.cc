#include "sql/parser.h"

#include <utility>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace pctagg {

namespace {

// Recursive-descent parser over the token stream. Grammar (informal):
//
//   select    := SELECT term (',' term)* FROM ident [WHERE expr]
//                [GROUP BY gb (',' gb)*] [ORDER BY ident (',' ident)*] [';']
//   term      := agg_call [AS ident] | expr [AS ident]
//   agg_call  := func '(' ['DISTINCT'] ('*' | expr) [BY ident_list]
//                [DEFAULT number] ')' [OVER '(' PARTITION BY ident_list ')']
//   expr      := or_expr
//   or_expr   := and_expr (OR and_expr)*
//   and_expr  := not_expr (AND not_expr)*
//   not_expr  := NOT not_expr | cmp_expr
//   cmp_expr  := add_expr [cmp_op add_expr] | add_expr IS [NOT] NULL
//   add_expr  := mul_expr (('+'|'-') mul_expr)*
//   mul_expr  := unary (('*'|'/') unary)*
//   unary     := '-' unary | primary
//   primary   := literal | ident | '(' expr ')' | CASE ... END
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> Parse() {
    SelectStatement stmt;
    PCTAGG_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    while (true) {
      PCTAGG_ASSIGN_OR_RETURN(SelectTerm term, ParseTerm());
      stmt.terms.push_back(std::move(term));
      if (!ConsumeSymbol(",")) break;
    }
    PCTAGG_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    PCTAGG_ASSIGN_OR_RETURN(stmt.from_table, ExpectIdentifier());
    if (ConsumeKeyword("WHERE")) {
      PCTAGG_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (ConsumeKeyword("GROUP")) {
      PCTAGG_RETURN_IF_ERROR(ExpectKeyword("BY"));
      stmt.has_group_by = true;
      if (Peek().IsKeyword("CUBE") || Peek().IsKeyword("ROLLUP")) {
        stmt.grouping_kind = Peek().IsKeyword("CUBE")
                                 ? SelectStatement::GroupingSetsKind::kCube
                                 : SelectStatement::GroupingSetsKind::kRollup;
        Advance();
        PCTAGG_RETURN_IF_ERROR(ExpectSymbol("("));
        while (true) {
          PCTAGG_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
          stmt.grouping_columns.push_back(std::move(name));
          if (!ConsumeSymbol(",")) break;
        }
        PCTAGG_RETURN_IF_ERROR(ExpectSymbol(")"));
        if (ConsumeSymbol(",")) {
          return Status::ParseError(
              "CUBE/ROLLUP cannot be mixed with other GROUP BY entries");
        }
      } else if (Peek().IsKeyword("GROUPING")) {
        Advance();
        PCTAGG_RETURN_IF_ERROR(ExpectKeyword("SETS"));
        stmt.grouping_kind = SelectStatement::GroupingSetsKind::kSets;
        PCTAGG_RETURN_IF_ERROR(ExpectSymbol("("));
        while (true) {
          PCTAGG_RETURN_IF_ERROR(ExpectSymbol("("));
          std::vector<std::string> set;
          if (!Peek().IsSymbol(")")) {
            while (true) {
              PCTAGG_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
              set.push_back(std::move(name));
              if (!ConsumeSymbol(",")) break;
            }
          }
          PCTAGG_RETURN_IF_ERROR(ExpectSymbol(")"));
          stmt.grouping_sets.push_back(std::move(set));
          if (!ConsumeSymbol(",")) break;
        }
        PCTAGG_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else {
        while (true) {
          const Token& t = Peek();
          if (t.type == TokenType::kIdentifier) {
            stmt.group_by.push_back(t.text);
            Advance();
          } else if (t.type == TokenType::kInteger) {
            stmt.group_by.push_back(t.text);  // positional reference
            Advance();
          } else if (t.IsKeyword("CUBE") || t.IsKeyword("ROLLUP") ||
                     t.IsKeyword("GROUPING")) {
            return Status::ParseError(
                "CUBE/ROLLUP/GROUPING SETS cannot be mixed with other GROUP "
                "BY entries");
          } else {
            return Status::ParseError("expected column name in GROUP BY");
          }
          if (!ConsumeSymbol(",")) break;
        }
      }
    }
    if (ConsumeKeyword("HAVING")) {
      if (!stmt.has_group_by) {
        return Status::ParseError("HAVING requires a GROUP BY clause");
      }
      PCTAGG_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (ConsumeKeyword("ORDER")) {
      PCTAGG_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        PCTAGG_ASSIGN_OR_RETURN(item.column, ExpectIdentifier());
        if (ConsumeKeyword("DESC")) {
          item.descending = true;
        } else {
          ConsumeKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(item));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      const Token& t = Peek();
      if (t.type != TokenType::kInteger) {
        return Status::ParseError("LIMIT requires an integer literal");
      }
      stmt.has_limit = true;
      stmt.limit = static_cast<size_t>(std::stoll(t.text));
      Advance();
    }
    ConsumeSymbol(";");
    if (!Peek().IsSymbol("") && Peek().type != TokenType::kEnd) {
      return Status::ParseError("unexpected trailing input near '" +
                                Peek().text + "'");
    }
    return stmt;
  }

  Result<InsertStatement> ParseInsertStatement() {
    InsertStatement stmt;
    PCTAGG_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    PCTAGG_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    PCTAGG_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    if (ConsumeSymbol("(")) {
      while (true) {
        PCTAGG_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
        stmt.columns.push_back(std::move(name));
        if (!ConsumeSymbol(",")) break;
      }
      PCTAGG_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    PCTAGG_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      PCTAGG_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<Value> row;
      while (true) {
        PCTAGG_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        row.push_back(std::move(v));
        if (!ConsumeSymbol(",")) break;
      }
      PCTAGG_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (!stmt.columns.empty() && row.size() != stmt.columns.size()) {
        return Status::ParseError(StrFormat(
            "VALUES row has %zu literals but %zu columns were named",
            row.size(), stmt.columns.size()));
      }
      if (!stmt.rows.empty() && row.size() != stmt.rows.front().size()) {
        return Status::ParseError("VALUES rows differ in arity");
      }
      stmt.rows.push_back(std::move(row));
      if (!ConsumeSymbol(",")) break;
    }
    ConsumeSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("unexpected trailing input near '" +
                                Peek().text + "'");
    }
    return stmt;
  }

  Result<DropStatement> ParseDropStatement() {
    DropStatement stmt;
    PCTAGG_RETURN_IF_ERROR(ExpectKeyword("DROP"));
    PCTAGG_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    if (ConsumeKeyword("IF")) {
      PCTAGG_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      stmt.if_exists = true;
    }
    PCTAGG_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    ConsumeSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("unexpected trailing input near '" +
                                Peek().text + "'");
    }
    return stmt;
  }

  Result<CopyStatement> ParseCopyStatement() {
    CopyStatement stmt;
    PCTAGG_RETURN_IF_ERROR(ExpectKeyword("COPY"));
    PCTAGG_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    PCTAGG_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    if (Peek().type != TokenType::kString) {
      return Status::ParseError("COPY requires a quoted file path");
    }
    stmt.path = Peek().text;
    Advance();
    if (ConsumeSymbol("(")) {
      PCTAGG_RETURN_IF_ERROR(ExpectKeyword("APPEND"));
      stmt.append = true;
      PCTAGG_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    if (!stmt.append) {
      return Status::ParseError(
          "COPY requires the (APPEND) option: only additive loads are "
          "supported");
    }
    ConsumeSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("unexpected trailing input near '" +
                                Peek().text + "'");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool ConsumeKeyword(const std::string& kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeSymbol(const std::string& s) {
    if (Peek().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!ConsumeKeyword(kw)) {
      return Status::ParseError("expected " + kw + " near '" + Peek().text +
                                "'");
    }
    return Status::OK();
  }
  Status ExpectSymbol(const std::string& s) {
    if (!ConsumeSymbol(s)) {
      return Status::ParseError("expected '" + s + "' near '" + Peek().text +
                                "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError("expected identifier near '" + Peek().text +
                                "'");
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  // One VALUES literal: [-] integer | [-] float | 'string' | NULL.
  Result<Value> ParseLiteral() {
    if (ConsumeKeyword("NULL")) return Value::Null();
    bool negate = ConsumeSymbol("-");
    const Token& t = Peek();
    if (t.type == TokenType::kInteger) {
      int64_t v = std::stoll(t.text);
      Advance();
      return Value::Int64(negate ? -v : v);
    }
    if (t.type == TokenType::kFloat) {
      double v = std::stod(t.text);
      Advance();
      return Value::Float64(negate ? -v : v);
    }
    if (!negate && t.type == TokenType::kString) {
      std::string v = t.text;
      Advance();
      return Value::String(std::move(v));
    }
    return Status::ParseError("expected literal near '" + t.text + "'");
  }

  // Returns the aggregate kind for a function-call identifier, or kScalar.
  static TermFunc FuncFromName(const std::string& name) {
    std::string lower = ToLower(name);
    if (lower == "sum") return TermFunc::kSum;
    if (lower == "count") return TermFunc::kCount;
    if (lower == "avg" || lower == "average") return TermFunc::kAvg;
    if (lower == "min") return TermFunc::kMin;
    if (lower == "max") return TermFunc::kMax;
    if (lower == "vpct") return TermFunc::kVpct;
    if (lower == "hpct") return TermFunc::kHpct;
    return TermFunc::kScalar;
  }

  Result<SelectTerm> ParseTerm() {
    SelectTerm term;
    // GROUPING(col): GROUPING is a keyword (for GROUPING SETS), so it never
    // reaches the identifier-call branch below.
    if (Peek().IsKeyword("GROUPING") && Peek(1).IsSymbol("(")) {
      term.func = TermFunc::kGrouping;
      Advance();  // GROUPING
      Advance();  // (
      PCTAGG_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      term.argument = Col(std::move(name));
      PCTAGG_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (ConsumeKeyword("AS")) {
        PCTAGG_ASSIGN_OR_RETURN(term.alias, ExpectIdentifier());
      }
      return term;
    }
    // Aggregate call: IDENT '(' with a recognized function name.
    if (Peek().type == TokenType::kIdentifier && Peek(1).IsSymbol("(") &&
        FuncFromName(Peek().text) != TermFunc::kScalar) {
      term.func = FuncFromName(Peek().text);
      Advance();  // name
      Advance();  // (
      if (ConsumeKeyword("DISTINCT")) term.distinct = true;
      if (Peek().IsSymbol("*")) {
        if (term.func != TermFunc::kCount) {
          return Status::ParseError("'*' argument is only valid in count(*)");
        }
        term.func = TermFunc::kCountStar;
        Advance();
      } else {
        PCTAGG_ASSIGN_OR_RETURN(term.argument, ParseExpr());
      }
      if (ConsumeKeyword("BY")) {
        term.has_by = true;
        while (true) {
          PCTAGG_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
          term.by_columns.push_back(std::move(name));
          if (!ConsumeSymbol(",")) break;
        }
      }
      if (ConsumeKeyword("DEFAULT")) {
        term.has_default = true;
        const Token& t = Peek();
        if (t.type != TokenType::kInteger && t.type != TokenType::kFloat) {
          return Status::ParseError("DEFAULT requires a numeric literal");
        }
        term.default_value = std::stod(t.text);
        Advance();
      }
      PCTAGG_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (ConsumeKeyword("OVER")) {
        term.has_over = true;
        PCTAGG_RETURN_IF_ERROR(ExpectSymbol("("));
        if (ConsumeKeyword("PARTITION")) {
          PCTAGG_RETURN_IF_ERROR(ExpectKeyword("BY"));
          while (true) {
            PCTAGG_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
            term.partition_by.push_back(std::move(name));
            if (!ConsumeSymbol(",")) break;
          }
        }
        PCTAGG_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
    } else {
      PCTAGG_ASSIGN_OR_RETURN(term.argument, ParseExpr());
    }
    if (ConsumeKeyword("AS")) {
      PCTAGG_ASSIGN_OR_RETURN(term.alias, ExpectIdentifier());
    }
    return term;
  }

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    PCTAGG_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (ConsumeKeyword("OR")) {
      PCTAGG_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    PCTAGG_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (ConsumeKeyword("AND")) {
      PCTAGG_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      PCTAGG_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return Not(std::move(e));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    PCTAGG_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    const Token& t = Peek();
    if (t.IsKeyword("IS")) {
      Advance();
      bool negated = ConsumeKeyword("NOT");
      PCTAGG_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      ExprPtr e = IsNull(std::move(left));
      return negated ? Not(std::move(e)) : e;
    }
    if (t.type == TokenType::kSymbol &&
        (t.text == "=" || t.text == "<>" || t.text == "<" || t.text == "<=" ||
         t.text == ">" || t.text == ">=")) {
      std::string op = t.text;
      Advance();
      PCTAGG_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      if (op == "=") return Eq(std::move(left), std::move(right));
      if (op == "<>") return Ne(std::move(left), std::move(right));
      if (op == "<") return Lt(std::move(left), std::move(right));
      if (op == "<=") return Le(std::move(left), std::move(right));
      if (op == ">") return Gt(std::move(left), std::move(right));
      return Ge(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    PCTAGG_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      if (ConsumeSymbol("+")) {
        PCTAGG_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = Add(std::move(left), std::move(right));
      } else if (ConsumeSymbol("-")) {
        PCTAGG_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = Sub(std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    PCTAGG_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (true) {
      if (ConsumeSymbol("*")) {
        PCTAGG_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
        left = Mul(std::move(left), std::move(right));
      } else if (ConsumeSymbol("/")) {
        PCTAGG_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
        left = Div(std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (ConsumeSymbol("-")) {
      PCTAGG_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return Sub(Lit(Value::Int64(0)), std::move(e));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger: {
        int64_t v = std::stoll(t.text);
        Advance();
        return Lit(Value::Int64(v));
      }
      case TokenType::kFloat: {
        double v = std::stod(t.text);
        Advance();
        return Lit(Value::Float64(v));
      }
      case TokenType::kString: {
        std::string s = t.text;
        Advance();
        return Lit(Value::String(std::move(s)));
      }
      case TokenType::kIdentifier: {
        std::string name = t.text;
        Advance();
        if (Peek().IsSymbol("(")) {
          std::string lower = ToLower(name);
          if (lower == "coalesce" || lower == "abs" || lower == "round") {
            return ParseScalarFunction(lower);
          }
          return Status::ParseError(
              "aggregate call '" + name +
              "' is only allowed as a top-level SELECT term");
        }
        return Col(std::move(name));
      }
      case TokenType::kKeyword:
        if (t.IsKeyword("NULL")) {
          Advance();
          return NullLit(DataType::kFloat64);
        }
        if (t.IsKeyword("CASE")) return ParseCase();
        return Status::ParseError("unexpected keyword '" + t.text + "'");
      case TokenType::kSymbol:
        if (t.IsSymbol("(")) {
          Advance();
          PCTAGG_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          PCTAGG_RETURN_IF_ERROR(ExpectSymbol(")"));
          return e;
        }
        return Status::ParseError("unexpected symbol '" + t.text + "'");
      case TokenType::kEnd:
        return Status::ParseError("unexpected end of input");
    }
    return Status::ParseError("unexpected token");
  }

  // COALESCE(a, b, ...), ABS(x), ROUND(x [, digits]); the name has already
  // been consumed and '(' is the current token.
  Result<ExprPtr> ParseScalarFunction(const std::string& lower_name) {
    PCTAGG_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<ExprPtr> args;
    if (!Peek().IsSymbol(")")) {
      while (true) {
        PCTAGG_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        args.push_back(std::move(arg));
        if (!ConsumeSymbol(",")) break;
      }
    }
    PCTAGG_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (lower_name == "coalesce") {
      if (args.empty()) {
        return Status::ParseError("COALESCE requires at least one argument");
      }
      return Coalesce(std::move(args));
    }
    if (lower_name == "abs") {
      if (args.size() != 1) {
        return Status::ParseError("ABS takes exactly one argument");
      }
      return Abs(std::move(args[0]));
    }
    // round
    if (args.empty() || args.size() > 2) {
      return Status::ParseError("ROUND takes one or two arguments");
    }
    int digits = 0;
    if (args.size() == 2) {
      // The digit count must be an integer literal; detect via rendering.
      std::string rendered = args[1]->ToString();
      if (!IsInteger(rendered)) {
        return Status::ParseError("ROUND digits must be an integer literal");
      }
      digits = static_cast<int>(std::stol(rendered));
    }
    return Round(std::move(args[0]), digits);
  }

  Result<ExprPtr> ParseCase() {
    PCTAGG_RETURN_IF_ERROR(ExpectKeyword("CASE"));
    std::vector<std::pair<ExprPtr, ExprPtr>> branches;
    while (ConsumeKeyword("WHEN")) {
      PCTAGG_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      PCTAGG_RETURN_IF_ERROR(ExpectKeyword("THEN"));
      PCTAGG_ASSIGN_OR_RETURN(ExprPtr result, ParseExpr());
      branches.emplace_back(std::move(cond), std::move(result));
    }
    if (branches.empty()) {
      return Status::ParseError("CASE requires at least one WHEN branch");
    }
    ExprPtr else_expr;
    if (ConsumeKeyword("ELSE")) {
      PCTAGG_ASSIGN_OR_RETURN(else_expr, ParseExpr());
    }
    PCTAGG_RETURN_IF_ERROR(ExpectKeyword("END"));
    return CaseWhen(std::move(branches), std::move(else_expr));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSelect(const std::string& sql) {
  PCTAGG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

Result<InsertStatement> ParseInsert(const std::string& sql) {
  PCTAGG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseInsertStatement();
}

Result<CopyStatement> ParseCopy(const std::string& sql) {
  PCTAGG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseCopyStatement();
}

Result<DropStatement> ParseDrop(const std::string& sql) {
  PCTAGG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseDropStatement();
}

Result<ParsedStatement> ParseStatementKind(const std::string& sql) {
  ParsedStatement out;
  PCTAGG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  size_t i = 0;
  if (i < tokens.size() && tokens[i].IsKeyword("EXPLAIN")) {
    out.explain = true;
    ++i;
    if (i < tokens.size() && tokens[i].IsKeyword("ANALYZE")) {
      out.analyze = true;
      ++i;
    }
    if (i >= tokens.size() || tokens[i].type == TokenType::kEnd) {
      return Status::ParseError("EXPLAIN requires a statement to explain");
    }
    out.select_sql = sql.substr(tokens[i].position);
  } else {
    out.select_sql = sql;
  }
  if (i < tokens.size()) {
    if (tokens[i].IsKeyword("INSERT")) {
      out.kind = ParsedStatement::Kind::kInsert;
    } else if (tokens[i].IsKeyword("COPY")) {
      out.kind = ParsedStatement::Kind::kCopy;
    } else if (tokens[i].IsKeyword("DROP")) {
      out.kind = ParsedStatement::Kind::kDrop;
    } else if (tokens[i].IsKeyword("CHECKPOINT")) {
      out.kind = ParsedStatement::Kind::kCheckpoint;
    }
  }
  return out;
}

}  // namespace pctagg
