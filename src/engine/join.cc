#include "engine/join.h"

#include <unordered_map>

#include "common/string_util.h"

namespace pctagg {

namespace {

// True if any key column is NULL at `row` (such rows never join).
bool HasNullKey(const Table& t, const std::vector<size_t>& keys, size_t row) {
  for (size_t k : keys) {
    if (t.column(k).IsNull(row)) return true;
  }
  return false;
}

}  // namespace

// True when `index` is keyed on exactly `key_names` in order — only then can
// a join or update probe it instead of building its own hash table. This is
// how the "mismatched index" strategy degrades gracefully instead of
// producing wrong results.
bool IndexMatchesKeys(const HashIndex& index,
                      const std::vector<std::string>& key_names) {
  if (index.columns().size() != key_names.size()) return false;
  for (size_t i = 0; i < key_names.size(); ++i) {
    if (!EqualsIgnoreCase(index.columns()[i], key_names[i])) return false;
  }
  return true;
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<std::string>& left_keys,
                       const std::vector<std::string>& right_keys,
                       JoinKind kind, const std::vector<JoinOutput>& outputs,
                       const HashIndex* right_index, bool null_safe) {
  if (left_keys.empty() || left_keys.size() != right_keys.size()) {
    return Status::InvalidArgument("join key lists must match and be nonempty");
  }
  std::vector<size_t> lkeys;
  std::vector<size_t> rkeys;
  for (const std::string& name : left_keys) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, left.schema().FindColumn(name));
    lkeys.push_back(idx);
  }
  for (const std::string& name : right_keys) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, right.schema().FindColumn(name));
    rkeys.push_back(idx);
  }

  // Resolve outputs.
  struct ResolvedOutput {
    bool from_left;
    size_t column;
  };
  Schema out_schema;
  std::vector<ResolvedOutput> out_cols;
  out_cols.reserve(outputs.size());
  for (const JoinOutput& o : outputs) {
    const Table& src = o.side == JoinOutput::Side::kLeft ? left : right;
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, src.schema().FindColumn(o.column));
    out_cols.push_back({o.side == JoinOutput::Side::kLeft, idx});
    out_schema.AddColumn(
        {o.output_name.empty() ? src.schema().column(idx).name : o.output_name,
         src.schema().column(idx).type});
  }
  Table out(out_schema);

  // Build side: a fresh hash table unless the caller supplies a matching
  // index (the paper's matching-subkey-index optimization skips this pass).
  std::unordered_map<std::string, std::vector<size_t>> built;
  const bool use_index =
      right_index != nullptr && IndexMatchesKeys(*right_index, right_keys);
  if (!use_index) {
    built.reserve(right.num_rows());
    std::string key;
    for (size_t row = 0; row < right.num_rows(); ++row) {
      if (!null_safe && HasNullKey(right, rkeys, row)) continue;
      key.clear();
      right.AppendKeyBytes(row, rkeys, &key);
      built[key].push_back(row);
    }
  }

  // Probe side.
  std::string key;
  auto emit = [&](size_t lrow, const size_t* rrow) {
    for (size_t c = 0; c < out_cols.size(); ++c) {
      const ResolvedOutput& oc = out_cols[c];
      if (oc.from_left) {
        out.mutable_column(c).AppendFrom(left.column(oc.column), lrow);
      } else if (rrow != nullptr) {
        out.mutable_column(c).AppendFrom(right.column(oc.column), *rrow);
      } else {
        out.mutable_column(c).AppendNull();
      }
    }
  };

  for (size_t lrow = 0; lrow < left.num_rows(); ++lrow) {
    const std::vector<size_t>* matches = nullptr;
    if (null_safe || !HasNullKey(left, lkeys, lrow)) {
      key.clear();
      left.AppendKeyBytes(lrow, lkeys, &key);
      if (use_index) {
        matches = right_index->Lookup(key);
      } else {
        auto it = built.find(key);
        if (it != built.end()) matches = &it->second;
      }
    }
    if (matches == nullptr || matches->empty()) {
      if (kind == JoinKind::kLeftOuter) emit(lrow, nullptr);
      continue;
    }
    for (size_t rrow : *matches) {
      emit(lrow, &rrow);
    }
  }
  return out;
}

}  // namespace pctagg

namespace pctagg {

Result<Column> LookupColumn(const Table& left, const Table& right,
                            const std::vector<std::string>& left_keys,
                            const std::vector<std::string>& right_keys,
                            const std::string& value,
                            const HashIndex* right_index) {
  if (left_keys.empty() || left_keys.size() != right_keys.size()) {
    return Status::InvalidArgument("lookup key lists must match and be nonempty");
  }
  std::vector<size_t> lkeys;
  std::vector<size_t> rkeys;
  for (const std::string& name : left_keys) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, left.schema().FindColumn(name));
    lkeys.push_back(idx);
  }
  for (const std::string& name : right_keys) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, right.schema().FindColumn(name));
    rkeys.push_back(idx);
  }
  PCTAGG_ASSIGN_OR_RETURN(size_t vcol, right.schema().FindColumn(value));

  const bool use_index =
      right_index != nullptr && IndexMatchesKeys(*right_index, right_keys);
  std::unordered_map<std::string, size_t> built;
  if (!use_index) {
    built.reserve(right.num_rows());
    std::string key;
    for (size_t row = 0; row < right.num_rows(); ++row) {
      key.clear();
      right.AppendKeyBytes(row, rkeys, &key);
      built.emplace(key, row);  // unique keys: keep the first
    }
  }

  const Column& values = right.column(vcol);
  Column out(values.type());
  out.Reserve(left.num_rows());
  std::string key;
  for (size_t row = 0; row < left.num_rows(); ++row) {
    key.clear();
    left.AppendKeyBytes(row, lkeys, &key);
    const size_t* match = nullptr;
    size_t storage = 0;
    if (use_index) {
      const std::vector<size_t>* rows = right_index->Lookup(key);
      if (rows != nullptr && !rows->empty()) {
        storage = (*rows)[0];
        match = &storage;
      }
    } else {
      auto it = built.find(key);
      if (it != built.end()) {
        storage = it->second;
        match = &storage;
      }
    }
    if (match == nullptr) {
      out.AppendNull();
    } else {
      out.AppendFrom(values, *match);
    }
  }
  return out;
}

}  // namespace pctagg
