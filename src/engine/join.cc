#include "engine/join.h"

#include <unordered_map>

#include "common/string_util.h"
#include "engine/packed_key.h"
#include "engine/parallel.h"
#include "obs/trace.h"

namespace pctagg {

namespace {

// True if any key column is NULL at `row` (such rows never join).
bool HasNullKey(const Table& t, const std::vector<size_t>& keys, size_t row) {
  for (size_t k : keys) {
    if (t.column(k).IsNull(row)) return true;
  }
  return false;
}

}  // namespace

// True when `index` is keyed on exactly `key_names` in order — only then can
// a join or update probe it instead of building its own hash table. This is
// how the "mismatched index" strategy degrades gracefully instead of
// producing wrong results.
bool IndexMatchesKeys(const HashIndex& index,
                      const std::vector<std::string>& key_names) {
  if (index.columns().size() != key_names.size()) return false;
  for (size_t i = 0; i < key_names.size(); ++i) {
    if (!EqualsIgnoreCase(index.columns()[i], key_names[i])) return false;
  }
  return true;
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<std::string>& left_keys,
                       const std::vector<std::string>& right_keys,
                       JoinKind kind, const std::vector<JoinOutput>& outputs,
                       const HashIndex* right_index, bool null_safe) {
  obs::OpScope op(kind == JoinKind::kLeftOuter ? "join-left-outer"
                                               : "join-inner");
  if (left_keys.empty() || left_keys.size() != right_keys.size()) {
    return Status::InvalidArgument("join key lists must match and be nonempty");
  }
  std::vector<size_t> lkeys;
  std::vector<size_t> rkeys;
  for (const std::string& name : left_keys) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, left.schema().FindColumn(name));
    lkeys.push_back(idx);
  }
  for (const std::string& name : right_keys) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, right.schema().FindColumn(name));
    rkeys.push_back(idx);
  }

  // Resolve outputs.
  struct ResolvedOutput {
    bool from_left;
    size_t column;
  };
  Schema out_schema;
  std::vector<ResolvedOutput> out_cols;
  out_cols.reserve(outputs.size());
  for (const JoinOutput& o : outputs) {
    const Table& src = o.side == JoinOutput::Side::kLeft ? left : right;
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, src.schema().FindColumn(o.column));
    out_cols.push_back({o.side == JoinOutput::Side::kLeft, idx});
    out_schema.AddColumn(
        {o.output_name.empty() ? src.schema().column(idx).name : o.output_name,
         src.schema().column(idx).type});
  }
  Table out(out_schema);

  // Build side: serial, into a fresh hash table — unless the caller supplies
  // a matching index (the paper's matching-subkey-index optimization skips
  // this pass). Packed keys match HashIndex's encoding, so either probe path
  // sees identical bytes.
  std::unordered_map<std::string, std::vector<size_t>> built;
  const bool use_index =
      right_index != nullptr && IndexMatchesKeys(*right_index, right_keys);
  if (!use_index) {
    built.reserve(right.num_rows());
    const KeyEncoder renc(right, rkeys);
    std::string key;
    for (size_t row = 0; row < right.num_rows(); ++row) {
      if (!null_safe && HasNullKey(right, rkeys, row)) continue;
      key.clear();
      renc.AppendKey(row, &key);
      built[key].push_back(row);
    }
  }

  // Probe side: morsel-parallel. Each morsel collects its (left row, right
  // row) match pairs — kNoMatch marking an outer-join NULL row — and the
  // matches are emitted serially in morsel order afterwards, so the output
  // row order is exactly the serial plan's.
  constexpr size_t kNoMatch = SIZE_MAX;
  // Translating encoder: string key columns rewrite the left table's
  // dictionary codes into the right table's code space so the packed probe
  // bytes match the build/index side's.
  const KeyEncoder lenc(left, lkeys, right, rkeys);
  MorselPlan plan = MorselPlan::For(left.num_rows(), CurrentDop());
  std::vector<std::vector<std::pair<size_t, size_t>>> morsel_matches(
      plan.num_morsels);
  RunMorsels(plan, [&](size_t /*worker*/, size_t begin, size_t end) {
    std::vector<std::pair<size_t, size_t>>& found =
        morsel_matches[begin / plan.morsel_rows];
    std::string key;
    for (size_t lrow = begin; lrow < end; ++lrow) {
      const std::vector<size_t>* matches = nullptr;
      if (null_safe || !HasNullKey(left, lkeys, lrow)) {
        key.clear();
        lenc.AppendKey(lrow, &key);
        if (use_index) {
          matches = right_index->Lookup(key);
        } else {
          auto it = built.find(key);
          if (it != built.end()) matches = &it->second;
        }
      }
      if (matches == nullptr || matches->empty()) {
        if (kind == JoinKind::kLeftOuter) found.emplace_back(lrow, kNoMatch);
        continue;
      }
      for (size_t rrow : *matches) {
        found.emplace_back(lrow, rrow);
      }
    }
  });

  size_t total = 0;
  for (const auto& mm : morsel_matches) total += mm.size();
  if (op.active()) {
    op.SetRows(left.num_rows() + right.num_rows(), total);
    op.SetMorsels(plan.num_morsels, plan.num_workers);
    op.SetHashTable(use_index ? 0 : built.size(),
                    use_index ? 0 : built.bucket_count());
    op.SetDetail(use_index ? "probe=index" : "probe=built");
  }
  out.Reserve(total);
  for (const auto& mm : morsel_matches) {
    for (const auto& [lrow, rrow] : mm) {
      for (size_t c = 0; c < out_cols.size(); ++c) {
        const ResolvedOutput& oc = out_cols[c];
        if (oc.from_left) {
          out.mutable_column(c).AppendFrom(left.column(oc.column), lrow);
        } else if (rrow != kNoMatch) {
          out.mutable_column(c).AppendFrom(right.column(oc.column), rrow);
        } else {
          out.mutable_column(c).AppendNull();
        }
      }
    }
  }
  return out;
}

}  // namespace pctagg

namespace pctagg {

Result<Column> LookupColumn(const Table& left, const Table& right,
                            const std::vector<std::string>& left_keys,
                            const std::vector<std::string>& right_keys,
                            const std::string& value,
                            const HashIndex* right_index) {
  obs::OpScope op("join-lookup");
  if (left_keys.empty() || left_keys.size() != right_keys.size()) {
    return Status::InvalidArgument("lookup key lists must match and be nonempty");
  }
  std::vector<size_t> lkeys;
  std::vector<size_t> rkeys;
  for (const std::string& name : left_keys) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, left.schema().FindColumn(name));
    lkeys.push_back(idx);
  }
  for (const std::string& name : right_keys) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, right.schema().FindColumn(name));
    rkeys.push_back(idx);
  }
  PCTAGG_ASSIGN_OR_RETURN(size_t vcol, right.schema().FindColumn(value));

  const bool use_index =
      right_index != nullptr && IndexMatchesKeys(*right_index, right_keys);
  std::unordered_map<std::string, size_t> built;
  if (!use_index) {
    built.reserve(right.num_rows());
    const KeyEncoder renc(right, rkeys);
    std::string key;
    for (size_t row = 0; row < right.num_rows(); ++row) {
      key.clear();
      renc.AppendKey(row, &key);
      built.emplace(key, row);  // unique keys: keep the first
    }
  }

  // Morsel-parallel probe into a per-row match slot (disjoint writes), then
  // a serial append pass in row order.
  constexpr size_t kNoMatch = SIZE_MAX;
  const size_t n = left.num_rows();
  // Translating encoder (see HashJoin): probe bytes must carry right-side
  // dictionary codes.
  const KeyEncoder lenc(left, lkeys, right, rkeys);
  std::vector<size_t> match_row(n, kNoMatch);
  MorselPlan plan = MorselPlan::For(n, CurrentDop());
  RunMorsels(plan, [&](size_t /*worker*/, size_t begin, size_t end) {
    std::string key;
    for (size_t row = begin; row < end; ++row) {
      key.clear();
      lenc.AppendKey(row, &key);
      if (use_index) {
        const std::vector<size_t>* rows = right_index->Lookup(key);
        if (rows != nullptr && !rows->empty()) match_row[row] = (*rows)[0];
      } else {
        auto it = built.find(key);
        if (it != built.end()) match_row[row] = it->second;
      }
    }
  });

  if (op.active()) {
    size_t matched = 0;
    for (size_t m : match_row) {
      if (m != kNoMatch) ++matched;
    }
    op.SetRows(n + right.num_rows(), matched);
    op.SetMorsels(plan.num_morsels, plan.num_workers);
    op.SetHashTable(use_index ? 0 : built.size(),
                    use_index ? 0 : built.bucket_count());
    op.SetDetail(use_index ? "probe=index" : "probe=built");
  }

  const Column& values = right.column(vcol);
  Column out(values.type());
  out.Reserve(n);
  for (size_t row = 0; row < n; ++row) {
    if (match_row[row] == kNoMatch) {
      out.AppendNull();
    } else {
      out.AppendFrom(values, match_row[row]);
    }
  }
  return out;
}

}  // namespace pctagg
