#ifndef PCTAGG_ENGINE_VALUE_H_
#define PCTAGG_ENGINE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "engine/data_type.h"

namespace pctagg {

// A single scalar value, possibly NULL. Values are the row-at-a-time
// interchange format (row append, literals, group keys in error messages);
// bulk computation happens on Columns.
class Value {
 public:
  // NULL value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Data(v)); }
  static Value Float64(double v) { return Value(Data(v)); }
  static Value String(std::string v) { return Value(Data(std::move(v))); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(data_); }
  bool is_float64() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  int64_t int64() const { return std::get<int64_t>(data_); }
  double float64() const { return std::get<double>(data_); }
  const std::string& string() const { return std::get<std::string>(data_); }

  // Numeric value widened to double; only valid for INT64/FLOAT64 values.
  double AsDouble() const {
    return is_int64() ? static_cast<double>(int64()) : float64();
  }

  // True when the value is non-null and its type matches `type`.
  bool Matches(DataType type) const;

  // SQL-style equality on same-typed values; NULL equals nothing.
  bool SqlEquals(const Value& other) const;

  // Rendering used by examples, tests and plan output ("NULL", 12, 3.5, 'x').
  std::string ToString() const;

  // Deep equality including NULL == NULL (container semantics, not SQL).
  bool operator==(const Value& other) const = default;

 private:
  using Data = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_VALUE_H_
