#ifndef PCTAGG_ENGINE_EXPRESSION_H_
#define PCTAGG_ENGINE_EXPRESSION_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/column.h"
#include "engine/table.h"
#include "engine/value.h"

namespace pctagg {

class Expression;
using ExprPtr = std::shared_ptr<const Expression>;

// Scalar expression tree evaluated column-at-a-time over a Table. Boolean
// results are INT64 columns holding 0/1 with SQL three-valued logic (UNKNOWN
// is a NULL slot). This is the machinery behind the generated plans' CASE
// statements, filters, and percentage divisions.
class Expression {
 public:
  virtual ~Expression() = default;

  // The output type of this expression against `schema`, or an error if the
  // expression does not bind/typecheck.
  virtual Result<DataType> ResultType(const Schema& schema) const = 0;

  // Evaluates over every row of `table`, producing a column of
  // table.num_rows() entries.
  virtual Result<Column> Evaluate(const Table& table) const = 0;

  // SQL-ish rendering, used when plans are printed as generated SQL.
  virtual std::string ToString() const = 0;
};

// -- Node constructors (the public builder API) ------------------------------

// A constant. Type derives from the value; NULL literals need a declared type.
ExprPtr Lit(Value v);
ExprPtr NullLit(DataType type);

// A column reference by (case-insensitive) name.
ExprPtr Col(std::string name);

// Arithmetic; division by zero yields NULL (matching the paper's Vpct()
// semantics — the generated CASE guard makes it explicit at the SQL level).
ExprPtr Add(ExprPtr l, ExprPtr r);
ExprPtr Sub(ExprPtr l, ExprPtr r);
ExprPtr Mul(ExprPtr l, ExprPtr r);
ExprPtr Div(ExprPtr l, ExprPtr r);

// Comparisons (=, <>, <, <=, >, >=) with SQL NULL semantics.
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Ne(ExprPtr l, ExprPtr r);
ExprPtr Lt(ExprPtr l, ExprPtr r);
ExprPtr Le(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr Ge(ExprPtr l, ExprPtr r);

// Three-valued logic connectives.
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr e);
ExprPtr IsNull(ExprPtr e);

// Conjunction of all `terms` (empty -> constant true).
ExprPtr AndAll(std::vector<ExprPtr> terms);

// CASE WHEN c1 THEN r1 ... ELSE e END; a null `else_expr` means ELSE NULL.
ExprPtr CaseWhen(std::vector<std::pair<ExprPtr, ExprPtr>> branches,
                 ExprPtr else_expr);

// COALESCE(a, b, ...): the first non-NULL argument (NULL if all are).
// Arguments must share a type family (all numeric or all string).
ExprPtr Coalesce(std::vector<ExprPtr> args);

// ABS(x) for numeric x (type-preserving).
ExprPtr Abs(ExprPtr e);

// ROUND(x, digits): x rounded to `digits` decimal places (FLOAT64).
ExprPtr Round(ExprPtr e, int digits);

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_EXPRESSION_H_
