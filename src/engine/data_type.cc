#include "engine/data_type.h"

#include "common/string_util.h"

namespace pctagg {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kFloat64:
      return "FLOAT64";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

Result<size_t> Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return Status::NotFound("column not found: " + name);
}

bool Schema::HasColumn(const std::string& name) const {
  return FindColumn(name).ok();
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const ColumnDef& c : columns_) {
    parts.push_back(c.name + " " + DataTypeName(c.type));
  }
  return Join(parts, ", ");
}

}  // namespace pctagg
