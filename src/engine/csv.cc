#include "engine/csv.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "common/string_util.h"

namespace pctagg {

namespace {

// One parsed record: raw field texts plus which fields were quoted (a quoted
// empty string is "", an unquoted empty field is NULL).
struct Record {
  std::vector<std::string> fields;
  std::vector<bool> quoted;
};

// Splits `text` into records honoring quotes; handles \r\n line ends.
Result<std::vector<Record>> SplitCsv(const std::string& text) {
  std::vector<Record> records;
  // Newlines bound the record count (quoted fields can only make it an
  // overestimate); reserving up front turns the records vector's growth from
  // O(log n) reallocations — each copying every Record so far — into one.
  records.reserve(std::count(text.begin(), text.end(), '\n') + 1);
  Record current;
  size_t arity = 0;  // fields in the first record: reserve for the rest
  std::string field;
  bool quoted = false;
  bool in_quotes = false;
  size_t i = 0;
  const size_t n = text.size();
  auto end_field = [&]() {
    if (current.fields.empty() && arity > 0) {
      current.fields.reserve(arity);
      current.quoted.reserve(arity);
    }
    current.fields.push_back(field);
    current.quoted.push_back(quoted);
    field.clear();
    quoted = false;
  };
  auto end_record = [&]() {
    end_field();
    // Skip records that are entirely empty (trailing newline).
    if (current.fields.size() == 1 && current.fields[0].empty() &&
        !current.quoted[0]) {
      current = Record();
      return;
    }
    if (arity == 0) arity = current.fields.size();
    records.push_back(std::move(current));
    current = Record();
  };
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::ParseError("unexpected quote inside CSV field");
        }
        in_quotes = true;
        quoted = true;
        ++i;
        break;
      case ',':
        end_field();
        ++i;
        break;
      case '\r':
        if (i + 1 < n && text[i + 1] == '\n') ++i;
        [[fallthrough]];
      case '\n':
        end_record();
        ++i;
        break;
      default:
        field.push_back(c);
        ++i;
        break;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted CSV field");
  if (!field.empty() || quoted || !current.fields.empty()) {
    end_record();
  }
  return records;
}

bool LooksLikeFloat(const std::string& s) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return errno == 0 && end != nullptr && *end == '\0';
}

Result<Value> ParseField(const std::string& text, bool was_quoted,
                         DataType type) {
  if (text.empty() && !was_quoted) return Value::Null();
  switch (type) {
    case DataType::kInt64:
      if (!IsInteger(text)) {
        return Status::ParseError("not an integer: '" + text + "'");
      }
      return Value::Int64(std::stoll(text));
    case DataType::kFloat64:
      if (!LooksLikeFloat(text)) {
        return Status::ParseError("not a number: '" + text + "'");
      }
      return Value::Float64(std::stod(text));
    case DataType::kString:
      return Value::String(text);
  }
  return Status::Internal("unknown type");
}

Result<std::vector<Record>> SplitAndCheckHeader(const std::string& text,
                                                const Schema& schema,
                                                bool has_header) {
  PCTAGG_ASSIGN_OR_RETURN(std::vector<Record> records, SplitCsv(text));
  if (has_header) {
    if (records.empty()) return Status::ParseError("CSV is empty (no header)");
    const Record& header = records.front();
    if (header.fields.size() != schema.num_columns()) {
      return Status::ParseError("CSV header has " +
                                std::to_string(header.fields.size()) +
                                " columns, schema has " +
                                std::to_string(schema.num_columns()));
    }
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (!EqualsIgnoreCase(header.fields[c], schema.column(c).name)) {
        return Status::ParseError("CSV header mismatch at column " +
                                  std::to_string(c + 1) + ": '" +
                                  header.fields[c] + "' vs '" +
                                  schema.column(c).name + "'");
      }
    }
    records.erase(records.begin());
  }
  return records;
}

}  // namespace

Result<Table> ParseCsv(const std::string& text, const Schema& schema,
                       bool has_header) {
  PCTAGG_ASSIGN_OR_RETURN(std::vector<Record> records,
                          SplitAndCheckHeader(text, schema, has_header));
  Table out(schema);
  out.Reserve(records.size());
  std::vector<Value> row;  // reused across records (Values are cheap to move)
  row.reserve(schema.num_columns());
  for (size_t r = 0; r < records.size(); ++r) {
    const Record& rec = records[r];
    if (rec.fields.size() != schema.num_columns()) {
      return Status::ParseError("CSV row " + std::to_string(r + 1) + " has " +
                                std::to_string(rec.fields.size()) +
                                " fields, expected " +
                                std::to_string(schema.num_columns()));
    }
    row.clear();
    for (size_t c = 0; c < rec.fields.size(); ++c) {
      Result<Value> v =
          ParseField(rec.fields[c], rec.quoted[c], schema.column(c).type);
      if (!v.ok()) {
        return Status::ParseError("CSV row " + std::to_string(r + 1) +
                                  ", column " + schema.column(c).name + ": " +
                                  v.status().message());
      }
      row.push_back(std::move(v).value());
    }
    PCTAGG_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Result<Table> ParseCsvAuto(const std::string& text) {
  PCTAGG_ASSIGN_OR_RETURN(std::vector<Record> records, SplitCsv(text));
  if (records.empty()) return Status::ParseError("CSV is empty");
  const Record& header = records.front();
  const size_t num_cols = header.fields.size();
  // Infer per-column types from the data rows.
  std::vector<bool> all_int(num_cols, true);
  std::vector<bool> all_float(num_cols, true);
  for (size_t r = 1; r < records.size(); ++r) {
    if (records[r].fields.size() != num_cols) {
      return Status::ParseError("CSV row " + std::to_string(r) +
                                " has inconsistent column count");
    }
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& f = records[r].fields[c];
      bool is_null = f.empty() && !records[r].quoted[c];
      if (is_null) continue;
      if (records[r].quoted[c]) {  // quoted fields are strings by intent
        all_int[c] = false;
        all_float[c] = false;
        continue;
      }
      if (!IsInteger(f)) all_int[c] = false;
      if (!LooksLikeFloat(f)) all_float[c] = false;
    }
  }
  Schema schema;
  for (size_t c = 0; c < num_cols; ++c) {
    DataType type = all_int[c] ? DataType::kInt64
                    : all_float[c] ? DataType::kFloat64
                                   : DataType::kString;
    std::string name = header.fields[c];
    if (name.empty()) name = "column" + std::to_string(c + 1);
    schema.AddColumn({std::move(name), type});
  }
  return ParseCsv(text, schema, /*has_header=*/true);
}

std::string FormatCsv(const Table& table) {
  std::string out;
  // ~8 bytes per rendered cell is a decent floor for numeric-heavy tables;
  // undershooting just means a couple of amortized growths instead of many.
  out.reserve(16 + table.num_rows() * table.num_columns() * 8);
  auto append_field = [&out](const std::string& text, bool force_quote) {
    bool needs_quote =
        force_quote || text.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote) {
      out += text;
      return;
    }
    out.push_back('"');
    for (char c : text) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  };
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out.push_back(',');
    append_field(table.schema().column(c).name, false);
  }
  out.push_back('\n');
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(',');
      const Column& col = table.column(c);
      if (col.IsNull(r)) continue;  // NULL renders as an empty field
      switch (col.type()) {
        case DataType::kInt64:
          out += std::to_string(col.Int64At(r));
          break;
        case DataType::kFloat64:
          out += StrFormat("%.17g", col.Float64At(r));
          break;
        case DataType::kString:
          // Quote empty strings to distinguish them from NULL.
          append_field(col.StringAt(r), col.StringAt(r).empty());
          break;
      }
    }
    out.push_back('\n');
  }
  return out;
}

namespace {

// Reads the whole file into a string sized from the file length in one
// resize + one read, instead of streaming through an ostringstream's
// geometrically reallocating buffer (which peaks at ~2x the file size and
// copies every byte O(log n) times).
Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("cannot open file: " + path);
  const std::streamoff size = in.tellg();
  std::string text;
  if (size > 0) {
    text.resize(static_cast<size_t>(size));
    in.seekg(0);
    in.read(text.data(), size);
    if (!in) return Status::Internal("read failed: " + path);
  }
  return text;
}

}  // namespace

Result<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                          bool has_header) {
  PCTAGG_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseCsv(text, schema, has_header);
}

Result<Table> ReadCsvFileAuto(const std::string& path) {
  PCTAGG_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseCsvAuto(text);
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument("cannot open file for write: " + path);
  out << FormatCsv(table);
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace pctagg
