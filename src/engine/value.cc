#include "engine/value.h"

#include "common/string_util.h"

namespace pctagg {

bool Value::Matches(DataType type) const {
  switch (type) {
    case DataType::kInt64:
      return is_int64();
    case DataType::kFloat64:
      return is_float64();
    case DataType::kString:
      return is_string();
  }
  return false;
}

bool Value::SqlEquals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (data_.index() == other.data_.index()) return data_ == other.data_;
  // Numeric cross-type comparison.
  if ((is_int64() || is_float64()) && (other.is_int64() || other.is_float64())) {
    return AsDouble() == other.AsDouble();
  }
  return false;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(int64());
  if (is_float64()) return StrFormat("%g", float64());
  // SQL string literal: embedded single quotes double, so the rendering
  // round-trips through the parser (and generated SQL in traces stays valid).
  const std::string& s = string();
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('\'');
  for (char c : s) {
    if (c == '\'') out.push_back('\'');
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

}  // namespace pctagg
