#ifndef PCTAGG_ENGINE_PIPELINE_H_
#define PCTAGG_ENGINE_PIPELINE_H_

#include <vector>

#include "engine/aggregate.h"
#include "engine/expression.h"
#include "engine/table.h"

namespace pctagg {

// Push-based fused operators for the percentage pipelines. Where the
// materialized plans run Filter -> HashAggregate as separate statements with
// an intermediate table, FusedAggregate pushes each morsel through
// filter-mask, keying and accumulation in one pass, so filtered rows are
// never copied and the group key is built straight from the column arrays.
//
// Results are bit-identical to Filter(input, where) followed by
// HashAggregate(group_by, aggs) at the same dop: the accumulation and
// emission code is shared (engine/agg_internal.h), rows are folded in the
// same per-worker order, and the WHERE mask preserves input row order.
//
// Morsels come from MorselPlan::Auto: workers are clamped to the CPUs this
// process can actually use and morsels sized to ~4 per worker, which is the
// fix for the committed dop=4-slower-than-dop=1 parallel-scaling row.
Result<Table> FusedAggregate(const Table& input, const ExprPtr& where,
                             const std::vector<std::string>& group_by,
                             const std::vector<AggSpec>& aggs, size_t dop = 0);

// Vectorized percentage divide over two numeric columns: FLOAT64 output,
// NULL where either operand is NULL or the divisor is zero. Bit-identical to
// evaluating Div(Col(num), Col(den)) — IEEE double division is deterministic
// and the AVX2 lanes perform exactly the scalar operation (runtime-selected,
// PCTAGG_DISABLE_SIMD forces the scalar loop).
Result<Column> PercentDivideColumns(const Column& num, const Column& den);

// Scalar-divisor variant for grand-total terms: NULL or zero total yields an
// all-NULL column, matching Div(Col(num), Lit(total)).
Result<Column> PercentDivideScalar(const Column& num, const Value& total);

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_PIPELINE_H_
