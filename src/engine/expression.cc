#include "engine/expression.h"

#include <cassert>
#include <cmath>

#include "common/string_util.h"

namespace pctagg {

namespace {

// Widens INT64/FLOAT64 pairs; errors on strings in arithmetic.
Result<DataType> NumericResultType(DataType l, DataType r, const char* op) {
  if (l == DataType::kString || r == DataType::kString) {
    return Status::TypeMismatch(std::string("operator ") + op +
                                " requires numeric operands");
  }
  if (l == DataType::kFloat64 || r == DataType::kFloat64) {
    return DataType::kFloat64;
  }
  return DataType::kInt64;
}

class LiteralExpr : public Expression {
 public:
  LiteralExpr(Value v, DataType type) : value_(std::move(v)), type_(type) {}

  Result<DataType> ResultType(const Schema&) const override { return type_; }

  Result<Column> Evaluate(const Table& table) const override {
    Column out(type_);
    out.Reserve(table.num_rows());
    for (size_t i = 0; i < table.num_rows(); ++i) {
      PCTAGG_RETURN_IF_ERROR(out.AppendValue(value_));
    }
    return out;
  }

  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
  DataType type_;
};

class ColumnRefExpr : public Expression {
 public:
  explicit ColumnRefExpr(std::string name) : name_(std::move(name)) {}

  Result<DataType> ResultType(const Schema& schema) const override {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, schema.FindColumn(name_));
    return schema.column(idx).type;
  }

  Result<Column> Evaluate(const Table& table) const override {
    PCTAGG_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(name_));
    return *col;  // copy; callers own their outputs
  }

  std::string ToString() const override { return name_; }

 private:
  std::string name_;
};

enum class ArithOp { kAdd, kSub, kMul, kDiv };

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

class ArithExpr : public Expression {
 public:
  ArithExpr(ArithOp op, ExprPtr l, ExprPtr r)
      : op_(op), left_(std::move(l)), right_(std::move(r)) {}

  Result<DataType> ResultType(const Schema& schema) const override {
    PCTAGG_ASSIGN_OR_RETURN(DataType lt, left_->ResultType(schema));
    PCTAGG_ASSIGN_OR_RETURN(DataType rt, right_->ResultType(schema));
    if (op_ == ArithOp::kDiv) {
      // Division always produces FLOAT64 (percentages are fractions).
      if (lt == DataType::kString || rt == DataType::kString) {
        return Status::TypeMismatch("operator / requires numeric operands");
      }
      return DataType::kFloat64;
    }
    return NumericResultType(lt, rt, ArithOpName(op_));
  }

  Result<Column> Evaluate(const Table& table) const override {
    PCTAGG_ASSIGN_OR_RETURN(DataType out_type, ResultType(table.schema()));
    PCTAGG_ASSIGN_OR_RETURN(Column lc, left_->Evaluate(table));
    PCTAGG_ASSIGN_OR_RETURN(Column rc, right_->Evaluate(table));
    Column out(out_type);
    out.Reserve(table.num_rows());
    const bool int_out = out_type == DataType::kInt64;
    for (size_t i = 0; i < table.num_rows(); ++i) {
      if (lc.IsNull(i) || rc.IsNull(i)) {
        out.AppendNull();
        continue;
      }
      if (int_out) {
        int64_t a = lc.Int64At(i);
        int64_t b = rc.Int64At(i);
        switch (op_) {
          case ArithOp::kAdd:
            out.AppendInt64(a + b);
            break;
          case ArithOp::kSub:
            out.AppendInt64(a - b);
            break;
          case ArithOp::kMul:
            out.AppendInt64(a * b);
            break;
          case ArithOp::kDiv:
            assert(false && "integer division routed to FLOAT64");
            break;
        }
      } else {
        double a = lc.NumericAt(i);
        double b = rc.NumericAt(i);
        switch (op_) {
          case ArithOp::kAdd:
            out.AppendFloat64(a + b);
            break;
          case ArithOp::kSub:
            out.AppendFloat64(a - b);
            break;
          case ArithOp::kMul:
            out.AppendFloat64(a * b);
            break;
          case ArithOp::kDiv:
            // NULL on zero divisor: the engine-level safety net matching
            // Vpct()'s "result is NULL when dividing by zero".
            if (b == 0.0) {
              out.AppendNull();
            } else {
              out.AppendFloat64(a / b);
            }
            break;
        }
      }
    }
    return out;
  }

  std::string ToString() const override {
    return "(" + left_->ToString() + " " + ArithOpName(op_) + " " +
           right_->ToString() + ")";
  }

 private:
  ArithOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

class CompareExpr : public Expression {
 public:
  CompareExpr(CmpOp op, ExprPtr l, ExprPtr r)
      : op_(op), left_(std::move(l)), right_(std::move(r)) {}

  Result<DataType> ResultType(const Schema& schema) const override {
    PCTAGG_ASSIGN_OR_RETURN(DataType lt, left_->ResultType(schema));
    PCTAGG_ASSIGN_OR_RETURN(DataType rt, right_->ResultType(schema));
    bool l_str = lt == DataType::kString;
    bool r_str = rt == DataType::kString;
    if (l_str != r_str) {
      return Status::TypeMismatch("cannot compare string with numeric");
    }
    return DataType::kInt64;  // boolean
  }

  Result<Column> Evaluate(const Table& table) const override {
    PCTAGG_RETURN_IF_ERROR(ResultType(table.schema()).status());
    PCTAGG_ASSIGN_OR_RETURN(Column lc, left_->Evaluate(table));
    PCTAGG_ASSIGN_OR_RETURN(Column rc, right_->Evaluate(table));
    Column out(DataType::kInt64);
    out.Reserve(table.num_rows());
    const bool strings = lc.type() == DataType::kString;
    if (strings && (op_ == CmpOp::kEq || op_ == CmpOp::kNe)) {
      // Equality over dictionary-encoded columns is a code comparison: no
      // payload bytes are touched. When the sides use different
      // dictionaries, the smaller one is translated into the other's code
      // space once (one Find per distinct string), and kInvalidCode for
      // strings the other side never interned makes those rows compare
      // unequal — exactly the per-row string comparison's answer.
      const bool want_eq = op_ == CmpOp::kEq;
      const uint32_t* lcodes = lc.codes().data();
      const uint32_t* rcodes = rc.codes().data();
      std::vector<uint32_t> lmap;  // left code -> right code space
      if (lc.dict() != rc.dict()) {
        const Dictionary& ld = *lc.dict();
        const Dictionary& rd = *rc.dict();
        lmap.resize(ld.size());
        for (size_t c = 0; c < lmap.size(); ++c) {
          lmap[c] = rd.Find(ld.value(static_cast<uint32_t>(c)));
        }
      }
      for (size_t i = 0; i < table.num_rows(); ++i) {
        if (lc.IsNull(i) || rc.IsNull(i)) {
          out.AppendNull();
          continue;
        }
        const uint32_t l = lmap.empty() ? lcodes[i] : lmap[lcodes[i]];
        out.AppendInt64((l == rcodes[i]) == want_eq ? 1 : 0);
      }
      return out;
    }
    for (size_t i = 0; i < table.num_rows(); ++i) {
      if (lc.IsNull(i) || rc.IsNull(i)) {
        out.AppendNull();
        continue;
      }
      int cmp;
      if (strings) {
        cmp = lc.StringAt(i).compare(rc.StringAt(i));
        cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
      } else {
        double a = lc.NumericAt(i);
        double b = rc.NumericAt(i);
        cmp = a < b ? -1 : (a > b ? 1 : 0);
      }
      bool v = false;
      switch (op_) {
        case CmpOp::kEq:
          v = cmp == 0;
          break;
        case CmpOp::kNe:
          v = cmp != 0;
          break;
        case CmpOp::kLt:
          v = cmp < 0;
          break;
        case CmpOp::kLe:
          v = cmp <= 0;
          break;
        case CmpOp::kGt:
          v = cmp > 0;
          break;
        case CmpOp::kGe:
          v = cmp >= 0;
          break;
      }
      out.AppendInt64(v ? 1 : 0);
    }
    return out;
  }

  std::string ToString() const override {
    return left_->ToString() + " " + CmpOpName(op_) + " " + right_->ToString();
  }

 private:
  CmpOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class LogicalExpr : public Expression {
 public:
  LogicalExpr(bool is_and, ExprPtr l, ExprPtr r)
      : is_and_(is_and), left_(std::move(l)), right_(std::move(r)) {}

  Result<DataType> ResultType(const Schema& schema) const override {
    PCTAGG_RETURN_IF_ERROR(left_->ResultType(schema).status());
    PCTAGG_RETURN_IF_ERROR(right_->ResultType(schema).status());
    return DataType::kInt64;
  }

  Result<Column> Evaluate(const Table& table) const override {
    PCTAGG_ASSIGN_OR_RETURN(Column lc, left_->Evaluate(table));
    PCTAGG_ASSIGN_OR_RETURN(Column rc, right_->Evaluate(table));
    Column out(DataType::kInt64);
    out.Reserve(table.num_rows());
    for (size_t i = 0; i < table.num_rows(); ++i) {
      // Three-valued logic: -1 encodes UNKNOWN locally.
      int a = lc.IsNull(i) ? -1 : (lc.Int64At(i) != 0 ? 1 : 0);
      int b = rc.IsNull(i) ? -1 : (rc.Int64At(i) != 0 ? 1 : 0);
      int v;
      if (is_and_) {
        v = (a == 0 || b == 0) ? 0 : ((a == 1 && b == 1) ? 1 : -1);
      } else {
        v = (a == 1 || b == 1) ? 1 : ((a == 0 && b == 0) ? 0 : -1);
      }
      if (v < 0) {
        out.AppendNull();
      } else {
        out.AppendInt64(v);
      }
    }
    return out;
  }

  std::string ToString() const override {
    return "(" + left_->ToString() + (is_and_ ? " AND " : " OR ") +
           right_->ToString() + ")";
  }

 private:
  bool is_and_;
  ExprPtr left_;
  ExprPtr right_;
};

class NotExpr : public Expression {
 public:
  explicit NotExpr(ExprPtr e) : expr_(std::move(e)) {}

  Result<DataType> ResultType(const Schema& schema) const override {
    PCTAGG_RETURN_IF_ERROR(expr_->ResultType(schema).status());
    return DataType::kInt64;
  }

  Result<Column> Evaluate(const Table& table) const override {
    PCTAGG_ASSIGN_OR_RETURN(Column c, expr_->Evaluate(table));
    Column out(DataType::kInt64);
    out.Reserve(table.num_rows());
    for (size_t i = 0; i < table.num_rows(); ++i) {
      if (c.IsNull(i)) {
        out.AppendNull();
      } else {
        out.AppendInt64(c.Int64At(i) != 0 ? 0 : 1);
      }
    }
    return out;
  }

  std::string ToString() const override {
    return "NOT (" + expr_->ToString() + ")";
  }

 private:
  ExprPtr expr_;
};

class IsNullExpr : public Expression {
 public:
  explicit IsNullExpr(ExprPtr e) : expr_(std::move(e)) {}

  Result<DataType> ResultType(const Schema& schema) const override {
    PCTAGG_RETURN_IF_ERROR(expr_->ResultType(schema).status());
    return DataType::kInt64;
  }

  Result<Column> Evaluate(const Table& table) const override {
    PCTAGG_ASSIGN_OR_RETURN(Column c, expr_->Evaluate(table));
    Column out(DataType::kInt64);
    out.Reserve(table.num_rows());
    for (size_t i = 0; i < table.num_rows(); ++i) {
      out.AppendInt64(c.IsNull(i) ? 1 : 0);
    }
    return out;
  }

  std::string ToString() const override {
    return expr_->ToString() + " IS NULL";
  }

 private:
  ExprPtr expr_;
};

class CaseWhenExpr : public Expression {
 public:
  CaseWhenExpr(std::vector<std::pair<ExprPtr, ExprPtr>> branches,
               ExprPtr else_expr)
      : branches_(std::move(branches)), else_expr_(std::move(else_expr)) {}

  Result<DataType> ResultType(const Schema& schema) const override {
    if (branches_.empty()) {
      return Status::InvalidArgument("CASE requires at least one WHEN");
    }
    DataType out = DataType::kInt64;
    bool first = true;
    for (const auto& [cond, result] : branches_) {
      PCTAGG_RETURN_IF_ERROR(cond->ResultType(schema).status());
      PCTAGG_ASSIGN_OR_RETURN(DataType rt, result->ResultType(schema));
      if (first) {
        out = rt;
        first = false;
      } else if (rt != out) {
        // Numeric widening across branches.
        if (rt == DataType::kString || out == DataType::kString) {
          return Status::TypeMismatch("CASE branches mix string and numeric");
        }
        out = DataType::kFloat64;
      }
    }
    if (else_expr_ != nullptr) {
      PCTAGG_ASSIGN_OR_RETURN(DataType et, else_expr_->ResultType(schema));
      if (et != out) {
        if (et == DataType::kString || out == DataType::kString) {
          return Status::TypeMismatch("CASE branches mix string and numeric");
        }
        out = DataType::kFloat64;
      }
    }
    return out;
  }

  Result<Column> Evaluate(const Table& table) const override {
    PCTAGG_ASSIGN_OR_RETURN(DataType out_type, ResultType(table.schema()));
    size_t n = table.num_rows();
    // Evaluate all branch conditions and results. This deliberately performs
    // the O(N)-per-row work the paper criticizes; the optimized hash-dispatch
    // path lives in the pivot operator.
    std::vector<Column> conds;
    std::vector<Column> results;
    conds.reserve(branches_.size());
    results.reserve(branches_.size());
    for (const auto& [cond, result] : branches_) {
      PCTAGG_ASSIGN_OR_RETURN(Column c, cond->Evaluate(table));
      PCTAGG_ASSIGN_OR_RETURN(Column r, result->Evaluate(table));
      conds.push_back(std::move(c));
      results.push_back(std::move(r));
    }
    Column else_col(out_type);
    bool has_else = else_expr_ != nullptr;
    if (has_else) {
      PCTAGG_ASSIGN_OR_RETURN(else_col, else_expr_->Evaluate(table));
    }
    Column out(out_type);
    out.Reserve(n);
    // Select straight from the typed branch columns — no per-row boxing.
    // This loop is the inner kernel of the generated N-column CASE pivots.
    auto append_from = [&out, out_type](const Column& src, size_t i) {
      if (src.IsNull(i)) {
        out.AppendNull();
      } else if (out_type == DataType::kString) {
        out.AppendString(src.StringAt(i));
      } else if (out_type == DataType::kInt64) {
        out.AppendInt64(src.Int64At(i));
      } else {
        out.AppendFloat64(src.NumericAt(i));
      }
    };
    for (size_t i = 0; i < n; ++i) {
      bool matched = false;
      for (size_t b = 0; b < conds.size(); ++b) {
        if (!conds[b].IsNull(i) && conds[b].Int64At(i) != 0) {
          append_from(results[b], i);
          matched = true;
          break;
        }
      }
      if (!matched) {
        if (has_else) {
          append_from(else_col, i);
        } else {
          out.AppendNull();
        }
      }
    }
    return out;
  }

  std::string ToString() const override {
    std::string out = "CASE";
    for (const auto& [cond, result] : branches_) {
      out += " WHEN " + cond->ToString() + " THEN " + result->ToString();
    }
    if (else_expr_ != nullptr) out += " ELSE " + else_expr_->ToString();
    out += " END";
    return out;
  }

 private:
  std::vector<std::pair<ExprPtr, ExprPtr>> branches_;
  ExprPtr else_expr_;  // may be null (ELSE NULL)
};

class CoalesceExpr : public Expression {
 public:
  explicit CoalesceExpr(std::vector<ExprPtr> args) : args_(std::move(args)) {}

  Result<DataType> ResultType(const Schema& schema) const override {
    if (args_.empty()) {
      return Status::InvalidArgument("COALESCE requires arguments");
    }
    DataType out = DataType::kInt64;
    bool first = true;
    for (const ExprPtr& a : args_) {
      PCTAGG_ASSIGN_OR_RETURN(DataType t, a->ResultType(schema));
      if (first) {
        out = t;
        first = false;
      } else if (t != out) {
        if (t == DataType::kString || out == DataType::kString) {
          return Status::TypeMismatch("COALESCE arguments mix string/numeric");
        }
        out = DataType::kFloat64;
      }
    }
    return out;
  }

  Result<Column> Evaluate(const Table& table) const override {
    PCTAGG_ASSIGN_OR_RETURN(DataType out_type, ResultType(table.schema()));
    std::vector<Column> cols;
    cols.reserve(args_.size());
    for (const ExprPtr& a : args_) {
      PCTAGG_ASSIGN_OR_RETURN(Column c, a->Evaluate(table));
      cols.push_back(std::move(c));
    }
    Column out(out_type);
    out.Reserve(table.num_rows());
    for (size_t i = 0; i < table.num_rows(); ++i) {
      bool done = false;
      for (const Column& c : cols) {
        if (c.IsNull(i)) continue;
        if (out_type == DataType::kString) {
          out.AppendString(c.StringAt(i));
        } else if (out_type == DataType::kInt64) {
          out.AppendInt64(c.Int64At(i));
        } else {
          out.AppendFloat64(c.NumericAt(i));
        }
        done = true;
        break;
      }
      if (!done) out.AppendNull();
    }
    return out;
  }

  std::string ToString() const override {
    std::vector<std::string> parts;
    parts.reserve(args_.size());
    for (const ExprPtr& a : args_) parts.push_back(a->ToString());
    return "COALESCE(" + Join(parts, ", ") + ")";
  }

 private:
  std::vector<ExprPtr> args_;
};

class AbsExpr : public Expression {
 public:
  explicit AbsExpr(ExprPtr e) : expr_(std::move(e)) {}

  Result<DataType> ResultType(const Schema& schema) const override {
    PCTAGG_ASSIGN_OR_RETURN(DataType t, expr_->ResultType(schema));
    if (t == DataType::kString) {
      return Status::TypeMismatch("ABS requires a numeric argument");
    }
    return t;
  }

  Result<Column> Evaluate(const Table& table) const override {
    PCTAGG_ASSIGN_OR_RETURN(DataType out_type, ResultType(table.schema()));
    PCTAGG_ASSIGN_OR_RETURN(Column c, expr_->Evaluate(table));
    Column out(out_type);
    out.Reserve(table.num_rows());
    for (size_t i = 0; i < c.size(); ++i) {
      if (c.IsNull(i)) {
        out.AppendNull();
      } else if (out_type == DataType::kInt64) {
        int64_t v = c.Int64At(i);
        out.AppendInt64(v < 0 ? -v : v);
      } else {
        out.AppendFloat64(std::fabs(c.NumericAt(i)));
      }
    }
    return out;
  }

  std::string ToString() const override {
    return "ABS(" + expr_->ToString() + ")";
  }

 private:
  ExprPtr expr_;
};

class RoundExpr : public Expression {
 public:
  RoundExpr(ExprPtr e, int digits) : expr_(std::move(e)), digits_(digits) {}

  Result<DataType> ResultType(const Schema& schema) const override {
    PCTAGG_ASSIGN_OR_RETURN(DataType t, expr_->ResultType(schema));
    if (t == DataType::kString) {
      return Status::TypeMismatch("ROUND requires a numeric argument");
    }
    return DataType::kFloat64;
  }

  Result<Column> Evaluate(const Table& table) const override {
    PCTAGG_RETURN_IF_ERROR(ResultType(table.schema()).status());
    PCTAGG_ASSIGN_OR_RETURN(Column c, expr_->Evaluate(table));
    const double scale = std::pow(10.0, digits_);
    Column out(DataType::kFloat64);
    out.Reserve(table.num_rows());
    for (size_t i = 0; i < c.size(); ++i) {
      if (c.IsNull(i)) {
        out.AppendNull();
      } else {
        out.AppendFloat64(std::round(c.NumericAt(i) * scale) / scale);
      }
    }
    return out;
  }

  std::string ToString() const override {
    return "ROUND(" + expr_->ToString() + ", " + std::to_string(digits_) + ")";
  }

 private:
  ExprPtr expr_;
  int digits_;
};

}  // namespace

ExprPtr Lit(Value v) {
  DataType type = DataType::kInt64;
  if (v.is_float64()) type = DataType::kFloat64;
  if (v.is_string()) type = DataType::kString;
  return std::make_shared<LiteralExpr>(std::move(v), type);
}

ExprPtr NullLit(DataType type) {
  return std::make_shared<LiteralExpr>(Value::Null(), type);
}

ExprPtr Col(std::string name) {
  return std::make_shared<ColumnRefExpr>(std::move(name));
}

ExprPtr Add(ExprPtr l, ExprPtr r) {
  return std::make_shared<ArithExpr>(ArithOp::kAdd, std::move(l), std::move(r));
}
ExprPtr Sub(ExprPtr l, ExprPtr r) {
  return std::make_shared<ArithExpr>(ArithOp::kSub, std::move(l), std::move(r));
}
ExprPtr Mul(ExprPtr l, ExprPtr r) {
  return std::make_shared<ArithExpr>(ArithOp::kMul, std::move(l), std::move(r));
}
ExprPtr Div(ExprPtr l, ExprPtr r) {
  return std::make_shared<ArithExpr>(ArithOp::kDiv, std::move(l), std::move(r));
}

ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return std::make_shared<CompareExpr>(CmpOp::kEq, std::move(l), std::move(r));
}
ExprPtr Ne(ExprPtr l, ExprPtr r) {
  return std::make_shared<CompareExpr>(CmpOp::kNe, std::move(l), std::move(r));
}
ExprPtr Lt(ExprPtr l, ExprPtr r) {
  return std::make_shared<CompareExpr>(CmpOp::kLt, std::move(l), std::move(r));
}
ExprPtr Le(ExprPtr l, ExprPtr r) {
  return std::make_shared<CompareExpr>(CmpOp::kLe, std::move(l), std::move(r));
}
ExprPtr Gt(ExprPtr l, ExprPtr r) {
  return std::make_shared<CompareExpr>(CmpOp::kGt, std::move(l), std::move(r));
}
ExprPtr Ge(ExprPtr l, ExprPtr r) {
  return std::make_shared<CompareExpr>(CmpOp::kGe, std::move(l), std::move(r));
}

ExprPtr And(ExprPtr l, ExprPtr r) {
  return std::make_shared<LogicalExpr>(true, std::move(l), std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return std::make_shared<LogicalExpr>(false, std::move(l), std::move(r));
}
ExprPtr Not(ExprPtr e) { return std::make_shared<NotExpr>(std::move(e)); }
ExprPtr IsNull(ExprPtr e) { return std::make_shared<IsNullExpr>(std::move(e)); }

ExprPtr AndAll(std::vector<ExprPtr> terms) {
  if (terms.empty()) return Lit(Value::Int64(1));
  ExprPtr out = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) {
    out = And(std::move(out), terms[i]);
  }
  return out;
}

ExprPtr CaseWhen(std::vector<std::pair<ExprPtr, ExprPtr>> branches,
                 ExprPtr else_expr) {
  return std::make_shared<CaseWhenExpr>(std::move(branches),
                                        std::move(else_expr));
}

ExprPtr Coalesce(std::vector<ExprPtr> args) {
  return std::make_shared<CoalesceExpr>(std::move(args));
}

ExprPtr Abs(ExprPtr e) { return std::make_shared<AbsExpr>(std::move(e)); }

ExprPtr Round(ExprPtr e, int digits) {
  return std::make_shared<RoundExpr>(std::move(e), digits);
}

}  // namespace pctagg
