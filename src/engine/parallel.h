#ifndef PCTAGG_ENGINE_PARALLEL_H_
#define PCTAGG_ENGINE_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace pctagg {

// Morsel-driven intra-operator parallelism. An operator splits its input
// into fixed-size row ranges ("morsels"), workers claim morsels dynamically
// from a shared counter, and each worker accumulates into thread-local state
// that the operator merges afterwards. Workers come from the process-wide
// SharedThreadPool(); the dispatching thread itself acts as worker 0 and can
// drain every morsel alone, so a dispatch never waits for a pool slot — the
// property that makes it safe to run morsels from inside a pool task (e.g. a
// query submitted to the same pool by QueryExecutor).

// Default morsel granularity. Small enough that 1M–2.5M-row inputs split
// into plenty of morsels for 8 workers, big enough that the per-morsel
// bookkeeping (one mutex acquisition) is noise.
inline constexpr size_t kDefaultMorselRows = 65536;

// Bounds for MorselPlan::Auto's adaptive sizing. The lower bound keeps the
// per-morsel bookkeeping amortized; the upper bound keeps enough morsels in
// flight that dynamic claiming can still balance skewed workers.
inline constexpr size_t kMinAdaptiveMorselRows = 16384;
inline constexpr size_t kMaxAdaptiveMorselRows = 262144;

// Number of CPUs actually available to this process (sched_getaffinity on
// Linux, hardware_concurrency otherwise), cached after the first call and
// never less than 1. Requesting more workers than this only adds context
// switches, never throughput — BENCH_parallel.json's dop=4-slower-than-dop=1
// row was exactly this effect on a small host.
size_t AvailableParallelism();

// The degree of parallelism in effect for the current thread; kernels read
// this when their `dop` argument is 0. Defaults to 1 (serial). Pool workers
// running morsels always see 1, so nested dispatch degenerates to serial
// execution instead of oversubscribing the pool.
size_t CurrentDop();

// Scoped override of CurrentDop() for the calling thread. PctDatabase wraps
// query execution in one of these, resolved from QueryOptions, so the knob
// reaches the engine kernels without threading a parameter through every
// planner helper. `dop` of 0 means "auto": the shared pool's thread count.
class ScopedParallelism {
 public:
  explicit ScopedParallelism(size_t dop);
  ~ScopedParallelism();

  ScopedParallelism(const ScopedParallelism&) = delete;
  ScopedParallelism& operator=(const ScopedParallelism&) = delete;

 private:
  size_t previous_;
};

// How `num_rows` input rows split into morsels for `dop` workers. A plan
// with num_workers <= 1 is executed serially on the calling thread.
struct MorselPlan {
  size_t num_rows = 0;
  size_t morsel_rows = kDefaultMorselRows;
  size_t num_morsels = 0;
  size_t num_workers = 1;

  static MorselPlan For(size_t num_rows, size_t dop,
                        size_t morsel_rows = kDefaultMorselRows);

  // Adaptive variant used by the fused operators: clamps the worker count to
  // AvailableParallelism() (oversubscription is pure overhead) and sizes
  // morsels so each effective worker claims ~4 of them, bounded to
  // [kMinAdaptiveMorselRows, kMaxAdaptiveMorselRows]. A serial plan
  // (effective dop 1) keeps kDefaultMorselRows so accumulation scratch stays
  // cache-resident.
  static MorselPlan Auto(size_t num_rows, size_t dop);

  size_t Begin(size_t morsel) const { return morsel * morsel_rows; }
  size_t End(size_t morsel) const {
    size_t e = (morsel + 1) * morsel_rows;
    return e < num_rows ? e : num_rows;
  }
};

// Runs `fn(worker, begin, end)` over every morsel in `plan`. `worker` is a
// stable id in [0, plan.num_workers) identifying which thread-local partial
// state to use; `begin`/`end` bound the morsel's row range.
//
// Workers claim morsels dynamically, and the calling thread participates as
// worker 0: if the shared pool is saturated (or shutting down), the caller
// simply claims and runs every morsel itself, and the helper tasks find
// nothing left to do whenever they eventually run. RunMorsels therefore
// never deadlocks on pool capacity, and returns only after every morsel has
// completed — with all worker writes visible to the caller.
//
// `fn` must not block on other pool tasks (leaf work only) and must not
// throw. Calls with plan.num_workers <= 1 run entirely on the calling
// thread, in morsel order.
void RunMorsels(const MorselPlan& plan,
                const std::function<void(size_t, size_t, size_t)>& fn);

// Convenience: partition-parallel loop over `count` independent items (used
// for the partitioned merge phase of two-phase aggregation). Runs
// `fn(item)` for item in [0, count) across min(dop, count) workers.
void RunPartitions(size_t count, size_t dop,
                   const std::function<void(size_t)>& fn);

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_PARALLEL_H_
