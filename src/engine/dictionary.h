#ifndef PCTAGG_ENGINE_DICTIONARY_H_
#define PCTAGG_ENGINE_DICTIONARY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pctagg {

// An insert-ordered interning dictionary for one string column (MonetDB/X100
// style): every distinct string gets a dense uint32 code in first-seen order,
// the column stores codes, and operators key, probe and compare on the
// fixed-width codes instead of the heap-allocated payloads.
//
// Codes are append-only and never reassigned, so a code handed out once stays
// valid for the dictionary's lifetime and dictionaries can be shared between
// a base table and every result/temporary table derived from it (Column
// adopts the source dictionary on its first AppendFrom).
//
// Concurrency contract, matching the executor's reader/writer discipline
// (queries hold the shared lock, DDL/INSERT the exclusive lock):
//   * GetOrAdd (the only mutator) runs single-writer, with no concurrent
//     GetOrAdd/Find. The executor's exclusive lock provides this.
//   * Find may run from many threads at once (morsel workers translating
//     probe codes) as long as no writer is active — plain const reads.
//   * value() and size() are safe even CONCURRENT WITH a writer: a server
//     renders a finished query's result table after releasing the shared
//     lock, and that result may share this dictionary with a base table an
//     INSERT is growing at the same moment. Values therefore live in
//     geometrically sized chunks behind an array of atomic chunk pointers —
//     growth publishes a new chunk but never moves or frees a published one,
//     and size_ is released only after the string is fully constructed.
class Dictionary {
 public:
  // Returned by Find for strings not in the dictionary. Never a valid code
  // (the code space is capped well below UINT32_MAX), so translated probe
  // keys carrying it can never equal a key built from real codes.
  static constexpr uint32_t kInvalidCode = UINT32_MAX;

  Dictionary() = default;
  ~Dictionary();

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  // Returns the code for `s`, interning it first if absent. Single writer.
  uint32_t GetOrAdd(std::string_view s);

  // Returns the code for `s` or kInvalidCode. Safe from concurrent readers
  // when no writer is active.
  uint32_t Find(std::string_view s) const;

  // The string behind `code` (must be < size()). Lock-free reader: safe
  // concurrently with a writer interning new strings.
  const std::string& value(uint32_t code) const {
    return ChunkFor(code)[OffsetFor(code)];
  }

  // Number of distinct strings interned. Acquire-ordered so a reader that
  // learned a code from published column data sees its string.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  // Total bytes of interned string payloads (observability).
  size_t pool_bytes() const {
    return pool_bytes_.load(std::memory_order_relaxed);
  }

 private:
  // Chunk k holds kFirstChunk << k strings; 26 chunks cover ~2^36 codes,
  // far beyond the uint32 code space.
  static constexpr size_t kFirstChunkLog2 = 10;
  static constexpr size_t kFirstChunk = size_t{1} << kFirstChunkLog2;
  static constexpr size_t kMaxChunks = 26;

  static size_t ChunkIndex(uint32_t code) {
    size_t adj = (static_cast<size_t>(code) >> kFirstChunkLog2) + 1;
    size_t k = 0;
    while (adj >>= 1) ++k;  // floor(log2); codes cluster low, loop is short
    return k;
  }
  static size_t OffsetFor(uint32_t code) {
    size_t k = ChunkIndex(code);
    size_t base = ((size_t{1} << k) - 1) << kFirstChunkLog2;
    return static_cast<size_t>(code) - base;
  }
  const std::string* ChunkFor(uint32_t code) const {
    return chunks_[ChunkIndex(code)].load(std::memory_order_acquire);
  }

  void Grow(size_t min_slots);

  std::array<std::atomic<std::string*>, kMaxChunks> chunks_{};
  std::atomic<size_t> size_{0};
  std::atomic<size_t> pool_bytes_{0};

  // Open-addressing code lookup (string -> code); only touched under the
  // writer/no-writer regimes above, so plain vectors suffice.
  std::vector<uint64_t> slot_hash_;
  std::vector<uint32_t> slot_code_;  // kInvalidCode marks a free slot
  size_t mask_ = 0;
};

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_DICTIONARY_H_
