#ifndef PCTAGG_ENGINE_TABLE_OPS_H_
#define PCTAGG_ENGINE_TABLE_OPS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/expression.h"
#include "engine/table.h"

namespace pctagg {

// One projected output column: expression + output name.
struct ProjectSpec {
  ExprPtr expr;
  std::string output_name;
};

// SELECT <specs> FROM input.
Result<Table> Project(const Table& input, const std::vector<ProjectSpec>& specs);

// SELECT * FROM input WHERE predicate (rows where predicate is true).
Result<Table> Filter(const Table& input, const ExprPtr& predicate);

// SELECT DISTINCT <columns> FROM input, preserving first-seen order (the
// feedback query that discovers the N result columns of a horizontal pivot).
Result<Table> Distinct(const Table& input,
                       const std::vector<std::string>& columns);

// One ORDER BY key: a column plus direction.
struct SortKey {
  std::string column;
  bool descending = false;
};

// ORDER BY <columns> ascending, NULLs first; stable.
Result<Table> Sort(const Table& input, const std::vector<std::string>& columns);

// ORDER BY with per-key direction (NULLs first under ASC, last under DESC);
// stable.
Result<Table> SortBy(const Table& input, const std::vector<SortKey>& keys);

// LIMIT: the first `limit` rows of `input`.
Table Limit(const Table& input, size_t limit);

// The row permutation Sort() would apply: output[i] is the input row index
// of the i-th row in sorted order. Used by the pivot to emit result columns
// in a deterministic order without moving data.
Result<std::vector<size_t>> SortPermutation(
    const Table& input, const std::vector<std::string>& columns);

// Appends all rows of `src` to `dst` (schemas must be compatible by position:
// same arity and types). Implements INSERT INTO dst SELECT * FROM src.
Status InsertInto(Table* dst, const Table& src);

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_TABLE_OPS_H_
