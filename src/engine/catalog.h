#ifndef PCTAGG_ENGINE_CATALOG_H_
#define PCTAGG_ENGINE_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/table.h"

namespace pctagg {

// A named-table registry. Base tables and the temporary tables materialized
// by percentage-query plans (Fk, Fj, FV, FH, ...) all live here; plan steps
// refer to tables by name exactly like the generated SQL does.
//
// Thread safety: registry operations (create/drop/lookup) are internally
// synchronized, so concurrent percentage queries can materialize their own
// temporary tables against one shared catalog (each plan's temp names are
// process-unique). The *contents* of a table are not locked — concurrent
// queries may read shared base tables but must not mutate or replace a
// table another query is reading.
class Catalog {
 public:
  Catalog() = default;

  // Not copyable: tables can be large and names are identity.
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Registers `table` under `name` (case-insensitive). Fails on collision.
  Status CreateTable(const std::string& name, Table table);

  // Registers or replaces.
  void CreateOrReplaceTable(const std::string& name, Table table);

  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const;

  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  // Sorted list of registered names (normalized to lower case).
  std::vector<std::string> TableNames() const;

  // Generates a fresh temporary-table name with the given prefix.
  std::string TempName(const std::string& prefix);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  uint64_t temp_counter_ = 0;
};

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_CATALOG_H_
