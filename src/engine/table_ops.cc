#include "engine/table_ops.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "obs/trace.h"

namespace pctagg {

Result<Table> Project(const Table& input,
                      const std::vector<ProjectSpec>& specs) {
  Table out;
  for (const ProjectSpec& spec : specs) {
    PCTAGG_ASSIGN_OR_RETURN(DataType t, spec.expr->ResultType(input.schema()));
    PCTAGG_ASSIGN_OR_RETURN(Column c, spec.expr->Evaluate(input));
    PCTAGG_RETURN_IF_ERROR(out.AddColumn({spec.output_name, t}, std::move(c)));
  }
  return out;
}

Result<Table> Filter(const Table& input, const ExprPtr& predicate) {
  obs::OpScope op("filter");
  PCTAGG_ASSIGN_OR_RETURN(Column pred, predicate->Evaluate(input));
  if (pred.type() != DataType::kInt64) {
    return Status::TypeMismatch("filter predicate must be boolean");
  }
  Table out(input.schema());
  for (size_t row = 0; row < input.num_rows(); ++row) {
    if (!pred.IsNull(row) && pred.Int64At(row) != 0) {
      out.AppendRowFrom(input, row);
    }
  }
  op.SetRows(input.num_rows(), out.num_rows());
  return out;
}

Result<Table> Distinct(const Table& input,
                       const std::vector<std::string>& columns) {
  std::vector<size_t> col_idx;
  Schema out_schema;
  for (const std::string& name : columns) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, input.schema().FindColumn(name));
    col_idx.push_back(idx);
    out_schema.AddColumn(input.schema().column(idx));
  }
  Table out(out_schema);
  std::unordered_set<std::string> seen;
  std::string key;
  for (size_t row = 0; row < input.num_rows(); ++row) {
    key.clear();
    input.AppendKeyBytes(row, col_idx, &key);
    if (!seen.insert(key).second) continue;
    for (size_t c = 0; c < col_idx.size(); ++c) {
      out.mutable_column(c).AppendFrom(input.column(col_idx[c]), row);
    }
  }
  return out;
}

Result<std::vector<size_t>> SortPermutation(
    const Table& input, const std::vector<std::string>& columns) {
  std::vector<size_t> col_idx;
  for (const std::string& name : columns) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, input.schema().FindColumn(name));
    col_idx.push_back(idx);
  }
  std::vector<size_t> order(input.num_rows());
  std::iota(order.begin(), order.end(), 0);
  auto less_at = [&](size_t a, size_t b) {
    for (size_t ci : col_idx) {
      const Column& c = input.column(ci);
      bool an = c.IsNull(a);
      bool bn = c.IsNull(b);
      if (an || bn) {
        if (an && bn) continue;
        return an;  // NULLs first
      }
      int cmp = 0;
      if (c.type() == DataType::kString) {
        cmp = c.StringAt(a).compare(c.StringAt(b));
      } else {
        double x = c.NumericAt(a);
        double y = c.NumericAt(b);
        cmp = x < y ? -1 : (x > y ? 1 : 0);
      }
      if (cmp != 0) return cmp < 0;
    }
    return false;
  };
  std::stable_sort(order.begin(), order.end(), less_at);
  return order;
}

Result<Table> Sort(const Table& input,
                   const std::vector<std::string>& columns) {
  PCTAGG_ASSIGN_OR_RETURN(std::vector<size_t> order,
                          SortPermutation(input, columns));
  Table out(input.schema());
  out.Reserve(input.num_rows());
  for (size_t row : order) out.AppendRowFrom(input, row);
  return out;
}

Result<Table> SortBy(const Table& input, const std::vector<SortKey>& keys) {
  std::vector<size_t> col_idx;
  std::vector<bool> desc;
  for (const SortKey& k : keys) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, input.schema().FindColumn(k.column));
    col_idx.push_back(idx);
    desc.push_back(k.descending);
  }
  std::vector<size_t> order(input.num_rows());
  std::iota(order.begin(), order.end(), 0);
  auto less_at = [&](size_t a, size_t b) {
    for (size_t k = 0; k < col_idx.size(); ++k) {
      const Column& c = input.column(col_idx[k]);
      bool an = c.IsNull(a);
      bool bn = c.IsNull(b);
      if (an || bn) {
        if (an && bn) continue;
        // NULLs first ascending, last descending.
        return desc[k] ? bn : an;
      }
      int cmp = 0;
      if (c.type() == DataType::kString) {
        cmp = c.StringAt(a).compare(c.StringAt(b));
      } else {
        double x = c.NumericAt(a);
        double y = c.NumericAt(b);
        cmp = x < y ? -1 : (x > y ? 1 : 0);
      }
      if (cmp != 0) return desc[k] ? cmp > 0 : cmp < 0;
    }
    return false;
  };
  std::stable_sort(order.begin(), order.end(), less_at);
  Table out(input.schema());
  out.Reserve(input.num_rows());
  for (size_t row : order) out.AppendRowFrom(input, row);
  return out;
}

Table Limit(const Table& input, size_t limit) {
  if (limit >= input.num_rows()) return input;
  Table out(input.schema());
  out.Reserve(limit);
  for (size_t row = 0; row < limit; ++row) out.AppendRowFrom(input, row);
  return out;
}

Status InsertInto(Table* dst, const Table& src) {
  if (dst->num_columns() != src.num_columns()) {
    return Status::InvalidArgument("INSERT arity mismatch");
  }
  for (size_t i = 0; i < dst->num_columns(); ++i) {
    if (dst->schema().column(i).type != src.schema().column(i).type) {
      return Status::TypeMismatch("INSERT column type mismatch at position " +
                                  std::to_string(i));
    }
  }
  // Column-at-a-time bulk append: one vector insert per numeric column, one
  // per-distinct-code dictionary translation per string column (see
  // Column::AppendAllFrom), instead of a per-row per-column variant visit.
  for (size_t i = 0; i < dst->num_columns(); ++i) {
    dst->mutable_column(i).AppendAllFrom(src.column(i));
  }
  return Status::OK();
}

}  // namespace pctagg
