#include "engine/catalog.h"

#include "common/string_util.h"

namespace pctagg {

Status Catalog::CreateTable(const std::string& name, Table table) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  tables_[key] = std::make_unique<Table>(std::move(table));
  return Status::OK();
}

void Catalog::CreateOrReplaceTable(const std::string& name, Table table) {
  std::lock_guard<std::mutex> lock(mutex_);
  tables_[ToLower(name)] = std::make_unique<Table>(std::move(table));
}

Status Catalog::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tables_.erase(ToLower(name)) == 0) {
    return Status::NotFound("table not found: " + name);
  }
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tables_.count(ToLower(name)) > 0;
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("table not found: " + name);
  return it->second.get();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("table not found: " + name);
  return static_cast<const Table*>(it->second.get());
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

std::string Catalog::TempName(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string name;
  do {
    name = prefix + "_" + std::to_string(++temp_counter_);
  } while (tables_.count(ToLower(name)) > 0);
  return name;
}

}  // namespace pctagg
