#include "engine/parallel.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

#include "common/thread_pool.h"

namespace pctagg {

namespace {

thread_local size_t tls_dop = 1;

// State shared between the dispatching thread and its helper tasks. Helpers
// hold a shared_ptr so a task that only gets scheduled after the dispatch
// already finished (every morsel claimed by others) still has valid memory
// to look at — it observes `next >= num_morsels` and exits without ever
// touching `fn`, whose captures die when RunMorsels returns.
struct MorselRun {
  MorselPlan plan;
  const std::function<void(size_t, size_t, size_t)>* fn = nullptr;
  std::atomic<size_t> next{0};

  std::mutex mutex;
  std::condition_variable cv;
  size_t done = 0;  // completed morsels

  // Claims morsels until none remain. Returns after this worker can claim
  // nothing more; other workers may still be mid-morsel.
  void Drain(size_t worker) {
    for (;;) {
      size_t m = next.fetch_add(1, std::memory_order_relaxed);
      if (m >= plan.num_morsels) return;
      (*fn)(worker, plan.Begin(m), plan.End(m));
      bool all = false;
      {
        std::lock_guard<std::mutex> lock(mutex);
        all = ++done == plan.num_morsels;
      }
      if (all) cv.notify_all();
    }
  }

  void WaitAllDone() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return done == plan.num_morsels; });
  }
};

size_t ProbeAvailableParallelism() {
#if defined(__linux__)
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<size_t>(n);
  }
#endif
  unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? n : 1;
}

}  // namespace

size_t AvailableParallelism() {
  static const size_t cpus = ProbeAvailableParallelism();
  return cpus;
}

size_t CurrentDop() { return tls_dop; }

ScopedParallelism::ScopedParallelism(size_t dop) : previous_(tls_dop) {
  if (dop == 0) dop = SharedThreadPool().num_threads();
  tls_dop = dop < 1 ? 1 : dop;
}

ScopedParallelism::~ScopedParallelism() { tls_dop = previous_; }

MorselPlan MorselPlan::For(size_t num_rows, size_t dop, size_t morsel_rows) {
  MorselPlan plan;
  plan.num_rows = num_rows;
  plan.morsel_rows = morsel_rows < 1 ? 1 : morsel_rows;
  plan.num_morsels = (num_rows + plan.morsel_rows - 1) / plan.morsel_rows;
  if (dop < 1) dop = 1;
  plan.num_workers = dop < plan.num_morsels ? dop : plan.num_morsels;
  if (plan.num_workers < 1) plan.num_workers = 1;
  return plan;
}

MorselPlan MorselPlan::Auto(size_t num_rows, size_t dop) {
  if (dop < 1) dop = 1;
  size_t effective = dop < AvailableParallelism() ? dop : AvailableParallelism();
  if (effective <= 1) return For(num_rows, 1);
  // ~4 morsels per effective worker keeps dynamic claiming able to balance
  // skew without paying per-morsel overhead on every 64K rows.
  size_t target = (num_rows + effective * 4 - 1) / (effective * 4);
  if (target < kMinAdaptiveMorselRows) target = kMinAdaptiveMorselRows;
  if (target > kMaxAdaptiveMorselRows) target = kMaxAdaptiveMorselRows;
  return For(num_rows, effective, target);
}

void RunMorsels(const MorselPlan& plan,
                const std::function<void(size_t, size_t, size_t)>& fn) {
  if (plan.num_morsels == 0) return;
  if (plan.num_workers <= 1) {
    for (size_t m = 0; m < plan.num_morsels; ++m) {
      fn(0, plan.Begin(m), plan.End(m));
    }
    return;
  }
  auto run = std::make_shared<MorselRun>();
  run->plan = plan;
  run->fn = &fn;
  ThreadPool& pool = SharedThreadPool();
  for (size_t w = 1; w < plan.num_workers; ++w) {
    // Helpers run with DOP 1: any kernel they invoke inside a morsel stays
    // serial rather than re-entering the dispatcher.
    pool.Submit([run, w] {
      ScopedParallelism serial(1);
      run->Drain(w);
    });
    // Submit only fails once the process-wide pool is shutting down (exit);
    // worker 0 below picks up the slack either way.
  }
  {
    ScopedParallelism serial(1);
    run->Drain(0);
  }
  run->WaitAllDone();
  // Helpers scheduled late will see every morsel claimed and drop their
  // reference; `fn` is not touched after WaitAllDone returns.
  run->fn = nullptr;
}

void RunPartitions(size_t count, size_t dop,
                   const std::function<void(size_t)>& fn) {
  MorselPlan plan = MorselPlan::For(count, dop, /*morsel_rows=*/1);
  RunMorsels(plan, [&fn](size_t, size_t begin, size_t) { fn(begin); });
}

}  // namespace pctagg
