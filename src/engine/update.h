#ifndef PCTAGG_ENGINE_UPDATE_H_
#define PCTAGG_ENGINE_UPDATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/index.h"
#include "engine/table.h"

namespace pctagg {

// Implements the paper's second Vpct strategy:
//
//   UPDATE Fk SET A = CASE WHEN Fj.A <> 0 THEN Fk.A / Fj.A ELSE NULL END
//   WHERE Fk.D1 = Fj.D1 AND ... AND Fk.Dj = Fj.Dj;   /* FV = Fk */
//
// `target` (Fk) is modified in place: its `target_value` column is divided by
// the `source_value` of the `source` (Fj) row with equal join keys. A zero or
// NULL divisor — or a missing source row — stores NULL. Like a row-store
// UPDATE, this runs row-at-a-time (read, probe, modify, write back), which is
// exactly why the paper found UPDATE up to an order of magnitude slower than
// INSERT when |FV| ~ |F|. Passing a prebuilt `source_index` models the
// matching-subkey-index optimization.
Status KeyedDivideUpdate(Table* target,
                         const std::vector<std::string>& target_keys,
                         const std::string& target_value, const Table& source,
                         const std::vector<std::string>& source_keys,
                         const std::string& source_value,
                         const HashIndex* source_index = nullptr);

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_UPDATE_H_
