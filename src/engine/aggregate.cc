#include "engine/aggregate.h"

#include <limits>
#include <unordered_map>

namespace pctagg {

namespace {

// Accumulator state for one (group, aggregate) pair. A single struct covers
// all functions; which fields are live depends on the function.
struct AggState {
  double sum = 0.0;
  int64_t isum = 0;
  int64_t count = 0;      // non-null inputs seen
  int64_t row_count = 0;  // all rows (count(*))
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::string smin;
  std::string smax;
  bool saw_value = false;
};

Result<DataType> AggOutputType(const AggSpec& spec, const Schema& schema) {
  switch (spec.func) {
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      return DataType::kInt64;
    case AggFunc::kAvg:
      return DataType::kFloat64;
    case AggFunc::kSum: {
      PCTAGG_ASSIGN_OR_RETURN(DataType t, spec.input->ResultType(schema));
      if (t == DataType::kString) {
        return Status::TypeMismatch("sum() over string column");
      }
      return t;
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      PCTAGG_ASSIGN_OR_RETURN(DataType t, spec.input->ResultType(schema));
      return t;
    }
  }
  return Status::Internal("unknown aggregate function");
}

}  // namespace

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      return "count";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

Result<Table> HashAggregate(const Table& input,
                            const std::vector<std::string>& group_by,
                            const std::vector<AggSpec>& aggs) {
  // Resolve group-by columns.
  std::vector<size_t> group_idx;
  group_idx.reserve(group_by.size());
  for (const std::string& name : group_by) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, input.schema().FindColumn(name));
    group_idx.push_back(idx);
  }

  // Validate aggregates and evaluate inputs (vectorized, once per spec).
  std::vector<DataType> out_types;
  std::vector<Column> agg_inputs;
  out_types.reserve(aggs.size());
  agg_inputs.reserve(aggs.size());
  for (const AggSpec& spec : aggs) {
    if (spec.func != AggFunc::kCountStar && spec.input == nullptr) {
      return Status::InvalidArgument("aggregate requires an input expression");
    }
    if (spec.func == AggFunc::kCountStar) {
      out_types.push_back(DataType::kInt64);
      agg_inputs.emplace_back(DataType::kInt64);  // placeholder, unused
      continue;
    }
    PCTAGG_ASSIGN_OR_RETURN(DataType t, AggOutputType(spec, input.schema()));
    out_types.push_back(t);
    PCTAGG_ASSIGN_OR_RETURN(Column c, spec.input->Evaluate(input));
    agg_inputs.push_back(std::move(c));
  }

  // Group assignment.
  std::unordered_map<std::string, size_t> group_of;
  std::vector<size_t> representative_row;  // first row of each group
  std::vector<std::vector<AggState>> states;
  const size_t n = input.num_rows();
  std::string key;
  for (size_t row = 0; row < n; ++row) {
    key.clear();
    input.AppendKeyBytes(row, group_idx, &key);
    auto [it, inserted] = group_of.emplace(key, states.size());
    if (inserted) {
      representative_row.push_back(row);
      states.emplace_back(aggs.size());
    }
    std::vector<AggState>& gs = states[it->second];
    for (size_t a = 0; a < aggs.size(); ++a) {
      AggState& st = gs[a];
      st.row_count++;
      if (aggs[a].func == AggFunc::kCountStar) continue;
      const Column& in = agg_inputs[a];
      if (in.IsNull(row)) continue;  // sum()/count()/min()/max() skip NULLs
      st.count++;
      st.saw_value = true;
      if (in.type() == DataType::kString) {
        const std::string& s = in.StringAt(row);
        if (st.count == 1 || s < st.smin) st.smin = s;
        if (st.count == 1 || s > st.smax) st.smax = s;
      } else {
        double v = in.NumericAt(row);
        st.sum += v;
        if (in.type() == DataType::kInt64) st.isum += in.Int64At(row);
        if (v < st.min) st.min = v;
        if (v > st.max) st.max = v;
      }
    }
  }

  // A global aggregation over zero rows still produces one (empty) group.
  if (group_idx.empty() && states.empty()) {
    states.emplace_back(aggs.size());
    representative_row.push_back(0);  // unused: no group columns to copy
  }

  // Build output schema.
  Schema out_schema;
  for (size_t gi : group_idx) {
    out_schema.AddColumn(input.schema().column(gi));
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    out_schema.AddColumn({aggs[a].output_name, out_types[a]});
  }
  Table out(out_schema);
  out.Reserve(states.size());

  for (size_t g = 0; g < states.size(); ++g) {
    std::vector<Value> row;
    row.reserve(group_idx.size() + aggs.size());
    for (size_t gi : group_idx) {
      row.push_back(input.column(gi).GetValue(representative_row[g]));
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggState& st = states[g][a];
      const AggSpec& spec = aggs[a];
      switch (spec.func) {
        case AggFunc::kCountStar:
          row.push_back(Value::Int64(st.row_count));
          break;
        case AggFunc::kCount:
          row.push_back(Value::Int64(st.count));
          break;
        case AggFunc::kSum:
          if (!st.saw_value) {
            row.push_back(Value::Null());
          } else if (out_types[a] == DataType::kInt64) {
            row.push_back(Value::Int64(st.isum));
          } else {
            row.push_back(Value::Float64(st.sum));
          }
          break;
        case AggFunc::kAvg:
          row.push_back(st.saw_value
                            ? Value::Float64(st.sum / static_cast<double>(st.count))
                            : Value::Null());
          break;
        case AggFunc::kMin:
          if (!st.saw_value) {
            row.push_back(Value::Null());
          } else if (out_types[a] == DataType::kString) {
            row.push_back(Value::String(st.smin));
          } else if (out_types[a] == DataType::kInt64) {
            row.push_back(Value::Int64(static_cast<int64_t>(st.min)));
          } else {
            row.push_back(Value::Float64(st.min));
          }
          break;
        case AggFunc::kMax:
          if (!st.saw_value) {
            row.push_back(Value::Null());
          } else if (out_types[a] == DataType::kString) {
            row.push_back(Value::String(st.smax));
          } else if (out_types[a] == DataType::kInt64) {
            row.push_back(Value::Int64(static_cast<int64_t>(st.max)));
          } else {
            row.push_back(Value::Float64(st.max));
          }
          break;
      }
    }
    PCTAGG_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

}  // namespace pctagg
