#include "engine/aggregate.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "engine/agg_internal.h"
#include "engine/dictionary.h"
#include "engine/packed_key.h"
#include "engine/parallel.h"
#include "obs/trace.h"

namespace pctagg {

namespace {

using aggdetail::AccPlan;
using aggdetail::AggState;

// One worker's thread-local partial aggregation table. Accumulators are
// laid out per spec ([agg][local group]) so each spec's morsel loop walks
// one contiguous array.
struct AggPartial {
  KeyMap groups;
  std::vector<std::vector<AggState>> spec_states;  // [agg][local group]
  std::vector<size_t> first_row;  // min input row per local group
  std::vector<uint32_t> gid;      // morsel scratch: local group id per row
  std::vector<char> key_buf;      // morsel scratch: fixed-stride packed keys
};

// Folds partial `p`'s accumulators for local group `id` into `dst`.
void MergeFromPartial(std::vector<AggState>& dst, const AggPartial& p,
                      size_t id) {
  for (size_t a = 0; a < dst.size(); ++a) {
    aggdetail::MergeState(dst[a], p.spec_states[a][id]);
  }
}

}  // namespace

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      return "count";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

Result<Table> HashAggregate(const Table& input,
                            const std::vector<std::string>& group_by,
                            const std::vector<AggSpec>& aggs, size_t dop) {
  obs::OpScope op("aggregate");
  // Resolve group columns, validate aggregates, evaluate inputs (vectorized,
  // once per spec) and build the per-spec accumulation micro-plans.
  PCTAGG_ASSIGN_OR_RETURN(aggdetail::AggBindings bind,
                          aggdetail::BindAggs(input, group_by, aggs));
  const std::vector<size_t>& group_idx = bind.group_idx;
  const std::vector<AccPlan>& acc_plans = bind.acc_plans;

  // Phase 1: each worker folds its morsels into a thread-local partial
  // table, keyed by the packed group key. Per morsel, a keying loop assigns
  // local group ids into the gid scratch, then each spec runs its resolved
  // accumulation loop over the morsel.
  const size_t n = input.num_rows();
  if (dop == 0) dop = CurrentDop();
  MorselPlan plan = MorselPlan::For(n, dop);
  const KeyEncoder encoder(input, group_idx);

  // Direct-array keying: grouping by ONE dictionary-encoded string column
  // whose dictionary is small means the code already IS a dense group id —
  // no hashing, no key bytes, no probe. Each worker accumulates straight
  // into arrays of dict_size + 1 slots (the extra slot takes NULL rows) and
  // the merge is elementwise. The cap bounds the per-worker footprint for
  // dictionaries much larger than the actual group count (a shared
  // dictionary can hold codes this column never uses).
  constexpr size_t kDirectDictMaxSlots = 4096;
  const uint32_t* direct_codes = nullptr;
  const uint8_t* direct_validity = nullptr;
  size_t direct_slots = 0;
  if (group_idx.size() == 1 &&
      input.column(group_idx[0]).type() == DataType::kString) {
    const Column& gc = input.column(group_idx[0]);
    if (gc.dict()->size() + 1 <= kDirectDictMaxSlots) {
      direct_codes = gc.codes().data();
      direct_validity = gc.validity().data();
      direct_slots = gc.dict()->size() + 1;
    }
  }

  std::vector<AggPartial> partials(plan.num_workers);
  for (AggPartial& p : partials) {
    p.spec_states.resize(aggs.size());
    if (direct_slots > 0) {
      for (std::vector<AggState>& sc : p.spec_states) sc.resize(direct_slots);
      p.first_row.assign(direct_slots, SIZE_MAX);
    }
  }
  RunMorsels(plan, [&](size_t worker, size_t begin, size_t end) {
    AggPartial& p = partials[worker];
    const size_t count = end - begin;
    if (p.gid.size() < count) p.gid.resize(count);
    if (direct_slots > 0) {
      const uint32_t null_slot = static_cast<uint32_t>(direct_slots - 1);
      for (size_t row = begin; row < end; ++row) {
        const uint32_t g =
            direct_validity[row] ? direct_codes[row] : null_slot;
        if (row < p.first_row[g]) p.first_row[g] = row;
        p.gid[row - begin] = g;
      }
    } else if (encoder.fixed_only()) {
      // All-fixed-width keys: encode the whole morsel column-at-a-time into
      // a stride-constant buffer, then key it through the stride-specialized
      // batch probe. New groups' accumulators are default states, so the
      // spec columns just extend to the new group count afterwards.
      const size_t stride = encoder.fixed_width();
      if (p.key_buf.size() < count * stride) p.key_buf.resize(count * stride);
      encoder.EncodeFixedBatch(begin, end, p.key_buf.data());
      p.groups.GetOrAddFixedBatch(p.key_buf.data(), stride, count, begin,
                                  p.gid.data(), &p.first_row);
      for (std::vector<AggState>& sc : p.spec_states) {
        if (sc.size() < p.groups.size()) sc.resize(p.groups.size());
      }
    } else {
      std::string key;
      key.reserve(encoder.fixed_width() + 16);
      for (size_t row = begin; row < end; ++row) {
        key.clear();
        encoder.AppendKey(row, &key);
        auto [g, inserted] = p.groups.GetOrAdd(key);
        if (inserted) {
          for (std::vector<AggState>& sc : p.spec_states) sc.emplace_back();
          p.first_row.push_back(row);
        } else if (row < p.first_row[g]) {
          p.first_row[g] = row;
        }
        p.gid[row - begin] = static_cast<uint32_t>(g);
      }
    }
    for (size_t a = 0; a < acc_plans.size(); ++a) {
      aggdetail::AccumulateMorsel(acc_plans[a], p.gid, begin, end,
                                  p.spec_states[a]);
    }
  });

  // Phase 2: merge the partials into global groups. A single worker's
  // partial is already the answer, in first-seen order. Otherwise the key
  // space is split into hash partitions merged in parallel, and the result
  // ordered by each group's first input row — reproducing exactly the
  // first-seen order a serial run would emit.
  std::vector<std::vector<AggState>> states;
  std::vector<size_t> representative_row;
  if (direct_slots > 0 && !partials.empty()) {
    // Direct-array path: merge elementwise into partial 0, then emit the
    // slots that saw rows, ordered by first input row. (Code order is NOT
    // first-seen order in general — a derived table can hold a shared
    // dictionary's codes in any row order — so the sort applies even for a
    // single worker.)
    AggPartial& p0 = partials[0];
    for (size_t w = 1; w < partials.size(); ++w) {
      const AggPartial& pw = partials[w];
      for (size_t g = 0; g < direct_slots; ++g) {
        if (pw.first_row[g] == SIZE_MAX) continue;
        for (size_t a = 0; a < aggs.size(); ++a) {
          aggdetail::MergeState(p0.spec_states[a][g], pw.spec_states[a][g]);
        }
        p0.first_row[g] = std::min(p0.first_row[g], pw.first_row[g]);
      }
    }
    std::vector<uint32_t> order;
    order.reserve(direct_slots);
    for (size_t g = 0; g < direct_slots; ++g) {
      if (p0.first_row[g] != SIZE_MAX) {
        order.push_back(static_cast<uint32_t>(g));
      }
    }
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return p0.first_row[a] < p0.first_row[b];
    });
    states.reserve(order.size());
    representative_row.reserve(order.size());
    for (uint32_t g : order) {
      states.push_back(aggdetail::GatherStates(p0.spec_states, g));
      representative_row.push_back(p0.first_row[g]);
    }
  } else if (plan.num_workers <= 1 && !partials.empty()) {
    AggPartial& p = partials[0];
    states.reserve(p.groups.size());
    for (size_t g = 0; g < p.groups.size(); ++g) {
      states.push_back(aggdetail::GatherStates(p.spec_states, g));
    }
    representative_row = std::move(p.first_row);
  } else if (!partials.empty()) {
    struct MergedGroup {
      std::vector<AggState> states;
      size_t first_row;
    };
    const size_t num_parts = plan.num_workers;
    std::vector<std::vector<MergedGroup>> part_groups(num_parts);
    RunPartitions(num_parts, plan.num_workers, [&](size_t part) {
      KeyMap seen;
      std::vector<MergedGroup>& out = part_groups[part];
      for (const AggPartial& p : partials) {
        p.groups.ForEach([&](std::string_view key, size_t id) {
          if (KeyMap::Hash(key) % num_parts != part) return;
          auto [g, inserted] = seen.GetOrAdd(key);
          if (inserted) {
            out.push_back(
                {aggdetail::GatherStates(p.spec_states, id), p.first_row[id]});
          } else {
            MergeFromPartial(out[g].states, p, id);
            out[g].first_row = std::min(out[g].first_row, p.first_row[id]);
          }
        });
      }
    });
    std::vector<MergedGroup> merged;
    for (std::vector<MergedGroup>& pg : part_groups) {
      for (MergedGroup& mg : pg) merged.push_back(std::move(mg));
    }
    std::sort(merged.begin(), merged.end(),
              [](const MergedGroup& a, const MergedGroup& b) {
                return a.first_row < b.first_row;
              });
    states.reserve(merged.size());
    representative_row.reserve(merged.size());
    for (MergedGroup& mg : merged) {
      states.push_back(std::move(mg.states));
      representative_row.push_back(mg.first_row);
    }
  }

  if (op.active()) {
    if (direct_slots > 0) {
      // No hash table at all: the dictionary code indexed the accumulator
      // arrays directly. Report the array size as the "slots".
      op.SetHashTable(states.size(), direct_slots);
      op.SetDetail("keys=direct-dict(" + std::to_string(direct_slots - 1) +
                   ")");
    } else {
      // Peak hash-table shape across the workers' thread-local partials; the
      // merge touches every partial, so that count doubles as spill volume.
      size_t peak_groups = 0, peak_slots = 0;
      for (const AggPartial& p : partials) {
        if (p.groups.size() > peak_groups) {
          peak_groups = p.groups.size();
          peak_slots = p.groups.slots();
        }
      }
      op.SetHashTable(peak_groups, peak_slots);
      op.SetDetail("keys=packed(" + std::to_string(encoder.fixed_width()) +
                   "B)");
    }
    op.SetRows(n, states.size());
    op.SetMorsels(plan.num_morsels, plan.num_workers);
    if (plan.num_workers > 1) op.SetPartialsMerged(partials.size());
  }

  return aggdetail::EmitAggOutput(input, group_idx, aggs, bind.out_types,
                                  states, representative_row);
}

}  // namespace pctagg
