#include "engine/aggregate.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "engine/dictionary.h"
#include "engine/packed_key.h"
#include "engine/parallel.h"
#include "obs/trace.h"

namespace pctagg {

namespace {

// Accumulator state for one (group, aggregate) pair. A single struct covers
// all functions; which fields are live depends on the function.
struct AggState {
  double sum = 0.0;
  int64_t isum = 0;
  int64_t count = 0;      // non-null inputs seen
  int64_t row_count = 0;  // all rows (count(*))
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::string smin;
  std::string smax;
  bool saw_value = false;
};

Result<DataType> AggOutputType(const AggSpec& spec, const Schema& schema) {
  switch (spec.func) {
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      return DataType::kInt64;
    case AggFunc::kAvg:
      return DataType::kFloat64;
    case AggFunc::kSum: {
      PCTAGG_ASSIGN_OR_RETURN(DataType t, spec.input->ResultType(schema));
      if (t == DataType::kString) {
        return Status::TypeMismatch("sum() over string column");
      }
      return t;
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      PCTAGG_ASSIGN_OR_RETURN(DataType t, spec.input->ResultType(schema));
      return t;
    }
  }
  return Status::Internal("unknown aggregate function");
}

// A per-spec accumulation micro-plan: the function x input-type dispatch and
// the variant unpacking (Column::NumericAt runs a std::get per call) are
// resolved once per HashAggregate instead of once per row per spec, and each
// spec then runs its own tight loop over the morsel, touching only the
// fields its emission actually reads.
enum class AccKind : uint8_t {
  kCountStar,  // row_count
  kCount,      // count
  kSumInt,     // isum, saw_value
  kSumFloat,   // sum, saw_value
  kAvg,        // sum, count, saw_value
  kAvgStr,     // count, saw_value (degenerate avg-over-string: sum stays 0)
  kMinNum,     // min, saw_value
  kMaxNum,     // max, saw_value
  kMinStr,     // smin, saw_value
  kMaxStr,     // smax, saw_value
};

struct AccPlan {
  AccKind kind = AccKind::kCountStar;
  const uint8_t* validity = nullptr;
  const int64_t* i64 = nullptr;       // set iff the input column is INT64
  const double* f64 = nullptr;        // set iff FLOAT64
  const uint32_t* codes = nullptr;    // set iff STRING (dictionary codes)
  const Dictionary* dict = nullptr;   // set iff STRING

  double NumericAt(size_t row) const {
    return i64 != nullptr ? static_cast<double>(i64[row]) : f64[row];
  }
  const std::string& StringAt(size_t row) const {
    return dict->value(codes[row]);
  }
};

AccPlan MakeAccPlan(const AggSpec& spec, const Column& input) {
  AccPlan ap;
  if (spec.func == AggFunc::kCountStar) {
    ap.kind = AccKind::kCountStar;
    return ap;
  }
  ap.validity = input.validity().data();
  switch (input.type()) {
    case DataType::kInt64:
      ap.i64 = input.int64_data().data();
      break;
    case DataType::kFloat64:
      ap.f64 = input.float64_data().data();
      break;
    case DataType::kString:
      ap.codes = input.codes().data();
      ap.dict = input.dict().get();
      break;
  }
  const bool is_string = input.type() == DataType::kString;
  switch (spec.func) {
    case AggFunc::kCountStar:
      break;  // handled above
    case AggFunc::kCount:
      ap.kind = AccKind::kCount;
      break;
    case AggFunc::kSum:
      // sum() over strings is rejected during validation.
      ap.kind = input.type() == DataType::kInt64 ? AccKind::kSumInt
                                                 : AccKind::kSumFloat;
      break;
    case AggFunc::kAvg:
      ap.kind = is_string ? AccKind::kAvgStr : AccKind::kAvg;
      break;
    case AggFunc::kMin:
      ap.kind = is_string ? AccKind::kMinStr : AccKind::kMinNum;
      break;
    case AggFunc::kMax:
      ap.kind = is_string ? AccKind::kMaxStr : AccKind::kMaxNum;
      break;
  }
  return ap;
}

// Folds one morsel into one spec's per-group accumulator column. `gid` holds
// the local group id of row `begin + i` at position i.
//
// NULLs are the exception in real measure columns, so each morsel first asks
// one memchr whether this span has any at all; the common all-valid span then
// runs a branch-free inner loop (load, accumulate, store — no per-row
// validity test in the dependency chain), and only spans that actually
// contain NULLs pay the per-row branch.
void AccumulateMorsel(const AccPlan& ap, const std::vector<uint32_t>& gid,
                      size_t begin, size_t end, std::vector<AggState>& col) {
  const bool no_nulls =
      ap.validity == nullptr ||
      std::memchr(ap.validity + begin, 0, end - begin) == nullptr;
  switch (ap.kind) {
    case AccKind::kCountStar:
      for (size_t row = begin; row < end; ++row) {
        col[gid[row - begin]].row_count++;
      }
      break;
    case AccKind::kCount:
      if (no_nulls) {
        for (size_t row = begin; row < end; ++row) {
          col[gid[row - begin]].count++;
        }
        break;
      }
      for (size_t row = begin; row < end; ++row) {
        if (ap.validity[row]) col[gid[row - begin]].count++;
      }
      break;
    case AccKind::kSumInt:
      if (no_nulls) {
        for (size_t row = begin; row < end; ++row) {
          AggState& st = col[gid[row - begin]];
          st.isum += ap.i64[row];
          st.saw_value = true;
        }
        break;
      }
      for (size_t row = begin; row < end; ++row) {
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[row - begin]];
        st.isum += ap.i64[row];
        st.saw_value = true;
      }
      break;
    case AccKind::kSumFloat:
      if (no_nulls && ap.f64 != nullptr) {
        for (size_t row = begin; row < end; ++row) {
          AggState& st = col[gid[row - begin]];
          st.sum += ap.f64[row];
          st.saw_value = true;
        }
        break;
      }
      for (size_t row = begin; row < end; ++row) {
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[row - begin]];
        st.sum += ap.NumericAt(row);
        st.saw_value = true;
      }
      break;
    case AccKind::kAvg:
      if (no_nulls && ap.f64 != nullptr) {
        for (size_t row = begin; row < end; ++row) {
          AggState& st = col[gid[row - begin]];
          st.sum += ap.f64[row];
          st.count++;
          st.saw_value = true;
        }
        break;
      }
      for (size_t row = begin; row < end; ++row) {
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[row - begin]];
        st.sum += ap.NumericAt(row);
        st.count++;
        st.saw_value = true;
      }
      break;
    case AccKind::kAvgStr:
      for (size_t row = begin; row < end; ++row) {
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[row - begin]];
        st.count++;
        st.saw_value = true;
      }
      break;
    case AccKind::kMinNum:
      for (size_t row = begin; row < end; ++row) {
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[row - begin]];
        double v = ap.NumericAt(row);
        if (v < st.min) st.min = v;
        st.saw_value = true;
      }
      break;
    case AccKind::kMaxNum:
      for (size_t row = begin; row < end; ++row) {
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[row - begin]];
        double v = ap.NumericAt(row);
        if (v > st.max) st.max = v;
        st.saw_value = true;
      }
      break;
    case AccKind::kMinStr:
      for (size_t row = begin; row < end; ++row) {
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[row - begin]];
        const std::string& s = ap.StringAt(row);
        if (!st.saw_value || s < st.smin) st.smin = s;
        st.saw_value = true;
      }
      break;
    case AccKind::kMaxStr:
      for (size_t row = begin; row < end; ++row) {
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[row - begin]];
        const std::string& s = ap.StringAt(row);
        if (!st.saw_value || s > st.smax) st.smax = s;
        st.saw_value = true;
      }
      break;
  }
}

// One worker's thread-local partial aggregation table. Accumulators are
// laid out per spec ([agg][local group]) so each spec's morsel loop walks
// one contiguous array.
struct AggPartial {
  KeyMap groups;
  std::vector<std::vector<AggState>> spec_states;  // [agg][local group]
  std::vector<size_t> first_row;  // min input row per local group
  std::vector<uint32_t> gid;      // morsel scratch: local group id per row
  std::vector<char> key_buf;      // morsel scratch: fixed-stride packed keys
};

// One group's accumulators gathered back into [agg] order for emission.
std::vector<AggState> GatherStates(const AggPartial& p, size_t id,
                                   size_t num_specs) {
  std::vector<AggState> gs;
  gs.reserve(num_specs);
  for (size_t a = 0; a < num_specs; ++a) gs.push_back(p.spec_states[a][id]);
  return gs;
}

// Folds one accumulator into another (associative, commutative up to the
// first-seen tie-breaks handled by the callers' row ordering).
void MergeState(AggState& d, const AggState& s) {
  d.row_count += s.row_count;
  d.count += s.count;
  d.sum += s.sum;
  d.isum += s.isum;
  if (s.min < d.min) d.min = s.min;
  if (s.max > d.max) d.max = s.max;
  if (s.saw_value) {
    if (!d.saw_value || s.smin < d.smin) d.smin = s.smin;
    if (!d.saw_value || s.smax > d.smax) d.smax = s.smax;
    d.saw_value = true;
  }
}

// Folds partial `p`'s accumulators for local group `id` into `dst`.
void MergeFromPartial(std::vector<AggState>& dst, const AggPartial& p,
                      size_t id) {
  for (size_t a = 0; a < dst.size(); ++a) {
    MergeState(dst[a], p.spec_states[a][id]);
  }
}

}  // namespace

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      return "count";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

Result<Table> HashAggregate(const Table& input,
                            const std::vector<std::string>& group_by,
                            const std::vector<AggSpec>& aggs, size_t dop) {
  obs::OpScope op("aggregate");
  // Resolve group-by columns.
  std::vector<size_t> group_idx;
  group_idx.reserve(group_by.size());
  for (const std::string& name : group_by) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, input.schema().FindColumn(name));
    group_idx.push_back(idx);
  }

  // Validate aggregates and evaluate inputs (vectorized, once per spec).
  std::vector<DataType> out_types;
  std::vector<Column> agg_inputs;
  out_types.reserve(aggs.size());
  agg_inputs.reserve(aggs.size());
  for (const AggSpec& spec : aggs) {
    if (spec.func != AggFunc::kCountStar && spec.input == nullptr) {
      return Status::InvalidArgument("aggregate requires an input expression");
    }
    if (spec.func == AggFunc::kCountStar) {
      out_types.push_back(DataType::kInt64);
      agg_inputs.emplace_back(DataType::kInt64);  // placeholder, unused
      continue;
    }
    PCTAGG_ASSIGN_OR_RETURN(DataType t, AggOutputType(spec, input.schema()));
    out_types.push_back(t);
    PCTAGG_ASSIGN_OR_RETURN(Column c, spec.input->Evaluate(input));
    agg_inputs.push_back(std::move(c));
  }

  // Phase 1: each worker folds its morsels into a thread-local partial
  // table, keyed by the packed group key. Per morsel, a keying loop assigns
  // local group ids into the gid scratch, then each spec runs its resolved
  // accumulation loop over the morsel.
  const size_t n = input.num_rows();
  if (dop == 0) dop = CurrentDop();
  MorselPlan plan = MorselPlan::For(n, dop);
  const KeyEncoder encoder(input, group_idx);
  std::vector<AccPlan> acc_plans;
  acc_plans.reserve(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    acc_plans.push_back(MakeAccPlan(aggs[a], agg_inputs[a]));
  }

  // Direct-array keying: grouping by ONE dictionary-encoded string column
  // whose dictionary is small means the code already IS a dense group id —
  // no hashing, no key bytes, no probe. Each worker accumulates straight
  // into arrays of dict_size + 1 slots (the extra slot takes NULL rows) and
  // the merge is elementwise. The cap bounds the per-worker footprint for
  // dictionaries much larger than the actual group count (a shared
  // dictionary can hold codes this column never uses).
  constexpr size_t kDirectDictMaxSlots = 4096;
  const uint32_t* direct_codes = nullptr;
  const uint8_t* direct_validity = nullptr;
  size_t direct_slots = 0;
  if (group_idx.size() == 1 &&
      input.column(group_idx[0]).type() == DataType::kString) {
    const Column& gc = input.column(group_idx[0]);
    if (gc.dict()->size() + 1 <= kDirectDictMaxSlots) {
      direct_codes = gc.codes().data();
      direct_validity = gc.validity().data();
      direct_slots = gc.dict()->size() + 1;
    }
  }

  std::vector<AggPartial> partials(plan.num_workers);
  for (AggPartial& p : partials) {
    p.spec_states.resize(aggs.size());
    if (direct_slots > 0) {
      for (std::vector<AggState>& sc : p.spec_states) sc.resize(direct_slots);
      p.first_row.assign(direct_slots, SIZE_MAX);
    }
  }
  RunMorsels(plan, [&](size_t worker, size_t begin, size_t end) {
    AggPartial& p = partials[worker];
    const size_t count = end - begin;
    if (p.gid.size() < count) p.gid.resize(count);
    if (direct_slots > 0) {
      const uint32_t null_slot = static_cast<uint32_t>(direct_slots - 1);
      for (size_t row = begin; row < end; ++row) {
        const uint32_t g =
            direct_validity[row] ? direct_codes[row] : null_slot;
        if (row < p.first_row[g]) p.first_row[g] = row;
        p.gid[row - begin] = g;
      }
    } else if (encoder.fixed_only()) {
      // All-fixed-width keys: encode the whole morsel column-at-a-time into
      // a stride-constant buffer, then key it through the stride-specialized
      // batch probe. New groups' accumulators are default states, so the
      // spec columns just extend to the new group count afterwards.
      const size_t stride = encoder.fixed_width();
      if (p.key_buf.size() < count * stride) p.key_buf.resize(count * stride);
      encoder.EncodeFixedBatch(begin, end, p.key_buf.data());
      p.groups.GetOrAddFixedBatch(p.key_buf.data(), stride, count, begin,
                                  p.gid.data(), &p.first_row);
      for (std::vector<AggState>& sc : p.spec_states) {
        if (sc.size() < p.groups.size()) sc.resize(p.groups.size());
      }
    } else {
      std::string key;
      key.reserve(encoder.fixed_width() + 16);
      for (size_t row = begin; row < end; ++row) {
        key.clear();
        encoder.AppendKey(row, &key);
        auto [g, inserted] = p.groups.GetOrAdd(key);
        if (inserted) {
          for (std::vector<AggState>& sc : p.spec_states) sc.emplace_back();
          p.first_row.push_back(row);
        } else if (row < p.first_row[g]) {
          p.first_row[g] = row;
        }
        p.gid[row - begin] = static_cast<uint32_t>(g);
      }
    }
    for (size_t a = 0; a < acc_plans.size(); ++a) {
      AccumulateMorsel(acc_plans[a], p.gid, begin, end, p.spec_states[a]);
    }
  });

  // Phase 2: merge the partials into global groups. A single worker's
  // partial is already the answer, in first-seen order. Otherwise the key
  // space is split into hash partitions merged in parallel, and the result
  // ordered by each group's first input row — reproducing exactly the
  // first-seen order a serial run would emit.
  std::vector<std::vector<AggState>> states;
  std::vector<size_t> representative_row;
  if (direct_slots > 0 && !partials.empty()) {
    // Direct-array path: merge elementwise into partial 0, then emit the
    // slots that saw rows, ordered by first input row. (Code order is NOT
    // first-seen order in general — a derived table can hold a shared
    // dictionary's codes in any row order — so the sort applies even for a
    // single worker.)
    AggPartial& p0 = partials[0];
    for (size_t w = 1; w < partials.size(); ++w) {
      const AggPartial& pw = partials[w];
      for (size_t g = 0; g < direct_slots; ++g) {
        if (pw.first_row[g] == SIZE_MAX) continue;
        for (size_t a = 0; a < aggs.size(); ++a) {
          MergeState(p0.spec_states[a][g], pw.spec_states[a][g]);
        }
        p0.first_row[g] = std::min(p0.first_row[g], pw.first_row[g]);
      }
    }
    std::vector<uint32_t> order;
    order.reserve(direct_slots);
    for (size_t g = 0; g < direct_slots; ++g) {
      if (p0.first_row[g] != SIZE_MAX) {
        order.push_back(static_cast<uint32_t>(g));
      }
    }
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return p0.first_row[a] < p0.first_row[b];
    });
    states.reserve(order.size());
    representative_row.reserve(order.size());
    for (uint32_t g : order) {
      states.push_back(GatherStates(p0, g, aggs.size()));
      representative_row.push_back(p0.first_row[g]);
    }
  } else if (plan.num_workers <= 1 && !partials.empty()) {
    AggPartial& p = partials[0];
    states.reserve(p.groups.size());
    for (size_t g = 0; g < p.groups.size(); ++g) {
      states.push_back(GatherStates(p, g, aggs.size()));
    }
    representative_row = std::move(p.first_row);
  } else if (!partials.empty()) {
    struct MergedGroup {
      std::vector<AggState> states;
      size_t first_row;
    };
    const size_t num_parts = plan.num_workers;
    std::vector<std::vector<MergedGroup>> part_groups(num_parts);
    RunPartitions(num_parts, plan.num_workers, [&](size_t part) {
      KeyMap seen;
      std::vector<MergedGroup>& out = part_groups[part];
      for (const AggPartial& p : partials) {
        p.groups.ForEach([&](std::string_view key, size_t id) {
          if (KeyMap::Hash(key) % num_parts != part) return;
          auto [g, inserted] = seen.GetOrAdd(key);
          if (inserted) {
            out.push_back({GatherStates(p, id, aggs.size()), p.first_row[id]});
          } else {
            MergeFromPartial(out[g].states, p, id);
            out[g].first_row = std::min(out[g].first_row, p.first_row[id]);
          }
        });
      }
    });
    std::vector<MergedGroup> merged;
    for (std::vector<MergedGroup>& pg : part_groups) {
      for (MergedGroup& mg : pg) merged.push_back(std::move(mg));
    }
    std::sort(merged.begin(), merged.end(),
              [](const MergedGroup& a, const MergedGroup& b) {
                return a.first_row < b.first_row;
              });
    states.reserve(merged.size());
    representative_row.reserve(merged.size());
    for (MergedGroup& mg : merged) {
      states.push_back(std::move(mg.states));
      representative_row.push_back(mg.first_row);
    }
  }

  if (op.active()) {
    if (direct_slots > 0) {
      // No hash table at all: the dictionary code indexed the accumulator
      // arrays directly. Report the array size as the "slots".
      op.SetHashTable(states.size(), direct_slots);
      op.SetDetail("keys=direct-dict(" + std::to_string(direct_slots - 1) +
                   ")");
    } else {
      // Peak hash-table shape across the workers' thread-local partials; the
      // merge touches every partial, so that count doubles as spill volume.
      size_t peak_groups = 0, peak_slots = 0;
      for (const AggPartial& p : partials) {
        if (p.groups.size() > peak_groups) {
          peak_groups = p.groups.size();
          peak_slots = p.groups.slots();
        }
      }
      op.SetHashTable(peak_groups, peak_slots);
      op.SetDetail("keys=packed(" + std::to_string(encoder.fixed_width()) +
                   "B)");
    }
    op.SetRows(n, states.size());
    op.SetMorsels(plan.num_morsels, plan.num_workers);
    if (plan.num_workers > 1) op.SetPartialsMerged(partials.size());
  }

  // A global aggregation over zero rows still produces one (empty) group.
  if (group_idx.empty() && states.empty()) {
    states.emplace_back(aggs.size());
    representative_row.push_back(0);  // unused: no group columns to copy
  }

  // Build output schema.
  Schema out_schema;
  for (size_t gi : group_idx) {
    out_schema.AddColumn(input.schema().column(gi));
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    out_schema.AddColumn({aggs[a].output_name, out_types[a]});
  }
  Table out(out_schema);
  out.Reserve(states.size());

  for (size_t g = 0; g < states.size(); ++g) {
    std::vector<Value> row;
    row.reserve(group_idx.size() + aggs.size());
    for (size_t gi : group_idx) {
      row.push_back(input.column(gi).GetValue(representative_row[g]));
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggState& st = states[g][a];
      const AggSpec& spec = aggs[a];
      switch (spec.func) {
        case AggFunc::kCountStar:
          row.push_back(Value::Int64(st.row_count));
          break;
        case AggFunc::kCount:
          row.push_back(Value::Int64(st.count));
          break;
        case AggFunc::kSum:
          if (!st.saw_value) {
            row.push_back(Value::Null());
          } else if (out_types[a] == DataType::kInt64) {
            row.push_back(Value::Int64(st.isum));
          } else {
            row.push_back(Value::Float64(st.sum));
          }
          break;
        case AggFunc::kAvg:
          row.push_back(st.saw_value
                            ? Value::Float64(st.sum / static_cast<double>(st.count))
                            : Value::Null());
          break;
        case AggFunc::kMin:
          if (!st.saw_value) {
            row.push_back(Value::Null());
          } else if (out_types[a] == DataType::kString) {
            row.push_back(Value::String(st.smin));
          } else if (out_types[a] == DataType::kInt64) {
            row.push_back(Value::Int64(static_cast<int64_t>(st.min)));
          } else {
            row.push_back(Value::Float64(st.min));
          }
          break;
        case AggFunc::kMax:
          if (!st.saw_value) {
            row.push_back(Value::Null());
          } else if (out_types[a] == DataType::kString) {
            row.push_back(Value::String(st.smax));
          } else if (out_types[a] == DataType::kInt64) {
            row.push_back(Value::Int64(static_cast<int64_t>(st.max)));
          } else {
            row.push_back(Value::Float64(st.max));
          }
          break;
      }
    }
    PCTAGG_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

}  // namespace pctagg
