#include "engine/packed_key.h"

#include "common/cpu.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace pctagg {

bool KeyMapBatchProbeSimd() { return CpuHasAvx2() && SimdEnabled(); }

namespace {

constexpr char kNullTag = '\x00';

char TypeTag(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return '\x11';
    case DataType::kFloat64:
      return '\x12';
    case DataType::kString:
      return '\x13';
  }
  return '\x1f';
}

}  // namespace

void KeyEncoder::Init(const Table& table,
                      const std::vector<size_t>& column_indices) {
  cols_.reserve(column_indices.size());
  for (size_t ci : column_indices) {
    const Column& c = table.column(ci);
    Col col;
    col.type = c.type();
    col.validity = c.validity().data();
    switch (col.type) {
      case DataType::kInt64:
        col.i64 = c.int64_data().data();
        col.width = 9;
        break;
      case DataType::kFloat64:
        col.f64 = c.float64_data().data();
        col.width = 9;
        break;
      case DataType::kString:
        col.codes = c.codes().data();
        col.width = 5;
        break;
    }
    fixed_width_ += col.width;
    cols_.push_back(col);
  }
}

KeyEncoder::KeyEncoder(const Table& table,
                       const std::vector<size_t>& column_indices) {
  Init(table, column_indices);
}

KeyEncoder::KeyEncoder(const Table& table,
                       const std::vector<size_t>& column_indices,
                       const Table& target,
                       const std::vector<size_t>& target_indices) {
  Init(table, column_indices);
  translations_.resize(cols_.size());
  for (size_t i = 0; i < cols_.size() && i < target_indices.size(); ++i) {
    if (cols_[i].type != DataType::kString) continue;
    const Column& tc = target.column(target_indices[i]);
    if (tc.type() != DataType::kString) continue;  // types never compare equal
    const Dictionary& probe_dict = *table.column(column_indices[i]).dict();
    const Dictionary& target_dict = *tc.dict();
    if (&probe_dict == &target_dict) continue;  // codes already agree
    // One Find per DISTINCT probe-side string instead of one per probe row.
    // Strings absent from the target become kInvalidCode, which no real
    // target-side key carries, so those probes simply never match.
    const size_t n = probe_dict.size();
    std::vector<uint32_t> map(n);
    for (size_t c = 0; c < n; ++c) {
      map[c] = target_dict.Find(probe_dict.value(static_cast<uint32_t>(c)));
    }
    translations_[i] = std::move(map);
    cols_[i].translate = translations_[i].data();
  }
}

void KeyEncoder::AppendKey(size_t row, std::string* out) const {
  for (const Col& col : cols_) {
    if (col.validity[row] == 0) {
      // NULL pads to the column's full width so the encoding stays
      // stride-constant and byte-identical to EncodeFixedBatch.
      out->append(col.width, kNullTag);
      continue;
    }
    out->push_back(TypeTag(col.type));
    switch (col.type) {
      case DataType::kInt64: {
        char buf[8];
        std::memcpy(buf, &col.i64[row], 8);
        out->append(buf, 8);
        break;
      }
      case DataType::kFloat64: {
        char buf[8];
        std::memcpy(buf, &col.f64[row], 8);
        out->append(buf, 8);
        break;
      }
      case DataType::kString: {
        uint32_t code = col.codes[row];
        if (col.translate != nullptr) code = col.translate[code];
        char buf[4];
        std::memcpy(buf, &code, 4);
        out->append(buf, 4);
        break;
      }
    }
  }
}

void KeyEncoder::EncodeFixedBatch(size_t begin, size_t end, char* out) const {
  const size_t stride = fixed_width_;
  size_t off = 0;
  for (const Col& col : cols_) {
    const char tag = TypeTag(col.type);
    const uint8_t* validity = col.validity;
    char* p = out + off;
    switch (col.type) {
      case DataType::kInt64: {
        const int64_t* v = col.i64;
        for (size_t row = begin; row < end; ++row, p += stride) {
          if (validity[row] != 0) {
            *p = tag;
            std::memcpy(p + 1, &v[row], 8);
          } else {
            *p = kNullTag;
            std::memset(p + 1, 0, 8);
          }
        }
        break;
      }
      case DataType::kFloat64: {
        const double* v = col.f64;
        for (size_t row = begin; row < end; ++row, p += stride) {
          if (validity[row] != 0) {
            *p = tag;
            std::memcpy(p + 1, &v[row], 8);
          } else {
            *p = kNullTag;
            std::memset(p + 1, 0, 8);
          }
        }
        break;
      }
      case DataType::kString: {
        const uint32_t* codes = col.codes;
        const uint32_t* translate = col.translate;
        for (size_t row = begin; row < end; ++row, p += stride) {
          if (validity[row] != 0) {
            *p = tag;
            const uint32_t code =
                translate != nullptr ? translate[codes[row]] : codes[row];
            std::memcpy(p + 1, &code, 4);
          } else {
            *p = kNullTag;
            std::memset(p + 1, 0, 4);
          }
        }
        break;
      }
    }
    off += col.width;
  }
}

void KeyEncoder::EncodeFixedRows(const uint32_t* rows, size_t count,
                                 char* out) const {
  const size_t stride = fixed_width_;
  size_t off = 0;
  for (const Col& col : cols_) {
    const char tag = TypeTag(col.type);
    const uint8_t* validity = col.validity;
    char* p = out + off;
    switch (col.type) {
      case DataType::kInt64: {
        const int64_t* v = col.i64;
        for (size_t i = 0; i < count; ++i, p += stride) {
          const uint32_t row = rows[i];
          if (validity[row] != 0) {
            *p = tag;
            std::memcpy(p + 1, &v[row], 8);
          } else {
            *p = kNullTag;
            std::memset(p + 1, 0, 8);
          }
        }
        break;
      }
      case DataType::kFloat64: {
        const double* v = col.f64;
        for (size_t i = 0; i < count; ++i, p += stride) {
          const uint32_t row = rows[i];
          if (validity[row] != 0) {
            *p = tag;
            std::memcpy(p + 1, &v[row], 8);
          } else {
            *p = kNullTag;
            std::memset(p + 1, 0, 8);
          }
        }
        break;
      }
      case DataType::kString: {
        const uint32_t* codes = col.codes;
        const uint32_t* translate = col.translate;
        for (size_t i = 0; i < count; ++i, p += stride) {
          const uint32_t row = rows[i];
          if (validity[row] != 0) {
            *p = tag;
            const uint32_t code =
                translate != nullptr ? translate[codes[row]] : codes[row];
            std::memcpy(p + 1, &code, 4);
          } else {
            *p = kNullTag;
            std::memset(p + 1, 0, 4);
          }
        }
        break;
      }
    }
    off += col.width;
  }
}

#if defined(__x86_64__)
// Four probe lanes per iteration: gather each hash's first slot (8-byte
// stored hash, 4-byte stored id) and report the id where the hash matches a
// non-empty slot. Byte confirmation stays with the (scalar) caller — the
// vector path performs no key-arena loads at all, so it cannot over-read.
__attribute__((target("avx2"))) void KeyMap::ProbeCandidates(
    const uint64_t* hashes, size_t count, uint32_t* cand) const {
  const long long* hash_base =
      reinterpret_cast<const long long*>(slot_hash_.data());
  const int* id_base = reinterpret_cast<const int*>(slot_id_.data());
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask_));
  size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const __m256i h = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(hashes + j));
    const __m256i idx = _mm256_and_si256(h, vmask);
    const __m256i stored = _mm256_i64gather_epi64(hash_base, idx, 8);
    const __m128i ids = _mm256_i64gather_epi32(id_base, idx, 4);
    const __m256i eq = _mm256_cmpeq_epi64(stored, h);
    alignas(32) long long eqs[4];
    alignas(16) int id4[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(eqs), eq);
    _mm_store_si128(reinterpret_cast<__m128i*>(id4), ids);
    for (int k = 0; k < 4; ++k) {
      const uint32_t id = static_cast<uint32_t>(id4[k]);
      cand[j + k] = (eqs[k] != 0 && id != kEmptySlot) ? id : kEmptySlot;
    }
  }
  for (; j < count; ++j) {
    const size_t idx = hashes[j] & mask_;
    const uint32_t id = slot_id_[idx];
    cand[j] =
        (id != kEmptySlot && slot_hash_[idx] == hashes[j]) ? id : kEmptySlot;
  }
}
#else
void KeyMap::ProbeCandidates(const uint64_t* hashes, size_t count,
                             uint32_t* cand) const {
  for (size_t j = 0; j < count; ++j) {
    const size_t idx = hashes[j] & mask_;
    const uint32_t id = slot_id_[idx];
    cand[j] =
        (id != kEmptySlot && slot_hash_[idx] == hashes[j]) ? id : kEmptySlot;
  }
}
#endif

void KeyMap::Grow(size_t min_slots) {
  size_t slots = 64;
  while (slots < min_slots) slots <<= 1;
  if (!slot_id_.empty() && slots <= slot_id_.size()) return;
  std::vector<uint64_t> old_hash = std::move(slot_hash_);
  std::vector<uint32_t> old_id = std::move(slot_id_);
  slot_hash_.assign(slots, 0);
  slot_id_.assign(slots, kEmptySlot);
  mask_ = slots - 1;
  for (size_t s = 0; s < old_id.size(); ++s) {
    if (old_id[s] == kEmptySlot) continue;
    size_t idx = old_hash[s] & mask_;
    while (slot_id_[idx] != kEmptySlot) idx = (idx + 1) & mask_;
    slot_hash_[idx] = old_hash[s];
    slot_id_[idx] = old_id[s];
  }
}

void KeyMap::Reserve(size_t n) {
  Grow(n * 2);
  key_offset_.reserve(n);
}

}  // namespace pctagg
