#include "engine/packed_key.h"

namespace pctagg {

namespace {

constexpr char kNullTag = '\x00';

char TypeTag(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return '\x11';
    case DataType::kFloat64:
      return '\x12';
    case DataType::kString:
      return '\x13';
  }
  return '\x1f';
}

}  // namespace

KeyEncoder::KeyEncoder(const Table& table,
                       const std::vector<size_t>& column_indices) {
  cols_.reserve(column_indices.size());
  for (size_t ci : column_indices) {
    const Column& c = table.column(ci);
    Col col;
    col.type = c.type();
    col.validity = c.validity().data();
    col.i64 = nullptr;
    col.f64 = nullptr;
    col.str = nullptr;
    switch (col.type) {
      case DataType::kInt64:
        col.i64 = c.int64_data().data();
        fixed_width_ += 9;
        break;
      case DataType::kFloat64:
        col.f64 = c.float64_data().data();
        fixed_width_ += 9;
        break;
      case DataType::kString:
        col.str = c.string_data().data();
        fixed_width_ += 5;
        fixed_only_ = false;
        break;
    }
    cols_.push_back(col);
  }
}

void KeyEncoder::AppendKey(size_t row, std::string* out) const {
  for (const Col& col : cols_) {
    if (col.validity[row] == 0) {
      out->push_back(kNullTag);
      // Fixed-width columns pad NULLs to the full 9 bytes so the encoding
      // stays stride-constant and byte-identical to EncodeFixedBatch.
      if (col.type != DataType::kString) out->append(8, '\x00');
      continue;
    }
    out->push_back(TypeTag(col.type));
    switch (col.type) {
      case DataType::kInt64: {
        char buf[8];
        std::memcpy(buf, &col.i64[row], 8);
        out->append(buf, 8);
        break;
      }
      case DataType::kFloat64: {
        char buf[8];
        std::memcpy(buf, &col.f64[row], 8);
        out->append(buf, 8);
        break;
      }
      case DataType::kString: {
        const std::string& s = col.str[row];
        uint32_t len = static_cast<uint32_t>(s.size());
        char buf[4];
        std::memcpy(buf, &len, 4);
        out->append(buf, 4);
        out->append(s);
        break;
      }
    }
  }
}

void KeyEncoder::EncodeFixedBatch(size_t begin, size_t end, char* out) const {
  const size_t stride = fixed_width_;
  size_t off = 0;
  for (const Col& col : cols_) {
    const char tag = TypeTag(col.type);
    const uint8_t* validity = col.validity;
    char* p = out + off;
    if (col.type == DataType::kInt64) {
      const int64_t* v = col.i64;
      for (size_t row = begin; row < end; ++row, p += stride) {
        if (validity[row] != 0) {
          *p = tag;
          std::memcpy(p + 1, &v[row], 8);
        } else {
          *p = kNullTag;
          std::memset(p + 1, 0, 8);
        }
      }
    } else {
      const double* v = col.f64;
      for (size_t row = begin; row < end; ++row, p += stride) {
        if (validity[row] != 0) {
          *p = tag;
          std::memcpy(p + 1, &v[row], 8);
        } else {
          *p = kNullTag;
          std::memset(p + 1, 0, 8);
        }
      }
    }
    off += 9;
  }
}

void KeyMap::Grow(size_t min_slots) {
  size_t slots = 64;
  while (slots < min_slots) slots <<= 1;
  if (!slot_id_.empty() && slots <= slot_id_.size()) return;
  std::vector<uint64_t> old_hash = std::move(slot_hash_);
  std::vector<uint32_t> old_id = std::move(slot_id_);
  slot_hash_.assign(slots, 0);
  slot_id_.assign(slots, kEmptySlot);
  mask_ = slots - 1;
  for (size_t s = 0; s < old_id.size(); ++s) {
    if (old_id[s] == kEmptySlot) continue;
    size_t idx = old_hash[s] & mask_;
    while (slot_id_[idx] != kEmptySlot) idx = (idx + 1) & mask_;
    slot_hash_[idx] = old_hash[s];
    slot_id_[idx] = old_id[s];
  }
}

void KeyMap::Reserve(size_t n) {
  Grow(n * 2);
  key_offset_.reserve(n);
}

}  // namespace pctagg
