#ifndef PCTAGG_ENGINE_CSV_H_
#define PCTAGG_ENGINE_CSV_H_

#include <string>

#include "common/result.h"
#include "engine/table.h"

namespace pctagg {

// Minimal RFC-4180-style CSV support so fact tables can be loaded from and
// results exported to files (quoted fields, embedded commas/quotes/newlines,
// empty field = NULL).

// Parses CSV text against a known schema. The first line is a header when
// `has_header` (validated against the schema by name, case-insensitively).
Result<Table> ParseCsv(const std::string& text, const Schema& schema,
                       bool has_header = true);

// Parses CSV text inferring the schema from the header line plus the data:
// a column is INT64 if every non-empty value parses as an integer, FLOAT64
// if every non-empty value parses as a number, STRING otherwise.
Result<Table> ParseCsvAuto(const std::string& text);

// Renders a table as CSV (header + rows; NULL as empty field).
std::string FormatCsv(const Table& table);

// File wrappers.
Result<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                          bool has_header = true);
Result<Table> ReadCsvFileAuto(const std::string& path);
Status WriteCsvFile(const Table& table, const std::string& path);

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_CSV_H_
