#include "engine/update.h"

#include <unordered_map>

#include "engine/join.h"
#include "engine/packed_key.h"

namespace pctagg {

Status KeyedDivideUpdate(Table* target,
                         const std::vector<std::string>& target_keys,
                         const std::string& target_value, const Table& source,
                         const std::vector<std::string>& source_keys,
                         const std::string& source_value,
                         const HashIndex* source_index) {
  if (target_keys.size() != source_keys.size() || target_keys.empty()) {
    return Status::InvalidArgument("update key lists must match and be nonempty");
  }
  std::vector<size_t> tkeys;
  std::vector<size_t> skeys;
  for (const std::string& name : target_keys) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, target->schema().FindColumn(name));
    tkeys.push_back(idx);
  }
  for (const std::string& name : source_keys) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, source.schema().FindColumn(name));
    skeys.push_back(idx);
  }
  PCTAGG_ASSIGN_OR_RETURN(size_t tval, target->schema().FindColumn(target_value));
  PCTAGG_ASSIGN_OR_RETURN(size_t sval, source.schema().FindColumn(source_value));

  const Column& tcol_before = target->column(tval);
  if (tcol_before.type() == DataType::kString ||
      source.column(sval).type() == DataType::kString) {
    return Status::TypeMismatch("divide-update requires numeric value columns");
  }

  const bool use_index =
      source_index != nullptr && IndexMatchesKeys(*source_index, source_keys);
  std::unordered_map<std::string, size_t> built;
  if (!use_index) {
    built.reserve(source.num_rows());
    const KeyEncoder senc(source, skeys);
    std::string key;
    for (size_t row = 0; row < source.num_rows(); ++row) {
      key.clear();
      senc.AppendKey(row, &key);
      built.emplace(key, row);  // keys are unique in Fj; keep the first
    }
  }

  // The updated column always becomes FLOAT64 (percentages are fractions);
  // UPDATE in the paper relies on A being declared wide enough.
  Schema new_schema;
  for (size_t i = 0; i < target->num_columns(); ++i) {
    ColumnDef def = target->schema().column(i);
    if (i == tval) def.type = DataType::kFloat64;
    new_schema.AddColumn(def);
  }
  Table rewritten(new_schema);
  rewritten.Reserve(target->num_rows());

  // Row-store UPDATE semantics: every touched row is read in full, modified,
  // and written back in full — the read-modify-write amplification that makes
  // UPDATE the expensive way to produce FV when |FV| ~ |F| (the paper
  // measured the UPDATE statement at ~80% of total query time).
  const Column& scol = source.column(sval);
  // Translating probe encoder: string key columns rewrite the target's
  // dictionary codes into the source's code space so the packed bytes match
  // the index/build encoding.
  const KeyEncoder tenc(*target, tkeys, source, skeys);
  std::string key;
  for (size_t row = 0; row < target->num_rows(); ++row) {
    key.clear();
    tenc.AppendKey(row, &key);
    const size_t* match = nullptr;
    size_t match_storage = 0;
    if (use_index) {
      const std::vector<size_t>* rows = source_index->Lookup(key);
      if (rows != nullptr && !rows->empty()) {
        match_storage = (*rows)[0];
        match = &match_storage;
      }
    } else {
      auto it = built.find(key);
      if (it != built.end()) {
        match_storage = it->second;
        match = &match_storage;
      }
    }
    std::vector<Value> row_values = target->GetRow(row);  // read full row
    const Value& current = row_values[tval];
    if (match == nullptr || current.is_null() || scol.IsNull(*match)) {
      row_values[tval] = Value::Null();
    } else {
      double divisor = scol.NumericAt(*match);
      // CASE WHEN Fj.A <> 0 THEN Fk.A / Fj.A ELSE NULL END.
      row_values[tval] = divisor == 0.0
                             ? Value::Null()
                             : Value::Float64(current.AsDouble() / divisor);
    }
    PCTAGG_RETURN_IF_ERROR(rewritten.AppendRow(row_values));  // write back
  }
  *target = std::move(rewritten);
  return Status::OK();
}

}  // namespace pctagg
