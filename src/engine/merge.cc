#include "engine/merge.h"

#include <string>
#include <utility>

#include "engine/packed_key.h"
#include "obs/trace.h"

namespace pctagg {

namespace {

// True when `a` orders before `b` under SQL comparison of same-typed,
// non-null values (the ordering min()/max() accumulate with).
bool SqlLess(const Value& a, const Value& b) {
  if (a.is_int64()) return a.int64() < b.int64();
  if (a.is_float64()) return a.float64() < b.float64();
  return a.string() < b.string();
}

// Combines one aggregate cell: the cached value for a group with the same
// group's value over the delta rows. NULL is the identity for every
// distributive aggregate here (a sum/min/max over zero non-null inputs is
// NULL; count never is).
Value CombineCell(AggFunc func, const Value& existing, const Value& delta) {
  if (delta.is_null()) return existing;
  if (existing.is_null()) return delta;
  switch (func) {
    case AggFunc::kSum:
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      if (existing.is_int64()) {
        return Value::Int64(existing.int64() + delta.int64());
      }
      return Value::Float64(existing.float64() + delta.float64());
    case AggFunc::kMin:
      return SqlLess(delta, existing) ? delta : existing;
    case AggFunc::kMax:
      return SqlLess(existing, delta) ? delta : existing;
    case AggFunc::kAvg:
      break;  // unreachable: rejected up front
  }
  return existing;
}

}  // namespace

Result<Table> MergeSummaries(const Table& existing, const Table& delta,
                             size_t num_group_cols,
                             const std::vector<AggSpec>& aggs) {
  obs::OpScope op("merge-summary");
  if (existing.num_columns() != num_group_cols + aggs.size() ||
      delta.num_columns() != existing.num_columns()) {
    return Status::InvalidArgument(
        "MergeSummaries: tables must both have group columns + one column "
        "per aggregate");
  }
  for (size_t i = 0; i < existing.num_columns(); ++i) {
    if (existing.column(i).type() != delta.column(i).type()) {
      return Status::InvalidArgument(
          "MergeSummaries: column type mismatch between summary and delta");
    }
  }
  for (const AggSpec& a : aggs) {
    if (a.func == AggFunc::kAvg) {
      return Status::InvalidArgument(
          "MergeSummaries: avg is not distributive; decompose to sum+count");
    }
  }

  Table out = existing;

  std::vector<size_t> group_idx(num_group_cols);
  for (size_t i = 0; i < num_group_cols; ++i) group_idx[i] = i;

  // Key the existing groups, then probe with the delta's keys translated
  // into the existing dictionaries' code space. A delta value absent from an
  // existing dictionary translates to kInvalidCode and can never match — by
  // construction it is a new group and lands on the append path below.
  KeyMap groups;
  groups.Reserve(existing.num_rows());
  std::string key;
  if (num_group_cols > 0) {
    KeyEncoder build(existing, group_idx);
    for (size_t row = 0; row < existing.num_rows(); ++row) {
      key.clear();
      build.AppendKey(row, &key);
      groups.GetOrAdd(key);
    }
  }
  KeyEncoder probe = num_group_cols > 0
                         ? KeyEncoder(delta, group_idx, existing, group_idx)
                         : KeyEncoder(delta, group_idx);

  size_t groups_appended = 0;
  for (size_t drow = 0; drow < delta.num_rows(); ++drow) {
    key.clear();
    probe.AppendKey(drow, &key);
    // Zero group columns (the grand-total recipe): both summaries are the
    // single global group, so every delta row combines into row 0.
    size_t hit = num_group_cols == 0 && existing.num_rows() > 0
                     ? 0
                     : groups.Find(key);
    if (hit == SIZE_MAX) {
      out.AppendRowFrom(delta, drow);  // new group; re-interns strings
      ++groups_appended;
      continue;
    }
    for (size_t j = 0; j < aggs.size(); ++j) {
      size_t c = num_group_cols + j;
      Value merged = CombineCell(aggs[j].func, out.column(c).GetValue(hit),
                                 delta.column(c).GetValue(drow));
      PCTAGG_RETURN_IF_ERROR(out.mutable_column(c).SetValue(hit, merged));
    }
  }
  op.SetRows(delta.num_rows(), out.num_rows());
  op.SetHashTable(groups.size() + groups_appended, groups.slots());
  return out;
}

}  // namespace pctagg
