#ifndef PCTAGG_ENGINE_AGG_INTERNAL_H_
#define PCTAGG_ENGINE_AGG_INTERNAL_H_

// Shared internals of the grouped-aggregation kernels. HashAggregate (the
// materialized path) and FusedAggregate (the push-based pipeline) both build
// on these accumulator structs, micro-plans and the emission routine, which
// is what makes the fused path bit-identical to the materialized one by
// construction: the per-row accumulation and the final Value emission are
// the same code.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "engine/aggregate.h"
#include "engine/dictionary.h"

namespace pctagg {
namespace aggdetail {

// Accumulator state for one (group, aggregate) pair. A single struct covers
// all functions; which fields are live depends on the function.
struct AggState {
  double sum = 0.0;
  int64_t isum = 0;
  int64_t count = 0;      // non-null inputs seen
  int64_t row_count = 0;  // all rows (count(*))
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::string smin;
  std::string smax;
  bool saw_value = false;
};

inline Result<DataType> AggOutputType(const AggSpec& spec,
                                      const Schema& schema) {
  switch (spec.func) {
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      return DataType::kInt64;
    case AggFunc::kAvg:
      return DataType::kFloat64;
    case AggFunc::kSum: {
      PCTAGG_ASSIGN_OR_RETURN(DataType t, spec.input->ResultType(schema));
      if (t == DataType::kString) {
        return Status::TypeMismatch("sum() over string column");
      }
      return t;
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      PCTAGG_ASSIGN_OR_RETURN(DataType t, spec.input->ResultType(schema));
      return t;
    }
  }
  return Status::Internal("unknown aggregate function");
}

// A per-spec accumulation micro-plan: the function x input-type dispatch and
// the variant unpacking (Column::NumericAt runs a std::get per call) are
// resolved once per aggregation instead of once per row per spec, and each
// spec then runs its own tight loop over the morsel, touching only the
// fields its emission actually reads.
enum class AccKind : uint8_t {
  kCountStar,  // row_count
  kCount,      // count
  kSumInt,     // isum, saw_value
  kSumFloat,   // sum, saw_value
  kAvg,        // sum, count, saw_value
  kAvgStr,     // count, saw_value (degenerate avg-over-string: sum stays 0)
  kMinNum,     // min, saw_value
  kMaxNum,     // max, saw_value
  kMinStr,     // smin, saw_value
  kMaxStr,     // smax, saw_value
};

struct AccPlan {
  AccKind kind = AccKind::kCountStar;
  const uint8_t* validity = nullptr;
  const int64_t* i64 = nullptr;      // set iff the input column is INT64
  const double* f64 = nullptr;       // set iff FLOAT64
  const uint32_t* codes = nullptr;   // set iff STRING (dictionary codes)
  const Dictionary* dict = nullptr;  // set iff STRING

  double NumericAt(size_t row) const {
    return i64 != nullptr ? static_cast<double>(i64[row]) : f64[row];
  }
  const std::string& StringAt(size_t row) const {
    return dict->value(codes[row]);
  }
};

inline AccPlan MakeAccPlan(const AggSpec& spec, const Column& input) {
  AccPlan ap;
  if (spec.func == AggFunc::kCountStar) {
    ap.kind = AccKind::kCountStar;
    return ap;
  }
  ap.validity = input.validity().data();
  switch (input.type()) {
    case DataType::kInt64:
      ap.i64 = input.int64_data().data();
      break;
    case DataType::kFloat64:
      ap.f64 = input.float64_data().data();
      break;
    case DataType::kString:
      ap.codes = input.codes().data();
      ap.dict = input.dict().get();
      break;
  }
  const bool is_string = input.type() == DataType::kString;
  switch (spec.func) {
    case AggFunc::kCountStar:
      break;  // handled above
    case AggFunc::kCount:
      ap.kind = AccKind::kCount;
      break;
    case AggFunc::kSum:
      // sum() over strings is rejected during validation.
      ap.kind = input.type() == DataType::kInt64 ? AccKind::kSumInt
                                                 : AccKind::kSumFloat;
      break;
    case AggFunc::kAvg:
      ap.kind = is_string ? AccKind::kAvgStr : AccKind::kAvg;
      break;
    case AggFunc::kMin:
      ap.kind = is_string ? AccKind::kMinStr : AccKind::kMinNum;
      break;
    case AggFunc::kMax:
      ap.kind = is_string ? AccKind::kMaxStr : AccKind::kMaxNum;
      break;
  }
  return ap;
}

// Folds one morsel into one spec's per-group accumulator column. `gid` holds
// the local group id of row `begin + i` at position i.
//
// NULLs are the exception in real measure columns, so each morsel first asks
// one memchr whether this span has any at all; the common all-valid span then
// runs a branch-free inner loop (load, accumulate, store — no per-row
// validity test in the dependency chain), and only spans that actually
// contain NULLs pay the per-row branch.
inline void AccumulateMorsel(const AccPlan& ap, const std::vector<uint32_t>& gid,
                             size_t begin, size_t end,
                             std::vector<AggState>& col) {
  const bool no_nulls =
      ap.validity == nullptr ||
      std::memchr(ap.validity + begin, 0, end - begin) == nullptr;
  switch (ap.kind) {
    case AccKind::kCountStar:
      for (size_t row = begin; row < end; ++row) {
        col[gid[row - begin]].row_count++;
      }
      break;
    case AccKind::kCount:
      if (no_nulls) {
        for (size_t row = begin; row < end; ++row) {
          col[gid[row - begin]].count++;
        }
        break;
      }
      for (size_t row = begin; row < end; ++row) {
        if (ap.validity[row]) col[gid[row - begin]].count++;
      }
      break;
    case AccKind::kSumInt:
      if (no_nulls) {
        for (size_t row = begin; row < end; ++row) {
          AggState& st = col[gid[row - begin]];
          st.isum += ap.i64[row];
          st.saw_value = true;
        }
        break;
      }
      for (size_t row = begin; row < end; ++row) {
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[row - begin]];
        st.isum += ap.i64[row];
        st.saw_value = true;
      }
      break;
    case AccKind::kSumFloat:
      if (no_nulls && ap.f64 != nullptr) {
        for (size_t row = begin; row < end; ++row) {
          AggState& st = col[gid[row - begin]];
          st.sum += ap.f64[row];
          st.saw_value = true;
        }
        break;
      }
      for (size_t row = begin; row < end; ++row) {
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[row - begin]];
        st.sum += ap.NumericAt(row);
        st.saw_value = true;
      }
      break;
    case AccKind::kAvg:
      if (no_nulls && ap.f64 != nullptr) {
        for (size_t row = begin; row < end; ++row) {
          AggState& st = col[gid[row - begin]];
          st.sum += ap.f64[row];
          st.count++;
          st.saw_value = true;
        }
        break;
      }
      for (size_t row = begin; row < end; ++row) {
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[row - begin]];
        st.sum += ap.NumericAt(row);
        st.count++;
        st.saw_value = true;
      }
      break;
    case AccKind::kAvgStr:
      for (size_t row = begin; row < end; ++row) {
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[row - begin]];
        st.count++;
        st.saw_value = true;
      }
      break;
    case AccKind::kMinNum:
      for (size_t row = begin; row < end; ++row) {
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[row - begin]];
        double v = ap.NumericAt(row);
        if (v < st.min) st.min = v;
        st.saw_value = true;
      }
      break;
    case AccKind::kMaxNum:
      for (size_t row = begin; row < end; ++row) {
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[row - begin]];
        double v = ap.NumericAt(row);
        if (v > st.max) st.max = v;
        st.saw_value = true;
      }
      break;
    case AccKind::kMinStr:
      for (size_t row = begin; row < end; ++row) {
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[row - begin]];
        const std::string& s = ap.StringAt(row);
        if (!st.saw_value || s < st.smin) st.smin = s;
        st.saw_value = true;
      }
      break;
    case AccKind::kMaxStr:
      for (size_t row = begin; row < end; ++row) {
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[row - begin]];
        const std::string& s = ap.StringAt(row);
        if (!st.saw_value || s > st.smax) st.smax = s;
        st.saw_value = true;
      }
      break;
  }
}

// Selection variant used by the fused path's filtered morsels: accumulates
// only the rows listed in `rows` (ascending input order, so per-group value
// sequences match what Filter-then-aggregate would have produced), with
// gid[i] the local group id of rows[i].
inline void AccumulateRows(const AccPlan& ap, const uint32_t* gid,
                           const uint32_t* rows, size_t count,
                           std::vector<AggState>& col) {
  switch (ap.kind) {
    case AccKind::kCountStar:
      for (size_t i = 0; i < count; ++i) col[gid[i]].row_count++;
      break;
    case AccKind::kCount:
      for (size_t i = 0; i < count; ++i) {
        if (ap.validity[rows[i]]) col[gid[i]].count++;
      }
      break;
    case AccKind::kSumInt:
      for (size_t i = 0; i < count; ++i) {
        const uint32_t row = rows[i];
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[i]];
        st.isum += ap.i64[row];
        st.saw_value = true;
      }
      break;
    case AccKind::kSumFloat:
      for (size_t i = 0; i < count; ++i) {
        const uint32_t row = rows[i];
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[i]];
        st.sum += ap.NumericAt(row);
        st.saw_value = true;
      }
      break;
    case AccKind::kAvg:
      for (size_t i = 0; i < count; ++i) {
        const uint32_t row = rows[i];
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[i]];
        st.sum += ap.NumericAt(row);
        st.count++;
        st.saw_value = true;
      }
      break;
    case AccKind::kAvgStr:
      for (size_t i = 0; i < count; ++i) {
        if (!ap.validity[rows[i]]) continue;
        AggState& st = col[gid[i]];
        st.count++;
        st.saw_value = true;
      }
      break;
    case AccKind::kMinNum:
      for (size_t i = 0; i < count; ++i) {
        const uint32_t row = rows[i];
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[i]];
        double v = ap.NumericAt(row);
        if (v < st.min) st.min = v;
        st.saw_value = true;
      }
      break;
    case AccKind::kMaxNum:
      for (size_t i = 0; i < count; ++i) {
        const uint32_t row = rows[i];
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[i]];
        double v = ap.NumericAt(row);
        if (v > st.max) st.max = v;
        st.saw_value = true;
      }
      break;
    case AccKind::kMinStr:
      for (size_t i = 0; i < count; ++i) {
        const uint32_t row = rows[i];
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[i]];
        const std::string& s = ap.StringAt(row);
        if (!st.saw_value || s < st.smin) st.smin = s;
        st.saw_value = true;
      }
      break;
    case AccKind::kMaxStr:
      for (size_t i = 0; i < count; ++i) {
        const uint32_t row = rows[i];
        if (!ap.validity[row]) continue;
        AggState& st = col[gid[i]];
        const std::string& s = ap.StringAt(row);
        if (!st.saw_value || s > st.smax) st.smax = s;
        st.saw_value = true;
      }
      break;
  }
}

// Unrolled accumulation over small group domains for the integer-associative
// kinds (count(*), count, sum of INT64 — the percentage pipelines' hot
// aggregates over 4-byte dictionary codes). Four independent lane arrays
// break the load-add-store dependency chain a per-group scalar accumulator
// serializes on when consecutive rows hit the same group (the common case
// for low-cardinality dimensions); the lane fold afterwards is integer
// addition, so the result is bit-identical to the scalar loop. Returns false
// when the kind is not lane-foldable — the caller then runs the scalar
// kernel. `scratch` is caller-owned morsel scratch, resized here.
inline bool AccumulateMorselUnrolled(const AccPlan& ap,
                                     const std::vector<uint32_t>& gid,
                                     size_t begin, size_t end,
                                     size_t num_groups,
                                     std::vector<AggState>& col,
                                     std::vector<int64_t>& scratch) {
  if (ap.kind != AccKind::kCountStar && ap.kind != AccKind::kCount &&
      ap.kind != AccKind::kSumInt) {
    return false;
  }
  const size_t g4 = num_groups * 4;
  scratch.assign(ap.kind == AccKind::kSumInt ? g4 * 2 : g4, 0);
  int64_t* lanes = scratch.data();          // [lane][group] sums or counts
  int64_t* cnt = scratch.data() + g4;       // kSumInt: valid-row counts
  const uint32_t* g = gid.data();
  const bool no_nulls =
      ap.validity == nullptr ||
      std::memchr(ap.validity + begin, 0, end - begin) == nullptr;
  const size_t count = end - begin;
  size_t i = 0;
  switch (ap.kind) {
    case AccKind::kCountStar:
      for (; i + 4 <= count; i += 4) {
        lanes[g[i]]++;
        lanes[num_groups + g[i + 1]]++;
        lanes[2 * num_groups + g[i + 2]]++;
        lanes[3 * num_groups + g[i + 3]]++;
      }
      for (; i < count; ++i) lanes[g[i]]++;
      for (size_t grp = 0; grp < num_groups; ++grp) {
        const int64_t c = lanes[grp] + lanes[num_groups + grp] +
                          lanes[2 * num_groups + grp] +
                          lanes[3 * num_groups + grp];
        if (c != 0) col[grp].row_count += c;
      }
      return true;
    case AccKind::kCount:
      if (no_nulls) {
        for (; i + 4 <= count; i += 4) {
          lanes[g[i]]++;
          lanes[num_groups + g[i + 1]]++;
          lanes[2 * num_groups + g[i + 2]]++;
          lanes[3 * num_groups + g[i + 3]]++;
        }
        for (; i < count; ++i) lanes[g[i]]++;
      } else {
        const uint8_t* v = ap.validity + begin;
        for (; i < count; ++i) {
          if (v[i]) lanes[(i & 3) * num_groups + g[i]]++;
        }
      }
      for (size_t grp = 0; grp < num_groups; ++grp) {
        const int64_t c = lanes[grp] + lanes[num_groups + grp] +
                          lanes[2 * num_groups + grp] +
                          lanes[3 * num_groups + grp];
        if (c != 0) col[grp].count += c;
      }
      return true;
    case AccKind::kSumInt: {
      const int64_t* val = ap.i64 + begin;
      if (no_nulls) {
        for (; i + 4 <= count; i += 4) {
          lanes[g[i]] += val[i];
          cnt[g[i]]++;
          lanes[num_groups + g[i + 1]] += val[i + 1];
          cnt[num_groups + g[i + 1]]++;
          lanes[2 * num_groups + g[i + 2]] += val[i + 2];
          cnt[2 * num_groups + g[i + 2]]++;
          lanes[3 * num_groups + g[i + 3]] += val[i + 3];
          cnt[3 * num_groups + g[i + 3]]++;
        }
        for (; i < count; ++i) {
          lanes[g[i]] += val[i];
          cnt[g[i]]++;
        }
      } else {
        const uint8_t* v = ap.validity + begin;
        for (; i < count; ++i) {
          if (!v[i]) continue;
          const size_t slot = (i & 3) * num_groups + g[i];
          lanes[slot] += val[i];
          cnt[slot]++;
        }
      }
      for (size_t grp = 0; grp < num_groups; ++grp) {
        const int64_t c = cnt[grp] + cnt[num_groups + grp] +
                          cnt[2 * num_groups + grp] +
                          cnt[3 * num_groups + grp];
        if (c == 0) continue;
        col[grp].isum += lanes[grp] + lanes[num_groups + grp] +
                         lanes[2 * num_groups + grp] +
                         lanes[3 * num_groups + grp];
        col[grp].saw_value = true;
      }
      return true;
    }
    default:
      return false;
  }
}

// Folds one accumulator into another (associative, commutative up to the
// first-seen tie-breaks handled by the callers' row ordering).
inline void MergeState(AggState& d, const AggState& s) {
  d.row_count += s.row_count;
  d.count += s.count;
  d.sum += s.sum;
  d.isum += s.isum;
  if (s.min < d.min) d.min = s.min;
  if (s.max > d.max) d.max = s.max;
  if (s.saw_value) {
    if (!d.saw_value || s.smin < d.smin) d.smin = s.smin;
    if (!d.saw_value || s.smax > d.smax) d.smax = s.smax;
    d.saw_value = true;
  }
}

// One group's accumulators gathered back into [agg] order for emission.
inline std::vector<AggState> GatherStates(
    const std::vector<std::vector<AggState>>& spec_states, size_t id) {
  std::vector<AggState> gs;
  gs.reserve(spec_states.size());
  for (const std::vector<AggState>& sc : spec_states) gs.push_back(sc[id]);
  return gs;
}

// Group-by resolution + aggregate validation + vectorized input evaluation,
// shared verbatim between the materialized and fused kernels. `acc_plans`
// holds raw pointers into `agg_inputs`; both stay valid across moves of the
// whole struct (vector storage is stable under move).
struct AggBindings {
  std::vector<size_t> group_idx;
  std::vector<DataType> out_types;
  std::vector<Column> agg_inputs;
  std::vector<AccPlan> acc_plans;
};

inline Result<AggBindings> BindAggs(const Table& input,
                                    const std::vector<std::string>& group_by,
                                    const std::vector<AggSpec>& aggs) {
  AggBindings b;
  b.group_idx.reserve(group_by.size());
  for (const std::string& name : group_by) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, input.schema().FindColumn(name));
    b.group_idx.push_back(idx);
  }
  b.out_types.reserve(aggs.size());
  b.agg_inputs.reserve(aggs.size());
  for (const AggSpec& spec : aggs) {
    if (spec.func != AggFunc::kCountStar && spec.input == nullptr) {
      return Status::InvalidArgument("aggregate requires an input expression");
    }
    if (spec.func == AggFunc::kCountStar) {
      b.out_types.push_back(DataType::kInt64);
      b.agg_inputs.emplace_back(DataType::kInt64);  // placeholder, unused
      continue;
    }
    PCTAGG_ASSIGN_OR_RETURN(DataType t, AggOutputType(spec, input.schema()));
    b.out_types.push_back(t);
    PCTAGG_ASSIGN_OR_RETURN(Column c, spec.input->Evaluate(input));
    b.agg_inputs.push_back(std::move(c));
  }
  b.acc_plans.reserve(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    b.acc_plans.push_back(MakeAccPlan(aggs[a], b.agg_inputs[a]));
  }
  return b;
}

// Builds the result table from merged per-group states in emission order.
// `representative_row[g]` is the input row the group columns are copied
// from. A global aggregation over zero rows still produces one (empty)
// group, appended here.
inline Result<Table> EmitAggOutput(const Table& input,
                                   const std::vector<size_t>& group_idx,
                                   const std::vector<AggSpec>& aggs,
                                   const std::vector<DataType>& out_types,
                                   std::vector<std::vector<AggState>>& states,
                                   std::vector<size_t>& representative_row) {
  if (group_idx.empty() && states.empty()) {
    states.emplace_back(aggs.size());
    representative_row.push_back(0);  // unused: no group columns to copy
  }

  Schema out_schema;
  for (size_t gi : group_idx) {
    out_schema.AddColumn(input.schema().column(gi));
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    out_schema.AddColumn({aggs[a].output_name, out_types[a]});
  }
  Table out(out_schema);
  out.Reserve(states.size());

  for (size_t g = 0; g < states.size(); ++g) {
    std::vector<Value> row;
    row.reserve(group_idx.size() + aggs.size());
    for (size_t gi : group_idx) {
      row.push_back(input.column(gi).GetValue(representative_row[g]));
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggState& st = states[g][a];
      const AggSpec& spec = aggs[a];
      switch (spec.func) {
        case AggFunc::kCountStar:
          row.push_back(Value::Int64(st.row_count));
          break;
        case AggFunc::kCount:
          row.push_back(Value::Int64(st.count));
          break;
        case AggFunc::kSum:
          if (!st.saw_value) {
            row.push_back(Value::Null());
          } else if (out_types[a] == DataType::kInt64) {
            row.push_back(Value::Int64(st.isum));
          } else {
            row.push_back(Value::Float64(st.sum));
          }
          break;
        case AggFunc::kAvg:
          row.push_back(
              st.saw_value
                  ? Value::Float64(st.sum / static_cast<double>(st.count))
                  : Value::Null());
          break;
        case AggFunc::kMin:
          if (!st.saw_value) {
            row.push_back(Value::Null());
          } else if (out_types[a] == DataType::kString) {
            row.push_back(Value::String(st.smin));
          } else if (out_types[a] == DataType::kInt64) {
            row.push_back(Value::Int64(static_cast<int64_t>(st.min)));
          } else {
            row.push_back(Value::Float64(st.min));
          }
          break;
        case AggFunc::kMax:
          if (!st.saw_value) {
            row.push_back(Value::Null());
          } else if (out_types[a] == DataType::kString) {
            row.push_back(Value::String(st.smax));
          } else if (out_types[a] == DataType::kInt64) {
            row.push_back(Value::Int64(static_cast<int64_t>(st.max)));
          } else {
            row.push_back(Value::Float64(st.max));
          }
          break;
      }
    }
    PCTAGG_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

}  // namespace aggdetail
}  // namespace pctagg

#endif  // PCTAGG_ENGINE_AGG_INTERNAL_H_
