#include "engine/pipeline.h"

#include <algorithm>
#include <cstring>

#include "common/cpu.h"
#include "engine/agg_internal.h"
#include "engine/packed_key.h"
#include "engine/parallel.h"
#include "obs/trace.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace pctagg {

namespace {

using aggdetail::AccPlan;
using aggdetail::AggState;

constexpr uint32_t kEmpty = UINT32_MAX;

// ---------------------------------------------------------------------------
// Inline key table: the fused keying tier for <= 2 group columns. Instead of
// packing tag+payload bytes into a key buffer and re-reading them through the
// generic KeyMap arena, each key is two 64-bit payload words (int64 bits,
// float64 bits, or the 4-byte dictionary code) plus a null-flag byte held in
// registers straight off the column arrays. Equality over (payloads, nulls)
// is exactly packed-key equality — per column, both NULL or both valid with
// identical payload bits; the column types are fixed per query so no type
// tag is needed — which keeps group identity, and therefore results,
// identical to the materialized path.
// ---------------------------------------------------------------------------

struct GroupColRef {
  DataType type;
  const uint8_t* validity = nullptr;
  const int64_t* i64 = nullptr;
  const double* f64 = nullptr;
  const uint32_t* codes = nullptr;
};

inline GroupColRef MakeGroupColRef(const Column& c) {
  GroupColRef r;
  r.type = c.type();
  r.validity = c.validity().data();
  switch (c.type()) {
    case DataType::kInt64:
      r.i64 = c.int64_data().data();
      break;
    case DataType::kFloat64:
      r.f64 = c.float64_data().data();
      break;
    case DataType::kString:
      r.codes = c.codes().data();
      break;
  }
  return r;
}

inline uint64_t PayloadAt(const GroupColRef& c, size_t row) {
  switch (c.type) {
    case DataType::kInt64:
      return static_cast<uint64_t>(c.i64[row]);
    case DataType::kFloat64: {
      uint64_t bits;
      std::memcpy(&bits, &c.f64[row], 8);
      return bits;
    }
    case DataType::kString:
      return c.codes[row];
  }
  return 0;
}

struct InlineKeyTable {
  std::vector<uint64_t> slot_hash;
  std::vector<uint32_t> slot_id;  // kEmpty marks a free slot
  std::vector<uint64_t> k0, k1;   // dense payload words, by id
  std::vector<uint8_t> kn;        // dense null-flag bytes, by id
  size_t mask = 0;

  size_t size() const { return k0.size(); }
  size_t slots() const { return slot_id.size(); }

  static uint64_t HashKey(uint64_t a, uint64_t b, uint8_t nb) {
    uint64_t h = (a ^ 0x9e3779b97f4a7c15ULL) * 0x2545f4914f6cdd1dULL;
    h ^= (b + 0xc2b2ae3d27d4eb4fULL) * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<uint64_t>(nb) * 0xff51afd7ed558ccdULL;
    h ^= h >> 32;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 32;
    return h;
  }

  void Grow(size_t min_slots) {
    size_t n = 64;
    while (n < min_slots) n <<= 1;
    if (!slot_id.empty() && n <= slot_id.size()) return;
    std::vector<uint64_t> old_hash = std::move(slot_hash);
    std::vector<uint32_t> old_id = std::move(slot_id);
    slot_hash.assign(n, 0);
    slot_id.assign(n, kEmpty);
    mask = n - 1;
    for (size_t s = 0; s < old_id.size(); ++s) {
      if (old_id[s] == kEmpty) continue;
      size_t idx = old_hash[s] & mask;
      while (slot_id[idx] != kEmpty) idx = (idx + 1) & mask;
      slot_hash[idx] = old_hash[s];
      slot_id[idx] = old_id[s];
    }
  }

  uint32_t GetOrAdd(uint64_t a, uint64_t b, uint8_t nb, size_t row,
                    std::vector<size_t>* first_row) {
    if (slot_id.empty()) Grow(64);
    const uint64_t h = HashKey(a, b, nb);
    size_t idx = h & mask;
    for (;;) {
      const uint32_t slot = slot_id[idx];
      if (slot == kEmpty) {
        const uint32_t id = static_cast<uint32_t>(k0.size());
        k0.push_back(a);
        k1.push_back(b);
        kn.push_back(nb);
        slot_hash[idx] = h;
        slot_id[idx] = id;
        first_row->push_back(row);
        if ((static_cast<size_t>(id) + 1) * 2 >= slot_id.size()) {
          Grow(slot_id.size() * 2);
        }
        return id;
      }
      if (slot_hash[idx] == h && k0[slot] == a && k1[slot] == b &&
          kn[slot] == nb) {
        if (row < (*first_row)[slot]) (*first_row)[slot] = row;
        return slot;
      }
      idx = (idx + 1) & mask;
    }
  }
};

// ---------------------------------------------------------------------------
// WHERE-mask helpers.
// ---------------------------------------------------------------------------

// Compacts the mask over [begin, end) into a list of matching absolute row
// ids. The SSE2 path (baseline on x86-64, but still behind the runtime SIMD
// switch so PCTAGG_DISABLE_SIMD covers the scalar loop) classifies 16 mask
// bytes per movemask: all-zero blocks are skipped and all-ones blocks append
// 16 consecutive rows without per-row branches — selective and permissive
// filters both collapse to one branch per block.
size_t BuildSelection(const uint8_t* mask, size_t begin, size_t end,
                      uint32_t* sel) {
  size_t out = 0;
  size_t row = begin;
#if defined(__x86_64__)
  if (SimdEnabled()) {
    const __m128i zero = _mm_setzero_si128();
    for (; row + 16 <= end; row += 16) {
      const __m128i block = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(mask + row));
      const int zeros =
          _mm_movemask_epi8(_mm_cmpeq_epi8(block, zero));
      if (zeros == 0xFFFF) continue;  // no row selected
      if (zeros == 0) {               // every row selected
        for (int k = 0; k < 16; ++k) {
          sel[out++] = static_cast<uint32_t>(row + k);
        }
        continue;
      }
      int bits = ~zeros & 0xFFFF;
      while (bits != 0) {
        const int k = __builtin_ctz(bits);
        sel[out++] = static_cast<uint32_t>(row + k);
        bits &= bits - 1;
      }
    }
  }
#endif
  for (; row < end; ++row) {
    if (mask[row] != 0) sel[out++] = static_cast<uint32_t>(row);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Vectorized divide.
// ---------------------------------------------------------------------------

#if defined(__x86_64__)
__attribute__((target("avx2"))) void DivideLanesAvx2(const double* a,
                                                     const double* b,
                                                     double* r, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(r + i, _mm256_div_pd(_mm256_loadu_pd(a + i),
                                          _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) r[i] = a[i] / b[i];
}
#endif

void DivideLanes(const double* a, const double* b, double* r, size_t n) {
#if defined(__x86_64__)
  if (CpuHasAvx2() && SimdEnabled()) {
    DivideLanesAvx2(a, b, r, n);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) r[i] = a[i] / b[i];
}

bool IsNumeric(const Column& c) {
  return c.type() == DataType::kInt64 || c.type() == DataType::kFloat64;
}

// One worker's thread-local fused partial state. Which keying structure is
// live depends on the tier picked for the whole aggregation.
struct FusedPartial {
  InlineKeyTable itab;
  KeyMap groups;
  std::vector<std::vector<AggState>> spec_states;  // [agg][local group]
  std::vector<size_t> first_row;
  std::vector<uint32_t> gid;         // morsel scratch: group id per kept row
  std::vector<uint32_t> sel;         // morsel scratch: kept absolute rows
  std::vector<char> key_buf;         // morsel scratch: packed keys
  std::vector<int64_t> lane_scratch; // morsel scratch: unrolled lanes
};

}  // namespace

Result<Table> FusedAggregate(const Table& input, const ExprPtr& where,
                             const std::vector<std::string>& group_by,
                             const std::vector<AggSpec>& aggs, size_t dop) {
  // WHERE becomes a mask, never a row copy: the filter stage of the fused
  // pipeline only decides which rows the partial-agg stage consumes.
  const size_t n = input.num_rows();
  std::vector<uint8_t> mask;
  if (where != nullptr) {
    obs::OpScope filter_op("filter");
    PCTAGG_ASSIGN_OR_RETURN(Column pred, where->Evaluate(input));
    if (pred.type() != DataType::kInt64) {
      return Status::TypeMismatch("filter predicate must be boolean");
    }
    mask.resize(n);
    const uint8_t* pv = pred.validity().data();
    const int64_t* pd = pred.int64_data().data();
    size_t kept = 0;
    for (size_t row = 0; row < n; ++row) {
      const uint8_t keep = pv[row] != 0 && pd[row] != 0;
      mask[row] = keep;
      kept += keep;
    }
    filter_op.SetRows(n, kept);
    filter_op.SetDetail("fused mask");
  }

  obs::OpScope op("aggregate");
  PCTAGG_ASSIGN_OR_RETURN(aggdetail::AggBindings bind,
                          aggdetail::BindAggs(input, group_by, aggs));
  const std::vector<size_t>& group_idx = bind.group_idx;
  const std::vector<AccPlan>& acc_plans = bind.acc_plans;

  if (dop == 0) dop = CurrentDop();
  MorselPlan plan = MorselPlan::Auto(n, dop);

  // Keying tier. Direct-dict mirrors HashAggregate's: one small-dictionary
  // string column means the code IS the dense group id. The inline table
  // covers up to two group columns of any type; wider keys fall back to the
  // packed KeyMap batch path (which now carries the AVX2 candidate probe).
  constexpr size_t kDirectDictMaxSlots = 4096;
  enum class Tier { kDirectDict, kInline, kPacked };
  Tier tier = group_idx.size() <= 2 ? Tier::kInline : Tier::kPacked;
  const uint32_t* direct_codes = nullptr;
  const uint8_t* direct_validity = nullptr;
  size_t direct_slots = 0;
  if (group_idx.size() == 1 &&
      input.column(group_idx[0]).type() == DataType::kString) {
    const Column& gc = input.column(group_idx[0]);
    if (gc.dict()->size() + 1 <= kDirectDictMaxSlots) {
      direct_codes = gc.codes().data();
      direct_validity = gc.validity().data();
      direct_slots = gc.dict()->size() + 1;
      tier = Tier::kDirectDict;
    }
  }
  std::vector<GroupColRef> group_refs;
  if (tier == Tier::kInline) {
    group_refs.reserve(group_idx.size());
    for (size_t gi : group_idx) {
      group_refs.push_back(MakeGroupColRef(input.column(gi)));
    }
  }
  const KeyEncoder encoder(input, group_idx);

  // The unrolled integer lanes kick in for unfiltered morsels over small
  // group domains; they are bit-identical to the scalar loop (integer
  // addition) but sit behind the runtime SIMD switch so the scalar kernels
  // stay exercised under PCTAGG_DISABLE_SIMD=1.
  const bool lanes_enabled = SimdEnabled();
  constexpr size_t kLaneMaxGroups = 4096;
  constexpr size_t kLaneMinRows = 512;

  std::vector<FusedPartial> partials(plan.num_workers);
  for (FusedPartial& p : partials) {
    p.spec_states.resize(aggs.size());
    if (tier == Tier::kDirectDict) {
      for (std::vector<AggState>& sc : p.spec_states) sc.resize(direct_slots);
      p.first_row.assign(direct_slots, SIZE_MAX);
    }
  }
  const uint8_t* mask_data = mask.empty() ? nullptr : mask.data();

  RunMorsels(plan, [&](size_t worker, size_t begin, size_t end) {
    FusedPartial& p = partials[worker];
    const size_t span = end - begin;
    if (p.gid.size() < span) p.gid.resize(span);

    // Filter stage: compact the mask into this morsel's selection list.
    const uint32_t* rows = nullptr;
    size_t count = span;
    if (mask_data != nullptr) {
      if (p.sel.size() < span) p.sel.resize(span);
      count = BuildSelection(mask_data, begin, end, p.sel.data());
      rows = p.sel.data();
      if (count == 0) return;
    }

    // Keying stage: local group id per kept row.
    switch (tier) {
      case Tier::kDirectDict: {
        const uint32_t null_slot = static_cast<uint32_t>(direct_slots - 1);
        if (rows == nullptr) {
          for (size_t row = begin; row < end; ++row) {
            const uint32_t g =
                direct_validity[row] ? direct_codes[row] : null_slot;
            if (row < p.first_row[g]) p.first_row[g] = row;
            p.gid[row - begin] = g;
          }
        } else {
          for (size_t i = 0; i < count; ++i) {
            const uint32_t row = rows[i];
            const uint32_t g =
                direct_validity[row] ? direct_codes[row] : null_slot;
            if (row < p.first_row[g]) p.first_row[g] = row;
            p.gid[i] = g;
          }
        }
        break;
      }
      case Tier::kInline: {
        const size_t ncols = group_refs.size();
        const GroupColRef* c0 = ncols > 0 ? &group_refs[0] : nullptr;
        const GroupColRef* c1 = ncols > 1 ? &group_refs[1] : nullptr;
        for (size_t i = 0; i < count; ++i) {
          const size_t row = rows != nullptr ? rows[i] : begin + i;
          uint64_t a = 0, b = 0;
          uint8_t nb = 0;
          if (c0 != nullptr) {
            if (c0->validity[row] != 0) {
              a = PayloadAt(*c0, row);
            } else {
              nb |= 1;
            }
          }
          if (c1 != nullptr) {
            if (c1->validity[row] != 0) {
              b = PayloadAt(*c1, row);
            } else {
              nb |= 2;
            }
          }
          p.gid[i] = p.itab.GetOrAdd(a, b, nb, row, &p.first_row);
        }
        for (std::vector<AggState>& sc : p.spec_states) {
          if (sc.size() < p.itab.size()) sc.resize(p.itab.size());
        }
        break;
      }
      case Tier::kPacked: {
        if (!encoder.fixed_only()) {
          // Variable-width keys (none today, but keep the engine entry point
          // total): per-row generic keying, same as HashAggregate's fallback.
          std::string key;
          key.reserve(encoder.fixed_width() + 16);
          for (size_t i = 0; i < count; ++i) {
            const size_t row = rows != nullptr ? rows[i] : begin + i;
            key.clear();
            encoder.AppendKey(row, &key);
            auto [g, inserted] = p.groups.GetOrAdd(key);
            if (inserted) {
              p.first_row.push_back(row);
            } else if (row < p.first_row[g]) {
              p.first_row[g] = row;
            }
            p.gid[i] = static_cast<uint32_t>(g);
          }
          for (std::vector<AggState>& sc : p.spec_states) {
            if (sc.size() < p.groups.size()) sc.resize(p.groups.size());
          }
          break;
        }
        const size_t stride = encoder.fixed_width();
        if (p.key_buf.size() < count * stride) {
          p.key_buf.resize(count * stride);
        }
        if (rows == nullptr) {
          encoder.EncodeFixedBatch(begin, end, p.key_buf.data());
          p.groups.GetOrAddFixedBatch(p.key_buf.data(), stride, count, begin,
                                      p.gid.data(), &p.first_row);
        } else {
          encoder.EncodeFixedRows(rows, count, p.key_buf.data());
          p.groups.GetOrAddFixedBatchRows(p.key_buf.data(), stride, count,
                                          rows, p.gid.data(), &p.first_row);
        }
        for (std::vector<AggState>& sc : p.spec_states) {
          if (sc.size() < p.groups.size()) sc.resize(p.groups.size());
        }
        break;
      }
    }

    // Accumulation stage.
    for (size_t a = 0; a < acc_plans.size(); ++a) {
      std::vector<AggState>& col = p.spec_states[a];
      if (rows == nullptr) {
        if (lanes_enabled && col.size() <= kLaneMaxGroups &&
            span >= kLaneMinRows &&
            aggdetail::AccumulateMorselUnrolled(acc_plans[a], p.gid, begin,
                                                end, col.size(), col,
                                                p.lane_scratch)) {
          continue;
        }
        aggdetail::AccumulateMorsel(acc_plans[a], p.gid, begin, end, col);
      } else {
        aggdetail::AccumulateRows(acc_plans[a], p.gid.data(), rows, count,
                                  col);
      }
    }
  });

  // Merge phase: per-worker partials combined once. Output order is the
  // global first-seen order (each group's minimum input row), exactly as the
  // materialized path emits.
  std::vector<std::vector<AggState>> states;
  std::vector<size_t> representative_row;
  const size_t num_specs = aggs.size();
  if (tier == Tier::kDirectDict) {
    FusedPartial& p0 = partials[0];
    for (size_t w = 1; w < partials.size(); ++w) {
      const FusedPartial& pw = partials[w];
      for (size_t g = 0; g < direct_slots; ++g) {
        if (pw.first_row[g] == SIZE_MAX) continue;
        for (size_t a = 0; a < num_specs; ++a) {
          aggdetail::MergeState(p0.spec_states[a][g], pw.spec_states[a][g]);
        }
        p0.first_row[g] = std::min(p0.first_row[g], pw.first_row[g]);
      }
    }
    std::vector<uint32_t> order;
    order.reserve(direct_slots);
    for (size_t g = 0; g < direct_slots; ++g) {
      if (p0.first_row[g] != SIZE_MAX) order.push_back(static_cast<uint32_t>(g));
    }
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return p0.first_row[a] < p0.first_row[b];
    });
    states.reserve(order.size());
    representative_row.reserve(order.size());
    for (uint32_t g : order) {
      states.push_back(aggdetail::GatherStates(p0.spec_states, g));
      representative_row.push_back(p0.first_row[g]);
    }
  } else if (tier == Tier::kInline) {
    FusedPartial& p0 = partials[0];
    for (size_t w = 1; w < partials.size(); ++w) {
      FusedPartial& pw = partials[w];
      for (size_t id = 0; id < pw.itab.size(); ++id) {
        const uint32_t g = p0.itab.GetOrAdd(pw.itab.k0[id], pw.itab.k1[id],
                                            pw.itab.kn[id], pw.first_row[id],
                                            &p0.first_row);
        for (std::vector<AggState>& sc : p0.spec_states) {
          if (sc.size() < p0.itab.size()) sc.resize(p0.itab.size());
        }
        for (size_t a = 0; a < num_specs; ++a) {
          aggdetail::MergeState(p0.spec_states[a][g], pw.spec_states[a][id]);
        }
      }
    }
    const size_t groups = p0.itab.size();
    std::vector<uint32_t> order(groups);
    for (size_t g = 0; g < groups; ++g) order[g] = static_cast<uint32_t>(g);
    if (partials.size() > 1) {
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        return p0.first_row[a] < p0.first_row[b];
      });
    }
    states.reserve(groups);
    representative_row.reserve(groups);
    for (uint32_t g : order) {
      states.push_back(aggdetail::GatherStates(p0.spec_states, g));
      representative_row.push_back(p0.first_row[g]);
    }
  } else {
    struct MergedGroup {
      std::vector<AggState> states;
      size_t first_row;
    };
    KeyMap seen;
    std::vector<MergedGroup> merged;
    if (plan.num_workers <= 1) {
      FusedPartial& p = partials[0];
      states.reserve(p.groups.size());
      for (size_t g = 0; g < p.groups.size(); ++g) {
        states.push_back(aggdetail::GatherStates(p.spec_states, g));
      }
      representative_row = std::move(p.first_row);
    } else {
      for (const FusedPartial& p : partials) {
        p.groups.ForEach([&](std::string_view key, size_t id) {
          auto [g, inserted] = seen.GetOrAdd(key);
          if (inserted) {
            merged.push_back(
                {aggdetail::GatherStates(p.spec_states, id), p.first_row[id]});
          } else {
            for (size_t a = 0; a < num_specs; ++a) {
              aggdetail::MergeState(merged[g].states[a], p.spec_states[a][id]);
            }
            merged[g].first_row = std::min(merged[g].first_row, p.first_row[id]);
          }
        });
      }
      std::sort(merged.begin(), merged.end(),
                [](const MergedGroup& a, const MergedGroup& b) {
                  return a.first_row < b.first_row;
                });
      states.reserve(merged.size());
      representative_row.reserve(merged.size());
      for (MergedGroup& mg : merged) {
        states.push_back(std::move(mg.states));
        representative_row.push_back(mg.first_row);
      }
    }
  }

  if (op.active()) {
    std::string detail = "fused ";
    switch (tier) {
      case Tier::kDirectDict: {
        op.SetHashTable(states.size(), direct_slots);
        detail += "keys=direct-dict(" + std::to_string(direct_slots - 1) + ")";
        break;
      }
      case Tier::kInline: {
        size_t peak_groups = 0, peak_slots = 0;
        for (const FusedPartial& p : partials) {
          if (p.itab.size() > peak_groups) {
            peak_groups = p.itab.size();
            peak_slots = p.itab.slots();
          }
        }
        op.SetHashTable(peak_groups, peak_slots);
        detail += "keys=inline(" + std::to_string(group_idx.size()) + "x8B)";
        break;
      }
      case Tier::kPacked: {
        size_t peak_groups = 0, peak_slots = 0;
        for (const FusedPartial& p : partials) {
          if (p.groups.size() > peak_groups) {
            peak_groups = p.groups.size();
            peak_slots = p.groups.slots();
          }
        }
        op.SetHashTable(peak_groups, peak_slots);
        detail += "keys=packed(" + std::to_string(encoder.fixed_width()) + "B)";
        break;
      }
    }
    if (mask_data != nullptr) detail += "+where";
    op.SetDetail(detail);
    op.SetRows(n, states.size());
    op.SetMorsels(plan.num_morsels, plan.num_workers);
    if (plan.num_workers > 1) op.SetPartialsMerged(partials.size());
  }

  return aggdetail::EmitAggOutput(input, group_idx, aggs, bind.out_types,
                                  states, representative_row);
}

Result<Column> PercentDivideColumns(const Column& num, const Column& den) {
  if (!IsNumeric(num) || !IsNumeric(den)) {
    return Status::TypeMismatch("percentage divide requires numeric operands");
  }
  const size_t n = num.size();
  std::vector<double> a(n), b(n), r(n);
  std::vector<uint8_t> ok(n);
  const uint8_t* nv = num.validity().data();
  const uint8_t* dv = den.validity().data();
  for (size_t i = 0; i < n; ++i) {
    // NULL slots hold placeholder payloads; reading them is fine because
    // `ok` masks those lanes out of the output.
    a[i] = num.NumericAt(i);
    b[i] = den.NumericAt(i);
    ok[i] = nv[i] != 0 && dv[i] != 0 && b[i] != 0.0;
  }
  DivideLanes(a.data(), b.data(), r.data(), n);
  Column out(DataType::kFloat64);
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (ok[i]) {
      out.AppendFloat64(r[i]);
    } else {
      out.AppendNull();
    }
  }
  return out;
}

Result<Column> PercentDivideScalar(const Column& num, const Value& total) {
  if (!IsNumeric(num)) {
    return Status::TypeMismatch("percentage divide requires numeric operands");
  }
  const size_t n = num.size();
  Column out(DataType::kFloat64);
  out.Reserve(n);
  if (total.is_null() || total.AsDouble() == 0.0) {
    for (size_t i = 0; i < n; ++i) out.AppendNull();
    return out;
  }
  const double b = total.AsDouble();
  std::vector<double> a(n), bb(n, b), r(n);
  const uint8_t* nv = num.validity().data();
  for (size_t i = 0; i < n; ++i) a[i] = num.NumericAt(i);
  DivideLanes(a.data(), bb.data(), r.data(), n);
  for (size_t i = 0; i < n; ++i) {
    if (nv[i] != 0) {
      out.AppendFloat64(r[i]);
    } else {
      out.AppendNull();
    }
  }
  return out;
}

}  // namespace pctagg
