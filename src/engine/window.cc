#include "engine/window.h"

#include <limits>
#include <unordered_map>

namespace pctagg {

Result<Column> WindowAggregate(const Table& input,
                               const std::vector<std::string>& partition_by,
                               AggFunc func, const ExprPtr& arg) {
  std::vector<size_t> part_idx;
  for (const std::string& name : partition_by) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, input.schema().FindColumn(name));
    part_idx.push_back(idx);
  }
  if (func != AggFunc::kCountStar && arg == nullptr) {
    return Status::InvalidArgument("window aggregate requires an argument");
  }

  Column in(DataType::kFloat64);
  DataType in_type = DataType::kFloat64;
  if (func != AggFunc::kCountStar) {
    PCTAGG_ASSIGN_OR_RETURN(in_type, arg->ResultType(input.schema()));
    if (in_type == DataType::kString && func != AggFunc::kCount) {
      return Status::TypeMismatch(
          "window aggregates over string columns support only count()");
    }
    PCTAGG_ASSIGN_OR_RETURN(in, arg->Evaluate(input));
  }

  struct PartState {
    double sum = 0.0;
    int64_t isum = 0;
    int64_t count = 0;
    int64_t rows = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    bool saw_value = false;
  };

  // Pass 1: accumulate per-partition state keyed by the partition columns.
  const size_t n = input.num_rows();
  std::unordered_map<std::string, PartState> parts;
  std::vector<const PartState*> row_part(n, nullptr);
  // Store keys to re-probe cheaply in pass 2 without re-encoding: keep the
  // map stable by reserving, then look up pointers after all inserts.
  std::vector<std::string> keys(n);
  std::string key;
  for (size_t row = 0; row < n; ++row) {
    key.clear();
    input.AppendKeyBytes(row, part_idx, &key);
    keys[row] = key;
    PartState& st = parts[key];
    st.rows++;
    if (func == AggFunc::kCountStar) continue;
    if (in.IsNull(row)) continue;
    st.count++;
    st.saw_value = true;
    if (in.type() != DataType::kString) {
      double v = in.NumericAt(row);
      st.sum += v;
      if (in.type() == DataType::kInt64) st.isum += in.Int64At(row);
      if (v < st.min) st.min = v;
      if (v > st.max) st.max = v;
    }
  }
  for (size_t row = 0; row < n; ++row) {
    row_part[row] = &parts[keys[row]];
  }

  // Output type mirrors HashAggregate.
  DataType out_type = DataType::kFloat64;
  if (func == AggFunc::kCount || func == AggFunc::kCountStar) {
    out_type = DataType::kInt64;
  } else if (func == AggFunc::kSum && in_type == DataType::kInt64) {
    out_type = DataType::kInt64;
  } else if ((func == AggFunc::kMin || func == AggFunc::kMax) &&
             in_type == DataType::kInt64) {
    out_type = DataType::kInt64;
  }

  // Pass 2: emit one value per input row.
  Column out(out_type);
  out.Reserve(n);
  for (size_t row = 0; row < n; ++row) {
    const PartState& st = *row_part[row];
    switch (func) {
      case AggFunc::kCountStar:
        out.AppendInt64(st.rows);
        break;
      case AggFunc::kCount:
        out.AppendInt64(st.count);
        break;
      case AggFunc::kSum:
        if (!st.saw_value) {
          out.AppendNull();
        } else if (out_type == DataType::kInt64) {
          out.AppendInt64(st.isum);
        } else {
          out.AppendFloat64(st.sum);
        }
        break;
      case AggFunc::kAvg:
        if (!st.saw_value) {
          out.AppendNull();
        } else {
          out.AppendFloat64(st.sum / static_cast<double>(st.count));
        }
        break;
      case AggFunc::kMin:
        if (!st.saw_value) {
          out.AppendNull();
        } else if (out_type == DataType::kInt64) {
          out.AppendInt64(static_cast<int64_t>(st.min));
        } else {
          out.AppendFloat64(st.min);
        }
        break;
      case AggFunc::kMax:
        if (!st.saw_value) {
          out.AppendNull();
        } else if (out_type == DataType::kInt64) {
          out.AppendInt64(static_cast<int64_t>(st.max));
        } else {
          out.AppendFloat64(st.max);
        }
        break;
    }
  }
  return out;
}

}  // namespace pctagg
