#include "engine/window.h"

#include <limits>

#include "engine/packed_key.h"
#include "engine/parallel.h"
#include "obs/trace.h"

namespace pctagg {

namespace {

struct PartState {
  double sum = 0.0;
  int64_t isum = 0;
  int64_t count = 0;
  int64_t rows = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  bool saw_value = false;
};

void MergePart(PartState& d, const PartState& s) {
  d.sum += s.sum;
  d.isum += s.isum;
  d.count += s.count;
  d.rows += s.rows;
  if (s.min < d.min) d.min = s.min;
  if (s.max > d.max) d.max = s.max;
  d.saw_value = d.saw_value || s.saw_value;
}

}  // namespace

Result<Column> WindowAggregate(const Table& input,
                               const std::vector<std::string>& partition_by,
                               AggFunc func, const ExprPtr& arg) {
  obs::OpScope op("window");
  std::vector<size_t> part_idx;
  for (const std::string& name : partition_by) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, input.schema().FindColumn(name));
    part_idx.push_back(idx);
  }
  if (func != AggFunc::kCountStar && arg == nullptr) {
    return Status::InvalidArgument("window aggregate requires an argument");
  }

  Column in(DataType::kFloat64);
  DataType in_type = DataType::kFloat64;
  if (func != AggFunc::kCountStar) {
    PCTAGG_ASSIGN_OR_RETURN(in_type, arg->ResultType(input.schema()));
    if (in_type == DataType::kString && func != AggFunc::kCount) {
      return Status::TypeMismatch(
          "window aggregates over string columns support only count()");
    }
    PCTAGG_ASSIGN_OR_RETURN(in, arg->Evaluate(input));
  }

  // Pass 1: morsel-parallel accumulation into thread-local partition tables.
  // Instead of materializing one key string per input row (the seed kept n
  // std::strings alive just to re-probe in pass 2), each worker records a
  // dense local partition id per row; after the merge those remap to global
  // ids with one table lookup per (worker, local id).
  const size_t n = input.num_rows();
  MorselPlan plan = MorselPlan::For(n, CurrentDop());
  const KeyEncoder encoder(input, part_idx);
  struct WinPartial {
    KeyMap parts;
    std::vector<PartState> states;
    std::vector<size_t> first_row;  // batch-keying bookkeeping (unused here)
    std::vector<char> key_buf;      // morsel scratch: fixed-stride packed keys
  };
  std::vector<WinPartial> partials(plan.num_workers);
  std::vector<uint32_t> row_local(n);
  std::vector<uint32_t> morsel_owner(plan.num_morsels, 0);
  RunMorsels(plan, [&](size_t worker, size_t begin, size_t end) {
    WinPartial& p = partials[worker];
    if (plan.morsel_rows > 0 && begin < n) {
      morsel_owner[begin / plan.morsel_rows] = static_cast<uint32_t>(worker);
    }
    // Batch keying (all key types are fixed width): encode the morsel's keys
    // column-at-a-time, assign local partition ids straight into row_local.
    const size_t count = end - begin;
    const size_t stride = encoder.fixed_width();
    // +1 keeps key_buf.data() non-null even for an empty (0-width) key set.
    if (p.key_buf.size() < count * stride + 1) {
      p.key_buf.resize(count * stride + 1);
    }
    encoder.EncodeFixedBatch(begin, end, p.key_buf.data());
    p.parts.GetOrAddFixedBatch(p.key_buf.data(), stride, count, begin,
                               row_local.data() + begin, &p.first_row);
    if (p.states.size() < p.parts.size()) p.states.resize(p.parts.size());
    for (size_t row = begin; row < end; ++row) {
      PartState& st = p.states[row_local[row]];
      st.rows++;
      if (func == AggFunc::kCountStar) continue;
      if (in.IsNull(row)) continue;
      st.count++;
      st.saw_value = true;
      if (in.type() != DataType::kString) {
        double v = in.NumericAt(row);
        st.sum += v;
        if (in.type() == DataType::kInt64) st.isum += in.Int64At(row);
        if (v < st.min) st.min = v;
        if (v > st.max) st.max = v;
      }
    }
  });

  // Merge partials into global partition states, and remap each worker's
  // local ids to global ids.
  std::vector<PartState> global_states;
  std::vector<std::vector<uint32_t>> remap(partials.size());
  {
    KeyMap global;
    for (size_t pi = 0; pi < partials.size(); ++pi) {
      const WinPartial& p = partials[pi];
      remap[pi].resize(p.parts.size());
      p.parts.ForEach([&](std::string_view key, size_t id) {
        auto [gid, inserted] = global.GetOrAdd(key);
        if (inserted) {
          global_states.push_back(p.states[id]);
        } else {
          MergePart(global_states[gid], p.states[id]);
        }
        remap[pi][id] = static_cast<uint32_t>(gid);
      });
    }
  }
  if (op.active()) {
    size_t peak_parts = 0, peak_slots = 0;
    for (const WinPartial& p : partials) {
      if (p.parts.size() > peak_parts) {
        peak_parts = p.parts.size();
        peak_slots = p.parts.slots();
      }
    }
    op.SetRows(n, n);
    op.SetMorsels(plan.num_morsels, plan.num_workers);
    op.SetHashTable(peak_parts, peak_slots);
    if (plan.num_workers > 1) op.SetPartialsMerged(partials.size());
    op.SetDetail("partitions=" + std::to_string(global_states.size()));
  }
  std::vector<const PartState*> row_part(n, nullptr);
  for (size_t m = 0; m < plan.num_morsels; ++m) {
    const std::vector<uint32_t>& r = remap[morsel_owner[m]];
    const size_t end = plan.End(m);
    for (size_t row = plan.Begin(m); row < end; ++row) {
      row_part[row] = &global_states[r[row_local[row]]];
    }
  }

  // Output type mirrors HashAggregate.
  DataType out_type = DataType::kFloat64;
  if (func == AggFunc::kCount || func == AggFunc::kCountStar) {
    out_type = DataType::kInt64;
  } else if (func == AggFunc::kSum && in_type == DataType::kInt64) {
    out_type = DataType::kInt64;
  } else if ((func == AggFunc::kMin || func == AggFunc::kMax) &&
             in_type == DataType::kInt64) {
    out_type = DataType::kInt64;
  }

  // Pass 2: emit one value per input row.
  Column out(out_type);
  out.Reserve(n);
  for (size_t row = 0; row < n; ++row) {
    const PartState& st = *row_part[row];
    switch (func) {
      case AggFunc::kCountStar:
        out.AppendInt64(st.rows);
        break;
      case AggFunc::kCount:
        out.AppendInt64(st.count);
        break;
      case AggFunc::kSum:
        if (!st.saw_value) {
          out.AppendNull();
        } else if (out_type == DataType::kInt64) {
          out.AppendInt64(st.isum);
        } else {
          out.AppendFloat64(st.sum);
        }
        break;
      case AggFunc::kAvg:
        if (!st.saw_value) {
          out.AppendNull();
        } else {
          out.AppendFloat64(st.sum / static_cast<double>(st.count));
        }
        break;
      case AggFunc::kMin:
        if (!st.saw_value) {
          out.AppendNull();
        } else if (out_type == DataType::kInt64) {
          out.AppendInt64(static_cast<int64_t>(st.min));
        } else {
          out.AppendFloat64(st.min);
        }
        break;
      case AggFunc::kMax:
        if (!st.saw_value) {
          out.AppendNull();
        } else if (out_type == DataType::kInt64) {
          out.AppendInt64(static_cast<int64_t>(st.max));
        } else {
          out.AppendFloat64(st.max);
        }
        break;
    }
  }
  return out;
}

}  // namespace pctagg
