#ifndef PCTAGG_ENGINE_JOIN_H_
#define PCTAGG_ENGINE_JOIN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/expression.h"
#include "engine/index.h"
#include "engine/table.h"

namespace pctagg {

enum class JoinKind {
  kInner,
  kLeftOuter,  // unmatched left rows keep NULLs in right-side outputs
};

// One output column of a join: taken from the left or right input, optionally
// renamed. Percentage plans use this to emit Fk.D1..Dk plus the two sums that
// feed the division.
struct JoinOutput {
  enum class Side { kLeft, kRight };
  Side side;
  std::string column;       // name in the source table
  std::string output_name;  // name in the result (defaults to `column`)

  static JoinOutput Left(std::string column, std::string output_name = "") {
    return {Side::kLeft, std::move(column), std::move(output_name)};
  }
  static JoinOutput Right(std::string column, std::string output_name = "") {
    return {Side::kRight, std::move(column), std::move(output_name)};
  }
};

// Equi-join of `left` and `right` on pairwise-equal key columns. Builds a
// hash table on the right side, or probes `right_index` when the caller
// already maintains a matching index (the paper's "same index on Fk and Fj"
// optimization). By SQL equality, rows whose key contains NULL never match;
// `null_safe` switches to IS-NOT-DISTINCT-FROM matching (NULL == NULL),
// which the generated plans use when joining on GROUP BY outputs — a NULL
// dimension value forms its own group and must keep its totals. Key lists
// must be the same nonzero length.
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<std::string>& left_keys,
                       const std::vector<std::string>& right_keys,
                       JoinKind kind, const std::vector<JoinOutput>& outputs,
                       const HashIndex* right_index = nullptr,
                       bool null_safe = false);

// True when `index` is keyed on exactly `key_names` (in order,
// case-insensitive) and may therefore stand in for a join hash table.
bool IndexMatchesKeys(const HashIndex& index,
                      const std::vector<std::string>& key_names);

// Specialized probe for the percentage division join, where `right` (Fj) is
// keyed uniquely by `right_keys`: returns one column with right.`value` for
// each left row (NULL when unmatched), without materializing joined rows.
// This is how the bulk INSERT..SELECT Fk JOIN Fj statement executes in one
// vectorized pass — the reason INSERT beats the row-at-a-time UPDATE.
Result<Column> LookupColumn(const Table& left, const Table& right,
                            const std::vector<std::string>& left_keys,
                            const std::vector<std::string>& right_keys,
                            const std::string& value,
                            const HashIndex* right_index = nullptr);

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_JOIN_H_
