#include "engine/dictionary.h"

#include "engine/packed_key.h"
#include "obs/metrics.h"

namespace pctagg {

namespace {

// Ingest-rate counters for STATS / Prometheus: a hit is an AppendString that
// resolved to an existing code, a miss interned a new string. Hoisted behind
// function-local statics (registration takes a mutex, Add is a relaxed
// atomic on a per-thread shard); the hot path additionally gates on
// obs::Enabled() because GetOrAdd runs once per ingested string value.
obs::Counter& DictHitsCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_encoding_dict_hits_total",
      "String appends that matched an already-interned dictionary entry.");
  return c;
}

obs::Counter& DictMissesCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_encoding_dict_misses_total",
      "String appends that interned a new dictionary entry.");
  return c;
}

obs::Gauge& DictPoolBytesGauge() {
  static obs::Gauge& g = obs::GlobalMetrics().GetGauge(
      "pctagg_encoding_dict_pool_bytes",
      "Bytes of string payload interned across live dictionaries.");
  return g;
}

}  // namespace

Dictionary::~Dictionary() {
  const size_t n = size_.load(std::memory_order_relaxed);
  if (obs::Enabled() && pool_bytes_.load(std::memory_order_relaxed) > 0) {
    DictPoolBytesGauge().Add(
        -static_cast<int64_t>(pool_bytes_.load(std::memory_order_relaxed)));
  }
  size_t freed = 0;
  for (size_t k = 0; k < kMaxChunks && freed < n; ++k) {
    std::string* chunk = chunks_[k].load(std::memory_order_relaxed);
    if (chunk == nullptr) break;
    delete[] chunk;
    freed += kFirstChunk << k;
  }
}

uint32_t Dictionary::GetOrAdd(std::string_view s) {
  if (slot_code_.empty()) Grow(64);
  const uint64_t h = KeyMap::Hash(s);
  size_t idx = h & mask_;
  while (slot_code_[idx] != kInvalidCode) {
    if (slot_hash_[idx] == h && value(slot_code_[idx]) == s) {
      if (obs::Enabled()) DictHitsCounter().Add();
      return slot_code_[idx];
    }
    idx = (idx + 1) & mask_;
  }
  const size_t n = size_.load(std::memory_order_relaxed);
  const uint32_t code = static_cast<uint32_t>(n);
  const size_t k = ChunkIndex(code);
  std::string* chunk = chunks_[k].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new std::string[kFirstChunk << k];
    // Publish the chunk before the size that makes its slots reachable.
    chunks_[k].store(chunk, std::memory_order_release);
  }
  chunk[OffsetFor(code)] = std::string(s);
  size_.store(n + 1, std::memory_order_release);
  pool_bytes_.fetch_add(s.size(), std::memory_order_relaxed);
  slot_hash_[idx] = h;
  slot_code_[idx] = code;
  if ((n + 1) * 2 >= slot_code_.size()) Grow(slot_code_.size() * 2);
  if (obs::Enabled()) {
    DictMissesCounter().Add();
    DictPoolBytesGauge().Add(static_cast<int64_t>(s.size()));
  }
  return code;
}

uint32_t Dictionary::Find(std::string_view s) const {
  if (slot_code_.empty()) return kInvalidCode;
  const uint64_t h = KeyMap::Hash(s);
  size_t idx = h & mask_;
  while (slot_code_[idx] != kInvalidCode) {
    if (slot_hash_[idx] == h && value(slot_code_[idx]) == s) {
      return slot_code_[idx];
    }
    idx = (idx + 1) & mask_;
  }
  return kInvalidCode;
}

void Dictionary::Grow(size_t min_slots) {
  size_t slots = 64;
  while (slots < min_slots) slots <<= 1;
  if (!slot_code_.empty() && slots <= slot_code_.size()) return;
  std::vector<uint64_t> old_hash = std::move(slot_hash_);
  std::vector<uint32_t> old_code = std::move(slot_code_);
  slot_hash_.assign(slots, 0);
  slot_code_.assign(slots, kInvalidCode);
  mask_ = slots - 1;
  for (size_t s = 0; s < old_code.size(); ++s) {
    if (old_code[s] == kInvalidCode) continue;
    size_t idx = old_hash[s] & mask_;
    while (slot_code_[idx] != kInvalidCode) idx = (idx + 1) & mask_;
    slot_hash_[idx] = old_hash[s];
    slot_code_[idx] = old_code[s];
  }
}

}  // namespace pctagg
