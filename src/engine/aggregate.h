#ifndef PCTAGG_ENGINE_AGGREGATE_H_
#define PCTAGG_ENGINE_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/expression.h"
#include "engine/table.h"

namespace pctagg {

// Standard SQL aggregate functions (the paper's "vertical aggregations").
enum class AggFunc {
  kSum,
  kCount,      // count(expr): non-null inputs
  kCountStar,  // count(*): all rows in the group
  kAvg,
  kMin,
  kMax,
};

const char* AggFuncName(AggFunc func);

// One aggregate output column: `func` applied to `input` (ignored for
// count(*)), emitted as `output_name`. `input` may be any scalar expression —
// in particular the sum(CASE WHEN ... THEN A ELSE null END) terms generated
// by the CASE pivot strategy.
struct AggSpec {
  AggFunc func;
  ExprPtr input;  // nullptr only for kCountStar
  std::string output_name;
};

// Hash-based GROUP BY over `group_by` columns (possibly empty: one global
// group; with zero input rows the global group still yields one row of
// NULL/0 aggregates, matching SQL). NULL semantics follow sum()/count():
// NULL inputs are skipped, an all-NULL group aggregates to NULL (count: 0).
//
// Output schema: the group-by columns (input types preserved) followed by one
// column per AggSpec.
//
// `dop` sets the degree of parallelism for the morsel-driven two-phase
// parallel path (thread-local partial tables, partitioned merge); 0 means
// "inherit CurrentDop()" (see engine/parallel.h). Group rows are emitted in
// first-seen input order at every dop; integer aggregates are bit-identical
// across dop, float sums may differ by reassociation (see
// docs/PARALLELISM.md).
Result<Table> HashAggregate(const Table& input,
                            const std::vector<std::string>& group_by,
                            const std::vector<AggSpec>& aggs, size_t dop = 0);

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_AGGREGATE_H_
