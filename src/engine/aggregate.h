#ifndef PCTAGG_ENGINE_AGGREGATE_H_
#define PCTAGG_ENGINE_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/expression.h"
#include "engine/table.h"

namespace pctagg {

// Standard SQL aggregate functions (the paper's "vertical aggregations").
enum class AggFunc {
  kSum,
  kCount,      // count(expr): non-null inputs
  kCountStar,  // count(*): all rows in the group
  kAvg,
  kMin,
  kMax,
};

const char* AggFuncName(AggFunc func);

// One aggregate output column: `func` applied to `input` (ignored for
// count(*)), emitted as `output_name`. `input` may be any scalar expression —
// in particular the sum(CASE WHEN ... THEN A ELSE null END) terms generated
// by the CASE pivot strategy.
struct AggSpec {
  AggFunc func;
  ExprPtr input;  // nullptr only for kCountStar
  std::string output_name;
};

// Hash-based GROUP BY over `group_by` columns (possibly empty: one global
// group; with zero input rows the global group still yields one row of
// NULL/0 aggregates, matching SQL). NULL semantics follow sum()/count():
// NULL inputs are skipped, an all-NULL group aggregates to NULL (count: 0).
//
// Output schema: the group-by columns (input types preserved) followed by one
// column per AggSpec.
Result<Table> HashAggregate(const Table& input,
                            const std::vector<std::string>& group_by,
                            const std::vector<AggSpec>& aggs);

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_AGGREGATE_H_
