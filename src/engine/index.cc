#include "engine/index.h"

namespace pctagg {

Result<HashIndex> HashIndex::Build(const Table& table,
                                   const std::vector<std::string>& columns) {
  HashIndex index;
  std::vector<size_t> col_idx;
  col_idx.reserve(columns.size());
  for (const std::string& name : columns) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, table.schema().FindColumn(name));
    col_idx.push_back(idx);
    index.columns_.push_back(table.schema().column(idx).name);
  }
  index.map_.reserve(table.num_rows());
  std::string key;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    key.clear();
    table.AppendKeyBytes(row, col_idx, &key);
    index.map_[key].push_back(row);
  }
  return index;
}

}  // namespace pctagg
