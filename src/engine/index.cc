#include "engine/index.h"

#include "engine/packed_key.h"

namespace pctagg {

Result<HashIndex> HashIndex::Build(const Table& table,
                                   const std::vector<std::string>& columns) {
  HashIndex index;
  std::vector<size_t> col_idx;
  col_idx.reserve(columns.size());
  for (const std::string& name : columns) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, table.schema().FindColumn(name));
    col_idx.push_back(idx);
    index.columns_.push_back(table.schema().column(idx).name);
  }
  // Keys use the packed encoding so joins and updates can probe with a
  // KeyEncoder over their own table (see engine/packed_key.h).
  index.map_.reserve(table.num_rows());
  const KeyEncoder encoder(table, col_idx);
  std::string key;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    key.clear();
    encoder.AppendKey(row, &key);
    index.map_[key].push_back(row);
  }
  return index;
}

}  // namespace pctagg
