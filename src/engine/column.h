#ifndef PCTAGG_ENGINE_COLUMN_H_
#define PCTAGG_ENGINE_COLUMN_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/data_type.h"
#include "engine/value.h"

namespace pctagg {

// A typed, nullable vector of values: the unit of columnar storage and of
// vectorized expression evaluation. NULLs keep a placeholder slot in the data
// vector and are tracked by a validity byte per row (1 = valid).
class Column {
 public:
  explicit Column(DataType type);

  DataType type() const { return type_; }
  size_t size() const { return validity_.size(); }
  bool empty() const { return validity_.empty(); }

  bool IsNull(size_t row) const { return validity_[row] == 0; }

  void Reserve(size_t n);

  // Typed appends; the data vector and validity grow in lockstep.
  void AppendNull();
  void AppendInt64(int64_t v);
  void AppendFloat64(double v);
  void AppendString(std::string v);

  // Type-checked append of a scalar (NULL always allowed).
  Status AppendValue(const Value& v);

  // Append row `row` of `other` (same type) to this column.
  void AppendFrom(const Column& other, size_t row);

  // Scalar accessors. The typed *At accessors require a non-null slot of the
  // matching type.
  Value GetValue(size_t row) const;
  int64_t Int64At(size_t row) const { return int64_data()[row]; }
  double Float64At(size_t row) const { return float64_data()[row]; }
  const std::string& StringAt(size_t row) const { return string_data()[row]; }

  // Numeric value widened to double (valid for INT64/FLOAT64 columns).
  double NumericAt(size_t row) const {
    return type_ == DataType::kInt64 ? static_cast<double>(Int64At(row))
                                     : Float64At(row);
  }

  // Direct typed storage, used by vectorized kernels.
  const std::vector<int64_t>& int64_data() const {
    return std::get<std::vector<int64_t>>(data_);
  }
  const std::vector<double>& float64_data() const {
    return std::get<std::vector<double>>(data_);
  }
  const std::vector<std::string>& string_data() const {
    return std::get<std::vector<std::string>>(data_);
  }
  const std::vector<uint8_t>& validity() const { return validity_; }

  // Overwrites row `row` with a (type-compatible) value; used by the UPDATE
  // operator which models the paper's in-place FV = Fk strategy.
  Status SetValue(size_t row, const Value& v);

  // Appends a deterministic, type-tagged byte encoding of row `row` to
  // `out`. Two rows produce identical bytes iff their values are equal
  // (NULL encodes distinctly). This is the hashing key used by group-by,
  // joins, DISTINCT and indexes.
  void AppendKeyBytes(size_t row, std::string* out) const;

 private:
  DataType type_;
  std::variant<std::vector<int64_t>, std::vector<double>,
               std::vector<std::string>>
      data_;
  std::vector<uint8_t> validity_;
};

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_COLUMN_H_
