#ifndef PCTAGG_ENGINE_COLUMN_H_
#define PCTAGG_ENGINE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/data_type.h"
#include "engine/dictionary.h"
#include "engine/value.h"

namespace pctagg {

// A typed, nullable vector of values: the unit of columnar storage and of
// vectorized expression evaluation. NULLs keep a placeholder slot in the data
// vector and are tracked by a validity byte per row (1 = valid).
//
// String columns are dictionary-encoded: the data vector holds uint32 codes
// into a shared, insert-ordered Dictionary (engine/dictionary.h), so group
// keys, join probes and equality comparisons operate on fixed-width codes
// while StringAt still hands out the payload by reference. Copying a column
// shares the dictionary; AppendFrom into an empty column adopts the source's
// dictionary so operator outputs keep their inputs' codes without
// re-interning.
class Column {
 public:
  explicit Column(DataType type);

  DataType type() const { return type_; }
  size_t size() const { return validity_.size(); }
  bool empty() const { return validity_.empty(); }

  bool IsNull(size_t row) const { return validity_[row] == 0; }

  void Reserve(size_t n);

  // Typed appends; the data vector and validity grow in lockstep.
  void AppendNull();
  void AppendInt64(int64_t v);
  void AppendFloat64(double v);
  void AppendString(std::string_view v);

  // Type-checked append of a scalar (NULL always allowed).
  Status AppendValue(const Value& v);

  // Append row `row` of `other` (same type) to this column.
  void AppendFrom(const Column& other, size_t row);

  // Appends every row of `other` in one pass: bulk vector inserts for
  // numeric payloads and validity, and for string columns either code
  // adoption (empty destination, shared dictionary — same rules as
  // AppendFrom) or a per-distinct-code translation into this column's
  // dictionary instead of a per-row hash of the string payload. Interns
  // into the dictionary, so the caller must hold the single-writer append
  // discipline (engine/dictionary.h) when dictionaries differ.
  void AppendAllFrom(const Column& other);

  // Scalar accessors. The typed *At accessors require a non-null slot of the
  // matching type.
  Value GetValue(size_t row) const;
  int64_t Int64At(size_t row) const { return int64_data()[row]; }
  double Float64At(size_t row) const { return float64_data()[row]; }
  const std::string& StringAt(size_t row) const {
    return dict_->value(codes()[row]);
  }

  // Numeric value widened to double (valid for INT64/FLOAT64 columns).
  double NumericAt(size_t row) const {
    return type_ == DataType::kInt64 ? static_cast<double>(Int64At(row))
                                     : Float64At(row);
  }

  // Direct typed storage, used by vectorized kernels.
  const std::vector<int64_t>& int64_data() const {
    return std::get<std::vector<int64_t>>(data_);
  }
  const std::vector<double>& float64_data() const {
    return std::get<std::vector<double>>(data_);
  }
  // Dictionary codes of a string column (NULL rows hold code 0 as a
  // placeholder; consult validity()).
  const std::vector<uint32_t>& codes() const {
    return std::get<std::vector<uint32_t>>(data_);
  }
  // The dictionary backing a string column (non-null iff type() == kString).
  const std::shared_ptr<Dictionary>& dict() const { return dict_; }
  const std::vector<uint8_t>& validity() const { return validity_; }

  // Overwrites row `row` with a (type-compatible) value; used by the UPDATE
  // operator which models the paper's in-place FV = Fk strategy.
  Status SetValue(size_t row, const Value& v);

  // Storage deserialization hooks: adopt decoded vectors wholesale instead
  // of re-appending row by row. `validity` must match the data length; for
  // FromCodes every valid row's code must be < dict->size(). The storage
  // layer rebuilds dictionaries in insert order, so codes read back from a
  // segment mean exactly what they meant when the segment was written.
  static Column FromInt64(std::vector<int64_t> data,
                          std::vector<uint8_t> validity);
  static Column FromFloat64(std::vector<double> data,
                            std::vector<uint8_t> validity);
  static Column FromCodes(std::vector<uint32_t> codes,
                          std::vector<uint8_t> validity,
                          std::shared_ptr<Dictionary> dict);

  // Appends a deterministic, type-tagged byte encoding of row `row` to
  // `out`. Two rows OF THE SAME COLUMN (or of columns sharing a dictionary)
  // produce identical bytes iff their values are equal; NULL encodes
  // distinctly. String rows encode their dictionary code, so bytes from
  // unrelated string columns are not comparable — every consumer (group-by,
  // DISTINCT, cardinality sampling, indexes) keys rows of one table.
  void AppendKeyBytes(size_t row, std::string* out) const;

 private:
  DataType type_;
  std::variant<std::vector<int64_t>, std::vector<double>,
               std::vector<uint32_t>>
      data_;
  std::vector<uint8_t> validity_;
  std::shared_ptr<Dictionary> dict_;  // set iff type_ == kString
};

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_COLUMN_H_
