#ifndef PCTAGG_ENGINE_WINDOW_H_
#define PCTAGG_ENGINE_WINDOW_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/aggregate.h"
#include "engine/table.h"

namespace pctagg {

// ANSI SQL/OLAP window aggregate: func(input) OVER (PARTITION BY partition).
// Returns a column with one entry per *input row* (not per group) — this is
// the baseline the paper compares against. Carrying the aggregate on every
// one of the n fact rows (and needing a DISTINCT afterwards to shrink the
// result) is precisely where the OLAP-extension approach loses its order of
// magnitude. An empty partition list aggregates over all rows.
//
// NULL handling matches the vertical aggregate: NULL inputs are skipped; an
// all-NULL partition yields NULL (count: 0).
Result<Column> WindowAggregate(const Table& input,
                               const std::vector<std::string>& partition_by,
                               AggFunc func, const ExprPtr& arg);

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_WINDOW_H_
