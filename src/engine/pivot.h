#ifndef PCTAGG_ENGINE_PIVOT_H_
#define PCTAGG_ENGINE_PIVOT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/aggregate.h"
#include "engine/table.h"

namespace pctagg {

// The transposition primitive the paper says SQL lacks ("the SQL language
// would need to provide a primitive to transpose and aggregate at the same
// time"), implemented with the hash-based dispatch it proposes: instead of
// evaluating N disjoint CASE conjunctions per row (O(N) comparisons), each
// input row hashes its subgrouping key straight to its unique result column
// in O(1).
//
// Output: one row per distinct `group_by` combination (first-seen order),
// with one aggregate column per distinct `pivot_by` combination found in
// `input` (first-seen order, named "name=value[,name=value...]"), holding
// func(value_expr) over the matching rows. Cells with no qualifying rows are
// NULL (the semantically correct default per the paper); `default_zero`
// switches them to 0 for the DEFAULT 0 binary-coding idiom.
struct PivotOptions {
  AggFunc func = AggFunc::kSum;
  bool default_zero = false;
  // When true, each cell is divided by the group total of `value_expr`
  // (NULL on zero/NULL total): the direct Hpct() computation.
  bool percent_of_group_total = false;
};

// `dop` selects the morsel-parallel dispatch path (0 = inherit CurrentDop());
// output is identical to the serial run at every dop, modulo float-sum
// reassociation — see docs/PARALLELISM.md.
Result<Table> HashDispatchPivot(const Table& input,
                                const std::vector<std::string>& group_by,
                                const std::vector<std::string>& pivot_by,
                                const ExprPtr& value_expr,
                                const PivotOptions& options, size_t dop = 0);

// Builds the result-column name for one pivot-key combination, e.g.
// "dweek=2" or "dh=1,dk=5". `combos` is a table whose columns are the pivot
// columns and whose rows are distinct combinations. Exposed so planners
// generating CASE columns use identical names and result tables compare
// equal across strategies.
std::string PivotColumnName(const Table& combos, size_t row);

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_PIVOT_H_
