#ifndef PCTAGG_ENGINE_TABLE_H_
#define PCTAGG_ENGINE_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/column.h"
#include "engine/data_type.h"
#include "engine/value.h"

namespace pctagg {

// An in-memory columnar table: a Schema plus one Column per definition, all
// the same length. Tables are the input and output of every physical
// operator; temporary tables (the paper's Fk, Fj, FV, FH, F0..FN) are plain
// Tables registered in a Catalog.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  // Adopts prebuilt columns; types must match the schema and all columns
  // must have equal length. Terminates on violation (programming error).
  Table(Schema schema, std::vector<Column> columns);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return schema_.num_columns(); }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& mutable_column(size_t i) { return columns_[i]; }

  // Column by (case-insensitive) name.
  Result<const Column*> ColumnByName(const std::string& name) const;

  void Reserve(size_t n);

  // Appends one row; `values` must match the schema arity and types.
  Status AppendRow(const std::vector<Value>& values);

  // Appends row `row` of `src` (same schema shape).
  void AppendRowFrom(const Table& src, size_t row);

  // One row as scalar values.
  std::vector<Value> GetRow(size_t row) const;

  // Appends the concatenated key bytes of `column_indices` at `row` to `out`.
  void AppendKeyBytes(size_t row, const std::vector<size_t>& column_indices,
                      std::string* out) const;

  // Replaces the column at `i`; the new column must have num_rows() entries.
  Status ReplaceColumn(size_t i, Column column);

  // Renames column `i` in place (metadata only; the UPDATE result path uses
  // this to expose internal sum columns under their SELECT-list names).
  Status RenameColumn(size_t i, std::string name) {
    if (i >= schema_.num_columns()) {
      return Status::InvalidArgument("RenameColumn index out of range");
    }
    schema_.RenameColumn(i, std::move(name));
    return Status::OK();
  }

  // Appends a new column (schema grows); must have num_rows() entries unless
  // the table is empty.
  Status AddColumn(ColumnDef def, Column column);

  // Pretty-prints up to `max_rows` rows as an aligned text table; used by the
  // examples to render the paper's result tables.
  std::string ToString(size_t max_rows = 50) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
};

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_TABLE_H_
