#ifndef PCTAGG_ENGINE_DATA_TYPE_H_
#define PCTAGG_ENGINE_DATA_TYPE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pctagg {

// Column data types. The paper's model F(RID, D1..Dd, A) needs integer and
// string dimensions plus a floating-point measure; INT64/FLOAT64/STRING cover
// the whole evaluation.
enum class DataType {
  kInt64,
  kFloat64,
  kString,
};

const char* DataTypeName(DataType type);

// One column definition: a name plus a type.
struct ColumnDef {
  std::string name;
  DataType type;

  bool operator==(const ColumnDef& other) const = default;
};

// An ordered list of column definitions. Column lookup is by
// case-insensitive name, mirroring SQL identifier resolution.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  // Index of `name` (case-insensitive), or NotFound.
  Result<size_t> FindColumn(const std::string& name) const;
  bool HasColumn(const std::string& name) const;

  void AddColumn(ColumnDef def) { columns_.push_back(std::move(def)); }

  // Renames column `i` (no data movement).
  void RenameColumn(size_t i, std::string name) {
    columns_[i].name = std::move(name);
  }

  // "name1 TYPE, name2 TYPE, ..." — used in error text and plan rendering.
  std::string ToString() const;

  bool operator==(const Schema& other) const = default;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_DATA_TYPE_H_
