#include "engine/column.h"

#include <cstring>

namespace pctagg {

Column::Column(DataType type) : type_(type) {
  switch (type) {
    case DataType::kInt64:
      data_ = std::vector<int64_t>();
      break;
    case DataType::kFloat64:
      data_ = std::vector<double>();
      break;
    case DataType::kString:
      data_ = std::vector<std::string>();
      break;
  }
}

void Column::Reserve(size_t n) {
  validity_.reserve(n);
  std::visit([n](auto& vec) { vec.reserve(n); }, data_);
}

void Column::AppendNull() {
  std::visit([](auto& vec) { vec.emplace_back(); }, data_);
  validity_.push_back(0);
}

void Column::AppendInt64(int64_t v) {
  std::get<std::vector<int64_t>>(data_).push_back(v);
  validity_.push_back(1);
}

void Column::AppendFloat64(double v) {
  std::get<std::vector<double>>(data_).push_back(v);
  validity_.push_back(1);
}

void Column::AppendString(std::string v) {
  std::get<std::vector<std::string>>(data_).push_back(std::move(v));
  validity_.push_back(1);
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64:
      if (v.is_int64()) {
        AppendInt64(v.int64());
        return Status::OK();
      }
      break;
    case DataType::kFloat64:
      if (v.is_float64()) {
        AppendFloat64(v.float64());
        return Status::OK();
      }
      if (v.is_int64()) {  // implicit widening, as SQL does
        AppendFloat64(static_cast<double>(v.int64()));
        return Status::OK();
      }
      break;
    case DataType::kString:
      if (v.is_string()) {
        AppendString(v.string());
        return Status::OK();
      }
      break;
  }
  return Status::TypeMismatch(std::string("cannot store ") + v.ToString() +
                              " in " + DataTypeName(type_) + " column");
}

void Column::AppendFrom(const Column& other, size_t row) {
  if (other.IsNull(row)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      AppendInt64(other.Int64At(row));
      break;
    case DataType::kFloat64:
      AppendFloat64(other.type() == DataType::kInt64
                        ? static_cast<double>(other.Int64At(row))
                        : other.Float64At(row));
      break;
    case DataType::kString:
      AppendString(other.StringAt(row));
      break;
  }
}

Value Column::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value::Int64(Int64At(row));
    case DataType::kFloat64:
      return Value::Float64(Float64At(row));
    case DataType::kString:
      return Value::String(StringAt(row));
  }
  return Value::Null();
}

Status Column::SetValue(size_t row, const Value& v) {
  if (row >= size()) return Status::InvalidArgument("SetValue row out of range");
  if (v.is_null()) {
    validity_[row] = 0;
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64:
      if (!v.is_int64()) break;
      std::get<std::vector<int64_t>>(data_)[row] = v.int64();
      validity_[row] = 1;
      return Status::OK();
    case DataType::kFloat64:
      if (!v.is_int64() && !v.is_float64()) break;
      std::get<std::vector<double>>(data_)[row] = v.AsDouble();
      validity_[row] = 1;
      return Status::OK();
    case DataType::kString:
      if (!v.is_string()) break;
      std::get<std::vector<std::string>>(data_)[row] = v.string();
      validity_[row] = 1;
      return Status::OK();
  }
  return Status::TypeMismatch(std::string("cannot store ") + v.ToString() +
                              " in " + DataTypeName(type_) + " column");
}

void Column::AppendKeyBytes(size_t row, std::string* out) const {
  if (IsNull(row)) {
    out->push_back('\0');
    return;
  }
  switch (type_) {
    case DataType::kInt64: {
      out->push_back('i');
      int64_t v = Int64At(row);
      char buf[sizeof(v)];
      std::memcpy(buf, &v, sizeof(v));
      out->append(buf, sizeof(v));
      break;
    }
    case DataType::kFloat64: {
      out->push_back('f');
      double v = Float64At(row);
      char buf[sizeof(v)];
      std::memcpy(buf, &v, sizeof(v));
      out->append(buf, sizeof(v));
      break;
    }
    case DataType::kString: {
      out->push_back('s');
      const std::string& s = StringAt(row);
      uint32_t len = static_cast<uint32_t>(s.size());
      char buf[sizeof(len)];
      std::memcpy(buf, &len, sizeof(len));
      out->append(buf, sizeof(len));
      out->append(s);
      break;
    }
  }
}

}  // namespace pctagg
