#include "engine/column.h"

#include <cstring>

namespace pctagg {

Column::Column(DataType type) : type_(type) {
  switch (type) {
    case DataType::kInt64:
      data_ = std::vector<int64_t>();
      break;
    case DataType::kFloat64:
      data_ = std::vector<double>();
      break;
    case DataType::kString:
      data_ = std::vector<uint32_t>();
      dict_ = std::make_shared<Dictionary>();
      break;
  }
}

Column Column::FromInt64(std::vector<int64_t> data,
                         std::vector<uint8_t> validity) {
  Column c(DataType::kInt64);
  c.data_ = std::move(data);
  c.validity_ = std::move(validity);
  return c;
}

Column Column::FromFloat64(std::vector<double> data,
                           std::vector<uint8_t> validity) {
  Column c(DataType::kFloat64);
  c.data_ = std::move(data);
  c.validity_ = std::move(validity);
  return c;
}

Column Column::FromCodes(std::vector<uint32_t> codes,
                         std::vector<uint8_t> validity,
                         std::shared_ptr<Dictionary> dict) {
  Column c(DataType::kString);
  c.data_ = std::move(codes);
  c.validity_ = std::move(validity);
  c.dict_ = std::move(dict);
  return c;
}

void Column::Reserve(size_t n) {
  validity_.reserve(n);
  std::visit([n](auto& vec) { vec.reserve(n); }, data_);
}

void Column::AppendNull() {
  std::visit([](auto& vec) { vec.emplace_back(); }, data_);
  validity_.push_back(0);
}

void Column::AppendInt64(int64_t v) {
  std::get<std::vector<int64_t>>(data_).push_back(v);
  validity_.push_back(1);
}

void Column::AppendFloat64(double v) {
  std::get<std::vector<double>>(data_).push_back(v);
  validity_.push_back(1);
}

void Column::AppendString(std::string_view v) {
  std::get<std::vector<uint32_t>>(data_).push_back(dict_->GetOrAdd(v));
  validity_.push_back(1);
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64:
      if (v.is_int64()) {
        AppendInt64(v.int64());
        return Status::OK();
      }
      break;
    case DataType::kFloat64:
      if (v.is_float64()) {
        AppendFloat64(v.float64());
        return Status::OK();
      }
      if (v.is_int64()) {  // implicit widening, as SQL does
        AppendFloat64(static_cast<double>(v.int64()));
        return Status::OK();
      }
      break;
    case DataType::kString:
      if (v.is_string()) {
        AppendString(v.string());
        return Status::OK();
      }
      break;
  }
  return Status::TypeMismatch(std::string("cannot store ") + v.ToString() +
                              " in " + DataTypeName(type_) + " column");
}

void Column::AppendFrom(const Column& other, size_t row) {
  if (other.IsNull(row)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      AppendInt64(other.Int64At(row));
      break;
    case DataType::kFloat64:
      AppendFloat64(other.type() == DataType::kInt64
                        ? static_cast<double>(other.Int64At(row))
                        : other.Float64At(row));
      break;
    case DataType::kString: {
      if (dict_ != other.dict_) {
        if (empty() && dict_->size() == 0) {
          // First string into a fresh column: adopt the source dictionary so
          // the whole operator output reuses the source's codes (and so a
          // result table keeps sharing its base table's pool).
          dict_ = other.dict_;
        } else {
          AppendString(other.StringAt(row));
          return;
        }
      }
      std::get<std::vector<uint32_t>>(data_).push_back(other.codes()[row]);
      validity_.push_back(1);
      break;
    }
  }
}

void Column::AppendAllFrom(const Column& other) {
  if (other.type() != type_) {
    // Widening (float64 <- int64) stays on the scalar path; the bulk path
    // below assumes identical payload representations.
    for (size_t row = 0; row < other.size(); ++row) AppendFrom(other, row);
    return;
  }
  bool was_empty = empty();
  validity_.insert(validity_.end(), other.validity_.begin(),
                   other.validity_.end());
  switch (type_) {
    case DataType::kInt64: {
      auto& dst = std::get<std::vector<int64_t>>(data_);
      const auto& src = other.int64_data();
      dst.insert(dst.end(), src.begin(), src.end());
      break;
    }
    case DataType::kFloat64: {
      auto& dst = std::get<std::vector<double>>(data_);
      const auto& src = other.float64_data();
      dst.insert(dst.end(), src.begin(), src.end());
      break;
    }
    case DataType::kString: {
      auto& dst = std::get<std::vector<uint32_t>>(data_);
      const auto& src = other.codes();
      if (dict_ == other.dict_ || (was_empty && dict_->size() == 0)) {
        // Shared codes, or adoption into a fresh column (same rule as
        // AppendFrom): the source codes are already this column's codes.
        dict_ = other.dict_;
        dst.insert(dst.end(), src.begin(), src.end());
        break;
      }
      // Different dictionaries: intern each *distinct* source code once,
      // then map rows through the translation table. NULL rows keep their
      // placeholder code 0 without consulting the source dictionary.
      std::vector<uint32_t> translated(other.dict_->size(),
                                       Dictionary::kInvalidCode);
      dst.reserve(dst.size() + src.size());
      for (size_t row = 0; row < src.size(); ++row) {
        if (other.validity_[row] == 0) {
          dst.push_back(0);
          continue;
        }
        uint32_t code = src[row];
        if (translated[code] == Dictionary::kInvalidCode) {
          translated[code] = dict_->GetOrAdd(other.dict_->value(code));
        }
        dst.push_back(translated[code]);
      }
      break;
    }
  }
}

Value Column::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value::Int64(Int64At(row));
    case DataType::kFloat64:
      return Value::Float64(Float64At(row));
    case DataType::kString:
      return Value::String(StringAt(row));
  }
  return Value::Null();
}

Status Column::SetValue(size_t row, const Value& v) {
  if (row >= size()) return Status::InvalidArgument("SetValue row out of range");
  if (v.is_null()) {
    validity_[row] = 0;
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64:
      if (!v.is_int64()) break;
      std::get<std::vector<int64_t>>(data_)[row] = v.int64();
      validity_[row] = 1;
      return Status::OK();
    case DataType::kFloat64:
      if (!v.is_int64() && !v.is_float64()) break;
      std::get<std::vector<double>>(data_)[row] = v.AsDouble();
      validity_[row] = 1;
      return Status::OK();
    case DataType::kString:
      if (!v.is_string()) break;
      std::get<std::vector<uint32_t>>(data_)[row] = dict_->GetOrAdd(v.string());
      validity_[row] = 1;
      return Status::OK();
  }
  return Status::TypeMismatch(std::string("cannot store ") + v.ToString() +
                              " in " + DataTypeName(type_) + " column");
}

void Column::AppendKeyBytes(size_t row, std::string* out) const {
  if (IsNull(row)) {
    out->push_back('\0');
    return;
  }
  switch (type_) {
    case DataType::kInt64: {
      out->push_back('i');
      int64_t v = Int64At(row);
      char buf[sizeof(v)];
      std::memcpy(buf, &v, sizeof(v));
      out->append(buf, sizeof(v));
      break;
    }
    case DataType::kFloat64: {
      out->push_back('f');
      double v = Float64At(row);
      char buf[sizeof(v)];
      std::memcpy(buf, &v, sizeof(v));
      out->append(buf, sizeof(v));
      break;
    }
    case DataType::kString: {
      out->push_back('s');
      uint32_t code = codes()[row];
      char buf[sizeof(code)];
      std::memcpy(buf, &code, sizeof(code));
      out->append(buf, sizeof(code));
      break;
    }
  }
}

}  // namespace pctagg
