#include "engine/table.h"

#include <algorithm>
#include <cassert>

namespace pctagg {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    columns_.emplace_back(schema_.column(i).type);
  }
}

Table::Table(Schema schema, std::vector<Column> columns)
    : schema_(std::move(schema)), columns_(std::move(columns)) {
  assert(schema_.num_columns() == columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    assert(columns_[i].type() == schema_.column(i).type);
    assert(columns_[i].size() == columns_[0].size());
  }
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  PCTAGG_ASSIGN_OR_RETURN(size_t idx, schema_.FindColumn(name));
  return &columns_[idx];
}

void Table::Reserve(size_t n) {
  for (Column& c : columns_) c.Reserve(n);
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch: expected " +
                                   std::to_string(columns_.size()) + ", got " +
                                   std::to_string(values.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    PCTAGG_RETURN_IF_ERROR(columns_[i].AppendValue(values[i]));
  }
  return Status::OK();
}

void Table::AppendRowFrom(const Table& src, size_t row) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].AppendFrom(src.column(i), row);
  }
}

std::vector<Value> Table::GetRow(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const Column& c : columns_) out.push_back(c.GetValue(row));
  return out;
}

void Table::AppendKeyBytes(size_t row, const std::vector<size_t>& column_indices,
                           std::string* out) const {
  for (size_t ci : column_indices) {
    columns_[ci].AppendKeyBytes(row, out);
  }
}

Status Table::ReplaceColumn(size_t i, Column column) {
  if (i >= columns_.size()) {
    return Status::InvalidArgument("ReplaceColumn index out of range");
  }
  if (column.size() != num_rows()) {
    return Status::InvalidArgument("ReplaceColumn length mismatch");
  }
  columns_[i] = std::move(column);
  return Status::OK();
}

Status Table::AddColumn(ColumnDef def, Column column) {
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument("AddColumn length mismatch");
  }
  if (def.type != column.type()) {
    return Status::TypeMismatch("AddColumn type mismatch for " + def.name);
  }
  schema_.AddColumn(std::move(def));
  columns_.push_back(std::move(column));
  return Status::OK();
}

std::string Table::ToString(size_t max_rows) const {
  size_t rows = std::min(max_rows, num_rows());
  // Compute widths.
  std::vector<size_t> widths(num_columns());
  std::vector<std::vector<std::string>> cells(rows);
  for (size_t c = 0; c < num_columns(); ++c) {
    widths[c] = schema_.column(c).name.size();
  }
  for (size_t r = 0; r < rows; ++r) {
    cells[r].resize(num_columns());
    for (size_t c = 0; c < num_columns(); ++c) {
      cells[r][c] = columns_[c].GetValue(r).ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::string out;
  for (size_t c = 0; c < num_columns(); ++c) {
    if (c > 0) out += " | ";
    const std::string& name = schema_.column(c).name;
    out += name + std::string(widths[c] - name.size(), ' ');
  }
  out += "\n";
  for (size_t c = 0; c < num_columns(); ++c) {
    if (c > 0) out += "-+-";
    out += std::string(widths[c], '-');
  }
  out += "\n";
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < num_columns(); ++c) {
      if (c > 0) out += " | ";
      out += cells[r][c] + std::string(widths[c] - cells[r][c].size(), ' ');
    }
    out += "\n";
  }
  if (rows < num_rows()) {
    out += "... (" + std::to_string(num_rows() - rows) + " more rows)\n";
  }
  return out;
}

}  // namespace pctagg
