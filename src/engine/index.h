#ifndef PCTAGG_ENGINE_INDEX_H_
#define PCTAGG_ENGINE_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/table.h"

namespace pctagg {

// A hash index over a column subset of one table. The paper's Vpct study
// recommends building *matching* indexes on the common subkey D1..Dj of Fk
// and Fj so the division join probes cheaply; this class is what that knob
// turns on. Index maintenance cost is paid at Build() time, exactly like the
// paper's "index maintenance can slow down Fj and Fk computation".
class HashIndex {
 public:
  HashIndex() = default;

  // Builds the index on `columns` of `table`. The table must outlive lookups
  // performed through row indices (the index stores positions, not values).
  static Result<HashIndex> Build(const Table& table,
                                 const std::vector<std::string>& columns);

  // The indexed column names, normalized to the table's schema spelling.
  const std::vector<std::string>& columns() const { return columns_; }

  // Row positions whose key bytes equal `key`; empty vector if absent.
  const std::vector<size_t>* Lookup(const std::string& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  size_t num_keys() const { return map_.size(); }

 private:
  std::vector<std::string> columns_;
  std::unordered_map<std::string, std::vector<size_t>> map_;
};

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_INDEX_H_
