#include "engine/pivot.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/string_util.h"
#include "engine/packed_key.h"
#include "engine/parallel.h"
#include "engine/table_ops.h"
#include "obs/trace.h"

namespace pctagg {

namespace {

struct CellState {
  double sum = 0.0;
  int64_t isum = 0;
  int64_t count = 0;
  int64_t rows = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  bool saw_value = false;
};

void MergeCell(CellState& d, const CellState& s) {
  d.sum += s.sum;
  d.isum += s.isum;
  d.count += s.count;
  d.rows += s.rows;
  if (s.min < d.min) d.min = s.min;
  if (s.max > d.max) d.max = s.max;
  d.saw_value = d.saw_value || s.saw_value;
}

// One worker's thread-local dispatch state: its own group map, combo map,
// cell matrix and group totals over the morsels it claimed.
struct PivotPartial {
  KeyMap groups;
  KeyMap combos;
  std::vector<size_t> group_first;  // min input row per local group
  std::vector<size_t> combo_first;  // min input row per local combo
  std::vector<std::vector<CellState>> cells;  // [local group][local combo]
  std::vector<CellState> group_total;
  std::vector<uint32_t> gid;      // morsel scratch: local group id per row
  std::vector<uint32_t> cid;      // morsel scratch: local combo id per row
  std::vector<char> key_buf;      // morsel scratch: fixed-stride packed keys
};

}  // namespace

std::string PivotColumnName(const Table& combos, size_t row) {
  std::vector<std::string> parts;
  parts.reserve(combos.num_columns());
  for (size_t c = 0; c < combos.num_columns(); ++c) {
    const Column& col = combos.column(c);
    std::string v;
    if (col.IsNull(row)) {
      v = "NULL";
    } else if (col.type() == DataType::kString) {
      v = col.StringAt(row);
    } else {
      v = col.GetValue(row).ToString();
    }
    parts.push_back(combos.schema().column(c).name + "=" + v);
  }
  return Join(parts, ",");
}

Result<Table> HashDispatchPivot(const Table& input,
                                const std::vector<std::string>& group_by,
                                const std::vector<std::string>& pivot_by,
                                const ExprPtr& value_expr,
                                const PivotOptions& options, size_t dop) {
  obs::OpScope op("pivot");
  if (pivot_by.empty()) {
    return Status::InvalidArgument("pivot requires at least one BY column");
  }
  std::vector<size_t> group_idx;
  for (const std::string& name : group_by) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, input.schema().FindColumn(name));
    group_idx.push_back(idx);
  }
  std::vector<size_t> pivot_idx;
  for (const std::string& name : pivot_by) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, input.schema().FindColumn(name));
    pivot_idx.push_back(idx);
  }
  if (value_expr == nullptr && options.func != AggFunc::kCountStar) {
    return Status::InvalidArgument("pivot aggregate requires a value expression");
  }

  Column vals(DataType::kFloat64);
  DataType val_type = DataType::kFloat64;
  if (options.func != AggFunc::kCountStar) {
    PCTAGG_ASSIGN_OR_RETURN(val_type, value_expr->ResultType(input.schema()));
    if (val_type == DataType::kString) {
      return Status::TypeMismatch("pivot aggregates require a numeric measure");
    }
    PCTAGG_ASSIGN_OR_RETURN(vals, value_expr->Evaluate(input));
  }

  // Phase 1: each worker runs the O(1) hash dispatch over its morsels into a
  // thread-local PivotPartial — two probes per row (group map, combo map),
  // packed binary keys, find-before-insert.
  const size_t n = input.num_rows();
  if (dop == 0) dop = CurrentDop();
  MorselPlan plan = MorselPlan::For(n, dop);
  const KeyEncoder group_encoder(input, group_idx);
  const KeyEncoder pivot_encoder(input, pivot_idx);
  std::vector<PivotPartial> partials(plan.num_workers);
  RunMorsels(plan, [&](size_t worker, size_t begin, size_t end) {
    PivotPartial& p = partials[worker];
    // Batch keying: every key is fixed width (dictionary codes made string
    // columns fixed too), so both key sets for the whole morsel are encoded
    // column-at-a-time and probed through the stride-specialized batch path.
    const size_t count = end - begin;
    const size_t gstride = group_encoder.fixed_width();
    const size_t pstride = pivot_encoder.fixed_width();
    if (p.gid.size() < count) {
      p.gid.resize(count);
      p.cid.resize(count);
    }
    // +1 keeps key_buf.data() non-null even for an empty (0-width) key set.
    const size_t buf_need = count * std::max(gstride, pstride) + 1;
    if (p.key_buf.size() < buf_need) p.key_buf.resize(buf_need);
    group_encoder.EncodeFixedBatch(begin, end, p.key_buf.data());
    p.groups.GetOrAddFixedBatch(p.key_buf.data(), gstride, count, begin,
                                p.gid.data(), &p.group_first);
    while (p.cells.size() < p.groups.size()) {
      p.cells.emplace_back();
      p.group_total.emplace_back();
    }
    pivot_encoder.EncodeFixedBatch(begin, end, p.key_buf.data());
    p.combos.GetOrAddFixedBatch(p.key_buf.data(), pstride, count, begin,
                                p.cid.data(), &p.combo_first);
    for (size_t row = begin; row < end; ++row) {
      const uint32_t g = p.gid[row - begin];
      const uint32_t c = p.cid[row - begin];

      if (p.cells[g].size() <= c) p.cells[g].resize(c + 1);
      CellState& st = p.cells[g][c];
      CellState& tot = p.group_total[g];
      st.rows++;
      tot.rows++;
      if (options.func == AggFunc::kCountStar) continue;
      if (vals.IsNull(row)) continue;
      double v = vals.NumericAt(row);
      st.count++;
      tot.count++;
      st.saw_value = true;
      tot.saw_value = true;
      st.sum += v;
      tot.sum += v;
      if (val_type == DataType::kInt64) {
        st.isum += vals.Int64At(row);
        tot.isum += vals.Int64At(row);
      }
      if (v < st.min) st.min = v;
      if (v > st.max) st.max = v;
    }
  });

  // Phase 2: merge the partials. Combos are unified serially (their count is
  // the result's column count — small); groups are merged across hash
  // partitions in parallel. Both are then ordered by first input row, which
  // reproduces exactly the first-seen ids a serial run assigns.
  std::vector<size_t> group_rep_row;
  std::vector<size_t> combo_rep_row;
  std::vector<std::vector<CellState>> cells;  // [group][global combo]
  std::vector<CellState> group_total;
  if (plan.num_workers <= 1) {
    PivotPartial& p = partials[0];
    group_rep_row = std::move(p.group_first);
    combo_rep_row = std::move(p.combo_first);
    cells = std::move(p.cells);
    group_total = std::move(p.group_total);
  } else {
    // Unify combos and compute, per partial, local combo id -> global id.
    KeyMap global_combos;
    std::vector<size_t> combo_min_row;
    std::vector<std::vector<size_t>> combo_remap(partials.size());
    for (size_t pi = 0; pi < partials.size(); ++pi) {
      const PivotPartial& p = partials[pi];
      combo_remap[pi].resize(p.combos.size());
      p.combos.ForEach([&](std::string_view key, size_t id) {
        auto [gid, inserted] = global_combos.GetOrAdd(key);
        if (inserted) {
          combo_min_row.push_back(p.combo_first[id]);
        } else {
          combo_min_row[gid] = std::min(combo_min_row[gid], p.combo_first[id]);
        }
        combo_remap[pi][id] = gid;
      });
    }
    // Renumber combos into first-seen order.
    std::vector<size_t> order(combo_min_row.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return combo_min_row[a] < combo_min_row[b];
    });
    std::vector<size_t> final_id(order.size());
    combo_rep_row.resize(order.size());
    for (size_t rank = 0; rank < order.size(); ++rank) {
      final_id[order[rank]] = rank;
      combo_rep_row[rank] = combo_min_row[order[rank]];
    }
    for (std::vector<size_t>& remap : combo_remap) {
      for (size_t& id : remap) id = final_id[id];
    }

    // Partitioned group merge.
    struct MergedGroup {
      std::vector<CellState> cells;
      CellState total;
      size_t first_row;
    };
    const size_t num_parts = plan.num_workers;
    std::vector<std::vector<MergedGroup>> part_groups(num_parts);
    RunPartitions(num_parts, plan.num_workers, [&](size_t part) {
      KeyMap seen;
      std::vector<MergedGroup>& out = part_groups[part];
      for (size_t pi = 0; pi < partials.size(); ++pi) {
        const PivotPartial& p = partials[pi];
        p.groups.ForEach([&](std::string_view key, size_t id) {
          if (KeyMap::Hash(key) % num_parts != part) return;
          auto [g, inserted] = seen.GetOrAdd(key);
          if (inserted) {
            out.push_back({{}, p.group_total[id], p.group_first[id]});
            out.back().cells.resize(combo_rep_row.size());
          } else {
            MergeCell(out[g].total, p.group_total[id]);
            out[g].first_row = std::min(out[g].first_row, p.group_first[id]);
          }
          std::vector<CellState>& dst = out[g].cells;
          const std::vector<CellState>& src = p.cells[id];
          for (size_t c = 0; c < src.size(); ++c) {
            if (src[c].rows > 0) MergeCell(dst[combo_remap[pi][c]], src[c]);
          }
        });
      }
    });
    std::vector<MergedGroup> merged;
    for (std::vector<MergedGroup>& pg : part_groups) {
      for (MergedGroup& mg : pg) merged.push_back(std::move(mg));
    }
    std::sort(merged.begin(), merged.end(),
              [](const MergedGroup& a, const MergedGroup& b) {
                return a.first_row < b.first_row;
              });
    for (MergedGroup& mg : merged) {
      group_rep_row.push_back(mg.first_row);
      cells.push_back(std::move(mg.cells));
      group_total.push_back(mg.total);
    }
  }

  const size_t num_groups = cells.size();
  const size_t num_combos = combo_rep_row.size();

  if (op.active()) {
    size_t peak_groups = 0, peak_slots = 0;
    for (const PivotPartial& p : partials) {
      if (p.groups.size() > peak_groups) {
        peak_groups = p.groups.size();
        peak_slots = p.groups.slots();
      }
    }
    op.SetRows(n, num_groups);
    op.SetMorsels(plan.num_morsels, plan.num_workers);
    op.SetHashTable(peak_groups, peak_slots);
    if (plan.num_workers > 1) op.SetPartialsMerged(partials.size());
    op.SetDetail("combos=" + std::to_string(num_combos));
  }

  // Result-column names come from the distinct pivot combinations in
  // first-seen order; build a small table of them to share naming with the
  // CASE strategies.
  Schema combo_schema;
  for (size_t pi : pivot_idx) combo_schema.AddColumn(input.schema().column(pi));
  Table combos(combo_schema);
  for (size_t c = 0; c < num_combos; ++c) {
    size_t row = combo_rep_row[c];
    for (size_t k = 0; k < pivot_idx.size(); ++k) {
      combos.mutable_column(k).AppendFrom(input.column(pivot_idx[k]), row);
    }
  }

  DataType cell_type = DataType::kFloat64;
  if (options.percent_of_group_total) {
    cell_type = DataType::kFloat64;
  } else if (options.func == AggFunc::kCount ||
             options.func == AggFunc::kCountStar) {
    cell_type = DataType::kInt64;
  } else if (options.func != AggFunc::kAvg && val_type == DataType::kInt64) {
    cell_type = DataType::kInt64;
  }

  // Emit cell columns in sorted combination order so results render (and
  // compare) deterministically regardless of row arrival order.
  std::vector<std::string> combo_cols;
  for (size_t c = 0; c < combos.num_columns(); ++c) {
    combo_cols.push_back(combos.schema().column(c).name);
  }
  PCTAGG_ASSIGN_OR_RETURN(std::vector<size_t> combo_order,
                          SortPermutation(combos, combo_cols));

  Schema out_schema;
  for (size_t gi : group_idx) out_schema.AddColumn(input.schema().column(gi));
  for (size_t c = 0; c < num_combos; ++c) {
    out_schema.AddColumn({PivotColumnName(combos, combo_order[c]), cell_type});
  }
  Table out(out_schema);
  out.Reserve(num_groups);

  auto cell_value = [&](const CellState& st) -> Value {
    switch (options.func) {
      case AggFunc::kCountStar:
        return Value::Int64(st.rows);
      case AggFunc::kCount:
        return Value::Int64(st.count);
      case AggFunc::kSum:
        if (!st.saw_value) return Value::Null();
        return cell_type == DataType::kInt64 ? Value::Int64(st.isum)
                                             : Value::Float64(st.sum);
      case AggFunc::kAvg:
        return st.saw_value
                   ? Value::Float64(st.sum / static_cast<double>(st.count))
                   : Value::Null();
      case AggFunc::kMin:
        if (!st.saw_value) return Value::Null();
        return cell_type == DataType::kInt64
                   ? Value::Int64(static_cast<int64_t>(st.min))
                   : Value::Float64(st.min);
      case AggFunc::kMax:
        if (!st.saw_value) return Value::Null();
        return cell_type == DataType::kInt64
                   ? Value::Int64(static_cast<int64_t>(st.max))
                   : Value::Float64(st.max);
    }
    return Value::Null();
  };

  for (size_t g = 0; g < num_groups; ++g) {
    std::vector<Value> row;
    row.reserve(group_idx.size() + num_combos);
    for (size_t gi : group_idx) {
      row.push_back(input.column(gi).GetValue(group_rep_row[g]));
    }
    double total = group_total[g].sum;
    bool total_ok = group_total[g].saw_value && total != 0.0;
    for (size_t j = 0; j < num_combos; ++j) {
      size_t c = combo_order[j];
      CellState st = c < cells[g].size() ? cells[g][c] : CellState{};
      bool cell_present = st.rows > 0;
      Value v;
      if (options.percent_of_group_total) {
        // Matches the generated SQL sum(CASE .. THEN A ELSE 0 END)/sum(A):
        // a combination with no rows (or only NULL measures) contributes 0%
        // (the paper's store-4-Monday example); a zero/NULL group total makes
        // every percentage NULL.
        if (!total_ok) {
          v = Value::Null();
        } else {
          v = Value::Float64(cell_present && st.saw_value ? st.sum / total
                                                          : 0.0);
        }
      } else {
        // A combination with no rows at all is NULL — even for counts — to
        // stay consistent with the SPJ strategy's outer joins (DMKD §3.4).
        v = cell_present ? cell_value(st) : Value::Null();
        if (v.is_null() && options.default_zero) {
          v = cell_type == DataType::kInt64 ? Value::Int64(0)
                                            : Value::Float64(0.0);
        }
      }
      row.push_back(v);
    }
    PCTAGG_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

}  // namespace pctagg
