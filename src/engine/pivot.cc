#include "engine/pivot.h"

#include <limits>
#include <unordered_map>

#include "common/string_util.h"
#include "engine/table_ops.h"

namespace pctagg {

std::string PivotColumnName(const Table& combos, size_t row) {
  std::vector<std::string> parts;
  parts.reserve(combos.num_columns());
  for (size_t c = 0; c < combos.num_columns(); ++c) {
    const Column& col = combos.column(c);
    std::string v;
    if (col.IsNull(row)) {
      v = "NULL";
    } else if (col.type() == DataType::kString) {
      v = col.StringAt(row);
    } else {
      v = col.GetValue(row).ToString();
    }
    parts.push_back(combos.schema().column(c).name + "=" + v);
  }
  return Join(parts, ",");
}

Result<Table> HashDispatchPivot(const Table& input,
                                const std::vector<std::string>& group_by,
                                const std::vector<std::string>& pivot_by,
                                const ExprPtr& value_expr,
                                const PivotOptions& options) {
  if (pivot_by.empty()) {
    return Status::InvalidArgument("pivot requires at least one BY column");
  }
  std::vector<size_t> group_idx;
  for (const std::string& name : group_by) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, input.schema().FindColumn(name));
    group_idx.push_back(idx);
  }
  std::vector<size_t> pivot_idx;
  for (const std::string& name : pivot_by) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, input.schema().FindColumn(name));
    pivot_idx.push_back(idx);
  }
  if (value_expr == nullptr && options.func != AggFunc::kCountStar) {
    return Status::InvalidArgument("pivot aggregate requires a value expression");
  }

  Column vals(DataType::kFloat64);
  DataType val_type = DataType::kFloat64;
  if (options.func != AggFunc::kCountStar) {
    PCTAGG_ASSIGN_OR_RETURN(val_type, value_expr->ResultType(input.schema()));
    if (val_type == DataType::kString) {
      return Status::TypeMismatch("pivot aggregates require a numeric measure");
    }
    PCTAGG_ASSIGN_OR_RETURN(vals, value_expr->Evaluate(input));
  }

  struct CellState {
    double sum = 0.0;
    int64_t isum = 0;
    int64_t count = 0;
    int64_t rows = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    bool saw_value = false;
  };

  // Two hash maps: group key -> dense group id; pivot key -> dense column id.
  // Each row is charged exactly one probe per map — the O(1) dispatch.
  std::unordered_map<std::string, size_t> group_of;
  std::unordered_map<std::string, size_t> combo_of;
  std::vector<size_t> group_rep_row;
  std::vector<size_t> combo_rep_row;
  // cells[g] grows lazily to the current number of combos.
  std::vector<std::vector<CellState>> cells;
  std::vector<CellState> group_total;  // for percent_of_group_total

  const size_t n = input.num_rows();
  std::string key;
  for (size_t row = 0; row < n; ++row) {
    key.clear();
    input.AppendKeyBytes(row, group_idx, &key);
    auto [git, ginserted] = group_of.emplace(key, cells.size());
    if (ginserted) {
      group_rep_row.push_back(row);
      cells.emplace_back();
      group_total.emplace_back();
    }
    size_t g = git->second;

    key.clear();
    input.AppendKeyBytes(row, pivot_idx, &key);
    auto [cit, cinserted] = combo_of.emplace(key, combo_rep_row.size());
    if (cinserted) combo_rep_row.push_back(row);
    size_t c = cit->second;

    if (cells[g].size() <= c) cells[g].resize(c + 1);
    CellState& st = cells[g][c];
    CellState& tot = group_total[g];
    st.rows++;
    tot.rows++;
    if (options.func == AggFunc::kCountStar) continue;
    if (vals.IsNull(row)) continue;
    double v = vals.NumericAt(row);
    st.count++;
    tot.count++;
    st.saw_value = true;
    tot.saw_value = true;
    st.sum += v;
    tot.sum += v;
    if (val_type == DataType::kInt64) {
      st.isum += vals.Int64At(row);
      tot.isum += vals.Int64At(row);
    }
    if (v < st.min) st.min = v;
    if (v > st.max) st.max = v;
  }

  const size_t num_groups = cells.size();
  const size_t num_combos = combo_rep_row.size();

  // Result-column names come from the distinct pivot combinations in
  // first-seen order; build a small table of them to share naming with the
  // CASE strategies.
  Schema combo_schema;
  for (size_t pi : pivot_idx) combo_schema.AddColumn(input.schema().column(pi));
  Table combos(combo_schema);
  for (size_t c = 0; c < num_combos; ++c) {
    size_t row = combo_rep_row[c];
    for (size_t k = 0; k < pivot_idx.size(); ++k) {
      combos.mutable_column(k).AppendFrom(input.column(pivot_idx[k]), row);
    }
  }

  DataType cell_type = DataType::kFloat64;
  if (options.percent_of_group_total) {
    cell_type = DataType::kFloat64;
  } else if (options.func == AggFunc::kCount ||
             options.func == AggFunc::kCountStar) {
    cell_type = DataType::kInt64;
  } else if (options.func != AggFunc::kAvg && val_type == DataType::kInt64) {
    cell_type = DataType::kInt64;
  }

  // Emit cell columns in sorted combination order so results render (and
  // compare) deterministically regardless of row arrival order.
  std::vector<std::string> combo_cols;
  for (size_t c = 0; c < combos.num_columns(); ++c) {
    combo_cols.push_back(combos.schema().column(c).name);
  }
  PCTAGG_ASSIGN_OR_RETURN(std::vector<size_t> combo_order,
                          SortPermutation(combos, combo_cols));

  Schema out_schema;
  for (size_t gi : group_idx) out_schema.AddColumn(input.schema().column(gi));
  for (size_t c = 0; c < num_combos; ++c) {
    out_schema.AddColumn({PivotColumnName(combos, combo_order[c]), cell_type});
  }
  Table out(out_schema);
  out.Reserve(num_groups);

  auto cell_value = [&](const CellState& st) -> Value {
    switch (options.func) {
      case AggFunc::kCountStar:
        return Value::Int64(st.rows);
      case AggFunc::kCount:
        return Value::Int64(st.count);
      case AggFunc::kSum:
        if (!st.saw_value) return Value::Null();
        return cell_type == DataType::kInt64 ? Value::Int64(st.isum)
                                             : Value::Float64(st.sum);
      case AggFunc::kAvg:
        return st.saw_value
                   ? Value::Float64(st.sum / static_cast<double>(st.count))
                   : Value::Null();
      case AggFunc::kMin:
        if (!st.saw_value) return Value::Null();
        return cell_type == DataType::kInt64
                   ? Value::Int64(static_cast<int64_t>(st.min))
                   : Value::Float64(st.min);
      case AggFunc::kMax:
        if (!st.saw_value) return Value::Null();
        return cell_type == DataType::kInt64
                   ? Value::Int64(static_cast<int64_t>(st.max))
                   : Value::Float64(st.max);
    }
    return Value::Null();
  };

  for (size_t g = 0; g < num_groups; ++g) {
    std::vector<Value> row;
    row.reserve(group_idx.size() + num_combos);
    for (size_t gi : group_idx) {
      row.push_back(input.column(gi).GetValue(group_rep_row[g]));
    }
    double total = group_total[g].sum;
    bool total_ok = group_total[g].saw_value && total != 0.0;
    for (size_t j = 0; j < num_combos; ++j) {
      size_t c = combo_order[j];
      CellState st = c < cells[g].size() ? cells[g][c] : CellState{};
      bool cell_present = st.rows > 0;
      Value v;
      if (options.percent_of_group_total) {
        // Matches the generated SQL sum(CASE .. THEN A ELSE 0 END)/sum(A):
        // a combination with no rows (or only NULL measures) contributes 0%
        // (the paper's store-4-Monday example); a zero/NULL group total makes
        // every percentage NULL.
        if (!total_ok) {
          v = Value::Null();
        } else {
          v = Value::Float64(cell_present && st.saw_value ? st.sum / total
                                                          : 0.0);
        }
      } else {
        // A combination with no rows at all is NULL — even for counts — to
        // stay consistent with the SPJ strategy's outer joins (DMKD §3.4).
        v = cell_present ? cell_value(st) : Value::Null();
        if (v.is_null() && options.default_zero) {
          v = cell_type == DataType::kInt64 ? Value::Int64(0)
                                            : Value::Float64(0.0);
        }
      }
      row.push_back(v);
    }
    PCTAGG_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

}  // namespace pctagg
