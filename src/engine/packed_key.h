#ifndef PCTAGG_ENGINE_PACKED_KEY_H_
#define PCTAGG_ENGINE_PACKED_KEY_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "engine/table.h"

namespace pctagg {

// True when KeyMap's batch path should run its AVX2 candidate pre-probe:
// the CPU has AVX2 and SIMD is not disabled (PCTAGG_DISABLE_SIMD / test
// override). Defined in packed_key.cc next to the vector kernel.
bool KeyMapBatchProbeSimd();

// Packed binary group-key encoding shared by group-by, pivot, joins, window
// partitioning and hash indexes.
//
// The seed encoded composite keys through Column::AppendKeyBytes, which
// pattern-matched a std::variant per row per column; worse, every consumer
// then called unordered_map::emplace(key, ...) per row, and libstdc++'s
// emplace allocates a map node before probing — one heap allocation per input
// row even when the group already exists. KeyEncoder resolves the typed data
// pointers once per (table, column-set), appends a fixed-width packed
// encoding per row, and KeyMap probes with find() first so the steady state
// (key already present) allocates nothing.
//
// Encoding, per column — every type is fixed width, so every composite key
// over the same column set is exactly fixed_width() bytes and the
// stride-constant batch path applies to string-keyed queries too:
//   INT64       -> 0x11 then 8 payload bytes (little-endian memcpy)
//   FLOAT64     -> 0x12 then 8 payload bytes
//   STRING      -> 0x13 then the 4-byte dictionary code
//   NULL        -> 0x00, padded with zero payload bytes to the column's
//                  width (9 for the numeric types, 5 for strings)
// Two composite keys compare equal iff each column is equal with equal type,
// matching the seed's type-tagged semantics (int64 5 != float64 5.0).
//
// String codes are only meaningful relative to their column's Dictionary, so
// encodings from different tables are directly comparable only for numeric
// columns or string columns that share a dictionary (which operator outputs
// do — see Column::AppendFrom). A join/update probing keys built from the
// OTHER side uses the translating constructor, which maps each probe-side
// code to the build side's code for the same string once per distinct value
// (absent values map to Dictionary::kInvalidCode, which no build-side key
// can carry, so such probes simply never match).
class KeyEncoder {
 public:
  KeyEncoder(const Table& table, const std::vector<size_t>& column_indices);

  // Translating probe encoder: keys built from (table, column_indices)
  // compare equal to keys built from (target, target_indices) iff the rows
  // match column-wise — string codes are rewritten into the target's code
  // space. Column counts must match; types should line up pairwise (rows of
  // mismatched type never compare equal, exactly as before).
  KeyEncoder(const Table& table, const std::vector<size_t>& column_indices,
             const Table& target, const std::vector<size_t>& target_indices);

  // Appends the packed key for `row` to `*out` (does not clear it).
  void AppendKey(size_t row, std::string* out) const;

  // Always true since strings became fixed-width codes: every key is exactly
  // fixed_width() bytes and EncodeFixedBatch applies. Kept for call sites
  // that still guard their batch path on it.
  bool fixed_only() const { return fixed_only_; }

  // Writes the packed keys for rows [begin, end) into `out` at a stride of
  // fixed_width() bytes per row, one column at a time so the per-column type
  // dispatch runs once per column instead of once per row. Byte-identical to
  // AppendKey. `out` must hold (end - begin) * fixed_width() bytes.
  void EncodeFixedBatch(size_t begin, size_t end, char* out) const;

  // Gather variant for the fused path's filtered morsels: same layout and
  // bytes as EncodeFixedBatch, but over an explicit row list instead of a
  // contiguous range. `out` must hold count * fixed_width() bytes.
  void EncodeFixedRows(const uint32_t* rows, size_t count, char* out) const;

  // Exact bytes per key.
  size_t fixed_width() const { return fixed_width_; }

 private:
  struct Col {
    DataType type;
    const uint8_t* validity;
    const int64_t* i64 = nullptr;        // set iff type == kInt64
    const double* f64 = nullptr;         // set iff type == kFloat64
    const uint32_t* codes = nullptr;     // set iff type == kString
    const uint32_t* translate = nullptr; // optional probe-code rewrite table
    size_t width = 0;                    // bytes incl. tag: 9 or 5
  };

  void Init(const Table& table, const std::vector<size_t>& column_indices);

  std::vector<Col> cols_;
  // Per-string-column probe-code -> target-code tables (parallel to cols_
  // via Col::translate); boxed so cols_ pointers survive vector growth.
  std::vector<std::vector<uint32_t>> translations_;
  size_t fixed_width_ = 0;
  bool fixed_only_ = true;
};

// An insert-ordered map from packed key to a dense id [0, size),
// implemented as an open-addressing (linear probing) slot table over one
// contiguous key arena. The steady state (key already present) touches two
// flat arrays and one arena memcmp: no node allocation, no std::string copy,
// no per-byte std::hash walk. That is the fix for the per-row emplace node
// churn described above, and it is what the morsel workers key their
// thread-local partials with.
class KeyMap {
 public:
  // Returns {id, inserted}. Ids are dense and assigned in insertion order.
  // Defined inline: this runs once per input row in every keyed operator.
  std::pair<size_t, bool> GetOrAdd(std::string_view key) {
    if (slot_id_.empty()) Grow(64);
    uint64_t h = Hash(key);
    size_t idx = h & mask_;
    while (slot_id_[idx] != kEmptySlot) {
      if (slot_hash_[idx] == h && KeyEq(KeyAt(slot_id_[idx]), key)) {
        return {slot_id_[idx], false};
      }
      idx = (idx + 1) & mask_;
    }
    size_t id = key_offset_.size();
    key_offset_.push_back(arena_.size());
    arena_.append(key.data(), key.size());
    slot_hash_[idx] = h;
    slot_id_[idx] = static_cast<uint32_t>(id);
    // Keep the load factor at or below 1/2 so probe chains stay short.
    if ((id + 1) * 2 >= slot_id_.size()) Grow(slot_id_.size() * 2);
    return {id, true};
  }

  // Batch variant over the fixed-stride key block EncodeFixedBatch produced:
  // assigns ids for rows [base_row, base_row + count) and writes them to
  // gid_out. On insert it appends base_row + i to *first_row; on a hit it
  // lowers (*first_row)[id] if this row precedes the recorded one. Common
  // strides dispatch to a specialization whose hash and comparison unroll
  // with the key words held in registers — that is worth ~4x over the
  // per-row scalar path on the two-int-column group-by this engine runs
  // constantly. Ids are interchangeable with the scalar path's. The listed
  // strides cover 1-4 columns of numeric (9-byte) and dictionary-coded
  // string (5-byte) keys in every mix that shows up in the workloads.
  void GetOrAddFixedBatch(const char* keys, size_t stride, size_t count,
                          size_t base_row, uint32_t* gid_out,
                          std::vector<size_t>* first_row) {
    switch (stride) {
      case 5:   // one string column
        return FixedBatch<5, false>(keys, count, base_row, nullptr, gid_out,
                                    first_row);
      case 9:   // one numeric column
        return FixedBatch<9, false>(keys, count, base_row, nullptr, gid_out,
                                    first_row);
      case 10:  // two strings
        return FixedBatch<10, false>(keys, count, base_row, nullptr, gid_out,
                                     first_row);
      case 14:  // string + numeric
        return FixedBatch<14, false>(keys, count, base_row, nullptr, gid_out,
                                     first_row);
      case 15:  // three strings
        return FixedBatch<15, false>(keys, count, base_row, nullptr, gid_out,
                                     first_row);
      case 18:  // two numerics
        return FixedBatch<18, false>(keys, count, base_row, nullptr, gid_out,
                                     first_row);
      case 19:  // two strings + numeric
        return FixedBatch<19, false>(keys, count, base_row, nullptr, gid_out,
                                     first_row);
      case 23:  // string + two numerics
        return FixedBatch<23, false>(keys, count, base_row, nullptr, gid_out,
                                     first_row);
      case 27:  // three numerics
        return FixedBatch<27, false>(keys, count, base_row, nullptr, gid_out,
                                     first_row);
      case 28:  // two strings + two numerics
        return FixedBatch<28, false>(keys, count, base_row, nullptr, gid_out,
                                     first_row);
      case 36:  // four numerics
        return FixedBatch<36, false>(keys, count, base_row, nullptr, gid_out,
                                     first_row);
      default:
        const char* kp = keys;
        for (size_t i = 0; i < count; ++i, kp += stride) {
          auto [id, inserted] = GetOrAdd(std::string_view(kp, stride));
          if (inserted) {
            first_row->push_back(base_row + i);
          } else if (base_row + i < (*first_row)[id]) {
            (*first_row)[id] = base_row + i;
          }
          gid_out[i] = static_cast<uint32_t>(id);
        }
    }
  }

  // Rows-list variant for the fused path's filtered morsels: key i was
  // encoded from input row rows[i] (ascending). Semantically identical to
  // GetOrAddFixedBatch with base_row replaced by the explicit row ids.
  void GetOrAddFixedBatchRows(const char* keys, size_t stride, size_t count,
                              const uint32_t* rows, uint32_t* gid_out,
                              std::vector<size_t>* first_row) {
    switch (stride) {
      case 5:
        return FixedBatch<5, true>(keys, count, 0, rows, gid_out, first_row);
      case 9:
        return FixedBatch<9, true>(keys, count, 0, rows, gid_out, first_row);
      case 10:
        return FixedBatch<10, true>(keys, count, 0, rows, gid_out, first_row);
      case 14:
        return FixedBatch<14, true>(keys, count, 0, rows, gid_out, first_row);
      case 15:
        return FixedBatch<15, true>(keys, count, 0, rows, gid_out, first_row);
      case 18:
        return FixedBatch<18, true>(keys, count, 0, rows, gid_out, first_row);
      case 19:
        return FixedBatch<19, true>(keys, count, 0, rows, gid_out, first_row);
      case 23:
        return FixedBatch<23, true>(keys, count, 0, rows, gid_out, first_row);
      case 27:
        return FixedBatch<27, true>(keys, count, 0, rows, gid_out, first_row);
      case 28:
        return FixedBatch<28, true>(keys, count, 0, rows, gid_out, first_row);
      case 36:
        return FixedBatch<36, true>(keys, count, 0, rows, gid_out, first_row);
      default:
        const char* kp = keys;
        for (size_t i = 0; i < count; ++i, kp += stride) {
          auto [id, inserted] = GetOrAdd(std::string_view(kp, stride));
          if (inserted) {
            first_row->push_back(rows[i]);
          } else if (rows[i] < (*first_row)[id]) {
            (*first_row)[id] = rows[i];
          }
          gid_out[i] = static_cast<uint32_t>(id);
        }
    }
  }

  // Returns the id for `key` or SIZE_MAX if absent.
  size_t Find(std::string_view key) const {
    if (slot_id_.empty()) return SIZE_MAX;
    uint64_t h = Hash(key);
    size_t idx = h & mask_;
    while (slot_id_[idx] != kEmptySlot) {
      if (slot_hash_[idx] == h && KeyEq(KeyAt(slot_id_[idx]), key)) {
        return slot_id_[idx];
      }
      idx = (idx + 1) & mask_;
    }
    return SIZE_MAX;
  }

  size_t size() const { return key_offset_.size(); }
  // Open-addressing slots currently backing the table (observability: the
  // load factor is size()/slots()).
  size_t slots() const { return slot_id_.size(); }
  void Reserve(size_t n);

  // The stored bytes of key `id` (valid until the next GetOrAdd).
  std::string_view KeyAt(size_t id) const {
    size_t begin = key_offset_[id];
    size_t end = id + 1 < key_offset_.size() ? key_offset_[id + 1]
                                             : arena_.size();
    return std::string_view(arena_.data() + begin, end - begin);
  }

  // Iterates (key, id) in insertion order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t id = 0; id < key_offset_.size(); ++id) fn(KeyAt(id), id);
  }

  // The 64-bit hash KeyMap probes with; exposed so the partitioned merge of
  // two-phase aggregation can split the key space consistently across
  // workers' partials. Two independent multiply-mix lanes consume 16 bytes
  // per iteration so the multiplies pipeline instead of serializing — a
  // typical two-column packed key (18 bytes) costs a dependency chain of
  // three multiplies rather than five — then a splitmix-style finalizer
  // gives the low bits enough avalanche for power-of-two slot indexing.
  static uint64_t Hash(std::string_view key) {
    const char* p = key.data();
    size_t n = key.size();
    uint64_t h1 = 0x9e3779b97f4a7c15ULL ^ n;
    uint64_t h2 = 0xc2b2ae3d27d4eb4fULL;
    while (n >= 16) {
      uint64_t w1, w2;
      std::memcpy(&w1, p, 8);
      std::memcpy(&w2, p + 8, 8);
      h1 = (h1 ^ w1) * 0x2545f4914f6cdd1dULL;
      h2 = (h2 ^ w2) * 0x9e3779b97f4a7c15ULL;
      p += 16;
      n -= 16;
    }
    if (n >= 8) {
      uint64_t w;
      std::memcpy(&w, p, 8);
      h1 = (h1 ^ w) * 0x2545f4914f6cdd1dULL;
      p += 8;
      n -= 8;
    }
    if (n > 0) {
      uint64_t w = 0;
      std::memcpy(&w, p, n);
      h2 = (h2 ^ w) * 0x9e3779b97f4a7c15ULL;
    }
    uint64_t h = h1 ^ (h2 * 0xff51afd7ed558ccdULL);
    h ^= h >> 32;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 32;
    return h;
  }

 private:
  static constexpr uint32_t kEmptySlot = UINT32_MAX;

  // Inline word-at-a-time equality: packed keys are a few dozen bytes, where
  // the call overhead of library memcmp dominates the comparison itself.
  static bool KeyEq(std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    const char* pa = a.data();
    const char* pb = b.data();
    size_t n = a.size();
    while (n >= 8) {
      uint64_t x, y;
      std::memcpy(&x, pa, 8);
      std::memcpy(&y, pb, 8);
      if (x != y) return false;
      pa += 8;
      pb += 8;
      n -= 8;
    }
    if (n >= 4) {
      uint32_t x, y;
      std::memcpy(&x, pa, 4);
      std::memcpy(&y, pb, 4);
      if (x != y) return false;
      pa += 4;
      pb += 4;
      n -= 4;
    }
    while (n-- > 0) {
      if (*pa++ != *pb++) return false;
    }
    return true;
  }

  // Doubles the slot table and re-places every id by its stored hash.
  void Grow(size_t min_slots);

  // One full probe-or-insert for a key whose hash is already computed.
  // Extracted from the batch loop so the AVX2 candidate path can fall back
  // to it per key; identical to the GetOrAdd probe.
  template <size_t kStride>
  uint32_t ProbeOne(const char* kp, uint64_t h, size_t row,
                    std::vector<size_t>* first_row) {
    size_t idx = h & mask_;
    for (;;) {
      const uint32_t slot = slot_id_[idx];
      if (slot == kEmptySlot) {
        const size_t id = key_offset_.size();
        key_offset_.push_back(arena_.size());
        arena_.append(kp, kStride);
        slot_hash_[idx] = h;
        slot_id_[idx] = static_cast<uint32_t>(id);
        first_row->push_back(row);
        if ((id + 1) * 2 >= slot_id_.size()) Grow(slot_id_.size() * 2);
        return static_cast<uint32_t>(id);
      }
      if (slot_hash_[idx] == h) {
        std::string_view stored = KeyAt(slot);
        if (stored.size() == kStride &&
            KeyEq(std::string_view(stored.data(), kStride),
                  std::string_view(kp, kStride))) {
          if (row < (*first_row)[slot]) (*first_row)[slot] = row;
          return slot;
        }
      }
      idx = (idx + 1) & mask_;
    }
  }

  // Gathers the FIRST probe slot for each hash (8-byte slot_hash and 4-byte
  // slot_id loads, four lanes at a time under AVX2) and emits the slot's id
  // where the stored hash matches, UINT32_MAX otherwise. Candidates are
  // hash-matches only — the caller confirms bytes via KeyAt/KeyEq, so the
  // vector path never reads key bytes out of bounds and a stale or colliding
  // candidate degrades to the scalar probe instead of a wrong id. Defined in
  // packed_key.cc (with a target attribute on x86-64, a scalar loop
  // elsewhere).
  void ProbeCandidates(const uint64_t* hashes, size_t count,
                       uint32_t* cand) const;

  // GetOrAddFixedBatch's per-stride worker. With kStride a constant the
  // Hash chunk loop and the KeyEq word loop fully unroll, and the compiler
  // keeps each key's words in registers across hashing and comparison.
  // When the runtime probe allows it, each chunk of keys is hashed up front
  // and the slot table is probed four lanes at a time; in the steady state
  // (group exists, first probe slot hits) the per-key work collapses to one
  // confirm-compare. Keys that miss their candidate — new groups, probe
  // chains, keys inserted earlier in the same chunk — take the scalar
  // ProbeOne, so results are identical with SIMD on or off.
  template <size_t kStride, bool kHasRows>
  void FixedBatch(const char* keys, size_t count, size_t base_row,
                  const uint32_t* rows, uint32_t* gid_out,
                  std::vector<size_t>* first_row) {
    if (slot_id_.empty()) Grow(64);
    constexpr size_t kChunk = 16;
    const bool simd = KeyMapBatchProbeSimd();
    uint64_t hashes[kChunk];
    uint32_t cand[kChunk];
    size_t i = 0;
    while (i < count) {
      const size_t c = count - i < kChunk ? count - i : kChunk;
      const char* kp = keys + i * kStride;
      if (simd && c == kChunk) {
        const char* q = kp;
        for (size_t j = 0; j < kChunk; ++j, q += kStride) {
          hashes[j] = Hash(std::string_view(q, kStride));
        }
        ProbeCandidates(hashes, kChunk, cand);
        for (size_t j = 0; j < kChunk; ++j, kp += kStride) {
          const size_t row = kHasRows ? rows[i + j] : base_row + i + j;
          const uint32_t id = cand[j];
          if (id != kEmptySlot) {
            std::string_view stored = KeyAt(id);
            if (stored.size() == kStride &&
                KeyEq(std::string_view(stored.data(), kStride),
                      std::string_view(kp, kStride))) {
              if (row < (*first_row)[id]) (*first_row)[id] = row;
              gid_out[i + j] = id;
              continue;
            }
          }
          gid_out[i + j] = ProbeOne<kStride>(kp, hashes[j], row, first_row);
        }
      } else {
        for (size_t j = 0; j < c; ++j, kp += kStride) {
          const size_t row = kHasRows ? rows[i + j] : base_row + i + j;
          const uint64_t h = Hash(std::string_view(kp, kStride));
          gid_out[i + j] = ProbeOne<kStride>(kp, h, row, first_row);
        }
      }
      i += c;
    }
  }

  std::vector<uint64_t> slot_hash_;  // parallel to slot_id_
  std::vector<uint32_t> slot_id_;    // kEmptySlot marks a free slot
  std::vector<size_t> key_offset_;   // per id: start of its bytes in arena_
  std::string arena_;                // all keys, concatenated
  size_t mask_ = 0;                  // slot count - 1 (power of two)
};

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_PACKED_KEY_H_
