#ifndef PCTAGG_ENGINE_MERGE_H_
#define PCTAGG_ENGINE_MERGE_H_

#include <vector>

#include "common/result.h"
#include "engine/aggregate.h"
#include "engine/table.h"

namespace pctagg {

// Merges `delta` — the same GROUP BY / aggregate recipe evaluated over just
// a batch of appended rows — into `existing`, a cached summary of the rows
// before the batch. Both tables must share the HashAggregate output shape:
// the first `num_group_cols` columns are the group key, followed by one
// column per entry of `aggs`, pairwise type-identical. Every agg must be
// distributive (sum/count/count(*)/min/max; avg is rejected).
//
// Groups present in both are combined cell-wise per aggregate function with
// SQL NULL semantics (an all-NULL sum stays NULL until a non-NULL delta
// arrives); groups only in `delta` are appended. Because HashAggregate emits
// groups in first-seen input order, the merged table is exactly what
// recomputing over old-rows-then-new-rows would produce: old groups keep
// their positions, new groups follow in delta order. Integer aggregates are
// therefore bit-identical to a recompute; float sums carry the same
// reassociation caveat as cross-dop execution (docs/PARALLELISM.md).
//
// String group columns may use different dictionaries: probe keys are
// translated into `existing`'s code space (engine/packed_key.h), and
// appended rows re-intern. The result shares `existing`'s dictionaries, so
// callers must hold the single-writer append discipline while merging.
Result<Table> MergeSummaries(const Table& existing, const Table& delta,
                             size_t num_group_cols,
                             const std::vector<AggSpec>& aggs);

}  // namespace pctagg

#endif  // PCTAGG_ENGINE_MERGE_H_
