#include "server/client.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/string_util.h"

namespace pctagg {

namespace {

void SetSocketDeadlines(int fd, uint64_t io_timeout_ms) {
  if (io_timeout_ms == 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(io_timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((io_timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// Connect with a deadline: non-blocking connect, poll for writability, read
// SO_ERROR, then restore blocking mode. `timeout_ms` 0 = plain blocking
// connect.
Status ConnectFd(int fd, const sockaddr* addr, socklen_t addrlen,
                 uint64_t timeout_ms) {
  if (timeout_ms == 0) {
    if (::connect(fd, addr, addrlen) == 0) return Status::OK();
    return Status(StatusCode::kUnavailable,
                  std::string("connect: ") + std::strerror(errno));
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  Status status = Status::OK();
  if (::connect(fd, addr, addrlen) != 0) {
    if (errno != EINPROGRESS) {
      status = Status(StatusCode::kUnavailable,
                      std::string("connect: ") + std::strerror(errno));
    } else {
      pollfd pfd{fd, POLLOUT, 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        status = Status(StatusCode::kTimeout, "connect: timed out");
      } else if (rc < 0) {
        status = Status::Internal(std::string("poll: ") + std::strerror(errno));
      } else {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
          status = Status(StatusCode::kUnavailable,
                          std::string("connect: ") + std::strerror(err));
        }
      }
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return status;
}

bool IsTransportFailure(const Status& status) {
  // Transport-level breakage worth a reconnect: closed/reset sockets surface
  // as kNotFound ("connection closed") or kInternal (send/recv errno), socket
  // deadlines as kTimeout, refused dials as kUnavailable. Anything a *server*
  // reports travels inside an ok() transport result and never lands here.
  switch (status.code()) {
    case StatusCode::kNotFound:
    case StatusCode::kInternal:
    case StatusCode::kTimeout:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

}  // namespace

PctClient& PctClient::operator=(PctClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    host_ = std::move(other.host_);
    port_ = other.port_;
    options_ = other.options_;
    other.fd_ = -1;
  }
  return *this;
}

void PctClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_.reset();
}

Result<int> PctClient::DialOnce(const std::string& host, int port,
                                uint64_t attempt_timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &found);
  if (rc != 0) {
    return Status::NotFound(std::string("resolve ") + host + ": " +
                            gai_strerror(rc));
  }
  Status last = Status::NotFound("no addresses for " + host);
  for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::Internal(std::string("socket: ") + std::strerror(errno));
      continue;
    }
    Status status = ConnectFd(fd, ai->ai_addr, ai->ai_addrlen,
                              attempt_timeout_ms);
    if (status.ok()) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(found);
      return fd;
    }
    last = status;
    ::close(fd);
  }
  ::freeaddrinfo(found);
  return last;
}

Result<PctClient> PctClient::Connect(const std::string& host, int port) {
  return Connect(host, port, ConnectOptions{});
}

Result<PctClient> PctClient::Connect(const std::string& host, int port,
                                     const ConnectOptions& options) {
  uint64_t backoff = options.backoff_initial_ms;
  Status last = Status::InvalidArgument("connect: attempts must be >= 1");
  int attempts = options.attempts < 1 ? 1 : options.attempts;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = std::min(backoff * 2, options.backoff_max_ms);
    }
    Result<int> fd = DialOnce(host, port, options.attempt_timeout_ms);
    if (fd.ok()) {
      SetSocketDeadlines(fd.value(), options.io_timeout_ms);
      PctClient client(fd.value());
      client.host_ = host;
      client.port_ = port;
      client.options_ = options;
      return client;
    }
    last = fd.status();
  }
  return last;
}

Status PctClient::Reconnect() {
  if (host_.empty()) {
    return Status::InvalidArgument("client has no remembered endpoint");
  }
  Close();
  Result<PctClient> fresh = Connect(host_, port_, options_);
  if (!fresh.ok()) return fresh.status();
  *this = std::move(fresh.value());
  return Status::OK();
}

Result<WireResponse> PctClient::ReadResponse() {
  PCTAGG_ASSIGN_OR_RETURN(std::string header, reader_->ReadLine());
  size_t body_bytes = 0;
  PCTAGG_ASSIGN_OR_RETURN(WireResponse resp,
                          DecodeResponseHeader(header, &body_bytes));
  if (body_bytes > 0) {
    PCTAGG_ASSIGN_OR_RETURN(resp.body, reader_->ReadBytes(body_bytes));
  }
  return resp;
}

Result<WireResponse> PctClient::Call(RequestVerb verb,
                                     const std::string& payload) {
  if (!connected()) {
    return Status::InvalidArgument("client not connected");
  }
  PCTAGG_RETURN_IF_ERROR(WriteAll(fd_, EncodeRequest({verb, payload})));
  return ReadResponse();
}

Result<WireResponse> PctClient::CallWithRetry(RequestVerb verb,
                                              const std::string& payload,
                                              int attempts, int* retries) {
  if (retries != nullptr) *retries = 0;
  if (attempts < 1) attempts = 1;
  Result<WireResponse> last = Status::Internal("call never attempted");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // The old socket is suspect after any transport failure: re-dial (the
      // dial loop carries its own backoff) before resending.
      Status rc = Reconnect();
      if (!rc.ok()) {
        last = rc;
        continue;
      }
      if (retries != nullptr) ++*retries;
    }
    last = Call(verb, payload);
    if (last.ok()) return last;
    if (!IsTransportFailure(last.status())) return last;
  }
  return last;
}

Result<WireResponse> PctClient::ShardData(const std::string& table,
                                          const std::string& bytes) {
  if (!connected()) {
    return Status::InvalidArgument("client not connected");
  }
  std::string frame =
      StrFormat("SHARDDATA %s %zu\n", table.c_str(), bytes.size());
  PCTAGG_RETURN_IF_ERROR(WriteAll(fd_, frame));
  PCTAGG_RETURN_IF_ERROR(WriteAll(fd_, bytes));
  return ReadResponse();
}

}  // namespace pctagg
