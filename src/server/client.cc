#include "server/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pctagg {

PctClient& PctClient::operator=(PctClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
  }
  return *this;
}

void PctClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_.reset();
}

Result<PctClient> PctClient::Connect(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &found);
  if (rc != 0) {
    return Status::NotFound(std::string("resolve ") + host + ": " +
                            gai_strerror(rc));
  }
  Status last = Status::NotFound("no addresses for " + host);
  for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::Internal(std::string("socket: ") + std::strerror(errno));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(found);
      return PctClient(fd);
    }
    last = Status(StatusCode::kUnavailable,
                  std::string("connect: ") + std::strerror(errno));
    ::close(fd);
  }
  ::freeaddrinfo(found);
  return last;
}

Result<WireResponse> PctClient::Call(RequestVerb verb,
                                     const std::string& payload) {
  if (!connected()) {
    return Status::InvalidArgument("client not connected");
  }
  PCTAGG_RETURN_IF_ERROR(WriteAll(fd_, EncodeRequest({verb, payload})));
  PCTAGG_ASSIGN_OR_RETURN(std::string header, reader_->ReadLine());
  size_t body_bytes = 0;
  PCTAGG_ASSIGN_OR_RETURN(WireResponse resp,
                          DecodeResponseHeader(header, &body_bytes));
  if (body_bytes > 0) {
    PCTAGG_ASSIGN_OR_RETURN(resp.body, reader_->ReadBytes(body_bytes));
  }
  return resp;
}

}  // namespace pctagg
