#include "server/mqo_gate.h"

#include <chrono>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace pctagg {

namespace {

// Registration is hoisted into function-local statics (GetCounter locks).
obs::Counter& BatchesCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_mqo_batches_total",
      "Batches executed by the multi-query gate (any size)");
  return c;
}
obs::Counter& QueriesBatchedCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_mqo_queries_batched_total",
      "Queries served as members of a shared-scan batch of >= 2");
  return c;
}
obs::Counter& SoloEscapeCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_mqo_solo_escapes_total",
      "Queries that skipped the batching gate to protect their deadline");
  return c;
}
obs::Counter& ScanRowsSavedCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_mqo_scan_rows_saved_total",
      "Fact rows NOT rescanned because a batch shared one scan");
  return c;
}
obs::Histogram& WindowHist() {
  static obs::Histogram& h = obs::GlobalMetrics().GetHistogram(
      "pctagg_mqo_batch_window_ms",
      "Collection window actually waited by batch leaders, milliseconds");
  return h;
}

}  // namespace

Result<Table> MqoGate::Run(const std::string& key, Member& member,
                           const BatchFn& execute) {
  std::shared_ptr<Batch> batch;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = open_.find(key);
    if (it != open_.end() && it->second->open) {
      // Follower: park on the open batch until the leader publishes results.
      batch = it->second;
      batch->members.push_back(&member);
      if (batch->members.size() >= config_.max_batch) {
        batch->cv.notify_all();  // wake the leader to close early
      }
      batch->cv.wait(lock, [&batch] { return batch->finished; });
      return std::move(member.result);
    }
    // Leader: open a batch, collect followers for one window (closing early
    // when the batch fills), then take it off the open map so later arrivals
    // start a fresh batch while this one executes.
    batch = std::make_shared<Batch>();
    batch->members.push_back(&member);
    open_[key] = batch;
    Stopwatch window;
    batch->cv.wait_for(
        lock, std::chrono::milliseconds(config_.window_ms),
        [&batch, this] { return batch->members.size() >= config_.max_batch; });
    batch->open = false;
    auto cur = open_.find(key);
    if (cur != open_.end() && cur->second == batch) open_.erase(cur);
    WindowHist().Observe(static_cast<uint64_t>(window.ElapsedMillis()));
  }

  // Execute outside the gate lock; the members vector is frozen (open was
  // cleared under the lock) and every Member outlives Run by construction.
  batches_.fetch_add(1);
  BatchesCounter().Add();
  if (batch->members.size() >= 2) {
    queries_batched_.fetch_add(batch->members.size());
    QueriesBatchedCounter().Add(batch->members.size());
  }
  execute(batch->members);

  {
    std::lock_guard<std::mutex> lock(mu_);
    batch->finished = true;
  }
  batch->cv.notify_all();
  return std::move(member.result);
}

void MqoGate::RecordSoloEscape() {
  solo_escapes_.fetch_add(1);
  SoloEscapeCounter().Add();
}

void MqoGate::RecordScanRowsSaved(uint64_t rows) {
  if (rows == 0) return;
  scan_rows_saved_.fetch_add(rows);
  ScanRowsSavedCounter().Add(rows);
}

std::string MqoGate::Describe() const {
  return StrFormat(
      "window_ms=%llu max_batch=%zu batches=%llu queries_batched=%llu "
      "solo_escapes=%llu scan_rows_saved=%llu",
      static_cast<unsigned long long>(config_.window_ms), config_.max_batch,
      static_cast<unsigned long long>(batches_.load()),
      static_cast<unsigned long long>(queries_batched_.load()),
      static_cast<unsigned long long>(solo_escapes_.load()),
      static_cast<unsigned long long>(scan_rows_saved_.load()));
}

}  // namespace pctagg
