#ifndef PCTAGG_SERVER_PROTOCOL_H_
#define PCTAGG_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace pctagg {

// PctProtocol — the line-oriented wire protocol between pctagg clients and
// the query server. Full grammar in docs/SERVER.md; in short:
//
//   request  := VERB [' ' payload] '\n'        (payload backslash-escaped)
//   response := "OK " nbytes ' ' nrows ' ' ncols ' ' micros '\n' body
//             | "ERR " code-name ' ' escaped-message '\n'
//
// The body is exactly `nbytes` raw bytes — a CSV result set (the engine's
// CSV writer output) for statements, plain text for informational verbs.
// Error code names are the StatusCodeName() spellings ("NotFound",
// "Timeout", ...), so a typed Status survives the round trip.

// Hard cap on one frame line; longer lines are a malformed frame.
inline constexpr size_t kMaxLineBytes = 1 << 20;
// Hard cap on a response body a client will accept.
inline constexpr size_t kMaxBodyBytes = 1 << 28;

enum class RequestVerb {
  kQuery,    // QUERY <sql>       run a statement (SELECT / CREATE TABLE AS)
  kAppend,   // APPEND <sql>      run a write (INSERT / COPY ... (APPEND))
  kExplain,  // EXPLAIN <sql>     return the generated evaluation script
  kOlap,     // OLAP <sql>        run a Vpct query via the OLAP baseline
  kSet,      // SET <opt> <val>   change a session option
  kShow,     // SHOW              session + server status text
  kTables,   // TABLES            CSV of (table,rows,columns)
  kSchema,   // SCHEMA <table>    one-line schema text
  kGen,      // GEN <kind> <name> <rows>   create a synthetic workload table
  kDrop,     // DROP <table>      drop a base table
  kCheckpoint,  // CHECKPOINT     flush tables to segments, truncate the WAL
  kStats,    // STATS             process-wide metrics, Prometheus text format
  kPing,     // PING              liveness check, empty OK
  kQuit,     // QUIT              close the session
  // Distributed execution (docs/SHARDING.md). SHARD is client -> coordinator;
  // PARTIAL and SHARDDATA are coordinator -> worker.
  kShard,      // SHARD <table> <column>   hash-partition a table across workers
  kPartial,    // PARTIAL <dop> <sql>      run a partial-aggregation SELECT at
               //                          the given dop; body is the result
               //                          table in storage/serde encoding
  kShardData,  // SHARDDATA <table> <nbytes>\n<bytes>  install one shard of a
               //                          table (serde-encoded request body —
               //                          the only verb with a request body)
};

const char* VerbName(RequestVerb verb);

struct WireRequest {
  RequestVerb verb;
  std::string payload;  // unescaped
};

// Escapes '\\', '\n', '\r' so arbitrary SQL fits in one frame line.
std::string EscapeLine(const std::string& s);
std::string UnescapeLine(const std::string& s);

// One request frame, newline included.
std::string EncodeRequest(const WireRequest& request);

// Parses one request line (no trailing newline). Malformed frames (unknown
// verb, empty line, oversized payload) come back as typed errors.
Result<WireRequest> DecodeRequestLine(const std::string& line);

struct WireResponse {
  Status status;     // OK, or the server-reported typed error
  std::string body;  // empty on error
  uint64_t rows = 0;
  uint64_t cols = 0;
  uint64_t micros = 0;  // server-side execution time
};

// Full response frame: header line plus body bytes.
std::string EncodeResponse(const WireResponse& response);

// Parses a response header line; `*body_bytes` receives the number of body
// bytes the caller must read next (0 for errors).
Result<WireResponse> DecodeResponseHeader(const std::string& line,
                                          size_t* body_bytes);

// Inverse of StatusCodeName(); unknown names map to kInternal.
StatusCode StatusCodeFromName(const std::string& name);

// --- Blocking POSIX socket I/O helpers -------------------------------------

// Buffered line/byte reader over a connected socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  // Reads up to and including '\n'; returns the line without '\n' (a
  // trailing '\r' is stripped too). EOF before any byte -> NotFound
  // ("connection closed"); over-long lines -> InvalidArgument.
  Result<std::string> ReadLine();

  // Reads exactly `n` bytes.
  Result<std::string> ReadBytes(size_t n);

 private:
  Status Fill();  // reads more bytes into buf_

  int fd_;
  std::string buf_;
  size_t pos_ = 0;
};

// Writes all of `data`, retrying on short writes / EINTR.
Status WriteAll(int fd, const std::string& data);

}  // namespace pctagg

#endif  // PCTAGG_SERVER_PROTOCOL_H_
