#ifndef PCTAGG_SERVER_MQO_GATE_H_
#define PCTAGG_SERVER_MQO_GATE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/table.h"
#include "obs/trace.h"
#include "sql/analyzer.h"

namespace pctagg {

// Admission-side half of multi-query shared-scan batching (core/mqo_plan.h):
// a leader/follower gate keyed by MqoCompatibilityKey. The first reader to
// arrive for a key becomes the batch leader and waits a bounded collection
// window for compatible readers to join (closing early when the batch
// fills); followers that arrive while the batch is open park on it and wake
// with their result once the leader has executed the whole batch through one
// shared scan. Queries with tight deadlines skip the gate (ShouldRunSolo) so
// batching never violates a per-query timeout.
struct MqoGateConfig {
  // Collection window the leader waits for followers before executing.
  // Short on purpose: dashboard bursts arrive within a few ms, and every
  // uncontended query pays at most one window of extra latency.
  uint64_t window_ms = 2;
  // A batch closes early once this many members joined. Members occupy
  // executor pool threads while parked, so keep this at or below the pool
  // size.
  size_t max_batch = 16;
};

class MqoGate {
 public:
  // One query parked in a batch. Lives on its caller's stack for the whole
  // Run() call — no member leaves Run before the leader publishes results,
  // so the leader's pointers stay valid.
  struct Member {
    const AnalyzedQuery* query = nullptr;
    std::string sql;  // original statement, for solo fallback paths
    obs::QueryTrace* trace = nullptr;
    Result<Table> result{Table()};
  };
  // Executes a closed batch, filling every member's `result`. Runs on the
  // leader's thread, outside the gate lock.
  using BatchFn = std::function<void(std::vector<Member*>&)>;

  explicit MqoGate(MqoGateConfig config = MqoGateConfig()) : config_(config) {}

  MqoGate(const MqoGate&) = delete;
  MqoGate& operator=(const MqoGate&) = delete;

  // True when a query with `timeout_ms` of budget should skip the gate:
  // parking for a collection window (plus the batch execution behind it)
  // could eat a deadline this tight. 0 means no deadline — never escape.
  bool ShouldRunSolo(uint64_t timeout_ms) const {
    return timeout_ms != 0 && timeout_ms < config_.window_ms * 4;
  }

  // Joins (or opens) the batch for `key` and returns this caller's result.
  Result<Table> Run(const std::string& key, Member& member,
                    const BatchFn& execute);

  // Bumps the deadline-escape counter (the caller decides to run solo, so
  // the gate can't observe it from Run).
  void RecordSoloEscape();

  // Adds fact_rows × (batch_size − 1) after a batch executed: the rows every
  // member other than the one that scanned did NOT read.
  void RecordScanRowsSaved(uint64_t rows);

  // One-line status for SHOW.
  std::string Describe() const;

  const MqoGateConfig& config() const { return config_; }
  uint64_t batches() const { return batches_.load(); }
  uint64_t queries_batched() const { return queries_batched_.load(); }
  uint64_t solo_escapes() const { return solo_escapes_.load(); }
  uint64_t scan_rows_saved() const { return scan_rows_saved_.load(); }

 private:
  struct Batch {
    std::vector<Member*> members;
    bool open = true;      // accepting joiners
    bool finished = false; // results published
    std::condition_variable cv;
  };

  const MqoGateConfig config_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Batch>> open_;
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> queries_batched_{0};
  std::atomic<uint64_t> solo_escapes_{0};
  std::atomic<uint64_t> scan_rows_saved_{0};
};

}  // namespace pctagg

#endif  // PCTAGG_SERVER_MQO_GATE_H_
