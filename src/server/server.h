#ifndef PCTAGG_SERVER_SERVER_H_
#define PCTAGG_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "server/dist_router.h"
#include "server/executor.h"
#include "server/protocol.h"
#include "server/session.h"

namespace pctagg {

struct ServerConfig {
  std::string host = "127.0.0.1";
  // 0 binds an ephemeral port; read the actual one from port() after Start().
  int port = 0;
  size_t worker_threads = 0;  // 0 = hardware_concurrency (min 2)
  size_t max_in_flight = 64;
  // Default per-query deadline for new sessions (overridable per session
  // with SET timeout_ms). 0 = no deadline.
  uint64_t default_timeout_ms = 30000;
  int listen_backlog = 64;
  // Multi-query batching gate (SET mqo; server/mqo_gate.h): leader collection
  // window and early-close batch size, forwarded to the executor.
  uint64_t mqo_window_ms = 2;
  size_t mqo_max_batch = 16;
  // When set, the server is a coordinator: every statement is offered to the
  // router first (sharded tables execute scatter/gather; everything else
  // falls through to the local database) and SHARD becomes available. Not
  // owned; must outlive the server. See docs/SHARDING.md.
  DistRouter* router = nullptr;
};

// The pctagg query service: a TCP listener speaking PctProtocol, one
// connection-handler thread per session, all statements funneled through a
// shared QueryExecutor. Start() returns once the socket is listening;
// Stop() (also run by the destructor) closes the listener and every live
// connection and joins all threads.
class PctServer {
 public:
  PctServer(PctDatabase* db, ServerConfig config);
  ~PctServer();

  PctServer(const PctServer&) = delete;
  PctServer& operator=(const PctServer&) = delete;

  Status Start();
  void Stop();

  // The bound port (valid after a successful Start).
  int port() const { return port_; }

  QueryExecutor& executor() { return executor_; }
  size_t sessions_opened() const { return sessions_opened_.load(); }
  size_t sessions_active() const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  // Builds the response for one request; sets `*quit` on QUIT.
  WireResponse HandleRequest(Session* session, const WireRequest& request,
                             bool* quit);
  WireResponse RunStatement(Session* session, const std::string& sql,
                            bool olap_baseline);
  // SHARDDATA carries the only request body; it is read from the
  // connection's own LineReader, so the handler lives outside HandleRequest.
  // Sets `*quit` when the frame is too malformed to keep the stream in sync.
  WireResponse HandleShardData(Session* session, const WireRequest& request,
                               LineReader* reader, bool* quit);

  PctDatabase* db_;
  ServerConfig config_;
  QueryExecutor executor_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  mutable std::mutex conn_mutex_;
  std::vector<std::thread> conn_threads_;
  std::set<int> open_fds_;
  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<size_t> sessions_opened_{0};
};

}  // namespace pctagg

#endif  // PCTAGG_SERVER_SERVER_H_
