#include "server/executor.h"

#include <chrono>
#include <future>
#include <memory>
#include <sstream>
#include <thread>

#include "common/string_util.h"

namespace pctagg {

namespace {

size_t ResolveWorkers(size_t requested) {
  if (requested > 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw > 2 ? hw : 2;
}

}  // namespace

QueryExecutor::QueryExecutor(PctDatabase* db, ExecutorConfig config)
    : db_(db), config_(config), pool_(ResolveWorkers(config.worker_threads)) {}

bool QueryExecutor::ParseCreateTableAs(const std::string& sql,
                                       std::string* name,
                                       std::string* select_sql) {
  std::istringstream in(sql);
  std::string w1, w2, ident, w4;
  in >> w1 >> w2 >> ident >> w4;
  if (!EqualsIgnoreCase(w1, "CREATE") || !EqualsIgnoreCase(w2, "TABLE") ||
      ident.empty() || !EqualsIgnoreCase(w4, "AS")) {
    return false;
  }
  std::string rest;
  std::getline(in, rest);
  size_t start = rest.find_first_not_of(" \t");
  if (start == std::string::npos) return false;
  *name = ident;
  *select_sql = rest.substr(start);
  return true;
}

Status QueryExecutor::Run(bool writer, std::function<Status()> fn,
                          uint64_t timeout_ms) {
  // Admission: count this statement in; if the service is already saturated,
  // bounce it with a typed, retryable error.
  if (in_flight_.fetch_add(1) >= config_.max_in_flight) {
    in_flight_.fetch_sub(1);
    ++rejected_;
    return Status::Unavailable(
        StrFormat("server overloaded: %zu statements in flight",
                  config_.max_in_flight));
  }
  auto done = std::make_shared<std::promise<Status>>();
  std::future<Status> future = done->get_future();
  bool submitted = pool_.Submit([this, writer, fn = std::move(fn), done] {
    Status st;
    if (writer) {
      std::unique_lock<std::shared_mutex> lock(table_lock_);
      st = fn();
    } else {
      std::shared_lock<std::shared_mutex> lock(table_lock_);
      st = fn();
    }
    ++executed_;
    in_flight_.fetch_sub(1);
    done->set_value(std::move(st));
  });
  if (!submitted) {
    in_flight_.fetch_sub(1);
    return Status::Unavailable("server shutting down");
  }
  if (timeout_ms == 0) return future.get();
  if (future.wait_for(std::chrono::milliseconds(timeout_ms)) ==
      std::future_status::timeout) {
    ++timed_out_;
    return Status::Timeout(
        StrFormat("query exceeded %llu ms deadline",
                  (unsigned long long)timeout_ms));
  }
  return future.get();
}

Result<Table> QueryExecutor::ExecuteStatement(const std::string& sql,
                                              const QueryOptions& options,
                                              uint64_t timeout_ms) {
  std::string name, select_sql;
  bool is_ctas = ParseCreateTableAs(sql, &name, &select_sql);
  // The worker may outlive a timed-out caller, so the result slot is shared.
  auto out = std::make_shared<Result<Table>>(Table());
  Status st = Run(
      is_ctas,
      [this, out, options, name = std::move(name),
       select_sql = std::move(select_sql), sql, is_ctas]() -> Status {
        if (is_ctas) {
          // Note: CreateTableAs runs its inner SELECT while we hold the
          // exclusive lock — correct (the new table appears atomically to
          // readers) at the cost of serializing with readers.
          PCTAGG_RETURN_IF_ERROR(db_->CreateTableAs(name, select_sql));
          *out = Table();  // empty result set
          return Status::OK();
        }
        Result<Table> r = db_->Query(sql, options);
        if (!r.ok()) return r.status();
        *out = std::move(r);
        return Status::OK();
      },
      timeout_ms);
  if (!st.ok()) return st;
  return std::move(*out);
}

Status QueryExecutor::ExecuteWrite(std::function<Status()> fn,
                                   uint64_t timeout_ms) {
  return Run(/*writer=*/true, std::move(fn), timeout_ms);
}

Status QueryExecutor::ExecuteRead(std::function<Status()> fn,
                                  uint64_t timeout_ms) {
  return Run(/*writer=*/false, std::move(fn), timeout_ms);
}

}  // namespace pctagg
