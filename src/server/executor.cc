#include "server/executor.h"

#include <chrono>
#include <memory>
#include <sstream>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace pctagg {

namespace {

// Registration takes a mutex, so hoist each metric behind a function-local
// static; Add() itself is a relaxed atomic on a per-thread shard.
obs::Counter& ExecutedCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_server_statements_executed_total",
      "Statements run to completion (success or error) by the executor.");
  return c;
}

obs::Counter& RejectedCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_server_statements_rejected_total",
      "Statements bounced by admission control (max_in_flight exceeded).");
  return c;
}

obs::Counter& TimedOutCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_server_statements_timed_out_total",
      "Statements whose caller hit the wall-clock deadline.");
  return c;
}

obs::Gauge& InFlightGauge() {
  static obs::Gauge& g = obs::GlobalMetrics().GetGauge(
      "pctagg_server_statements_in_flight",
      "Statements admitted but not yet finished (running or queued).");
  return g;
}

}  // namespace

QueryExecutor::QueryExecutor(PctDatabase* db, ExecutorConfig config)
    : db_(db), config_(config) {
  if (config.worker_threads > 0) {
    owned_pool_ = std::make_unique<ThreadPool>(config.worker_threads);
    pool_ = owned_pool_.get();
  } else {
    pool_ = &SharedThreadPool();
  }
}

QueryExecutor::~QueryExecutor() {
  // A timed-out statement keeps running after its caller gave up; it still
  // references `this` (and the database), so wait it out before tearing down.
  outstanding_.Wait();
}

bool QueryExecutor::ParseCreateTableAs(const std::string& sql,
                                       std::string* name,
                                       std::string* select_sql) {
  std::istringstream in(sql);
  std::string w1, w2, ident, w4;
  in >> w1 >> w2 >> ident >> w4;
  if (!EqualsIgnoreCase(w1, "CREATE") || !EqualsIgnoreCase(w2, "TABLE") ||
      ident.empty() || !EqualsIgnoreCase(w4, "AS")) {
    return false;
  }
  std::string rest;
  std::getline(in, rest);
  size_t start = rest.find_first_not_of(" \t");
  if (start == std::string::npos) return false;
  *name = ident;
  *select_sql = rest.substr(start);
  return true;
}

namespace {

// First statement keyword, skipping an EXPLAIN [ANALYZE] prefix. Trailing
// semicolons are stripped so a bare "CHECKPOINT;" classifies like
// "CHECKPOINT".
std::string LeadingKeyword(const std::string& sql) {
  std::istringstream in(sql);
  std::string word;
  in >> word;
  if (EqualsIgnoreCase(word, "EXPLAIN")) {
    in >> word;
    if (EqualsIgnoreCase(word, "ANALYZE")) in >> word;
  }
  while (!word.empty() && word.back() == ';') word.pop_back();
  return word;
}

}  // namespace

bool QueryExecutor::IsAppendStatement(const std::string& sql) {
  std::string word = LeadingKeyword(sql);
  return EqualsIgnoreCase(word, "INSERT") || EqualsIgnoreCase(word, "COPY");
}

bool QueryExecutor::IsWriteStatement(const std::string& sql) {
  std::string word = LeadingKeyword(sql);
  return EqualsIgnoreCase(word, "INSERT") || EqualsIgnoreCase(word, "COPY") ||
         EqualsIgnoreCase(word, "DROP") || EqualsIgnoreCase(word, "CHECKPOINT");
}

Status QueryExecutor::Run(bool writer, std::function<Status()> fn,
                          uint64_t timeout_ms) {
  // Admission: count this statement in; if the service is already saturated,
  // bounce it with a typed, retryable error.
  if (in_flight_.fetch_add(1) >= config_.max_in_flight) {
    in_flight_.fetch_sub(1);
    ++rejected_;
    RejectedCounter().Add();
    return Status::Unavailable(
        StrFormat("server overloaded: %zu statements in flight",
                  config_.max_in_flight));
  }
  // The task slot outlives a timed-out caller, so it is shared; the caller
  // waits on the WaitGroup instead of a bespoke promise/future latch.
  struct TaskSlot {
    WaitGroup done;
    Status status = Status::OK();
  };
  auto slot = std::make_shared<TaskSlot>();
  slot->done.Add();
  outstanding_.Add();
  InFlightGauge().Add(1);
  bool submitted = pool_->Submit([this, writer, fn = std::move(fn), slot] {
    Status st;
    if (writer) {
      std::unique_lock<std::shared_mutex> lock(table_lock_);
      st = fn();
    } else {
      std::shared_lock<std::shared_mutex> lock(table_lock_);
      st = fn();
    }
    ++executed_;
    ExecutedCounter().Add();
    in_flight_.fetch_sub(1);
    InFlightGauge().Add(-1);
    slot->status = std::move(st);
    slot->done.Done();
    outstanding_.Done();
  });
  if (!submitted) {
    in_flight_.fetch_sub(1);
    InFlightGauge().Add(-1);
    outstanding_.Done();
    return Status::Unavailable("server shutting down");
  }
  if (timeout_ms == 0) {
    slot->done.Wait();
    return std::move(slot->status);
  }
  if (!slot->done.WaitFor(std::chrono::milliseconds(timeout_ms))) {
    ++timed_out_;
    TimedOutCounter().Add();
    return Status::Timeout(
        StrFormat("query exceeded %llu ms deadline",
                  (unsigned long long)timeout_ms));
  }
  return std::move(slot->status);
}

Result<Table> QueryExecutor::ExecuteStatement(
    const std::string& sql, const QueryOptions& options, uint64_t timeout_ms,
    std::shared_ptr<obs::QueryTrace> trace) {
  std::string name, select_sql;
  bool is_ctas = ParseCreateTableAs(sql, &name, &select_sql);
  // Appends, DROP TABLE and CHECKPOINT all dispatch to PctDatabase::Execute
  // under the exclusive lock.
  bool is_append = !is_ctas && IsWriteStatement(sql);
  // The worker may outlive a timed-out caller, so the result slot is shared —
  // and the lambda co-owns `trace` so the worker never writes into a trace the
  // caller has already dropped.
  auto out = std::make_shared<Result<Table>>(Table());
  QueryOptions opts = options;
  opts.trace = trace.get();
  Status st = Run(
      is_ctas || is_append,
      [this, out, opts, trace, name = std::move(name),
       select_sql = std::move(select_sql), sql, is_ctas, is_append]() -> Status {
        if (is_ctas) {
          // Note: CreateTableAs runs its inner SELECT while we hold the
          // exclusive lock — correct (the new table appears atomically to
          // readers) at the cost of serializing with readers.
          PCTAGG_RETURN_IF_ERROR(db_->CreateTableAs(name, select_sql));
          *out = Table();  // empty result set
          return Status::OK();
        }
        if (is_append) {
          // Appends mutate the base table and delta-maintain its cached
          // summaries; the exclusive lock we hold is exactly the
          // writer-exclusivity AppendRows requires.
          Result<Table> r = db_->Execute(sql, opts);
          if (!r.ok()) return r.status();
          *out = std::move(r);
          return Status::OK();
        }
        Result<Table> r = db_->Query(sql, opts);
        if (!r.ok()) return r.status();
        *out = std::move(r);
        return Status::OK();
      },
      timeout_ms);
  if (!st.ok()) return st;
  return std::move(*out);
}

Status QueryExecutor::ExecuteWrite(std::function<Status()> fn,
                                   uint64_t timeout_ms) {
  return Run(/*writer=*/true, std::move(fn), timeout_ms);
}

Status QueryExecutor::ExecuteRead(std::function<Status()> fn,
                                  uint64_t timeout_ms) {
  return Run(/*writer=*/false, std::move(fn), timeout_ms);
}

}  // namespace pctagg
