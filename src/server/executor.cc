#include "server/executor.h"

#include <chrono>
#include <memory>
#include <sstream>
#include <utility>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/cost_model.h"
#include "core/mqo_plan.h"
#include "engine/parallel.h"
#include "obs/metrics.h"

namespace pctagg {

namespace {

// Registration takes a mutex, so hoist each metric behind a function-local
// static; Add() itself is a relaxed atomic on a per-thread shard.
obs::Counter& ExecutedCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_server_statements_executed_total",
      "Statements run to completion (success or error) by the executor.");
  return c;
}

obs::Counter& RejectedCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_server_statements_rejected_total",
      "Statements bounced by admission control (max_in_flight exceeded).");
  return c;
}

obs::Counter& TimedOutCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_server_statements_timed_out_total",
      "Statements whose caller hit the wall-clock deadline.");
  return c;
}

obs::Gauge& InFlightGauge() {
  static obs::Gauge& g = obs::GlobalMetrics().GetGauge(
      "pctagg_server_statements_in_flight",
      "Statements admitted but not yet finished (running or queued).");
  return g;
}

}  // namespace

QueryExecutor::QueryExecutor(PctDatabase* db, ExecutorConfig config)
    : db_(db),
      config_(config),
      mqo_gate_(MqoGateConfig{config.mqo_window_ms, config.mqo_max_batch}) {
  if (config.worker_threads > 0) {
    owned_pool_ = std::make_unique<ThreadPool>(config.worker_threads);
    pool_ = owned_pool_.get();
  } else {
    pool_ = &SharedThreadPool();
  }
}

QueryExecutor::~QueryExecutor() {
  // A timed-out statement keeps running after its caller gave up; it still
  // references `this` (and the database), so wait it out before tearing down.
  outstanding_.Wait();
}

bool QueryExecutor::ParseCreateTableAs(const std::string& sql,
                                       std::string* name,
                                       std::string* select_sql) {
  std::istringstream in(sql);
  std::string w1, w2, ident, w4;
  in >> w1 >> w2 >> ident >> w4;
  if (!EqualsIgnoreCase(w1, "CREATE") || !EqualsIgnoreCase(w2, "TABLE") ||
      ident.empty() || !EqualsIgnoreCase(w4, "AS")) {
    return false;
  }
  std::string rest;
  std::getline(in, rest);
  size_t start = rest.find_first_not_of(" \t");
  if (start == std::string::npos) return false;
  *name = ident;
  *select_sql = rest.substr(start);
  return true;
}

namespace {

// First statement keyword, skipping an EXPLAIN [ANALYZE] prefix. Trailing
// semicolons are stripped so a bare "CHECKPOINT;" classifies like
// "CHECKPOINT".
std::string LeadingKeyword(const std::string& sql) {
  std::istringstream in(sql);
  std::string word;
  in >> word;
  if (EqualsIgnoreCase(word, "EXPLAIN")) {
    in >> word;
    if (EqualsIgnoreCase(word, "ANALYZE")) in >> word;
  }
  while (!word.empty() && word.back() == ';') word.pop_back();
  return word;
}

}  // namespace

bool QueryExecutor::IsAppendStatement(const std::string& sql) {
  std::string word = LeadingKeyword(sql);
  return EqualsIgnoreCase(word, "INSERT") || EqualsIgnoreCase(word, "COPY");
}

bool QueryExecutor::IsWriteStatement(const std::string& sql) {
  std::string word = LeadingKeyword(sql);
  return EqualsIgnoreCase(word, "INSERT") || EqualsIgnoreCase(word, "COPY") ||
         EqualsIgnoreCase(word, "DROP") || EqualsIgnoreCase(word, "CHECKPOINT");
}

Status QueryExecutor::Run(bool writer, std::function<Status()> fn,
                          uint64_t timeout_ms) {
  // Admission: count this statement in; if the service is already saturated,
  // bounce it with a typed, retryable error.
  if (in_flight_.fetch_add(1) >= config_.max_in_flight) {
    in_flight_.fetch_sub(1);
    ++rejected_;
    RejectedCounter().Add();
    return Status::Unavailable(
        StrFormat("server overloaded: %zu statements in flight",
                  config_.max_in_flight));
  }
  // The task slot outlives a timed-out caller, so it is shared; the caller
  // waits on the WaitGroup instead of a bespoke promise/future latch.
  struct TaskSlot {
    WaitGroup done;
    Status status = Status::OK();
  };
  auto slot = std::make_shared<TaskSlot>();
  slot->done.Add();
  outstanding_.Add();
  InFlightGauge().Add(1);
  bool submitted = pool_->Submit([this, writer, fn = std::move(fn), slot] {
    Status st;
    if (writer) {
      std::unique_lock<std::shared_mutex> lock(table_lock_);
      st = fn();
    } else {
      std::shared_lock<std::shared_mutex> lock(table_lock_);
      st = fn();
    }
    ++executed_;
    ExecutedCounter().Add();
    in_flight_.fetch_sub(1);
    InFlightGauge().Add(-1);
    slot->status = std::move(st);
    slot->done.Done();
    outstanding_.Done();
  });
  if (!submitted) {
    in_flight_.fetch_sub(1);
    InFlightGauge().Add(-1);
    outstanding_.Done();
    return Status::Unavailable("server shutting down");
  }
  if (timeout_ms == 0) {
    slot->done.Wait();
    return std::move(slot->status);
  }
  if (!slot->done.WaitFor(std::chrono::milliseconds(timeout_ms))) {
    ++timed_out_;
    TimedOutCounter().Add();
    return Status::Timeout(
        StrFormat("query exceeded %llu ms deadline",
                  (unsigned long long)timeout_ms));
  }
  return std::move(slot->status);
}

Result<Table> QueryExecutor::ExecuteStatement(
    const std::string& sql, const QueryOptions& options, uint64_t timeout_ms,
    std::shared_ptr<obs::QueryTrace> trace) {
  std::string name, select_sql;
  bool is_ctas = ParseCreateTableAs(sql, &name, &select_sql);
  // Appends, DROP TABLE and CHECKPOINT all dispatch to PctDatabase::Execute
  // under the exclusive lock.
  bool is_append = !is_ctas && IsWriteStatement(sql);
  // The worker may outlive a timed-out caller, so the result slot is shared —
  // and the lambda co-owns `trace` so the worker never writes into a trace the
  // caller has already dropped.
  auto out = std::make_shared<Result<Table>>(Table());
  QueryOptions opts = options;
  opts.trace = trace.get();
  Status st = Run(
      is_ctas || is_append,
      [this, out, opts, trace, name = std::move(name),
       select_sql = std::move(select_sql), sql, is_ctas, is_append,
       timeout_ms]() -> Status {
        if (is_ctas) {
          // Note: CreateTableAs runs its inner SELECT while we hold the
          // exclusive lock — correct (the new table appears atomically to
          // readers) at the cost of serializing with readers.
          PCTAGG_RETURN_IF_ERROR(db_->CreateTableAs(name, select_sql));
          *out = Table();  // empty result set
          return Status::OK();
        }
        if (is_append) {
          // Appends mutate the base table and delta-maintain its cached
          // summaries; the exclusive lock we hold is exactly the
          // writer-exclusivity AppendRows requires.
          Result<Table> r = db_->Execute(sql, opts);
          if (!r.ok()) return r.status();
          *out = std::move(r);
          return Status::OK();
        }
        Result<Table> r = RunMqoRead(sql, opts, timeout_ms);
        if (!r.ok()) return r.status();
        *out = std::move(r);
        return Status::OK();
      },
      timeout_ms);
  if (!st.ok()) return st;
  return std::move(*out);
}

namespace {

// First word (trailing semicolons stripped) is SELECT — the only statements
// the batching gate admits. EXPLAIN forms are peeled separately below.
bool IsPlainSelect(const std::string& sql) {
  std::istringstream in(sql);
  std::string word;
  in >> word;
  while (!word.empty() && word.back() == ';') word.pop_back();
  return EqualsIgnoreCase(word, "SELECT");
}

// Splits an EXPLAIN ANALYZE <select> statement; false for anything else
// (including plain EXPLAIN, which never executes and so never batches).
bool SplitExplainAnalyze(const std::string& sql, std::string* inner) {
  std::istringstream in(sql);
  std::string w1, w2;
  in >> w1 >> w2;
  if (!EqualsIgnoreCase(w1, "EXPLAIN") || !EqualsIgnoreCase(w2, "ANALYZE")) {
    return false;
  }
  std::string rest;
  std::getline(in, rest);
  size_t start = rest.find_first_not_of(" \t");
  if (start == std::string::npos) return false;
  *inner = rest.substr(start);
  return IsPlainSelect(*inner);
}

// Same single-column "plan" rendering PctDatabase uses for EXPLAIN output.
Table TextToPlanTable(const std::string& text) {
  Schema schema;
  schema.AddColumn({"plan", DataType::kString});
  Table out(schema);
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    out.mutable_column(0).AppendString(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

}  // namespace

Result<Table> QueryExecutor::RunMqoRead(const std::string& sql,
                                        const QueryOptions& opts,
                                        uint64_t timeout_ms) {
  // Anything that can't batch falls through to the ordinary solo path with
  // identical semantics and error text. Forced strategies and the OLAP
  // baseline bypass the gate because the batch executor would override the
  // forced plan; materialized execution likewise.
  if (opts.mqo == MqoMode::kOff || opts.olap_baseline ||
      opts.vpct_strategy.has_value() || opts.horizontal_strategy.has_value() ||
      opts.execution == ExecutionMode::kMaterialized) {
    return db_->Query(sql, opts);
  }
  std::string inner;
  const bool analyze = SplitExplainAnalyze(sql, &inner);
  if (!analyze) {
    if (!IsPlainSelect(sql)) return db_->Query(sql, opts);
    inner = sql;
  }
  // Per-query deadlines win over batching: a query whose timeout could be
  // eaten by the collection window executes solo.
  if (mqo_gate_.ShouldRunSolo(timeout_ms)) {
    mqo_gate_.RecordSoloEscape();
    return db_->Query(sql, opts);
  }
  Result<AnalyzedQuery> prepared = db_->PrepareQuery(inner);
  if (!prepared.ok()) return db_->Query(sql, opts);
  std::string why;
  if (!MqoSupported(*prepared, &why)) return db_->Query(sql, opts);
  Result<const Table*> fact =
      static_cast<const PctDatabase*>(db_)->catalog().GetTable(
          prepared->table_name);
  if (!fact.ok() || (*fact)->num_rows() == 0) return db_->Query(sql, opts);

  // Compatibility key + execution-context fingerprint: only queries whose
  // results depend on the same settings may share a batch.
  const bool use_cache =
      opts.use_summary_cache.value_or(db_->summary_cache_enabled());
  const std::string key =
      MqoCompatibilityKey(*prepared) +
      StrFormat("|c%d|d%zu|l%d", use_cache ? 1 : 0, opts.degree_of_parallelism,
                static_cast<int>(opts.lattice));

  MqoGate::Member member;
  member.query = &*prepared;
  member.sql = inner;
  obs::QueryTrace analyze_trace;
  member.trace = analyze ? &analyze_trace : opts.trace;
  Stopwatch timer;
  Result<Table> result = mqo_gate_.Run(
      key, member, [this, &opts](std::vector<MqoGate::Member*>& members) {
        ExecuteMqoMembers(opts, members);
      });
  if (!analyze || !result.ok()) return result;
  analyze_trace.total_ms = timer.ElapsedMillis();
  if (analyze_trace.query_class.empty()) {
    analyze_trace.query_class = QueryClassName(prepared->query_class);
  }
  return TextToPlanTable(analyze_trace.Render());
}

void QueryExecutor::ExecuteMqoMembers(const QueryOptions& opts,
                                      std::vector<MqoGate::Member*>& members) {
  auto run_solo = [this, &opts](MqoGate::Member* m) {
    QueryOptions o = opts;
    o.trace = m->trace;
    m->result = db_->Query(m->sql, o);
  };
  bool want_costs = false;
  for (MqoGate::Member* m : members) want_costs |= m->trace != nullptr;
  if (members.size() == 1 && !want_costs) {
    run_solo(members[0]);
    return;
  }
  std::vector<const AnalyzedQuery*> queries;
  queries.reserve(members.size());
  for (MqoGate::Member* m : members) queries.push_back(m->query);
  Result<MqoBatchPlan> plan = PlanMqoBatch(queries);
  Result<const Table*> fact =
      plan.ok() ? static_cast<const PctDatabase*>(db_)->catalog().GetTable(
                      plan->table)
                : Result<const Table*>(plan.status());
  if (!plan.ok() || !fact.ok()) {
    for (MqoGate::Member* m : members) run_solo(m);
    return;
  }

  ScopedParallelism parallelism(opts.degree_of_parallelism);
  const size_t dop = CurrentDop();

  // Price batch vs N independent fused scans; EXPLAIN ANALYZE and SET trace
  // render both candidates. kAuto lets the model decide; kOn always batches
  // when >= 2 members made it this far.
  bool batch_it = members.size() >= 2;
  CostModel model;
  Result<FactStats> stats =
      model.EstimateStats(**fact, plan->scan_cols, {}, {});
  if (stats.ok()) {
    stats->dop = static_cast<double>(dop);
    const double batch_cost = model.MqoBatchCost(
        *stats, static_cast<double>(members.size()),
        static_cast<double>(plan->scan_partials.size()));
    const double solo_cost =
        static_cast<double>(members.size()) * model.FusedVpctCost(*stats);
    if (opts.mqo == MqoMode::kAuto && batch_it) batch_it = batch_cost <= solo_cost;
    for (MqoGate::Member* m : members) {
      if (m->trace == nullptr) continue;
      m->trace->predicted_costs.push_back(
          {StrFormat("mqo-batch (%zu queries, %zu shared partials)",
                     members.size(), plan->scan_partials.size()),
           batch_cost, batch_it});
      m->trace->predicted_costs.push_back(
          {StrFormat("solo fused scans (x%zu)", members.size()), solo_cost,
           !batch_it});
    }
  }
  if (!batch_it) {
    for (MqoGate::Member* m : members) run_solo(m);
    return;
  }

  const bool use_cache =
      opts.use_summary_cache.value_or(db_->summary_cache_enabled());
  SummaryCache* summaries = use_cache ? &db_->summaries() : nullptr;
  std::vector<obs::QueryTrace*> traces;
  traces.reserve(members.size());
  for (MqoGate::Member* m : members) traces.push_back(m->trace);
  MqoBatchStats bstats;
  Result<std::vector<Table>> results =
      ExecuteMqoBatch(*plan, **fact, summaries, traces, dop, &bstats);
  if (!results.ok()) {
    // A batch-level failure (e.g. a mid-flight DROP) re-runs every member
    // solo so each gets its own precise error or result.
    for (MqoGate::Member* m : members) run_solo(m);
    return;
  }
  mqo_gate_.RecordScanRowsSaved(
      static_cast<uint64_t>((*fact)->num_rows()) *
      static_cast<uint64_t>(members.size() - 1));
  for (size_t i = 0; i < members.size(); ++i) {
    members[i]->result = std::move((*results)[i]);
  }
}

Status QueryExecutor::ExecuteWrite(std::function<Status()> fn,
                                   uint64_t timeout_ms) {
  return Run(/*writer=*/true, std::move(fn), timeout_ms);
}

Status QueryExecutor::ExecuteRead(std::function<Status()> fn,
                                  uint64_t timeout_ms) {
  return Run(/*writer=*/false, std::move(fn), timeout_ms);
}

}  // namespace pctagg
