#ifndef PCTAGG_SERVER_DIST_ROUTER_H_
#define PCTAGG_SERVER_DIST_ROUTER_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "core/database.h"
#include "engine/table.h"
#include "obs/trace.h"

namespace pctagg {

// Routing hook between the server and the distributed coordinator
// (src/dist/coordinator.h, docs/SHARDING.md). The server owns the protocol
// and sessions; the coordinator owns shard topology and scatter/gather
// execution. This interface is what keeps the dependency one-directional:
// pctagg_dist links pctagg_server, never the reverse.
//
// A server with a router consults it before running any statement: tables
// the router claims (sharded tables) execute remotely; everything else runs
// on the local database as usual. Implementations must be safe to call from
// many connection-handler threads at once.
class DistRouter {
 public:
  virtual ~DistRouter() = default;

  // True when `table` (case-insensitive) is sharded across workers.
  virtual bool Routes(const std::string& table) const = 0;

  // Executes `sql` distributed if its target table is sharded. Returns
  // nullopt when the statement targets no sharded table (caller runs it
  // locally); a table result when the router handled it; an error when the
  // statement targets a sharded table but cannot run distributed (e.g.
  // INSERT, or a non-distributive aggregate). `trace` may be null.
  virtual Result<std::optional<Table>> MaybeExecute(
      const std::string& sql, const QueryOptions& options,
      obs::QueryTrace* trace) = 0;

  // Hash-partitions local base table `table` on `key_column` across the
  // workers, leaving a zero-row schema stub locally (the SHARD verb).
  virtual Status ShardTable(const std::string& table,
                            const std::string& key_column) = 0;

  // One-line topology description for server observability (STATS).
  virtual std::string Describe() const = 0;
};

}  // namespace pctagg

#endif  // PCTAGG_SERVER_DIST_ROUTER_H_
