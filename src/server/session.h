#ifndef PCTAGG_SERVER_SESSION_H_
#define PCTAGG_SERVER_SESSION_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "core/database.h"

namespace pctagg {

// Per-connection session state: strategy overrides, cache toggle, query
// timeout and running counters. A Session is owned by exactly one connection
// thread, so it needs no locking of its own; everything it influences is
// passed per-call into the (thread-safe) executor.
class Session {
 public:
  Session(uint64_t id, uint64_t default_timeout_ms)
      : id_(id),
        default_timeout_ms_(default_timeout_ms),
        timeout_ms_(default_timeout_ms) {}

  uint64_t id() const { return id_; }

  // Options applied to every statement this session runs.
  const QueryOptions& query_options() const { return options_; }

  // Per-query wall-clock budget; 0 disables the deadline.
  uint64_t timeout_ms() const { return timeout_ms_; }

  // Applies "SET <option> <value>". Options:
  //   timeout_ms <n>|default      per-query deadline (0 = none)
  //   cache on|off|default        summary-cache override for this session
  //   vpct auto|best|noindex|update|rescan
  //   horizontal auto|case|case_fv|spj|spj_fv
  //   trace on|off                append the executed-plan trace to results
  //   lattice auto|shared|per-level   grouping-set lattice strategy
  //   mqo auto|on|off             multi-query shared-scan batching
  //   append_policy auto|merge|recompute   summary maintenance for INSERT/COPY
  // (SET summary_cache_mb is database-wide and handled by the server.)
  // Returns a human-readable confirmation.
  Result<std::string> ApplySet(const std::string& args);

  // When on, every statement response carries the serialized QueryTrace
  // after the CSV body (separated by a "-- trace\n" line).
  bool trace_enabled() const { return trace_; }

  // One line per setting, for SHOW.
  std::string Describe() const;

  void RecordQuery(uint64_t micros, bool ok) {
    ++queries_;
    if (!ok) ++errors_;
    total_micros_ += micros;
  }
  uint64_t queries() const { return queries_; }
  uint64_t errors() const { return errors_; }
  uint64_t total_micros() const { return total_micros_; }

 private:
  // "auto" when degree_of_parallelism is 0, the number otherwise.
  std::string DescribeDop() const;

  uint64_t id_;
  uint64_t default_timeout_ms_;
  uint64_t timeout_ms_;
  QueryOptions options_;
  std::string vpct_name_ = "auto";
  std::string horizontal_name_ = "auto";
  std::string exec_name_ = "auto";
  std::string lattice_name_ = "auto";
  std::string mqo_name_ = "auto";
  std::string append_policy_name_ = "auto";
  bool trace_ = false;
  uint64_t queries_ = 0;
  uint64_t errors_ = 0;
  uint64_t total_micros_ = 0;
};

}  // namespace pctagg

#endif  // PCTAGG_SERVER_SESSION_H_
