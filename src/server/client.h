#ifndef PCTAGG_SERVER_CLIENT_H_
#define PCTAGG_SERVER_CLIENT_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "server/protocol.h"

namespace pctagg {

// Client side of PctProtocol: one blocking TCP connection, one outstanding
// request at a time. Used by tools/pctagg_client, the shell's .remote mode
// and the server-throughput benchmark.
//
// A Call() that returns ok() carries the *server's* answer, which may itself
// be a typed error (response.status); a non-ok Result means the transport
// failed and the connection should be abandoned.
class PctClient {
 public:
  PctClient() = default;
  ~PctClient() { Close(); }

  PctClient(PctClient&& other) noexcept { *this = std::move(other); }
  PctClient& operator=(PctClient&& other) noexcept;
  PctClient(const PctClient&) = delete;
  PctClient& operator=(const PctClient&) = delete;

  // `host` is an IPv4 literal or name resolvable via getaddrinfo.
  static Result<PctClient> Connect(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  Result<WireResponse> Call(RequestVerb verb, const std::string& payload);

  Result<WireResponse> Query(const std::string& sql) {
    return Call(RequestVerb::kQuery, sql);
  }
  Result<WireResponse> Explain(const std::string& sql) {
    return Call(RequestVerb::kExplain, sql);
  }
  Result<WireResponse> Ping() { return Call(RequestVerb::kPing, ""); }
  // Prometheus text dump of the server's process-wide metrics.
  Result<WireResponse> Stats() { return Call(RequestVerb::kStats, ""); }

 private:
  explicit PctClient(int fd)
      : fd_(fd), reader_(std::make_unique<LineReader>(fd)) {}

  int fd_ = -1;
  std::unique_ptr<LineReader> reader_;
};

}  // namespace pctagg

#endif  // PCTAGG_SERVER_CLIENT_H_
