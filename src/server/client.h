#ifndef PCTAGG_SERVER_CLIENT_H_
#define PCTAGG_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "server/protocol.h"

namespace pctagg {

// Connection establishment policy. The defaults are the historical behavior:
// one attempt, blocking connect, no socket deadlines. The coordinator's
// worker links turn all three knobs on (docs/SHARDING.md): a refused or
// unreachable worker is retried with bounded exponential backoff instead of
// surfacing a hard error on the first RST.
struct ConnectOptions {
  // Total dial attempts (>= 1). Between attempts the dialer sleeps
  // backoff_initial_ms, doubling up to backoff_max_ms.
  int attempts = 1;
  uint64_t backoff_initial_ms = 50;
  uint64_t backoff_max_ms = 2000;
  // Per-attempt connect deadline (non-blocking connect + poll); 0 keeps the
  // OS default blocking connect.
  uint64_t attempt_timeout_ms = 0;
  // SO_RCVTIMEO/SO_SNDTIMEO on the established socket, so a hung peer turns
  // into a typed kTimeout instead of a stuck thread; 0 = no deadline.
  uint64_t io_timeout_ms = 0;
};

// Client side of PctProtocol: one blocking TCP connection, one outstanding
// request at a time. Used by tools/pctagg_client, the shell's .remote mode,
// the server-throughput benchmark, and the distributed coordinator's
// persistent worker links.
//
// A Call() that returns ok() carries the *server's* answer, which may itself
// be a typed error (response.status); a non-ok Result means the transport
// failed and the connection should be abandoned (or Reconnect()ed).
class PctClient {
 public:
  PctClient() = default;
  ~PctClient() { Close(); }

  PctClient(PctClient&& other) noexcept { *this = std::move(other); }
  PctClient& operator=(PctClient&& other) noexcept;
  PctClient(const PctClient&) = delete;
  PctClient& operator=(const PctClient&) = delete;

  // `host` is an IPv4 literal or name resolvable via getaddrinfo.
  static Result<PctClient> Connect(const std::string& host, int port);
  static Result<PctClient> Connect(const std::string& host, int port,
                                   const ConnectOptions& options);

  // Re-dials the remembered endpoint with the remembered ConnectOptions
  // (including backoff), replacing the current socket.
  Status Reconnect();

  bool connected() const { return fd_ >= 0; }
  void Close();

  Result<WireResponse> Call(RequestVerb verb, const std::string& payload);

  // Call() that survives transport failures: on a transport error (broken
  // pipe, refused reconnect, socket timeout) it re-dials the endpoint with
  // backoff and resends, up to `attempts` total sends. Only safe for
  // idempotent requests — the server may have executed a request whose
  // response was lost. A server-reported ERR is returned as-is, never
  // retried. Returns the number of resends performed via `*retries` when
  // non-null.
  Result<WireResponse> CallWithRetry(RequestVerb verb,
                                     const std::string& payload, int attempts,
                                     int* retries = nullptr);

  // SHARDDATA — the one verb with a request body: sends the header line plus
  // `bytes` raw (serde-encoded table) bytes, then reads a normal response.
  Result<WireResponse> ShardData(const std::string& table,
                                 const std::string& bytes);

  Result<WireResponse> Query(const std::string& sql) {
    return Call(RequestVerb::kQuery, sql);
  }
  Result<WireResponse> Explain(const std::string& sql) {
    return Call(RequestVerb::kExplain, sql);
  }
  Result<WireResponse> Ping() { return Call(RequestVerb::kPing, ""); }
  // Prometheus text dump of the server's process-wide metrics.
  Result<WireResponse> Stats() { return Call(RequestVerb::kStats, ""); }

 private:
  explicit PctClient(int fd)
      : fd_(fd), reader_(std::make_unique<LineReader>(fd)) {}

  // One dial attempt (no retry loop).
  static Result<int> DialOnce(const std::string& host, int port,
                              uint64_t attempt_timeout_ms);
  Result<WireResponse> ReadResponse();

  int fd_ = -1;
  std::unique_ptr<LineReader> reader_;
  // Endpoint + policy remembered for Reconnect()/CallWithRetry().
  std::string host_;
  int port_ = 0;
  ConnectOptions options_;
};

}  // namespace pctagg

#endif  // PCTAGG_SERVER_CLIENT_H_
