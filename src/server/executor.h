#ifndef PCTAGG_SERVER_EXECUTOR_H_
#define PCTAGG_SERVER_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/database.h"
#include "server/mqo_gate.h"

namespace pctagg {

struct ExecutorConfig {
  // Worker threads running queries; 0 = use the process-wide
  // SharedThreadPool() (hardware_concurrency, min 2), which the engine's
  // morsel dispatcher also draws from, so one pool bounds total parallelism.
  // A nonzero value gives this executor a private pool of that size.
  size_t worker_threads = 0;
  // Admission limit: statements submitted but not yet finished (running or
  // queued). Beyond this, new statements are rejected with kUnavailable so
  // overload degrades into fast typed errors instead of an unbounded pile-up.
  size_t max_in_flight = 64;
  // Multi-query batching gate (server/mqo_gate.h; SET mqo): leader collection
  // window and early-close batch size. Batch members occupy pool threads
  // while parked, so mqo_max_batch should not exceed the pool size.
  uint64_t mqo_window_ms = 2;
  size_t mqo_max_batch = 16;
};

// Runs statements against one shared PctDatabase with reader/writer
// discipline: queries (SELECT) run concurrently under a shared lock, DDL
// (CREATE TABLE AS, GEN, DROP, .load) takes the lock exclusively, so a
// writer can never swap a table out from under a running scan. Everything
// below the lock — catalog registry, temp tables, summary cache — is already
// internally synchronized (see PctDatabase::Query).
//
// Each statement is submitted to a ThreadPool and the calling (connection)
// thread waits on the result with a wall-clock deadline. On timeout the
// caller gets kTimeout immediately; the worker finishes in the background
// and its result is discarded (the engine has no cancellation points), still
// occupying an in-flight slot until it completes — which is exactly what the
// admission limit should count.
class QueryExecutor {
 public:
  QueryExecutor(PctDatabase* db, ExecutorConfig config);
  ~QueryExecutor();  // waits for every submitted statement to finish

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  // Classifies and runs one SQL statement: "CREATE TABLE <t> AS <select>",
  // INSERT and COPY ... (APPEND) — including their EXPLAIN [ANALYZE] forms —
  // go down the exclusive path, everything else is a read. `timeout_ms` of
  // 0 means no deadline. A non-null `trace` collects the executed-plan trace
  // (SET trace on); it is shared because a timed-out statement keeps running
  // in the background and must not write into a freed trace.
  Result<Table> ExecuteStatement(const std::string& sql,
                                 const QueryOptions& options,
                                 uint64_t timeout_ms,
                                 std::shared_ptr<obs::QueryTrace> trace =
                                     nullptr);

  // Runs `fn` under the exclusive (writer) lock through the same
  // admission/timeout machinery. For catalog mutations that are not SQL:
  // GEN, DROP, .load.
  Status ExecuteWrite(std::function<Status()> fn, uint64_t timeout_ms);

  // Runs `fn` under the shared (reader) lock: EXPLAIN, TABLES, SCHEMA.
  Status ExecuteRead(std::function<Status()> fn, uint64_t timeout_ms);

  // True (and outputs the pieces) if `sql` is CREATE TABLE <name> AS <select>.
  static bool ParseCreateTableAs(const std::string& sql, std::string* name,
                                 std::string* select_sql);

  // True if `sql` is an INSERT or COPY statement (optionally wrapped in
  // EXPLAIN [ANALYZE]) — these mutate the catalog, so they run under the
  // exclusive lock and are dispatched to PctDatabase::Execute.
  static bool IsAppendStatement(const std::string& sql);

  // Superset of IsAppendStatement: also DROP TABLE and CHECKPOINT, which
  // likewise need the exclusive lock (drop swaps the catalog; checkpoint
  // serializes every base table to segments and must see them quiescent).
  static bool IsWriteStatement(const std::string& sql);

  const ExecutorConfig& config() const { return config_; }
  // The multi-query batching gate (SHOW renders its Describe() line).
  const MqoGate& mqo_gate() const { return mqo_gate_; }
  size_t worker_threads() const { return pool_->num_threads(); }
  // Tasks waiting in the pool's queue right now (STATS gauge).
  size_t pool_queue_depth() const { return pool_->queued(); }
  size_t in_flight() const { return in_flight_.load(); }
  uint64_t executed() const { return executed_.load(); }
  uint64_t rejected() const { return rejected_.load(); }
  uint64_t timed_out() const { return timed_out_.load(); }

 private:
  // The shared core: admission check, submit, bounded wait.
  Status Run(bool writer, std::function<Status()> fn, uint64_t timeout_ms);

  // The read path of ExecuteStatement, running on a pool worker under the
  // shared lock: routes eligible plain SELECTs (and their EXPLAIN ANALYZE
  // forms) through the MQO batching gate; everything else — and every
  // fallback — is the ordinary solo db_->Query with identical semantics.
  Result<Table> RunMqoRead(const std::string& sql, const QueryOptions& opts,
                           uint64_t timeout_ms);

  // Batch leader body: plans and executes one closed batch (or falls back to
  // per-member solo execution when planning fails, the batch is a singleton,
  // or the cost model prefers solo under SET mqo auto).
  void ExecuteMqoMembers(const QueryOptions& opts,
                         std::vector<MqoGate::Member*>& members);

  PctDatabase* db_;
  ExecutorConfig config_;
  MqoGate mqo_gate_;
  std::shared_mutex table_lock_;
  std::atomic<size_t> in_flight_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> timed_out_{0};
  // Tracks statements handed to the pool but not yet finished, so the
  // destructor can wait for them even when the pool is the shared one (which
  // outlives this executor and therefore can't be drained by joining it).
  WaitGroup outstanding_;
  std::unique_ptr<ThreadPool> owned_pool_;  // only when worker_threads > 0
  ThreadPool* pool_;
};

}  // namespace pctagg

#endif  // PCTAGG_SERVER_EXECUTOR_H_
