#include "server/protocol.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/string_util.h"

namespace pctagg {

namespace {

struct VerbEntry {
  const char* name;
  RequestVerb verb;
};

constexpr std::array<VerbEntry, 17> kVerbs = {{
    {"QUERY", RequestVerb::kQuery},
    {"APPEND", RequestVerb::kAppend},
    {"EXPLAIN", RequestVerb::kExplain},
    {"OLAP", RequestVerb::kOlap},
    {"SET", RequestVerb::kSet},
    {"SHOW", RequestVerb::kShow},
    {"TABLES", RequestVerb::kTables},
    {"SCHEMA", RequestVerb::kSchema},
    {"GEN", RequestVerb::kGen},
    {"DROP", RequestVerb::kDrop},
    {"CHECKPOINT", RequestVerb::kCheckpoint},
    {"STATS", RequestVerb::kStats},
    {"PING", RequestVerb::kPing},
    {"QUIT", RequestVerb::kQuit},
    {"SHARD", RequestVerb::kShard},
    {"PARTIAL", RequestVerb::kPartial},
    {"SHARDDATA", RequestVerb::kShardData},
}};

}  // namespace

const char* VerbName(RequestVerb verb) {
  for (const VerbEntry& e : kVerbs) {
    if (e.verb == verb) return e.name;
  }
  return "UNKNOWN";
}

std::string EscapeLine(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeLine(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out.push_back(s[i]);
      continue;
    }
    switch (s[++i]) {
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      default:
        out.push_back(s[i]);
    }
  }
  return out;
}

std::string EncodeRequest(const WireRequest& request) {
  std::string line = VerbName(request.verb);
  if (!request.payload.empty()) {
    line.push_back(' ');
    line += EscapeLine(request.payload);
  }
  line.push_back('\n');
  return line;
}

Result<WireRequest> DecodeRequestLine(const std::string& line) {
  if (line.size() > kMaxLineBytes) {
    return Status::InvalidArgument("protocol: request frame too long");
  }
  size_t sp = line.find(' ');
  std::string word = line.substr(0, sp);
  if (word.empty()) {
    return Status::InvalidArgument("protocol: empty request frame");
  }
  std::string upper;
  for (char c : word) upper.push_back(static_cast<char>(std::toupper(c)));
  for (const VerbEntry& e : kVerbs) {
    if (upper == e.name) {
      std::string payload =
          sp == std::string::npos ? "" : line.substr(sp + 1);
      return WireRequest{e.verb, UnescapeLine(payload)};
    }
  }
  return Status::InvalidArgument("protocol: unknown verb: " + word);
}

std::string EncodeResponse(const WireResponse& response) {
  if (!response.status.ok()) {
    std::string line = "ERR ";
    line += StatusCodeName(response.status.code());
    line.push_back(' ');
    line += EscapeLine(response.status.message());
    line.push_back('\n');
    return line;
  }
  std::string out = StrFormat("OK %zu %llu %llu %llu\n", response.body.size(),
                              (unsigned long long)response.rows,
                              (unsigned long long)response.cols,
                              (unsigned long long)response.micros);
  out += response.body;
  return out;
}

StatusCode StatusCodeFromName(const std::string& name) {
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kAnalysisError, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kTypeMismatch,
        StatusCode::kLimitExceeded, StatusCode::kTimeout,
        StatusCode::kUnavailable, StatusCode::kInternal,
        StatusCode::kDataLoss}) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

Result<WireResponse> DecodeResponseHeader(const std::string& line,
                                          size_t* body_bytes) {
  *body_bytes = 0;
  std::vector<std::string> words;
  {
    size_t start = 0;
    // Split on the first 4 spaces only: the ERR message may contain spaces.
    while (words.size() < 4 && start <= line.size()) {
      size_t sp = line.find(' ', start);
      if (sp == std::string::npos) {
        words.push_back(line.substr(start));
        start = line.size() + 1;
      } else {
        words.push_back(line.substr(start, sp - start));
        start = sp + 1;
      }
    }
    if (start <= line.size()) words.push_back(line.substr(start));
  }
  if (words.empty()) {
    return Status::Internal("protocol: empty response header");
  }
  if (words[0] == "ERR") {
    if (words.size() < 2) {
      return Status::Internal("protocol: truncated error header");
    }
    std::string message;
    for (size_t i = 2; i < words.size(); ++i) {
      if (i > 2) message.push_back(' ');
      message += words[i];
    }
    WireResponse resp;
    resp.status = Status(StatusCodeFromName(words[1]), UnescapeLine(message));
    return resp;
  }
  if (words[0] != "OK" || words.size() < 5) {
    return Status::Internal("protocol: malformed response header: " + line);
  }
  for (size_t i = 1; i < 5; ++i) {
    if (!IsInteger(words[i])) {
      return Status::Internal("protocol: malformed response header: " + line);
    }
  }
  size_t nbytes = static_cast<size_t>(std::strtoull(words[1].c_str(), nullptr, 10));
  if (nbytes > kMaxBodyBytes) {
    return Status::Internal("protocol: response body too large");
  }
  WireResponse resp;
  resp.rows = std::strtoull(words[2].c_str(), nullptr, 10);
  resp.cols = std::strtoull(words[3].c_str(), nullptr, 10);
  resp.micros = std::strtoull(words[4].c_str(), nullptr, 10);
  *body_bytes = nbytes;
  return resp;
}

Status LineReader::Fill() {
  char chunk[4096];
  ssize_t n;
  do {
    n = ::recv(fd_, chunk, sizeof(chunk), 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    // SO_RCVTIMEO expiry: surface the socket deadline as a typed timeout so
    // retry policies can tell a hung peer from a protocol bug.
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status(StatusCode::kTimeout, "recv: timed out");
    }
    return Status::Internal(std::string("recv: ") + std::strerror(errno));
  }
  if (n == 0) {
    return Status::NotFound("connection closed");
  }
  buf_.append(chunk, static_cast<size_t>(n));
  return Status::OK();
}

Result<std::string> LineReader::ReadLine() {
  for (;;) {
    size_t nl = buf_.find('\n', pos_);
    if (nl != std::string::npos) {
      std::string line = buf_.substr(pos_, nl - pos_);
      pos_ = nl + 1;
      if (pos_ > (1 << 16)) {  // compact the consumed prefix
        buf_.erase(0, pos_);
        pos_ = 0;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (buf_.size() - pos_ > kMaxLineBytes) {
      return Status::InvalidArgument("protocol: request frame too long");
    }
    PCTAGG_RETURN_IF_ERROR(Fill());
  }
}

Result<std::string> LineReader::ReadBytes(size_t n) {
  while (buf_.size() - pos_ < n) {
    PCTAGG_RETURN_IF_ERROR(Fill());
  }
  std::string out = buf_.substr(pos_, n);
  pos_ += n;
  if (pos_ > (1 << 16)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return out;
}

Status WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace pctagg
