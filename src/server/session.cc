#include "server/session.h"

#include <sstream>

#include "common/string_util.h"

namespace pctagg {

namespace {

Result<VpctStrategy> VpctStrategyByName(const std::string& name) {
  VpctStrategy s;  // defaults = the paper's best strategy
  if (name == "best") return s;
  if (name == "noindex") {
    s.matching_indexes = false;
    return s;
  }
  if (name == "update") {
    s.insert_result = false;
    return s;
  }
  if (name == "rescan") {
    s.fj_from_fk = false;
    return s;
  }
  return Status::InvalidArgument(
      "SET vpct: expected auto|best|noindex|update|rescan, got " + name);
}

Result<HorizontalStrategy> HorizontalStrategyByName(const std::string& name) {
  HorizontalStrategy s;
  if (name == "case") {
    s.method = HorizontalMethod::kCaseDirect;
    return s;
  }
  if (name == "case_fv") {
    s.method = HorizontalMethod::kCaseFromFV;
    return s;
  }
  if (name == "spj") {
    s.method = HorizontalMethod::kSpjDirect;
    return s;
  }
  if (name == "spj_fv") {
    s.method = HorizontalMethod::kSpjFromFV;
    return s;
  }
  return Status::InvalidArgument(
      "SET horizontal: expected auto|case|case_fv|spj|spj_fv, got " + name);
}

}  // namespace

Result<std::string> Session::ApplySet(const std::string& args) {
  std::istringstream in(args);
  std::string option, value;
  in >> option >> value;
  option = ToLower(option);
  value = ToLower(value);
  if (option.empty() || value.empty()) {
    return Status::InvalidArgument("SET expects: SET <option> <value>");
  }
  if (option == "timeout_ms") {
    if (value == "default") {
      timeout_ms_ = default_timeout_ms_;
    } else if (IsInteger(value)) {
      timeout_ms_ = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      return Status::InvalidArgument("SET timeout_ms expects an integer or 'default'");
    }
    return "timeout_ms = " + std::to_string(timeout_ms_);
  }
  if (option == "cache") {
    if (value == "on") {
      options_.use_summary_cache = true;
    } else if (value == "off") {
      options_.use_summary_cache = false;
    } else if (value == "default") {
      options_.use_summary_cache.reset();
    } else {
      return Status::InvalidArgument("SET cache expects on|off|default");
    }
    return "cache = " + value;
  }
  if (option == "vpct") {
    if (value == "auto") {
      options_.vpct_strategy.reset();
    } else {
      PCTAGG_ASSIGN_OR_RETURN(VpctStrategy s, VpctStrategyByName(value));
      options_.vpct_strategy = s;
    }
    vpct_name_ = value;
    return "vpct = " + value;
  }
  if (option == "dop") {
    // Degree of parallelism for engine kernels: 1 = serial, 'auto' = the
    // shared worker pool's size, n = up to n workers (capped to keep a typo
    // from requesting thousands of morsel helpers).
    constexpr size_t kMaxDop = 64;
    if (value == "default") {
      options_.degree_of_parallelism = 1;
    } else if (value == "auto") {
      options_.degree_of_parallelism = 0;
    } else if (IsInteger(value)) {
      size_t dop = std::strtoull(value.c_str(), nullptr, 10);
      if (dop < 1 || dop > kMaxDop) {
        return Status::InvalidArgument("SET dop expects 1..64");
      }
      options_.degree_of_parallelism = dop;
    } else {
      return Status::InvalidArgument(
          "SET dop expects an integer, 'auto' or 'default'");
    }
    return "dop = " + DescribeDop();
  }
  if (option == "trace") {
    if (value == "on") {
      trace_ = true;
    } else if (value == "off" || value == "default") {
      trace_ = false;
    } else {
      return Status::InvalidArgument("SET trace expects on|off");
    }
    return std::string("trace = ") + (trace_ ? "on" : "off");
  }
  if (option == "horizontal") {
    if (value == "auto") {
      options_.horizontal_strategy.reset();
    } else {
      PCTAGG_ASSIGN_OR_RETURN(HorizontalStrategy s,
                              HorizontalStrategyByName(value));
      options_.horizontal_strategy = s;
    }
    horizontal_name_ = value;
    return "horizontal = " + value;
  }
  if (option == "exec") {
    // Fused-pipeline dispatch: auto = cost-model advisor, fused = force the
    // push-based pipeline on supported shapes, materialized = always the
    // multi-statement plans.
    if (value == "auto" || value == "default") {
      options_.execution = ExecutionMode::kAuto;
      exec_name_ = "auto";
    } else if (value == "fused") {
      options_.execution = ExecutionMode::kFused;
      exec_name_ = value;
    } else if (value == "materialized") {
      options_.execution = ExecutionMode::kMaterialized;
      exec_name_ = value;
    } else {
      return Status::InvalidArgument(
          "SET exec expects auto|fused|materialized");
    }
    return "exec = " + exec_name_;
  }
  if (option == "lattice") {
    // Grouping-set lattice strategy: auto = cost-model advisor, shared = one
    // fused scan feeding every level, per-level = recompute each level.
    if (value == "auto" || value == "default") {
      options_.lattice = LatticeMode::kAuto;
      lattice_name_ = "auto";
    } else if (value == "shared") {
      options_.lattice = LatticeMode::kShared;
      lattice_name_ = value;
    } else if (value == "per-level" || value == "per_level") {
      options_.lattice = LatticeMode::kPerLevel;
      lattice_name_ = "per-level";
    } else {
      return Status::InvalidArgument(
          "SET lattice expects auto|shared|per-level");
    }
    return "lattice = " + lattice_name_;
  }
  if (option == "mqo") {
    // Multi-query shared-scan batching: auto = cost-model decision per
    // batch, on = always batch compatible queries, off = never batch.
    if (value == "auto" || value == "default") {
      options_.mqo = MqoMode::kAuto;
      mqo_name_ = "auto";
    } else if (value == "on") {
      options_.mqo = MqoMode::kOn;
      mqo_name_ = value;
    } else if (value == "off") {
      options_.mqo = MqoMode::kOff;
      mqo_name_ = value;
    } else {
      return Status::InvalidArgument("SET mqo expects auto|on|off");
    }
    return "mqo = " + mqo_name_;
  }
  if (option == "append_policy") {
    if (value == "auto" || value == "default") {
      options_.append_policy = AppendPolicy::kAuto;
      append_policy_name_ = "auto";
    } else if (value == "merge") {
      options_.append_policy = AppendPolicy::kMerge;
      append_policy_name_ = value;
    } else if (value == "recompute") {
      options_.append_policy = AppendPolicy::kRecompute;
      append_policy_name_ = value;
    } else {
      return Status::InvalidArgument(
          "SET append_policy expects auto|merge|recompute");
    }
    return "append_policy = " + append_policy_name_;
  }
  return Status::InvalidArgument("SET: unknown option: " + option);
}

std::string Session::Describe() const {
  std::string cache = "default";
  if (options_.use_summary_cache.has_value()) {
    cache = *options_.use_summary_cache ? "on" : "off";
  }
  return StrFormat(
      "session %llu\n"
      "timeout_ms = %llu\n"
      "cache = %s\n"
      "vpct = %s\n"
      "horizontal = %s\n"
      "exec = %s\n"
      "lattice = %s\n"
      "mqo = %s\n"
      "dop = %s\n"
      "trace = %s\n"
      "append_policy = %s\n"
      "queries = %llu (%llu errors, %.3f ms total)\n",
      (unsigned long long)id_, (unsigned long long)timeout_ms_, cache.c_str(),
      vpct_name_.c_str(), horizontal_name_.c_str(), exec_name_.c_str(),
      lattice_name_.c_str(), mqo_name_.c_str(), DescribeDop().c_str(),
      trace_ ? "on" : "off", append_policy_name_.c_str(),
      (unsigned long long)queries_, (unsigned long long)errors_,
      static_cast<double>(total_micros_) / 1000.0);
}

std::string Session::DescribeDop() const {
  if (options_.degree_of_parallelism == 0) return "auto";
  return std::to_string(options_.degree_of_parallelism);
}

}  // namespace pctagg
