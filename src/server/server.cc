#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "engine/csv.h"
#include "obs/metrics.h"
#include "sql/parser.h"
#include "storage/serde.h"
#include "workload/generators.h"

namespace pctagg {

namespace {

obs::Counter& SessionsOpenedCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_server_sessions_opened_total",
      "Connections accepted over the server's lifetime.");
  return c;
}

obs::Histogram& QueryLatencyHistogram() {
  static obs::Histogram& h = obs::GlobalMetrics().GetHistogram(
      "pctagg_server_query_latency_micros",
      "Wall-clock statement latency as seen by the connection thread.");
  return h;
}

// Builds a synthetic workload table; kinds mirror the shell's .gen command.
Result<Table> GenerateWorkload(const std::string& kind, size_t rows) {
  std::string k = ToLower(kind);
  if (k == "employee") return GenerateEmployee(rows);
  if (k == "sales") return GenerateSales(rows);
  if (k == "transactionline") return GenerateTransactionLine(rows);
  if (k == "census") return GenerateCensusLike(rows);
  return Status::InvalidArgument(
      "GEN: unknown kind (employee|sales|transactionline|census): " + kind);
}

}  // namespace

PctServer::PctServer(PctDatabase* db, ServerConfig config)
    : db_(db),
      config_(std::move(config)),
      executor_(db, ExecutorConfig{config_.worker_threads,
                                   config_.max_in_flight,
                                   config_.mqo_window_ms,
                                   config_.mqo_max_batch}) {}

PctServer::~PctServer() { Stop(); }

Status PctServer::Start() {
  if (listen_fd_ >= 0) return Status::AlreadyExists("server already started");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address: " + config_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st(StatusCode::kUnavailable,
              std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, config_.listen_backlog) < 0) {
    Status st(StatusCode::kUnavailable,
              std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void PctServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true);
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Joining outside the lock: handlers remove themselves from open_fds_.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  listen_fd_ = -1;
}

size_t PctServer::sessions_active() const {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  return open_fds_.size();
}

void PctServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Stop) or fatal error
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mutex_);
    open_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void PctServer::HandleConnection(int fd) {
  ++sessions_opened_;
  SessionsOpenedCounter().Add();
  Session session(next_session_id_.fetch_add(1), config_.default_timeout_ms);
  LineReader reader(fd);
  bool quit = false;
  while (!quit && !stopping_.load()) {
    Result<std::string> line = reader.ReadLine();
    if (!line.ok()) {
      // Clean EOF ends the session silently; a malformed over-long frame
      // gets a final typed error before hanging up.
      if (line.status().code() == StatusCode::kInvalidArgument) {
        WireResponse resp;
        resp.status = line.status();
        WriteAll(fd, EncodeResponse(resp)).ok();
      }
      break;
    }
    if (line->empty()) continue;  // ignore blank lines (keep-alive friendly)
    WireResponse resp;
    Result<WireRequest> request = DecodeRequestLine(*line);
    if (!request.ok()) {
      resp.status = request.status();
    } else if (request->verb == RequestVerb::kShardData) {
      // The one verb with a request body: the body must be read from this
      // connection's reader before anything else touches the stream.
      resp = HandleShardData(&session, *request, &reader, &quit);
    } else {
      resp = HandleRequest(&session, *request, &quit);
    }
    if (!WriteAll(fd, EncodeResponse(resp)).ok()) break;
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    open_fds_.erase(fd);
  }
  ::close(fd);
}

WireResponse PctServer::RunStatement(Session* session, const std::string& sql,
                                     bool olap_baseline) {
  WireResponse resp;
  QueryOptions options = session->query_options();
  options.olap_baseline = olap_baseline;
  // Shared so a worker that outlives a timed-out caller (see QueryExecutor)
  // still writes into live storage; only success paths read it back.
  std::shared_ptr<obs::QueryTrace> trace;
  if (session->trace_enabled()) trace = std::make_shared<obs::QueryTrace>();
  Stopwatch timer;
  Result<Table> result = Table();
  bool routed = false;
  if (config_.router != nullptr) {
    // Offer the statement to the distributed router first, under the same
    // executor admission a local statement would get: distributed SELECTs
    // only read the local stub catalog, while a routed DROP (or the
    // rejection of a write on a sharded table) takes the exclusive path.
    Result<ParsedStatement> kind = ParseStatementKind(sql);
    const bool exclusive =
        kind.ok() && (kind->kind == ParsedStatement::Kind::kDrop ||
                      kind->kind == ParsedStatement::Kind::kInsert ||
                      kind->kind == ParsedStatement::Kind::kCopy);
    // Shared with the worker lambda for the same outlive-on-timeout reason
    // as `trace` above.
    auto routed_table = std::make_shared<std::optional<Table>>();
    auto run = [router = config_.router, routed_table, sql, options,
                trace]() -> Status {
      QueryOptions opts = options;
      opts.trace = trace ? trace.get() : nullptr;
      Result<std::optional<Table>> r =
          router->MaybeExecute(sql, opts, opts.trace);
      if (!r.ok()) return r.status();
      *routed_table = std::move(*r);
      return Status::OK();
    };
    Status st = exclusive
                    ? executor_.ExecuteWrite(run, session->timeout_ms())
                    : executor_.ExecuteRead(run, session->timeout_ms());
    if (!st.ok()) {
      routed = true;
      result = st;
    } else if (routed_table->has_value()) {
      routed = true;
      result = std::move(**routed_table);
    }
  }
  if (!routed) {
    result =
        executor_.ExecuteStatement(sql, options, session->timeout_ms(), trace);
  }
  resp.micros = static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);
  QueryLatencyHistogram().Observe(resp.micros);
  session->RecordQuery(resp.micros, result.ok());
  if (!result.ok()) {
    resp.status = result.status();
    return resp;
  }
  resp.rows = result->num_rows();
  resp.cols = result->num_columns();
  if (result->num_columns() > 0) resp.body = FormatCsv(*result);
  if (trace) {
    trace->total_ms = static_cast<double>(resp.micros) / 1000.0;
    resp.body += "-- trace\n";
    resp.body += trace->Render();
  }
  return resp;
}

WireResponse PctServer::HandleShardData(Session* session,
                                        const WireRequest& request,
                                        LineReader* reader, bool* quit) {
  WireResponse resp;
  std::istringstream in(request.payload);
  std::string table, nbytes_word;
  in >> table >> nbytes_word;
  if (table.empty() || !IsInteger(nbytes_word)) {
    // The body length is unknown, so the stream cannot be resynchronized;
    // answer and hang up.
    resp.status = Status::InvalidArgument(
        "SHARDDATA expects: SHARDDATA <table> <nbytes>");
    *quit = true;
    return resp;
  }
  const uint64_t nbytes = std::strtoull(nbytes_word.c_str(), nullptr, 10);
  if (nbytes > kMaxBodyBytes) {
    resp.status = Status::LimitExceeded(
        StrFormat("SHARDDATA body of %llu bytes exceeds the %zu-byte cap",
                  (unsigned long long)nbytes, kMaxBodyBytes));
    *quit = true;
    return resp;
  }
  // Consume the body unconditionally from here on: any validation error
  // below must leave the stream positioned at the next frame line.
  Result<std::string> body = reader->ReadBytes(static_cast<size_t>(nbytes));
  if (!body.ok()) {
    resp.status = body.status();
    *quit = true;
    return resp;
  }
  storage::ByteReader bytes(*body);
  Result<Table> decoded = storage::DecodeTable(&bytes);
  if (!decoded.ok()) {
    resp.status = decoded.status();
    return resp;
  }
  const size_t rows = decoded->num_rows();
  auto shard = std::make_shared<Table>(std::move(*decoded));
  Stopwatch timer;
  Status st = executor_.ExecuteWrite(
      [this, table, shard]() -> Status {
        return db_->ReplaceTable(table, std::move(*shard));
      },
      session->timeout_ms());
  resp.micros = static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);
  if (!st.ok()) {
    resp.status = st;
  } else {
    resp.body = StrFormat("installed shard of %s: %zu rows\n", table.c_str(),
                          rows);
  }
  return resp;
}

WireResponse PctServer::HandleRequest(Session* session,
                                      const WireRequest& request, bool* quit) {
  WireResponse resp;
  switch (request.verb) {
    case RequestVerb::kQuery:
    // APPEND is a courtesy alias: the executor classifies INSERT/COPY by the
    // statement text, so writes sent via QUERY take the exclusive path too.
    case RequestVerb::kAppend:
      return RunStatement(session, request.payload, /*olap_baseline=*/false);
    case RequestVerb::kOlap:
      return RunStatement(session, request.payload, /*olap_baseline=*/true);
    case RequestVerb::kExplain: {
      // Outputs are shared with the worker: on timeout this frame returns
      // while the lambda may still be running, so it must not hold
      // references into our stack.
      auto script = std::make_shared<std::string>();
      Stopwatch timer;
      Status st = executor_.ExecuteRead(
          [this, script, sql = request.payload]() -> Status {
            Result<std::string> r = db_->Explain(sql);
            if (!r.ok()) return r.status();
            *script = std::move(r).value();
            return Status::OK();
          },
          session->timeout_ms());
      resp.micros = static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);
      if (!st.ok()) {
        resp.status = st;
      } else {
        resp.body = std::move(*script);
      }
      return resp;
    }
    case RequestVerb::kSet: {
      // summary_cache_mb is database-wide (the byte-budget LRU is shared by
      // every session), so it is handled here rather than in Session.
      {
        std::istringstream in(request.payload);
        std::string option, value;
        in >> option >> value;
        if (EqualsIgnoreCase(option, "wal_fsync")) {
          if (!db_->HasStorage()) {
            resp.status = Status::InvalidArgument(
                "SET wal_fsync: no data dir attached (start the server "
                "with --data-dir)");
            return resp;
          }
          Result<storage::FsyncPolicy> policy =
              storage::ParseFsyncPolicy(value);
          if (!policy.ok()) {
            resp.status = policy.status();
            return resp;
          }
          db_->storage()->set_fsync_policy(*policy);
          resp.body = StrFormat("wal_fsync = %s (global)\n",
                                storage::FsyncPolicyName(*policy));
          return resp;
        }
        if (EqualsIgnoreCase(option, "summary_cache_mb")) {
          if (!IsInteger(value)) {
            resp.status = Status::InvalidArgument(
                "SET summary_cache_mb expects an integer (MiB)");
            return resp;
          }
          size_t mb = static_cast<size_t>(
              std::strtoull(value.c_str(), nullptr, 10));
          db_->summaries().set_capacity_bytes(mb << 20);
          resp.body = StrFormat("summary_cache_mb = %zu (global)\n", mb);
          return resp;
        }
      }
      Result<std::string> r = session->ApplySet(request.payload);
      if (!r.ok()) {
        resp.status = r.status();
      } else {
        resp.body = *r + "\n";
      }
      return resp;
    }
    case RequestVerb::kShow: {
      resp.body = session->Describe();
      resp.body += StrFormat(
          "server: %zu workers, %zu in flight (max %zu), "
          "%llu executed, %llu rejected, %llu timed out, %zu sessions\n",
          executor_.worker_threads(), executor_.in_flight(),
          executor_.config().max_in_flight,
          (unsigned long long)executor_.executed(),
          (unsigned long long)executor_.rejected(),
          (unsigned long long)executor_.timed_out(), sessions_active());
      resp.body += "mqo: " + executor_.mqo_gate().Describe() + "\n";
      if (db_->HasStorage()) {
        const storage::StorageManager& sm = *db_->storage();
        resp.body += StrFormat(
            "storage: dir=%s wal_fsync=%s wal_bytes=%llu wal_fsyncs=%llu\n",
            sm.data_dir().c_str(), storage::FsyncPolicyName(sm.fsync_policy()),
            (unsigned long long)sm.wal_bytes_written(),
            (unsigned long long)sm.wal_fsyncs());
      } else {
        resp.body += "storage: none (in-memory only)\n";
      }
      if (config_.router != nullptr) {
        resp.body += "dist: " + config_.router->Describe() + "\n";
      }
      return resp;
    }
    case RequestVerb::kTables: {
      auto body = std::make_shared<std::string>("table,rows,columns\n");
      Status st = executor_.ExecuteRead(
          [this, body]() -> Status {
            const Catalog& catalog =
                static_cast<const PctDatabase*>(db_)->catalog();
            for (const std::string& name : catalog.TableNames()) {
              Result<const Table*> t = catalog.GetTable(name);
              if (!t.ok()) continue;
              *body += StrFormat("%s,%zu,%zu\n", name.c_str(),
                                 (*t)->num_rows(), (*t)->num_columns());
            }
            return Status::OK();
          },
          session->timeout_ms());
      if (!st.ok()) {
        resp.status = st;
      } else {
        resp.body = std::move(*body);
        resp.rows = static_cast<uint64_t>(
            std::count(resp.body.begin(), resp.body.end(), '\n') - 1);
        resp.cols = 3;
      }
      return resp;
    }
    case RequestVerb::kSchema: {
      auto body = std::make_shared<std::string>();
      Status st = executor_.ExecuteRead(
          [this, body, table = request.payload]() -> Status {
            Result<const Table*> t =
                static_cast<const PctDatabase*>(db_)->catalog().GetTable(
                    table);
            if (!t.ok()) return t.status();
            *body = table + "(" + (*t)->schema().ToString() + ")\n";
            return Status::OK();
          },
          session->timeout_ms());
      if (!st.ok()) {
        resp.status = st;
      } else {
        resp.body = std::move(*body);
      }
      return resp;
    }
    case RequestVerb::kGen: {
      std::istringstream in(request.payload);
      std::string kind, name, rows_word;
      in >> kind >> name >> rows_word;
      if (kind.empty() || name.empty() || !IsInteger(rows_word)) {
        resp.status = Status::InvalidArgument(
            "GEN expects: GEN <kind> <name> <rows>");
        return resp;
      }
      size_t rows = static_cast<size_t>(
          std::strtoull(rows_word.c_str(), nullptr, 10));
      Stopwatch timer;
      Status st = executor_.ExecuteWrite(
          [this, kind, name, rows]() -> Status {
            PCTAGG_ASSIGN_OR_RETURN(Table t, GenerateWorkload(kind, rows));
            return db_->ReplaceTable(name, std::move(t));
          },
          session->timeout_ms());
      resp.micros = static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);
      if (!st.ok()) {
        resp.status = st;
      } else {
        resp.body = StrFormat("generated %zu %s rows into %s\n", rows,
                              ToLower(kind).c_str(), name.c_str());
      }
      return resp;
    }
    case RequestVerb::kDrop: {
      // Routed through PctDatabase::DropTable so the segment file and
      // manifest entry go away with the in-memory table.
      Status st = executor_.ExecuteWrite(
          [this, table = request.payload]() -> Status {
            Result<bool> dropped = db_->DropTable(table);
            if (!dropped.ok()) return dropped.status();
            return Status::OK();
          },
          session->timeout_ms());
      if (!st.ok()) {
        resp.status = st;
      } else {
        resp.body = "dropped " + request.payload + "\n";
      }
      return resp;
    }
    case RequestVerb::kCheckpoint: {
      auto stats =
          std::make_shared<storage::StorageManager::CheckpointStats>();
      Stopwatch timer;
      Status st = executor_.ExecuteWrite(
          [this, stats]() -> Status {
            Result<storage::StorageManager::CheckpointStats> r =
                db_->Checkpoint();
            if (!r.ok()) return r.status();
            *stats = *r;
            return Status::OK();
          },
          session->timeout_ms());
      resp.micros = static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);
      if (!st.ok()) {
        resp.status = st;
      } else if (!db_->HasStorage()) {
        resp.body = "checkpoint: no data dir attached (no-op)\n";
      } else {
        resp.body = StrFormat(
            "checkpoint: %zu tables, %llu rows, %llu segment bytes, %.2f ms\n",
            stats->tables, (unsigned long long)stats->rows,
            (unsigned long long)stats->bytes, stats->ms);
      }
      return resp;
    }
    case RequestVerb::kStats: {
      // Level metrics are sampled at scrape time; the counters underneath
      // were bumped on the hot paths as they happened.
      obs::MetricsRegistry& metrics = obs::GlobalMetrics();
      metrics
          .GetGauge("pctagg_server_sessions_active",
                    "Connections currently open.")
          .Set(static_cast<int64_t>(sessions_active()));
      metrics
          .GetGauge("pctagg_server_pool_queue_depth",
                    "Statements waiting for a worker thread.")
          .Set(static_cast<int64_t>(executor_.pool_queue_depth()));
      metrics
          .GetGauge("pctagg_server_worker_threads",
                    "Worker threads serving this executor.")
          .Set(static_cast<int64_t>(executor_.worker_threads()));
      if (db_->HasStorage()) {
        const storage::StorageManager& sm = *db_->storage();
        metrics
            .GetGauge("pctagg_storage_wal_live_bytes",
                      "Bytes in the live WAL file (resets at checkpoint).")
            .Set(static_cast<int64_t>(sm.wal_bytes_written()));
        metrics
            .GetGauge("pctagg_storage_wal_live_fsyncs",
                      "fsync calls issued by the live WAL writer.")
            .Set(static_cast<int64_t>(sm.wal_fsyncs()));
      }
      resp.body = metrics.RenderPrometheus();
      return resp;
    }
    case RequestVerb::kShard: {
      std::istringstream in(request.payload);
      std::string table, column;
      in >> table >> column;
      if (table.empty() || column.empty()) {
        resp.status =
            Status::InvalidArgument("SHARD expects: SHARD <table> <column>");
        return resp;
      }
      if (config_.router == nullptr) {
        resp.status = Status::InvalidArgument(
            "SHARD: this server has no workers configured (--worker)");
        return resp;
      }
      Stopwatch timer;
      Status st = executor_.ExecuteWrite(
          [router = config_.router, table, column]() -> Status {
            return router->ShardTable(table, column);
          },
          session->timeout_ms());
      resp.micros = static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);
      if (!st.ok()) {
        resp.status = st;
      } else {
        resp.body = StrFormat("sharded %s on %s: %s\n", table.c_str(),
                              column.c_str(),
                              config_.router->Describe().c_str());
      }
      return resp;
    }
    case RequestVerb::kPartial: {
      // PARTIAL <dop> <sql> — the dop rides in the payload (not session
      // state) so a coordinator resend after a reconnect is self-contained.
      const size_t space = request.payload.find(' ');
      const std::string dop_word = request.payload.substr(0, space);
      if (space == std::string::npos || !IsInteger(dop_word)) {
        resp.status =
            Status::InvalidArgument("PARTIAL expects: PARTIAL <dop> <sql>");
        return resp;
      }
      QueryOptions options = session->query_options();
      options.degree_of_parallelism = static_cast<size_t>(
          std::strtoull(dop_word.c_str(), nullptr, 10));
      const std::string sql = request.payload.substr(space + 1);
      Stopwatch timer;
      Result<Table> result =
          executor_.ExecuteStatement(sql, options, session->timeout_ms(),
                                     /*trace=*/nullptr);
      resp.micros = static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);
      QueryLatencyHistogram().Observe(resp.micros);
      session->RecordQuery(resp.micros, result.ok());
      if (!result.ok()) {
        resp.status = result.status();
        return resp;
      }
      resp.rows = result->num_rows();
      resp.cols = result->num_columns();
      // Binary serde body instead of CSV: the coordinator needs the exact
      // column types and dictionary payloads to merge partials losslessly.
      storage::EncodeTable(*result, &resp.body);
      return resp;
    }
    case RequestVerb::kShardData:
      // Handled in HandleConnection (needs the connection's LineReader).
      resp.status = Status::Internal("SHARDDATA dispatched without a reader");
      return resp;
    case RequestVerb::kPing:
      resp.body = "pong\n";
      return resp;
    case RequestVerb::kQuit:
      *quit = true;
      resp.body = "bye\n";
      return resp;
  }
  resp.status = Status::Internal("unhandled verb");
  return resp;
}

}  // namespace pctagg
