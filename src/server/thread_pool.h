#ifndef PCTAGG_SERVER_THREAD_POOL_H_
#define PCTAGG_SERVER_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pctagg {

// A fixed-size worker pool with a FIFO task queue. The query service uses it
// to decouple connection handling from query execution: connection threads
// enqueue work and block on a future, worker threads run the engine.
//
// Shutdown() (also run by the destructor) stops accepting new tasks, drains
// everything already queued, and joins the workers — so any future tied to a
// submitted task is guaranteed to become ready.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task`; returns false (without queueing) after Shutdown began.
  bool Submit(std::function<void()> task);

  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

  // Tasks currently waiting in the queue (excludes running ones).
  size_t queued() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace pctagg

#endif  // PCTAGG_SERVER_THREAD_POOL_H_
