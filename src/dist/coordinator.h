#ifndef PCTAGG_DIST_COORDINATOR_H_
#define PCTAGG_DIST_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "engine/table.h"
#include "obs/trace.h"
#include "core/mqo_plan.h"
#include "server/client.h"
#include "server/dist_router.h"
#include "server/mqo_gate.h"
#include "sql/analyzer.h"

namespace pctagg {
namespace dist {

struct WorkerEndpoint {
  std::string host;
  int port = 0;
};

struct CoordinatorConfig {
  // Degree of parallelism each worker runs its partial aggregation at.
  // 0 = forward the session's dop.
  size_t worker_dop = 0;
  // Per-shard deadline covering connect, send, and the response read
  // (SO_RCVTIMEO-backed, so a hung worker turns into kTimeout, not a stuck
  // scatter thread). 0 = no deadline.
  uint64_t shard_timeout_ms = 30000;
  // Total send attempts per shard request; transport failures between
  // attempts re-dial with exponential backoff (server/client.h). PARTIAL is
  // idempotent (read-only SELECT with the dop in the payload), so resending
  // after a lost response is safe.
  int shard_attempts = 3;
  uint64_t backoff_initial_ms = 50;
  uint64_t backoff_max_ms = 2000;
  // Multi-query batching gate (server/mqo_gate.h; SET mqo): compatible
  // concurrent distributed SELECTs arriving within the window share ONE
  // scatter of a merged PARTIAL statement instead of N scatters.
  uint64_t mqo_window_ms = 2;
  size_t mqo_max_batch = 16;
};

// The scatter/gather coordinator (docs/SHARDING.md): owns one persistent
// PctClient link per worker, the sharded-table registry, and distributed
// SELECT execution. SHARD hash-partitions a local table across the workers
// (src/dist/shard.h) leaving a zero-row stub in the local catalog — the
// stub keeps the schema visible to the analyzer and makes the same
// database object work as both coordinator and plain server.
//
// A distributed SELECT is the lattice machinery run across processes
// (core/lattice_plan.h): the coordinator rewrites the query into one
// deduplicated partial-aggregation SELECT, scatters it to every shard
// (PARTIAL verb, serde-encoded response body), merges shard partials *as
// they arrive* — no barrier; the serial merge of shard k overlaps the
// still-running scans of shards k+1.. — and assembles percentages, rollups
// and the statement tail locally. INT64 results are bit-identical to
// single-node execution; float sums carry the usual reassociation caveat
// (docs/PARALLELISM.md).
//
// Thread-safe: many sessions may execute concurrently. Each worker link is
// a mutex-protected single-in-flight connection, so concurrent distributed
// queries serialize per worker but overlap across workers.
class Coordinator : public DistRouter {
 public:
  Coordinator(PctDatabase* db, std::vector<WorkerEndpoint> workers,
              CoordinatorConfig config = CoordinatorConfig());
  ~Coordinator() override;

  size_t num_workers() const { return links_.size(); }

  // DistRouter:
  bool Routes(const std::string& table) const override;
  Result<std::optional<Table>> MaybeExecute(const std::string& sql,
                                            const QueryOptions& options,
                                            obs::QueryTrace* trace) override;
  Status ShardTable(const std::string& table,
                    const std::string& key_column) override;
  std::string Describe() const override;

  // The distributed multi-query batching gate (tests/metrics).
  const MqoGate& mqo_gate() const { return mqo_gate_; }

 private:
  // One worker: endpoint, a lazily-dialed persistent client, and transfer
  // counters (the registry has no labels, so per-shard byte counts live
  // here and surface through Describe()/trace rather than per-shard
  // metric names).
  struct ShardLink {
    WorkerEndpoint endpoint;
    std::mutex mu;  // one in-flight request per link
    PctClient client;
    std::atomic<uint64_t> bytes_sent{0};
    std::atomic<uint64_t> bytes_received{0};
  };

  // What the coordinator remembers about a sharded table: the shard key and
  // the statistics captured from the full table *before* it was scattered
  // (the local copy becomes a zero-row stub, so this is the only place the
  // cost model can get row counts and cardinalities from).
  struct ShardedMeta {
    std::string key_column;
    size_t total_rows = 0;
    std::vector<size_t> shard_rows;  // one entry per worker
    // Lower-cased column name -> estimated distinct values.
    std::map<std::string, double> column_cardinality;
  };

  // Dials the link's endpoint if not connected (caller holds link->mu).
  Status EnsureConnected(ShardLink* link);

  // Scatters one PARTIAL statement to every shard and merges the responses
  // as they arrive. `num_key_cols` leading columns of the partial result are
  // the group keys; `combine` re-aggregates the rest. This is the shared
  // primitive under both the single-query path and MQO batches (one batch of
  // N queries costs one ScatterGather, and one pctagg_dist_queries_total).
  Result<Table> ScatterGather(const std::string& partial_sql,
                              size_t num_key_cols,
                              const std::vector<AggSpec>& combine,
                              size_t worker_dop, obs::QueryTrace* trace);

  // Runs the distributed scatter/gather for an analyzed SELECT.
  Result<Table> ExecuteDistributed(const AnalyzedQuery& query,
                                   const ShardedMeta& meta,
                                   const QueryOptions& options,
                                   obs::QueryTrace* trace);

  // Batch leader body for the MQO gate: one scatter of the merged partial
  // statement serves every member; falls back to per-member
  // ExecuteDistributed when planning or the shared scatter fails.
  void ExecuteDistributedBatch(std::vector<MqoGate::Member*>& members,
                               const ShardedMeta& meta,
                               const QueryOptions& options);

  // Plain-EXPLAIN rendering of the distributed plan.
  Result<Table> ExplainDistributed(const AnalyzedQuery& query,
                                   const ShardedMeta& meta,
                                   const QueryOptions& options);

  PctDatabase* db_;
  CoordinatorConfig config_;
  MqoGate mqo_gate_;
  std::vector<std::unique_ptr<ShardLink>> links_;
  mutable std::mutex tables_mu_;
  std::map<std::string, ShardedMeta> tables_;  // key: lower-cased table name
};

}  // namespace dist
}  // namespace pctagg

#endif  // PCTAGG_DIST_COORDINATOR_H_
