#include "dist/coordinator.h"

#include <condition_variable>
#include <deque>
#include <thread>
#include <utility>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/cost_model.h"
#include "core/lattice_plan.h"
#include "dist/shard.h"
#include "engine/merge.h"
#include "engine/parallel.h"
#include "obs/metrics.h"
#include "sql/parser.h"
#include "storage/serde.h"

namespace pctagg {
namespace dist {
namespace {

// --- Metrics (registration hoisted; see obs/metrics.h) ----------------------

obs::Counter& QueriesCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_dist_queries_total", "Distributed scatter/gather queries run");
  return c;
}
obs::Counter& ShardErrorsCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_dist_shard_errors_total",
      "Shard requests that failed after all retries");
  return c;
}
obs::Counter& RetriesCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_dist_retries_total",
      "Shard request resends after a transport failure");
  return c;
}
obs::Counter& BytesMovedCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_dist_bytes_moved_total",
      "Bytes shipped between coordinator and workers (both directions)");
  return c;
}
obs::Counter& RowsMergedCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_dist_rows_merged_total",
      "Partial-summary rows gathered from shards");
  return c;
}
obs::Gauge& InflightGauge() {
  static obs::Gauge& g = obs::GlobalMetrics().GetGauge(
      "pctagg_dist_inflight_shards",
      "Shard requests currently awaiting a response");
  return g;
}
obs::Histogram& ScatterHist() {
  static obs::Histogram& h = obs::GlobalMetrics().GetHistogram(
      "pctagg_dist_scatter_micros",
      "Per-query wall time from fan-out to the last shard response");
  return h;
}
obs::Histogram& GatherMergeHist() {
  static obs::Histogram& h = obs::GlobalMetrics().GetHistogram(
      "pctagg_dist_gather_merge_micros",
      "Per-query coordinator-side time merging shard partials");
  return h;
}
obs::Histogram& ShardWallHist() {
  static obs::Histogram& h = obs::GlobalMetrics().GetHistogram(
      "pctagg_dist_shard_wall_micros",
      "Per-shard wall time of one PARTIAL request (connect+send+recv)");
  return h;
}

uint64_t ToMicros(double ms) {
  return ms <= 0 ? 0 : static_cast<uint64_t>(ms * 1e3);
}

// Same single-column "plan" rendering PctDatabase uses for EXPLAIN, so the
// wire protocol, CSV and shell print distributed plans without special
// casing.
Table TextToPlanTable(const std::string& text) {
  Schema schema;
  schema.AddColumn({"plan", DataType::kString});
  Table out(schema);
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    out.mutable_column(0).AppendString(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

// Errors the worker could only produce if the coordinator shipped a bad
// partial statement (or the deployment lost a shard table): everything else
// is a transport/availability problem the caller should see as kUnavailable.
bool IsSemanticError(const Status& s) {
  switch (s.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kAnalysisError:
    case StatusCode::kTypeMismatch:
      return true;
    default:
      return false;
  }
}

// One shard's response, queued by its scatter thread for the gathering
// coordinator thread.
struct Arrival {
  size_t shard = 0;
  Status status;  // OK -> `partial` is the decoded worker table
  Table partial;
  uint64_t rows = 0;
  double wall_ms = 0;
  uint64_t body_bytes = 0;
  int resends = 0;
};

}  // namespace

Coordinator::Coordinator(PctDatabase* db, std::vector<WorkerEndpoint> workers,
                         CoordinatorConfig config)
    : db_(db),
      config_(config),
      mqo_gate_(MqoGateConfig{config.mqo_window_ms, config.mqo_max_batch}) {
  links_.reserve(workers.size());
  for (WorkerEndpoint& w : workers) {
    auto link = std::make_unique<ShardLink>();
    link->endpoint = std::move(w);
    links_.push_back(std::move(link));
  }
}

Coordinator::~Coordinator() = default;

bool Coordinator::Routes(const std::string& table) const {
  std::lock_guard<std::mutex> lock(tables_mu_);
  return tables_.count(ToLower(table)) != 0;
}

Status Coordinator::EnsureConnected(ShardLink* link) {
  if (link->client.connected()) return Status::OK();
  ConnectOptions copt;
  copt.attempts = config_.shard_attempts;
  copt.backoff_initial_ms = config_.backoff_initial_ms;
  copt.backoff_max_ms = config_.backoff_max_ms;
  copt.attempt_timeout_ms = config_.shard_timeout_ms;
  copt.io_timeout_ms = config_.shard_timeout_ms;
  PCTAGG_ASSIGN_OR_RETURN(
      PctClient client,
      PctClient::Connect(link->endpoint.host, link->endpoint.port, copt));
  link->client = std::move(client);
  return Status::OK();
}

Status Coordinator::ShardTable(const std::string& table,
                               const std::string& key_column) {
  if (links_.empty()) {
    return Status::InvalidArgument(
        "SHARD: this server has no workers configured (--worker)");
  }
  if (Routes(table)) {
    return Status::InvalidArgument(
        "SHARD: table '" + table +
        "' is already sharded; reload the base table to reshard");
  }
  PCTAGG_ASSIGN_OR_RETURN(const Table* full, db_->catalog().GetTable(table));

  // Capture statistics from the full table now: after the scatter the local
  // copy is a zero-row stub and these numbers are all the cost model gets.
  ShardedMeta meta;
  meta.key_column = ToLower(key_column);
  meta.total_rows = full->num_rows();
  StrategyAdvisor advisor;
  for (size_t c = 0; c < full->num_columns(); ++c) {
    const std::string& name = full->schema().column(c).name;
    Result<size_t> card = advisor.EstimateCardinality(*full, name);
    if (card.ok()) {
      meta.column_cardinality[ToLower(name)] = static_cast<double>(*card);
    }
  }

  PCTAGG_ASSIGN_OR_RETURN(
      std::vector<Table> shards,
      HashPartitionTable(*full, key_column, links_.size()));
  Schema schema = full->schema();
  full = nullptr;  // invalidated by ReplaceTable below

  for (size_t i = 0; i < shards.size(); ++i) {
    meta.shard_rows.push_back(shards[i].num_rows());
    std::string bytes;
    storage::EncodeTable(shards[i], &bytes);
    ShardLink* link = links_[i].get();
    std::lock_guard<std::mutex> lock(link->mu);
    Status st = EnsureConnected(link);
    Result<WireResponse> resp = Status::Unavailable("not connected");
    if (st.ok()) {
      resp = link->client.ShardData(table, bytes);
      if (!resp.ok()) {
        // SHARDDATA replaces the whole shard table, so a resend after a lost
        // response is safe — one reconnect covers the broken-link case.
        RetriesCounter().Add(1);
        st = link->client.Reconnect();
        if (st.ok()) resp = link->client.ShardData(table, bytes);
      }
    }
    const Status* failed = nullptr;
    if (!st.ok()) failed = &st;
    else if (!resp.ok()) failed = &resp.status();
    else if (!resp->status.ok()) failed = &resp->status;
    if (failed != nullptr) {
      ShardErrorsCounter().Add(1);
      return Status::Unavailable(StrFormat(
          "SHARD: shard %zu @ %s:%d failed: %s", i, link->endpoint.host.c_str(),
          link->endpoint.port, failed->message().c_str()));
    }
    link->bytes_sent.fetch_add(bytes.size(), std::memory_order_relaxed);
    BytesMovedCounter().Add(bytes.size());
  }

  // Keep the schema visible locally so the analyzer can prepare distributed
  // queries against the stub; drop the rows.
  PCTAGG_RETURN_IF_ERROR(db_->ReplaceTable(table, Table(schema)));
  std::lock_guard<std::mutex> lock(tables_mu_);
  tables_[ToLower(table)] = std::move(meta);
  return Status::OK();
}

Result<std::optional<Table>> Coordinator::MaybeExecute(
    const std::string& sql, const QueryOptions& options,
    obs::QueryTrace* trace) {
  Result<ParsedStatement> kind = ParseStatementKind(sql);
  // Malformed statements fall through to the local path so error messages
  // stay identical with and without a router.
  if (!kind.ok()) return std::optional<Table>();

  if (kind->kind == ParsedStatement::Kind::kDrop) {
    Result<DropStatement> drop = ParseDrop(kind->select_sql);
    if (!drop.ok()) return std::optional<Table>();
    if (!Routes(drop->table)) return std::optional<Table>();
    if (kind->explain) {
      return std::optional<Table>(TextToPlanTable(
          drop->ToString() +
          "\n-- distributed drop: forward the DROP to every worker, then\n"
          "-- drop the local schema stub and forget the shard map.\n"));
    }
    for (size_t i = 0; i < links_.size(); ++i) {
      ShardLink* link = links_[i].get();
      std::lock_guard<std::mutex> lock(link->mu);
      Status st = EnsureConnected(link);
      if (st.ok()) {
        // IF EXISTS: a worker that lost the shard (restart) should not block
        // the coordinator from forgetting the table.
        Result<WireResponse> resp = link->client.Query(
            "DROP TABLE IF EXISTS " + drop->table);
        if (!resp.ok()) st = resp.status();
        else if (!resp->status.ok()) st = resp->status;
      }
      if (!st.ok()) {
        ShardErrorsCounter().Add(1);
        return Status::Unavailable(StrFormat(
            "DROP: shard %zu @ %s:%d failed: %s", i,
            link->endpoint.host.c_str(), link->endpoint.port,
            st.message().c_str()));
      }
    }
    PCTAGG_ASSIGN_OR_RETURN(bool dropped,
                            db_->DropTable(drop->table, drop->if_exists));
    {
      std::lock_guard<std::mutex> lock(tables_mu_);
      tables_.erase(ToLower(drop->table));
    }
    Schema schema;
    schema.AddColumn({"dropped", DataType::kInt64});
    Table out(schema);
    (void)out.AppendRow({Value::Int64(dropped ? 1 : 0)});
    return std::optional<Table>(std::move(out));
  }

  if (kind->kind == ParsedStatement::Kind::kInsert ||
      kind->kind == ParsedStatement::Kind::kCopy) {
    std::string target;
    if (kind->kind == ParsedStatement::Kind::kInsert) {
      Result<InsertStatement> ins = ParseInsert(kind->select_sql);
      if (!ins.ok()) return std::optional<Table>();
      target = ins->table;
    } else {
      Result<CopyStatement> copy = ParseCopy(kind->select_sql);
      if (!copy.ok()) return std::optional<Table>();
      target = copy->table;
    }
    if (!Routes(target)) return std::optional<Table>();
    return Status::InvalidArgument(
        "table '" + target +
        "' is sharded and read-only; reload the base table and re-issue "
        "SHARD to change its rows");
  }

  if (kind->kind != ParsedStatement::Kind::kSelect) {
    return std::optional<Table>();  // CHECKPOINT etc. run locally
  }

  Result<SelectStatement> stmt = ParseSelect(kind->select_sql);
  if (!stmt.ok()) return std::optional<Table>();
  if (!Routes(stmt->from_table)) return std::optional<Table>();
  ShardedMeta meta;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    meta = tables_.at(ToLower(stmt->from_table));
  }
  PCTAGG_ASSIGN_OR_RETURN(const Table* stub,
                          db_->catalog().GetTable(stmt->from_table));
  PCTAGG_ASSIGN_OR_RETURN(AnalyzedQuery query, Analyze(*stmt, stub->schema()));
  std::string why;
  if (!DistributedSupported(query, &why)) {
    return Status::InvalidArgument("distributed: " + why + " (table '" +
                                   stmt->from_table + "' is sharded)");
  }

  if (kind->explain && !kind->analyze) {
    PCTAGG_ASSIGN_OR_RETURN(Table plan,
                            ExplainDistributed(query, meta, options));
    return std::optional<Table>(std::move(plan));
  }
  if (kind->explain) {
    obs::QueryTrace analyze_trace;
    analyze_trace.query_class = QueryClassName(query.query_class);
    Stopwatch timer;
    PCTAGG_ASSIGN_OR_RETURN(
        Table result, ExecuteDistributed(query, meta, options, &analyze_trace));
    analyze_trace.total_ms = timer.ElapsedSeconds() * 1e3;
    (void)result;
    return std::optional<Table>(TextToPlanTable(analyze_trace.Render()));
  }
  if (trace != nullptr) {
    trace->query_class = QueryClassName(query.query_class);
  }
  // Route plain distributed SELECTs through the MQO gate: compatible queries
  // arriving within the collection window scatter ONE merged PARTIAL per
  // worker instead of N. Singletons fall through to the plain path inside
  // ExecuteDistributedBatch.
  if (options.mqo != MqoMode::kOff && meta.total_rows > 0) {
    const std::string key =
        MqoCompatibilityKey(query) +
        StrFormat("|dist|d%zu", options.degree_of_parallelism);
    MqoGate::Member member{&query, kind->select_sql, trace};
    Result<Table> batched = mqo_gate_.Run(
        key, member,
        [this, &meta, &options](std::vector<MqoGate::Member*>& members) {
          ExecuteDistributedBatch(members, meta, options);
        });
    if (!batched.ok()) return batched.status();
    return std::optional<Table>(std::move(*batched));
  }
  PCTAGG_ASSIGN_OR_RETURN(Table result,
                          ExecuteDistributed(query, meta, options, trace));
  return std::optional<Table>(std::move(result));
}

Result<Table> Coordinator::ScatterGather(const std::string& partial_sql,
                                         size_t num_key_cols,
                                         const std::vector<AggSpec>& combine,
                                         size_t worker_dop,
                                         obs::QueryTrace* trace) {
  const size_t nshards = links_.size();
  const std::string payload =
      StrFormat("%zu %s", worker_dop, partial_sql.c_str());
  QueriesCounter().Add(1);

  obs::TraceNode* scatter_node = nullptr;
  if (trace != nullptr) {
    scatter_node = trace->root().AddChild(
        "scatter", StrFormat("PARTIAL %zu %s -> %zu shards", worker_dop,
                             partial_sql.c_str(), nshards));
  }

  // Scatter: one thread per shard holds that link's mutex for the whole
  // request. Gather runs on this thread, merging each partial as it arrives
  // — the serial merge of shard k overlaps the still-running scans of
  // shards k+1.., which is what makes the fan-out a pipeline rather than a
  // barrier.
  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<Arrival> queue;
  InflightGauge().Add(static_cast<int64_t>(nshards));
  Stopwatch scatter_timer;
  std::vector<std::thread> threads;
  threads.reserve(nshards);
  for (size_t i = 0; i < nshards; ++i) {
    threads.emplace_back([this, i, &payload, &queue_mu, &queue_cv, &queue] {
      Arrival a;
      a.shard = i;
      Stopwatch timer;
      ShardLink* link = links_[i].get();
      {
        std::lock_guard<std::mutex> lock(link->mu);
        a.status = EnsureConnected(link);
        if (a.status.ok()) {
          Result<WireResponse> resp = link->client.CallWithRetry(
              RequestVerb::kPartial, payload, config_.shard_attempts,
              &a.resends);
          if (!resp.ok()) {
            a.status = resp.status();
            link->client.Close();  // re-dial on the next query
          } else if (!resp->status.ok()) {
            a.status = resp->status;
          } else {
            a.body_bytes = resp->body.size();
            link->bytes_sent.fetch_add(payload.size(),
                                       std::memory_order_relaxed);
            link->bytes_received.fetch_add(resp->body.size(),
                                           std::memory_order_relaxed);
            storage::ByteReader reader(resp->body);
            Result<Table> partial = storage::DecodeTable(&reader);
            if (!partial.ok()) a.status = partial.status();
            else {
              a.partial = std::move(*partial);
              a.rows = a.partial.num_rows();
            }
          }
        }
      }
      a.wall_ms = timer.ElapsedSeconds() * 1e3;
      {
        std::lock_guard<std::mutex> lock(queue_mu);
        queue.push_back(std::move(a));
      }
      queue_cv.notify_one();
    });
  }

  Table merged;
  bool have_merged = false;
  Status failure = Status::OK();
  uint64_t rows_gathered = 0;
  uint64_t bytes_gathered = 0;
  double merge_ms = 0;
  std::vector<Arrival> arrivals(nshards);
  for (size_t received = 0; received < nshards; ++received) {
    Arrival a;
    {
      std::unique_lock<std::mutex> lock(queue_mu);
      queue_cv.wait(lock, [&queue] { return !queue.empty(); });
      a = std::move(queue.front());
      queue.pop_front();
    }
    InflightGauge().Add(-1);
    ShardWallHist().Observe(ToMicros(a.wall_ms));
    if (!a.status.ok()) {
      ShardErrorsCounter().Add(1);
      if (failure.ok()) {
        const ShardLink& link = *links_[a.shard];
        failure = IsSemanticError(a.status)
                      ? Status(a.status.code(),
                               StrFormat("shard %zu @ %s:%d: %s", a.shard,
                                         link.endpoint.host.c_str(),
                                         link.endpoint.port,
                                         a.status.message().c_str()))
                      : Status::Unavailable(StrFormat(
                            "shard %zu @ %s:%d unavailable: %s", a.shard,
                            link.endpoint.host.c_str(), link.endpoint.port,
                            a.status.message().c_str()));
      }
    } else if (failure.ok()) {
      rows_gathered += a.partial.num_rows();
      bytes_gathered += a.body_bytes;
      Stopwatch merge_timer;
      if (!have_merged) {
        merged = std::move(a.partial);
        have_merged = true;
      } else {
        Result<Table> m =
            MergeSummaries(merged, a.partial, num_key_cols, combine);
        if (!m.ok()) failure = m.status();
        else merged = std::move(*m);
      }
      merge_ms += merge_timer.ElapsedSeconds() * 1e3;
    }
    if (a.resends > 0) RetriesCounter().Add(static_cast<uint64_t>(a.resends));
    arrivals[a.shard] = std::move(a);
    arrivals[a.shard].partial = Table();  // merged or irrelevant; free it
  }
  for (std::thread& t : threads) t.join();
  const double scatter_ms = scatter_timer.ElapsedSeconds() * 1e3;
  ScatterHist().Observe(ToMicros(scatter_ms));
  GatherMergeHist().Observe(ToMicros(merge_ms));
  RowsMergedCounter().Add(rows_gathered);
  BytesMovedCounter().Add(bytes_gathered + nshards * payload.size());

  if (scatter_node != nullptr) {
    scatter_node->stats.wall_ms = scatter_ms;
    scatter_node->stats.rows_out = rows_gathered;
    for (size_t i = 0; i < nshards; ++i) {
      const Arrival& a = arrivals[i];
      obs::TraceNode* shard_node = scatter_node->AddChild(
          "shard",
          StrFormat("shard %zu @ %s:%d: %llu partial rows, %llu body bytes%s",
                    i, links_[i]->endpoint.host.c_str(),
                    links_[i]->endpoint.port,
                    static_cast<unsigned long long>(a.rows),
                    static_cast<unsigned long long>(a.body_bytes),
                    a.resends > 0
                        ? StrFormat(", %d resends", a.resends).c_str()
                        : (a.status.ok() ? "" : " (failed)")));
      shard_node->stats.wall_ms = a.wall_ms;
    }
  }
  if (!failure.ok()) return failure;

  obs::TraceNode* gather_node = nullptr;
  if (trace != nullptr) {
    gather_node = trace->root().AddChild(
        "gather-merge",
        StrFormat("merged %zu shard partials (%zu group cols, %zu aggregates)",
                  nshards, num_key_cols, combine.size()));
    gather_node->stats.rows_in = rows_gathered;
    gather_node->stats.rows_out = merged.num_rows();
    gather_node->stats.wall_ms = merge_ms;
    trace->actual_group_rows = static_cast<double>(merged.num_rows());
  }
  return merged;
}

Result<Table> Coordinator::ExecuteDistributed(const AnalyzedQuery& query,
                                              const ShardedMeta& meta,
                                              const QueryOptions& options,
                                              obs::QueryTrace* trace) {
  PCTAGG_ASSIGN_OR_RETURN(DistPartialPlan plan,
                          BuildDistributedPartialPlan(query));
  const size_t nshards = links_.size();
  const size_t worker_dop =
      config_.worker_dop != 0 ? config_.worker_dop
                              : options.degree_of_parallelism;

  // Cost-model bookkeeping for EXPLAIN ANALYZE: the distributed plan next to
  // the single-node fused scan it replaces, both from the statistics
  // captured at SHARD time (the stub has no rows to sample).
  if (trace != nullptr) {
    trace->strategy = "distributed scatter/gather";
    trace->strategy_source = "topology";
    FactStats stats;
    stats.rows = static_cast<double>(meta.total_rows);
    double groups = 1;
    for (const std::string& col : plan.finest_cols) {
      auto it = meta.column_cardinality.find(ToLower(col));
      if (it != meta.column_cardinality.end()) groups *= it->second;
    }
    stats.group_cardinality = std::min(groups, std::max(1.0, stats.rows));
    CostModel model;
    const double dist_cost = model.DistributedCost(
        stats, static_cast<double>(nshards),
        static_cast<double>(std::max<size_t>(1, worker_dop)),
        static_cast<double>(plan.finest_cols.size() + plan.partials.size()));
    trace->predicted_costs.push_back(
        {StrFormat("distributed (%zu shards x dop %zu)", nshards,
                   std::max<size_t>(1, worker_dop)),
         dist_cost, true});
    stats.dop = static_cast<double>(std::max<size_t>(
        1, options.degree_of_parallelism));
    trace->predicted_costs.push_back(
        {StrFormat("single-node fused scan (dop %zu)",
                   std::max<size_t>(1, options.degree_of_parallelism)),
         model.FusedVpctCost(stats), false});
    trace->predicted_group_rows = stats.group_cardinality;
  }

  PCTAGG_ASSIGN_OR_RETURN(
      Table merged,
      ScatterGather(plan.partial_sql, plan.finest_cols.size(), plan.combine,
                    worker_dop, trace));

  // Assemble locally at the session's dop, exactly as the single-node
  // lattice assembles from its fused scan, then apply the statement tail.
  ScopedParallelism parallelism(options.degree_of_parallelism);
  auto finest = std::make_shared<const Table>(std::move(merged));
  PCTAGG_ASSIGN_OR_RETURN(
      Table assembled,
      AssembleFromPartials(query, finest, trace, CurrentDop()));
  return ApplyQueryTail(std::move(assembled), query);
}

void Coordinator::ExecuteDistributedBatch(
    std::vector<MqoGate::Member*>& members, const ShardedMeta& meta,
    const QueryOptions& options) {
  auto run_solo = [this, &meta, &options](MqoGate::Member* m) {
    m->result = ExecuteDistributed(*m->query, meta, options, m->trace);
  };
  if (members.size() < 2) {
    for (MqoGate::Member* m : members) run_solo(m);
    return;
  }
  std::vector<const AnalyzedQuery*> queries;
  queries.reserve(members.size());
  for (MqoGate::Member* m : members) queries.push_back(m->query);
  Result<MqoBatchPlan> plan = PlanMqoBatch(queries);
  if (!plan.ok()) {
    for (MqoGate::Member* m : members) run_solo(m);
    return;
  }
  const size_t worker_dop =
      config_.worker_dop != 0 ? config_.worker_dop
                              : options.degree_of_parallelism;

  obs::QueryTrace* lead_trace = nullptr;
  for (MqoGate::Member* m : members) {
    if (m->trace == nullptr) continue;
    if (lead_trace == nullptr) lead_trace = m->trace;
    m->trace->strategy = "distributed mqo batch";
    m->trace->strategy_source = "mqo-gate";
    m->trace->root().AddChild(
        "mqo-batch",
        StrFormat("%zu queries share one scatter of %s (%zu partials deduped "
                  "from %zu; %zu shards scanned once instead of %zu times)",
                  members.size(), plan->table.c_str(),
                  plan->scan_partials.size(), plan->partials_requested,
                  links_.size(), members.size()));
  }

  // One scatter of the merged partial statement serves the whole batch; the
  // scatter/shard trace nodes land on the first traced member only (the
  // scatter genuinely ran once).
  Result<Table> merged =
      ScatterGather(plan->scan_sql, plan->scan_cols.size(),
                    plan->scan_combine, worker_dop, lead_trace);
  if (!merged.ok()) {
    for (MqoGate::Member* m : members) run_solo(m);
    return;
  }
  mqo_gate_.RecordScanRowsSaved(static_cast<uint64_t>(meta.total_rows) *
                                (members.size() - 1));

  ScopedParallelism parallelism(options.degree_of_parallelism);
  const size_t dop = CurrentDop();
  for (size_t i = 0; i < members.size(); ++i) {
    members[i]->result =
        AssembleMqoMember(plan->members[i], *merged, members[i]->trace, dop);
  }
}

Result<Table> Coordinator::ExplainDistributed(const AnalyzedQuery& query,
                                              const ShardedMeta& meta,
                                              const QueryOptions& options) {
  PCTAGG_ASSIGN_OR_RETURN(DistPartialPlan plan,
                          BuildDistributedPartialPlan(query));
  const size_t worker_dop =
      config_.worker_dop != 0 ? config_.worker_dop
                              : options.degree_of_parallelism;
  std::string text = StrFormat(
      "-- distributed scatter/gather: %zu shards of %s (hash on %s, %zu "
      "rows)\n",
      links_.size(), query.table_name.c_str(), meta.key_column.c_str(),
      meta.total_rows);
  for (size_t i = 0; i < links_.size(); ++i) {
    text += StrFormat("-- shard %zu @ %s:%d: %zu rows\n", i,
                      links_[i]->endpoint.host.c_str(),
                      links_[i]->endpoint.port,
                      i < meta.shard_rows.size() ? meta.shard_rows[i] : 0);
  }
  text += StrFormat("scatter: PARTIAL %zu %s\n", worker_dop,
                    plan.partial_sql.c_str());
  text +=
      "gather: merge shard partials as they arrive (keyed upsert on [" +
      Join(plan.finest_cols, ", ") +
      "], dictionaries translated; no barrier)\n";
  text +=
      "assemble: roll up lattice levels / percentages from the merged "
      "partials, then HAVING / ORDER BY / LIMIT coordinator-side\n";
  return TextToPlanTable(text);
}

std::string Coordinator::Describe() const {
  std::string out = StrFormat("%zu workers", links_.size());
  for (size_t i = 0; i < links_.size(); ++i) {
    out += StrFormat(
        " [%zu]%s:%d sent=%llu recv=%llu", i,
        links_[i]->endpoint.host.c_str(), links_[i]->endpoint.port,
        static_cast<unsigned long long>(
            links_[i]->bytes_sent.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            links_[i]->bytes_received.load(std::memory_order_relaxed)));
  }
  std::lock_guard<std::mutex> lock(tables_mu_);
  for (const auto& [name, meta] : tables_) {
    out += StrFormat("; %s(key=%s rows=%zu)", name.c_str(),
                     meta.key_column.c_str(), meta.total_rows);
  }
  return out;
}

}  // namespace dist
}  // namespace pctagg
