#include "dist/shard.h"

#include <cstdint>
#include <cstring>

#include "common/string_util.h"
#include "engine/column.h"

namespace pctagg {
namespace dist {
namespace {

// splitmix64 finalizer: cheap, well-mixed 64-bit integer hash.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Result<std::vector<Table>> HashPartitionTable(const Table& input,
                                              const std::string& key_column,
                                              size_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("HashPartitionTable: zero shards");
  }
  int key_idx = -1;
  for (size_t c = 0; c < input.num_columns(); ++c) {
    if (EqualsIgnoreCase(input.schema().column(c).name, key_column)) {
      key_idx = static_cast<int>(c);
      break;
    }
  }
  if (key_idx < 0) {
    return Status::InvalidArgument("SHARD: no such column: " + key_column);
  }

  std::vector<Table> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) shards.emplace_back(input.schema());

  const Column& key = input.column(static_cast<size_t>(key_idx));
  const size_t n = input.num_rows();
  for (size_t row = 0; row < n; ++row) {
    size_t target = 0;  // NULL keys all land in shard 0
    if (!key.IsNull(row)) {
      uint64_t h = 0;
      switch (key.type()) {
        case DataType::kInt64:
          h = Mix64(static_cast<uint64_t>(key.Int64At(row)));
          break;
        case DataType::kFloat64: {
          // Hash the bit pattern; canonicalize -0.0 so it shards with +0.0.
          double v = key.Float64At(row);
          if (v == 0.0) v = 0.0;
          uint64_t bits;
          std::memcpy(&bits, &v, sizeof(bits));
          h = Mix64(bits);
          break;
        }
        case DataType::kString:
          // Hash the payload, not the dictionary code: codes depend on
          // insert order, which differs per shard after reloads.
          h = Fnv1a(key.StringAt(row));
          break;
      }
      target = static_cast<size_t>(h % num_shards);
    }
    shards[target].AppendRowFrom(input, row);
  }
  return shards;
}

}  // namespace dist
}  // namespace pctagg
