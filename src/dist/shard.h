#ifndef PCTAGG_DIST_SHARD_H_
#define PCTAGG_DIST_SHARD_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/table.h"

namespace pctagg {
namespace dist {

// Splits `input` into `num_shards` tables by hashing `key_column`:
// row i lands in shard hash(key[i]) % num_shards. The hash is
// value-based — splitmix64 over the INT64 value, FNV-1a over the string
// bytes (dictionary codes are resolved first, so two shards of the same
// table agree regardless of dictionary layout), the bit pattern for
// FLOAT64 — and NULL keys all land in shard 0, so every distinct key value
// lives on exactly one shard and per-shard GROUP BY partials never split a
// group that includes the shard key. Groups on *other* columns do split
// across shards; that is what the coordinator's MergeSummaries gather
// handles. Row order within each shard preserves input order, which is what
// makes merge-on-arrival results reproducible per arrival order and INT64
// aggregates bit-identical to single-node execution (engine/merge.h).
Result<std::vector<Table>> HashPartitionTable(const Table& input,
                                              const std::string& key_column,
                                              size_t num_shards);

}  // namespace dist
}  // namespace pctagg

#endif  // PCTAGG_DIST_SHARD_H_
