// Umbrella header for the pctagg library: SQL percentage aggregations
// (Vpct/Hpct) and horizontal aggregations with the query-optimization
// framework of Ordonez, "Vertical and Horizontal Percentage Aggregations"
// (SIGMOD 2004) and "Horizontal Aggregations for Building Tabular Data Sets"
// (DMKD 2004).
//
// Typical use:
//
//   #include "pctagg.h"
//
//   pctagg::PctDatabase db;
//   db.CreateTable("sales", BuildSalesTable());
//   pctagg::Result<pctagg::Table> result = db.Query(
//       "SELECT state, city, Vpct(salesAmt BY city) "
//       "FROM sales GROUP BY state, city");

#ifndef PCTAGG_PCTAGG_H_
#define PCTAGG_PCTAGG_H_

#include "common/result.h"
#include "common/status.h"
#include "core/advisor.h"
#include "core/cost_model.h"
#include "core/database.h"
#include "core/horizontal_planner.h"
#include "core/missing_rows.h"
#include "core/olap_planner.h"
#include "core/partition.h"
#include "core/plan.h"
#include "core/vpct_planner.h"
#include "engine/aggregate.h"
#include "engine/catalog.h"
#include "engine/column.h"
#include "engine/csv.h"
#include "engine/data_type.h"
#include "engine/expression.h"
#include "engine/index.h"
#include "engine/join.h"
#include "engine/pivot.h"
#include "engine/table.h"
#include "engine/table_ops.h"
#include "engine/update.h"
#include "engine/value.h"
#include "engine/window.h"
#include "sql/analyzer.h"
#include "sql/ast.h"
#include "sql/lexer.h"
#include "sql/parser.h"

#endif  // PCTAGG_PCTAGG_H_
