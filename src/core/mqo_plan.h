#ifndef PCTAGG_CORE_MQO_PLAN_H_
#define PCTAGG_CORE_MQO_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/summary_cache.h"
#include "engine/aggregate.h"
#include "engine/table.h"
#include "obs/trace.h"
#include "sql/analyzer.h"

namespace pctagg {

// --- Multi-query shared-scan batching (docs/DESIGN.md, MQO section) ----------
//
// N concurrently admitted queries over the same fact table usually differ
// only in their grouping/BY columns and aggregate arguments — the
// shared-subexpression structure of dashboard bursts. Because every supported
// query decomposes into distributive finest-level partials (the lattice view
// of the Data Cube), a whole batch can be fed from ONE fused scan computing
// the deduplicated union of everyone's partials at the union finest level;
// each member then rolls that union table down to its own finest level (the
// AnswerFromCachedAncestor move, applied across concurrent batch-mates
// instead of across time) and assembles its percentages from there.
//
// Batch compatibility: same table and the same rendered WHERE clause (the
// union scan runs under one predicate, so predicates must match textually —
// mixed WHERE never batches). Bit-identity with solo execution holds for the
// same reason the sharded path is bit-identical: rollups preserve first-seen
// group order and INT64 partials merge exactly (float sums carry the usual
// reassociation caveat, see docs/PARALLELISM.md).

// True when `query` can join a shared-scan batch: it must decompose into
// distributive finest-level partials that assemble back per query — exactly
// the gate the distributed scatter path uses (no count(DISTINCT), window or
// projection statements; grouping sets defer to the lattice rules).
bool MqoSupported(const AnalyzedQuery& query, std::string* why = nullptr);

// Batch-compatibility key: queries may batch together iff their keys are
// equal. Callers append their own execution-context fingerprint (dop, cache
// setting, ...) before using the key for admission.
std::string MqoCompatibilityKey(const AnalyzedQuery& query);

// One member's assembly plan: how to roll the batch-level union partials
// down to this query's own finest level and reassemble its answer.
struct MqoMemberPlan {
  const AnalyzedQuery* query = nullptr;
  std::vector<std::string> finest_cols;  // the member's own finest level
  // Rollup specs over the batch union table: member partial `__lN` computed
  // by combining the matching batch partial column `__bM`.
  std::vector<AggSpec> rollup;
  std::vector<bool> count_typed;  // per rollup spec: empty-() NULL -> 0 patch
  size_t partials_requested = 0;  // before batch-level dedup, for traces
};

// The deduplicated union scan serving every member: one fused pass over the
// fact table at the union finest level computing the union of every member's
// partials (named __b1, __b2, ... in first-appearance order).
struct MqoBatchPlan {
  std::string table;                   // as analyzed (first member's casing)
  ExprPtr where;                       // shared predicate; may be null
  std::vector<std::string> scan_cols;  // union finest level
  std::vector<AggSpec> scan_partials;  // deduplicated union partials
  std::vector<AggSpec> scan_combine;   // merge spec for shard partial tables
  std::string scan_sql;     // rendered partial SELECT for the sharded path
  std::vector<MqoMemberPlan> members;  // one per input query, same order
  size_t partials_requested = 0;       // sum over members, before dedup
};

// Plans the batch: extracts each member's distributive partial requirements
// (the lattice recipe machinery), dedupes them into one union scan recipe,
// and maps each member to its rollup + assembly plan. Fails when the members
// are not mutually compatible (different tables or WHERE clauses) or any
// member is unsupported — callers gate on MqoCompatibilityKey and
// MqoSupported first, so a failure here means the gate was bypassed.
Result<MqoBatchPlan> PlanMqoBatch(
    const std::vector<const AnalyzedQuery*>& queries);

// Assembles one member's final result (HAVING/ORDER BY/LIMIT applied) from
// the batch-level union partial table — used by both the local batch
// executor below and the coordinator's sharded batch path, which feeds it
// the gathered cross-shard merge of the union partials.
Result<Table> AssembleMqoMember(const MqoMemberPlan& member,
                                const Table& batch_partials,
                                obs::QueryTrace* trace, size_t dop);

// What ExecuteMqoBatch actually did, for gate metrics and SHOW.
struct MqoBatchStats {
  uint64_t rows_scanned = 0;  // fact rows read by the one shared scan
  bool cache_hit = false;     // union partials answered from the cache
  bool cache_filled = false;  // this batch filled the union cache entry
};

// Executes the whole batch on the calling thread: one fused scan of `fact`
// at the union level — consulting and filling the summary cache via
// single-flight when the batch is unfiltered and `summaries` is non-null —
// then per-member rollup + assembly. `traces` parallels `plan.members`
// (entries may be null; shorter vectors are padded with null), as does the
// returned result vector.
Result<std::vector<Table>> ExecuteMqoBatch(
    const MqoBatchPlan& plan, const Table& fact, SummaryCache* summaries,
    const std::vector<obs::QueryTrace*>& traces, size_t dop,
    MqoBatchStats* stats = nullptr);

}  // namespace pctagg

#endif  // PCTAGG_CORE_MQO_PLAN_H_
