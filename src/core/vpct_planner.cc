#include "core/vpct_planner.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"
#include "core/missing_rows.h"
#include "engine/aggregate.h"
#include "engine/join.h"
#include "engine/table_ops.h"
#include "engine/update.h"
#include "obs/trace.h"

namespace pctagg {

namespace {

// Plan-time bookkeeping for one Vpct term.
struct VpctTermInfo {
  size_t term_index = 0;
  ExprPtr argument;
  std::vector<std::string> totals_by;
  std::vector<std::string> by_columns;
  std::string sum_col;     // name of the term's sum in Fk
  std::string tot_col;     // name of the total column in Fj / joined table
  std::string fj_name;     // temporary table holding Fj
  std::string output_name;
};

// Local shorthand with the historical default.
void AddAggregateStep(Plan* plan, const std::string& src,
                      const std::string& dest,
                      std::vector<std::string> group_by,
                      std::vector<AggSpec> aggs, bool cacheable = false) {
  AddCacheableAggregateStep(plan, src, dest, std::move(group_by),
                            std::move(aggs), cacheable);
}

// Adds "CREATE INDEX ON <table> (<columns>)" materialized as a HashIndex in
// the execution context.
void AddIndexStep(Plan* plan, const std::string& table,
                  std::vector<std::string> columns) {
  std::string sql =
      "CREATE INDEX idx_" + table + " ON " + table + " (" + Join(columns, ", ") + ")";
  plan->AddStep(sql, [table, columns = std::move(columns)](
                         ExecContext* ctx) -> Status {
    PCTAGG_ASSIGN_OR_RETURN(const Table* t, ctx->catalog->GetTable(table));
    PCTAGG_ASSIGN_OR_RETURN(HashIndex index, HashIndex::Build(*t, columns));
    ctx->indexes[table] = std::move(index);
    return Status::OK();
  });
}

// Reads the single-row total produced by a grand-total Fj.
Result<Value> ReadScalarTotal(ExecContext* ctx, const std::string& fj_name,
                              const std::string& tot_col) {
  PCTAGG_ASSIGN_OR_RETURN(const Table* fj, ctx->catalog->GetTable(fj_name));
  if (fj->num_rows() != 1) {
    return Status::Internal("grand-total table must have exactly one row");
  }
  PCTAGG_ASSIGN_OR_RETURN(const Column* col, fj->ColumnByName(tot_col));
  return col->GetValue(0);
}

}  // namespace

void AddCacheableAggregateStep(Plan* plan, const std::string& src,
                               const std::string& dest,
                               std::vector<std::string> group_by,
                               std::vector<AggSpec> aggs, bool cacheable) {
  std::vector<std::string> rendered_aggs;
  for (const AggSpec& a : aggs) {
    std::string arg =
        a.func == AggFunc::kCountStar ? "*" : a.input->ToString();
    rendered_aggs.push_back(std::string(AggFuncName(a.func)) + "(" + arg +
                            ") AS " + a.output_name);
  }
  std::vector<std::string> rendered = group_by;
  rendered.insert(rendered.end(), rendered_aggs.begin(), rendered_aggs.end());
  std::string sql = "INSERT INTO " + dest + " SELECT " + Join(rendered, ", ") +
                    " FROM " + src;
  if (!group_by.empty()) sql += " GROUP BY " + Join(group_by, ", ");
  std::string cache_key =
      cacheable ? SummaryCache::KeyFor(src, group_by, Join(rendered_aggs, ","))
                : "";
  plan->AddStep(sql, [src, dest, group_by = std::move(group_by),
                      aggs = std::move(aggs),
                      cache_key](ExecContext* ctx) -> Status {
    uint64_t generation = 0;
    if (!cache_key.empty() && ctx->summaries != nullptr) {
      std::shared_ptr<const Table> cached = ctx->summaries->Lookup(cache_key);
      if (cached != nullptr) {
        obs::MarkCacheHit();
        ctx->catalog->CreateOrReplaceTable(dest, *cached);
        return Status::OK();
      }
      // Snapshot the invalidation generation before scanning `src`; Insert
      // below drops the fill if the base table was replaced (or appended to)
      // meanwhile.
      generation = ctx->summaries->GenerationFor(src);
    }
    PCTAGG_ASSIGN_OR_RETURN(const Table* input, ctx->catalog->GetTable(src));
    PCTAGG_ASSIGN_OR_RETURN(Table out, HashAggregate(*input, group_by, aggs));
    if (!cache_key.empty() && ctx->summaries != nullptr) {
      // Store the recipe alongside the summary so an append to `src` can
      // delta-maintain this entry instead of dropping it (when every agg is
      // distributive — RecipeIsMergeable decides).
      SummaryRecipe recipe{group_by, aggs};
      ctx->summaries->Insert(cache_key, out, generation, &recipe);
    }
    ctx->catalog->CreateOrReplaceTable(dest, std::move(out));
    return Status::OK();
  });
  plan->AddTempTable(dest);
}

Result<Plan> PlanVpctQuery(const AnalyzedQuery& query,
                           const VpctStrategy& strategy) {
  if (query.query_class != QueryClass::kVpct) {
    return Status::InvalidArgument("PlanVpctQuery requires a Vpct query");
  }
  Plan plan;
  std::string source = query.table_name;

  // WHERE: materialize the filtered fact table once; both Fk and (in the
  // two-scan strategy) Fj read it.
  if (query.where != nullptr) {
    std::string fw = NewTempName("Fw");
    ExprPtr where = query.where;
    plan.AddStep("INSERT INTO " + fw + " SELECT * FROM " + source + " WHERE " +
                     where->ToString(),
                 [src = source, fw, where](ExecContext* ctx) -> Status {
                   PCTAGG_ASSIGN_OR_RETURN(const Table* input,
                                           ctx->catalog->GetTable(src));
                   PCTAGG_ASSIGN_OR_RETURN(Table out, Filter(*input, where));
                   ctx->catalog->CreateOrReplaceTable(fw, std::move(out));
                   return Status::OK();
                 });
    plan.AddTempTable(fw);
    source = fw;
  }

  // Collect the Vpct terms and the extra vertical aggregates.
  std::vector<VpctTermInfo> vpct_terms;
  std::vector<AggSpec> extra_aggs;
  for (size_t i = 0; i < query.terms.size(); ++i) {
    const AnalyzedTerm& t = query.terms[i];
    if (t.func == TermFunc::kVpct) {
      VpctTermInfo info;
      info.term_index = i;
      info.argument = t.argument;
      info.totals_by = t.totals_by;
      info.by_columns = t.by_columns;
      info.sum_col = "__psum_" + std::to_string(vpct_terms.size() + 1);
      info.tot_col = "__ptot_" + std::to_string(vpct_terms.size() + 1);
      info.output_name = t.output_name;
      vpct_terms.push_back(std::move(info));
    } else if (t.func != TermFunc::kScalar) {
      if (t.distinct) {
        return Status::AnalysisError(
            "count(DISTINCT ...) cannot be combined with Vpct()");
      }
      AggFunc func;
      switch (t.func) {
        case TermFunc::kSum:
          func = AggFunc::kSum;
          break;
        case TermFunc::kCount:
          func = AggFunc::kCount;
          break;
        case TermFunc::kCountStar:
          func = AggFunc::kCountStar;
          break;
        case TermFunc::kAvg:
          func = AggFunc::kAvg;
          break;
        case TermFunc::kMin:
          func = AggFunc::kMin;
          break;
        case TermFunc::kMax:
          func = AggFunc::kMax;
          break;
        default:
          return Status::Internal("unexpected term in Vpct planner");
      }
      extra_aggs.push_back({func, t.argument, t.output_name});
    }
  }
  if (vpct_terms.empty()) {
    return Status::Internal("Vpct query without Vpct terms");
  }

  // Optional pre-processing of missing rows (m = 1 only: with several BY
  // lists the notion of "missing subgroup" differs per term).
  if (strategy.missing_rows == MissingRowPolicy::kPreProcess) {
    if (vpct_terms.size() != 1) {
      return Status::InvalidArgument(
          "missing-row pre-processing supports a single Vpct term");
    }
    const VpctTermInfo& t = vpct_terms[0];
    if (t.by_columns.empty()) {
      return Status::InvalidArgument(
          "missing-row handling requires a BY clause");
    }
    // A plain-column argument gets an explicit zero in the inserted rows;
    // other expressions (notably the row-count idiom Vpct(1)) evaluate over
    // the synthetic rows as-is — which is exactly the distortion the paper
    // warns pre-processing causes for Vpct(1).
    std::string arg = t.argument->ToString();
    std::vector<std::string> measures;
    if (query.schema.HasColumn(arg)) measures.push_back(arg);
    std::string fx = NewTempName("Fx");
    plan.AddStep(
        "INSERT INTO " + fx + " SELECT * FROM " + source +
            " UNION missing (" + Join(t.totals_by, ", ") + ") x (" +
            Join(t.by_columns, ", ") + ") rows with " + arg + " = 0",
        [src = source, fx, totals = t.totals_by, by = t.by_columns,
         measures](ExecContext* ctx) -> Status {
          PCTAGG_ASSIGN_OR_RETURN(const Table* input,
                                  ctx->catalog->GetTable(src));
          PCTAGG_ASSIGN_OR_RETURN(
              Table out,
              ExpandFactWithMissingRows(*input, totals, by, measures));
          ctx->catalog->CreateOrReplaceTable(fx, std::move(out));
          return Status::OK();
        });
    plan.AddTempTable(fx);
    source = fx;
  }

  // Fk: the finest aggregation level, always computed from F. Cacheable
  // when it reads the base table unfiltered (the shared-summaries case).
  std::string fk = NewTempName("Fk");
  {
    std::vector<AggSpec> aggs;
    for (const VpctTermInfo& t : vpct_terms) {
      aggs.push_back({AggFunc::kSum, t.argument, t.sum_col});
    }
    for (const AggSpec& a : extra_aggs) aggs.push_back(a);
    AddAggregateStep(&plan, source, fk, query.group_by, std::move(aggs),
                     /*cacheable=*/source == query.table_name);
  }

  // Fj per term: from Fk (partial aggregates; sum() is distributive) or from
  // a second scan of F. With lattice reuse, coarser Fj tables aggregate the
  // finest already-materialized Fj that subsumes them (bottom-up over the
  // dimension lattice), processing terms from fine to coarse.
  struct MaterializedLevel {
    std::string table;
    std::string sum_col;
    std::vector<std::string> group_cols;
    std::string measure;  // rendering of the aggregated argument
  };
  std::vector<MaterializedLevel> levels;
  std::vector<size_t> term_order(vpct_terms.size());
  for (size_t i = 0; i < term_order.size(); ++i) term_order[i] = i;
  std::stable_sort(term_order.begin(), term_order.end(),
                   [&vpct_terms](size_t a, size_t b) {
                     return vpct_terms[a].totals_by.size() >
                            vpct_terms[b].totals_by.size();
                   });
  auto subsumes = [](const std::vector<std::string>& outer,
                     const std::vector<std::string>& inner) {
    for (const std::string& i : inner) {
      bool found = false;
      for (const std::string& o : outer) {
        if (EqualsIgnoreCase(o, i)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  };

  for (size_t oi : term_order) {
    VpctTermInfo& t = vpct_terms[oi];
    if (t.totals_by.empty() && !strategy.fj_from_fk) {
      // Grand total from F.
      t.fj_name = NewTempName("Fj");
      AddAggregateStep(&plan, source, t.fj_name, {},
                       {{AggFunc::kSum, t.argument, t.tot_col}});
      continue;
    }
    t.fj_name = NewTempName("Fj");
    if (strategy.fj_from_fk) {
      // Default source: the finest level Fk. Lattice reuse may find a
      // strictly smaller materialized level with a matching measure.
      std::string src_table = fk;
      std::string src_col = t.sum_col;
      if (strategy.lattice_reuse) {
        const MaterializedLevel* best = nullptr;
        for (const MaterializedLevel& level : levels) {
          if (level.measure != t.argument->ToString()) continue;
          if (!subsumes(level.group_cols, t.totals_by)) continue;
          if (best == nullptr ||
              level.group_cols.size() < best->group_cols.size()) {
            best = &level;
          }
        }
        if (best != nullptr) {
          src_table = best->table;
          src_col = best->sum_col;
        }
      }
      AddAggregateStep(&plan, src_table, t.fj_name, t.totals_by,
                       {{AggFunc::kSum, Col(src_col), t.tot_col}});
      levels.push_back(
          {t.fj_name, t.tot_col, t.totals_by, t.argument->ToString()});
    } else {
      AddAggregateStep(&plan, source, t.fj_name, t.totals_by,
                       {{AggFunc::kSum, t.argument, t.tot_col}});
    }
    if (!t.totals_by.empty()) {
      if (strategy.matching_indexes) {
        AddIndexStep(&plan, t.fj_name, t.totals_by);
      } else {
        // Deliberately mismatched index: keyed on the total value column, so
        // the join cannot probe it and builds its own table (Table 4 col 2).
        AddIndexStep(&plan, t.fj_name, {t.tot_col});
      }
    }
  }

  // Produce FV.
  std::string result_name;
  if (strategy.insert_result) {
    // INSERT strategy: join Fk with each Fj, then project the divisions.
    std::string fv = NewTempName("FV");
    // Rendered as the paper's single statement (per term).
    std::vector<std::string> select_parts;
    for (const AnalyzedTerm& term : query.terms) {
      if (term.func == TermFunc::kScalar) {
        select_parts.push_back(term.scalar_column);
      }
    }
    for (const VpctTermInfo& t : vpct_terms) {
      select_parts.push_back("CASE WHEN Fj." + t.tot_col + " <> 0 THEN Fk." +
                             t.sum_col + " / Fj." + t.tot_col +
                             " ELSE NULL END AS " + t.output_name);
    }
    for (const AggSpec& a : extra_aggs) select_parts.push_back(a.output_name);
    std::string sql = "INSERT INTO " + fv + " SELECT " +
                      Join(select_parts, ", ") + " FROM " + fk + " Fk";
    for (const VpctTermInfo& t : vpct_terms) {
      if (t.totals_by.empty()) {
        sql += " CROSS JOIN " + t.fj_name + " Fj";
      } else {
        std::vector<std::string> conds;
        for (const std::string& c : t.totals_by) {
          conds.push_back("Fk." + c + " = Fj." + c);
        }
        sql += " JOIN " + t.fj_name + " Fj ON " + Join(conds, " AND ");
      }
    }

    plan.AddStep(sql, [fk, fv, vpct_terms, extra_aggs,
                       terms = query.terms](ExecContext* ctx) -> Status {
      PCTAGG_ASSIGN_OR_RETURN(const Table* fk_table, ctx->catalog->GetTable(fk));
      Table current = *fk_table;
      // Grand-total terms are folded in at projection time.
      std::vector<Value> scalar_totals(vpct_terms.size());
      for (size_t i = 0; i < vpct_terms.size(); ++i) {
        const VpctTermInfo& t = vpct_terms[i];
        if (t.totals_by.empty()) {
          PCTAGG_ASSIGN_OR_RETURN(scalar_totals[i],
                                  ReadScalarTotal(ctx, t.fj_name, t.tot_col));
          continue;
        }
        PCTAGG_ASSIGN_OR_RETURN(const Table* fj,
                                ctx->catalog->GetTable(t.fj_name));
        // Fj is keyed uniquely on the common subkey: the join reduces to a
        // vectorized totals-column fetch; the surviving Fk columns are
        // carried through without row materialization (bulk INSERT..SELECT).
        PCTAGG_ASSIGN_OR_RETURN(
            Column totals,
            LookupColumn(current, *fj, t.totals_by, t.totals_by, t.tot_col,
                         ctx->IndexFor(t.fj_name)));
        PCTAGG_RETURN_IF_ERROR(
            current.AddColumn({t.tot_col, totals.type()}, std::move(totals)));
      }
      // Final projection in SELECT-list order.
      std::vector<ProjectSpec> specs;
      size_t v = 0;
      for (const AnalyzedTerm& term : terms) {
        if (term.func == TermFunc::kScalar) {
          specs.push_back({Col(term.scalar_column), term.output_name});
        } else if (term.func == TermFunc::kVpct) {
          const VpctTermInfo& t = vpct_terms[v];
          ExprPtr divisor = t.totals_by.empty()
                                ? (scalar_totals[v].is_null()
                                       ? NullLit(DataType::kFloat64)
                                       : Lit(scalar_totals[v]))
                                : Col(t.tot_col);
          // Division yields NULL on zero/NULL divisors by construction.
          specs.push_back({Div(Col(t.sum_col), divisor), t.output_name});
          ++v;
        } else {
          specs.push_back({Col(term.output_name), term.output_name});
        }
      }
      PCTAGG_ASSIGN_OR_RETURN(Table fv_table, Project(current, specs));
      ctx->catalog->CreateOrReplaceTable(fv, std::move(fv_table));
      return Status::OK();
    });
    plan.AddTempTable(fv);
    result_name = fv;
  } else {
    // UPDATE strategy: divide Fk's sum columns in place; FV = Fk.
    for (const VpctTermInfo& t : vpct_terms) {
      if (t.totals_by.empty()) {
        std::string sql = "UPDATE " + fk + " SET " + t.sum_col + " = " +
                          t.sum_col + " / (SELECT " + t.tot_col + " FROM " +
                          t.fj_name + ")";
        plan.AddStep(sql, [fk, t](ExecContext* ctx) -> Status {
          PCTAGG_ASSIGN_OR_RETURN(Value total,
                                  ReadScalarTotal(ctx, t.fj_name, t.tot_col));
          PCTAGG_ASSIGN_OR_RETURN(Table* fk_table, ctx->catalog->GetTable(fk));
          ExprPtr divisor = total.is_null() ? NullLit(DataType::kFloat64)
                                            : Lit(total);
          PCTAGG_ASSIGN_OR_RETURN(size_t col,
                                  fk_table->schema().FindColumn(t.sum_col));
          PCTAGG_ASSIGN_OR_RETURN(
              Column divided,
              Div(Col(t.sum_col), divisor)->Evaluate(*fk_table));
          // In-place rewrite of the measure column (type widens to FLOAT64).
          Schema fixed;
          std::vector<Column> cols;
          for (size_t c = 0; c < fk_table->num_columns(); ++c) {
            ColumnDef def = fk_table->schema().column(c);
            if (c == col) def.type = DataType::kFloat64;
            fixed.AddColumn(def);
            cols.push_back(c == col ? std::move(divided)
                                    : fk_table->column(c));
          }
          *fk_table = Table(std::move(fixed), std::move(cols));
          return Status::OK();
        });
        continue;
      }
      std::vector<std::string> conds;
      for (const std::string& c : t.totals_by) {
        conds.push_back(fk + "." + c + " = Fj." + c);
      }
      std::string sql = "UPDATE " + fk + " SET " + t.sum_col +
                        " = CASE WHEN Fj." + t.tot_col + " <> 0 THEN " + fk +
                        "." + t.sum_col + " / Fj." + t.tot_col +
                        " ELSE NULL END FROM " + t.fj_name + " Fj WHERE " +
                        Join(conds, " AND ");
      plan.AddStep(sql, [fk, t](ExecContext* ctx) -> Status {
        PCTAGG_ASSIGN_OR_RETURN(Table* fk_table, ctx->catalog->GetTable(fk));
        PCTAGG_ASSIGN_OR_RETURN(const Table* fj,
                                ctx->catalog->GetTable(t.fj_name));
        return KeyedDivideUpdate(fk_table, t.totals_by, t.sum_col, *fj,
                                 t.totals_by, t.tot_col,
                                 ctx->IndexFor(t.fj_name));
      });
    }
    // Expose the sum columns under their SELECT-list names. FV = Fk.
    std::string sql = "/* FV = " + fk + " */ RENAME";
    std::vector<std::pair<std::string, std::string>> renames;
    for (const VpctTermInfo& t : vpct_terms) {
      renames.emplace_back(t.sum_col, t.output_name);
      sql += " " + t.sum_col + " TO " + t.output_name;
    }
    plan.AddStep(sql, [fk, renames](ExecContext* ctx) -> Status {
      PCTAGG_ASSIGN_OR_RETURN(Table* fk_table, ctx->catalog->GetTable(fk));
      for (const auto& [from, to] : renames) {
        PCTAGG_ASSIGN_OR_RETURN(size_t idx, fk_table->schema().FindColumn(from));
        PCTAGG_RETURN_IF_ERROR(fk_table->RenameColumn(idx, to));
      }
      return Status::OK();
    });
    result_name = fk;
  }

  // Optional post-processing of missing rows.
  if (strategy.missing_rows == MissingRowPolicy::kPostProcess) {
    if (vpct_terms.size() != 1) {
      return Status::InvalidArgument(
          "missing-row post-processing supports a single Vpct term");
    }
    const VpctTermInfo& t = vpct_terms[0];
    if (t.by_columns.empty()) {
      return Status::InvalidArgument(
          "missing-row handling requires a BY clause");
    }
    std::string sql = "INSERT INTO " + result_name +
                      " missing rows over (" + Join(t.totals_by, ", ") +
                      ") x (" + Join(t.by_columns, ", ") + ") with " +
                      t.output_name + " = 0";
    plan.AddStep(sql, [fact = query.table_name, result = result_name,
                       t](ExecContext* ctx) -> Status {
      PCTAGG_ASSIGN_OR_RETURN(const Table* fact_table,
                              ctx->catalog->GetTable(fact));
      PCTAGG_ASSIGN_OR_RETURN(Table* result_table,
                              ctx->catalog->GetTable(result));
      return InsertMissingResultRows(*fact_table, t.totals_by, t.by_columns,
                                     {t.output_name}, result_table);
    });
  }

  // Optional final ORDER BY over the grouping columns.
  if (strategy.order_result && !query.group_by.empty()) {
    std::string sql = "/* display */ ORDER BY " + Join(query.group_by, ", ");
    plan.AddStep(sql, [result = result_name,
                       group_by = query.group_by](ExecContext* ctx) -> Status {
      PCTAGG_ASSIGN_OR_RETURN(Table* t, ctx->catalog->GetTable(result));
      std::vector<std::string> sortable;
      for (const std::string& g : group_by) {
        if (t->schema().HasColumn(g)) sortable.push_back(g);
      }
      if (sortable.empty()) return Status::OK();
      PCTAGG_ASSIGN_OR_RETURN(Table sorted, Sort(*t, sortable));
      *t = std::move(sorted);
      return Status::OK();
    });
  }

  plan.set_result_table(result_name);
  return plan;
}

}  // namespace pctagg
