#include "core/plan.h"

#include <atomic>

#include "common/string_util.h"

namespace pctagg {

void Plan::AddStep(std::string sql, StepFn run) {
  steps_.push_back({std::move(sql), std::move(run)});
}

std::string Plan::AppendPlan(Plan other) {
  for (Step& step : other.steps_) {
    steps_.push_back(std::move(step));
  }
  for (std::string& name : other.temp_tables_) {
    temp_tables_.push_back(std::move(name));
  }
  return other.result_table_;
}

Status Plan::Execute(Catalog* catalog, SummaryCache* summaries) const {
  ExecContext ctx(catalog, summaries);
  for (const Step& step : steps_) {
    Status s = step.run(&ctx);
    if (!s.ok()) {
      return Status(s.code(),
                    s.message() + " (while executing: " + step.sql + ")");
    }
  }
  return Status::OK();
}

void Plan::Cleanup(Catalog* catalog) const {
  for (const std::string& name : temp_tables_) {
    if (catalog->HasTable(name)) {
      catalog->DropTable(name).ok();
    }
  }
}

std::string Plan::ToSql() const {
  std::string out;
  for (const Step& step : steps_) {
    out += step.sql;
    if (!step.sql.empty() && step.sql.back() != ';') out += ";";
    out += "\n";
  }
  return out;
}

std::string NewTempName(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  return prefix + "_" + StrFormat("%04llu",
                                  static_cast<unsigned long long>(++counter));
}

}  // namespace pctagg
