#include "core/plan.h"

#include <atomic>
#include <cctype>
#include <string_view>

#include "common/string_util.h"

namespace pctagg {

void Plan::AddStep(std::string sql, StepFn run) {
  steps_.push_back({std::move(sql), std::move(run)});
}

std::string Plan::AppendPlan(Plan other) {
  for (Step& step : other.steps_) {
    steps_.push_back(std::move(step));
  }
  for (std::string& name : other.temp_tables_) {
    temp_tables_.push_back(std::move(name));
  }
  return other.result_table_;
}

Status Plan::Execute(Catalog* catalog, SummaryCache* summaries,
                     obs::QueryTrace* trace) const {
  ExecContext ctx(catalog, summaries);
  for (const Step& step : steps_) {
    Status s;
    if (trace != nullptr) {
      // One trace node per generated statement, labelled with its leading
      // SQL keyword (skipping any /* annotation */ prefix); kernels invoked
      // by the step attach operator children.
      std::string_view sql_view = step.sql;
      if (sql_view.substr(0, 2) == "/*") {
        size_t close = sql_view.find("*/");
        if (close != std::string_view::npos) {
          sql_view.remove_prefix(close + 2);
        }
        while (!sql_view.empty() && sql_view.front() == ' ') {
          sql_view.remove_prefix(1);
        }
      }
      std::string label(
          sql_view.substr(0, sql_view.find_first_of(" \n")));
      for (char& c : label) c = static_cast<char>(std::tolower(c));
      if (label.empty()) label = "statement";  // comment-only annotation step
      obs::TraceNode* node =
          trace->root().AddChild(std::move(label), step.sql);
      obs::ScopedTraceNode scope(node);
      s = step.run(&ctx);
    } else {
      s = step.run(&ctx);
    }
    if (!s.ok()) {
      return Status(s.code(),
                    s.message() + " (while executing: " + step.sql + ")");
    }
  }
  return Status::OK();
}

void Plan::Cleanup(Catalog* catalog) const {
  for (const std::string& name : temp_tables_) {
    if (catalog->HasTable(name)) {
      catalog->DropTable(name).ok();
    }
  }
}

std::string Plan::ToSql() const {
  std::string out;
  for (const Step& step : steps_) {
    out += step.sql;
    if (!step.sql.empty() && step.sql.back() != ';') out += ";";
    out += "\n";
  }
  return out;
}

std::string NewTempName(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  return prefix + "_" + StrFormat("%04llu",
                                  static_cast<unsigned long long>(++counter));
}

}  // namespace pctagg
