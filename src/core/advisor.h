#ifndef PCTAGG_CORE_ADVISOR_H_
#define PCTAGG_CORE_ADVISOR_H_

#include "common/result.h"
#include "core/horizontal_planner.h"
#include "core/vpct_planner.h"
#include "engine/table.h"
#include "sql/analyzer.h"

namespace pctagg {

// Picks evaluation strategies following the experimental recommendations of
// Sections 4.1 (Vpct, Hpct) of the SIGMOD paper and Section 4.2 of the DMKD
// paper. The advisor looks at simple table statistics (row count, estimated
// BY-column cardinalities from a bounded sample) — the same signals the
// papers reason about.
class StrategyAdvisor {
 public:
  // A BY column is "low selectivity" if its estimated cardinality is at most
  // this many distinct values (dweek=7 and monthNo=12 qualify; dept=100,
  // store=100 and age=100 do not).
  static constexpr size_t kLowSelectivityThreshold = 32;

  // Rows sampled when estimating cardinalities.
  static constexpr size_t kSampleRows = 20000;

  // Minimum fact cardinality before the fused pipelines are considered: the
  // per-statement overhead the fusion saves is fixed, so on small tables the
  // choice is noise and the well-exercised materialized plans stay default.
  static constexpr size_t kFusedMinRows = 65536;

  // Vpct: at dop 1 the paper's best strategy is unconditional — matching
  // subkey indexes, Fj from the partial aggregate Fk, INSERT over UPDATE.
  // At dop > 1 the choice comes from the cost model with scan terms divided
  // by dop (parallel scans cheapen the rescans the paper's heuristics were
  // calibrated against); on estimation failure the paper default stands.
  VpctStrategy AdviseVpct(const Table& fact, const AnalyzedQuery& query,
                          size_t dop = 1) const;

  // Hpct/Hagg: CASE always beats SPJ; direct from F when there are at most
  // two BY columns, all of low selectivity; otherwise go through FV. At
  // dop > 1 defers to AdviseHorizontalByCost with dop-scaled scan costs.
  HorizontalStrategy AdviseHorizontal(const Table& fact,
                                      const AnalyzedQuery& query,
                                      size_t dop = 1) const;

  // Whether the fused push-based pipeline (core/pipeline_plan.h) should
  // replace the materialized plan for this query. Callers check the shape
  // gates (VpctPipelineSupported / HorizontalPipelineSupported) first; these
  // only compare costs: fused runs when the fact table is at least
  // kFusedMinRows and the model prices the pipeline below the best
  // materialized strategy at this dop. False on estimation failure.
  bool AdviseVpctFused(const Table& fact, const AnalyzedQuery& query,
                       size_t dop = 1) const;
  bool AdviseHorizontalFused(const Table& fact, const AnalyzedQuery& query,
                             size_t dop = 1) const;

  // Grouping-set lattices (core/lattice_plan.h): true when the shared-scan
  // rollup should beat recomputing every level from the fact table. Shared
  // is the safe default — it only loses when the finest level is nearly as
  // large as the fact table (rollups then rescan ~n rows while writing far
  // fewer useful partials) — so estimation failure returns true.
  bool AdviseLatticeShared(const Table& fact, const AnalyzedQuery& query,
                           size_t dop = 1) const;

  // Estimated number of distinct values in `column` over a bounded prefix
  // sample of `fact` (exact when the table is smaller than the sample).
  Result<size_t> EstimateCardinality(const Table& fact,
                                     const std::string& column) const;

  // Cost-model-driven variant (paper future work: characterize strategies
  // with cost models): estimates FactStats for the first horizontal term
  // and picks the minimum-cost strategy. Falls back to AdviseHorizontal
  // when statistics cannot be estimated.
  HorizontalStrategy AdviseHorizontalByCost(const Table& fact,
                                            const AnalyzedQuery& query,
                                            size_t dop = 1) const;
};

}  // namespace pctagg

#endif  // PCTAGG_CORE_ADVISOR_H_
