#ifndef PCTAGG_CORE_VPCT_PLANNER_H_
#define PCTAGG_CORE_VPCT_PLANNER_H_

#include "common/result.h"
#include "core/plan.h"
#include "engine/aggregate.h"
#include "sql/analyzer.h"

namespace pctagg {

// How to deal with cube cells that have no rows (paper Section 3.1, "Missing
// rows"). Both treatments are optional, exactly as the paper recommends.
enum class MissingRowPolicy {
  kNone,  // default: absent combinations simply produce no result row
  // Post-processing: after FV is computed, insert one row per absent
  // (totals-group x BY-combination) pair with percentage 0 (non-percentage
  // columns become NULL). Cheap when few percentage queries run against F.
  kPostProcess,
  // Pre-processing: insert zero-measure rows into (a copy of) F before
  // aggregating. Correct for measures but deliberately corrupts row-count
  // percentages like Vpct(1) — the trade-off the paper warns about. Requires
  // every Vpct argument to be a plain numeric column.
  kPreProcess,
};

// The optimization knobs studied in Table 4 of the paper. Defaults give the
// paper's recommended best strategy: matching subkey indexes on Fj, the
// coarse aggregate Fj computed from the partial aggregate Fk (sum() is
// distributive), and INSERT (join) rather than UPDATE to produce FV.
struct VpctStrategy {
  // Table 4 column (2): when false, indexes are created on mismatched keys,
  // so the division join must build its own hash table.
  bool matching_indexes = true;
  // Table 4 column (3): when false, FV is produced by UPDATEing Fk in place
  // (row-at-a-time; avoids the third temporary table, costs time when
  // |FV| ~ |F|).
  bool insert_result = true;
  // Table 4 column (4): when false, Fj is computed with a second scan of F
  // instead of reusing Fk.
  bool fj_from_fk = true;
  // Extension of the paper's future-work direction "optimizing vertical
  // percentage queries with different groupings in each term ... bottom-up
  // search" / "shared summaries": with several Vpct terms, compute each Fj
  // from the smallest already-materialized aggregate whose grouping columns
  // subsume it (and whose measure matches), instead of always from Fk.
  // Requires fj_from_fk; no effect for single-term queries.
  bool lattice_reuse = true;
  MissingRowPolicy missing_rows = MissingRowPolicy::kNone;
  // ORDER BY the grouping columns at the end (display convenience; off for
  // benchmarks, like the paper's timed queries).
  bool order_result = false;
};

// Generates the multi-statement evaluation plan for a vertical percentage
// query (QueryClass::kVpct): Fk at the GROUP BY level, one Fj per Vpct term
// at its totals level, and the division producing FV. Handles any number of
// Vpct terms (m >= 1, each with its own BY list) plus additional standard
// vertical aggregates on the same GROUP BY.
Result<Plan> PlanVpctQuery(const AnalyzedQuery& query,
                           const VpctStrategy& strategy);

// Adds "INSERT INTO <dest> SELECT <group>, <aggs> FROM <src> GROUP BY
// <group>" to `plan`. When `cacheable` (i.e. `src` is an immutable-or-
// append-only base table and no filter intervened), the step consults and
// feeds the shared summary cache, recording the (group_by, aggs) recipe so
// the append path can delta-maintain the entry (core/summary_cache.h).
// Shared by the Vpct planner (Fk/Fj levels) and the horizontal planner (FVh
// materialization).
void AddCacheableAggregateStep(Plan* plan, const std::string& src,
                               const std::string& dest,
                               std::vector<std::string> group_by,
                               std::vector<AggSpec> aggs, bool cacheable);

}  // namespace pctagg

#endif  // PCTAGG_CORE_VPCT_PLANNER_H_
