#ifndef PCTAGG_CORE_OLAP_PLANNER_H_
#define PCTAGG_CORE_OLAP_PLANNER_H_

#include "common/result.h"
#include "core/plan.h"
#include "sql/analyzer.h"

namespace pctagg {

// The comparison baseline of paper Section 4.2: evaluate a vertical
// percentage query with ANSI SQL/OLAP window extensions instead of the
// percentage aggregations:
//
//   SELECT DISTINCT D1..Dk,
//          sum(A) OVER (PARTITION BY D1..Dk) /
//          sum(A) OVER (PARTITION BY D1..Dj)
//   FROM F;
//
// Both window aggregates carry one value per *fact row* (n rows), the
// division runs over n rows, and a DISTINCT pass shrinks the result to the
// |Fk| groups — the work profile that makes this formulation an order of
// magnitude slower than the generated percentage plans. Accepts the same
// analyzed Vpct query the percentage planner takes, so benchmarks compare
// identical questions.
Result<Plan> PlanOlapPercentageQuery(const AnalyzedQuery& query);

// Plain window query (QueryClass::kWindow): scalar columns plus
// func(arg) OVER (PARTITION BY ...) terms, one output row per input row.
Result<Plan> PlanWindowQuery(const AnalyzedQuery& query);

}  // namespace pctagg

#endif  // PCTAGG_CORE_OLAP_PLANNER_H_
