#include "core/summary_cache.h"

#include <utility>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace pctagg {

namespace {

// Process-wide mirrors of the per-cache counters, so the STATS verb sees
// cache behaviour without reaching into individual PctDatabase instances.
// Registration is hoisted into function-local statics (GetCounter locks).
obs::Counter& HitCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_summary_cache_hits_total",
      "Summary-cache lookups answered without a scan");
  return c;
}
obs::Counter& MissCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_summary_cache_misses_total", "Summary-cache lookups that missed");
  return c;
}
obs::Counter& StaleCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_summary_cache_stale_inserts_total",
      "Cache fills rejected because the base table changed mid-scan");
  return c;
}
obs::Counter& InvalidationCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_summary_cache_invalidations_total",
      "Base-table invalidations (table replaced or cache cleared)");
  return c;
}
obs::Counter& EvictionCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_summary_cache_evictions_total",
      "Summary-cache entries evicted by the byte-budget LRU");
  return c;
}
obs::Counter& SharedFillCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_summary_cache_shared_fills_total",
      "Lookups answered by waiting on another thread's in-flight fill");
  return c;
}
obs::Gauge& BytesGauge() {
  static obs::Gauge& g = obs::GlobalMetrics().GetGauge(
      "pctagg_summary_cache_bytes",
      "Approximate bytes held by cached summary tables");
  return g;
}

// Approximate retained size of a cached summary: typed payload + validity
// per column, plus the dictionary pool of string columns. Dictionaries are
// shared with the base table when codes were adopted, so this over-counts in
// the worst case — acceptable for a budget, and summary tables re-interned
// by HashAggregate own small dictionaries of just the group values.
size_t ApproxTableBytes(const Table& t) {
  size_t bytes = 0;
  for (size_t i = 0; i < t.num_columns(); ++i) {
    const Column& col = t.column(i);
    size_t width = col.type() == DataType::kString ? sizeof(uint32_t) : 8;
    bytes += col.size() * (width + 1);  // +1: validity byte
    if (col.dict() != nullptr) bytes += col.dict()->pool_bytes();
  }
  return bytes;
}

}  // namespace

bool RecipeIsMergeable(const SummaryRecipe& recipe) {
  if (recipe.aggs.empty()) return false;
  for (const AggSpec& a : recipe.aggs) {
    switch (a.func) {
      case AggFunc::kSum:
      case AggFunc::kCount:
      case AggFunc::kCountStar:
      case AggFunc::kMin:
      case AggFunc::kMax:
        break;
      case AggFunc::kAvg:
        return false;  // not distributive; planners decompose to sum+count
    }
  }
  return true;
}

std::string SummaryCache::KeyFor(const std::string& base_table,
                                 const std::vector<std::string>& group_by,
                                 const std::string& rendered_aggs) {
  std::vector<std::string> lowered;
  lowered.reserve(group_by.size());
  for (const std::string& g : group_by) lowered.push_back(ToLower(g));
  return ToLower(base_table) + "|" + Join(lowered, ",") + "|" + rendered_aggs;
}

std::shared_ptr<const Table> SummaryCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    MissCounter().Add();
    return nullptr;
  }
  ++hits_;
  HitCounter().Add();
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);  // refresh recency
  return it->second.summary;
}

bool SummaryCache::LookupOrBeginFill(const std::string& key,
                                     std::shared_ptr<const Table>* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  bool waited = false;
  for (;;) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      HitCounter().Add();
      if (waited) {
        ++shared_fills_;
        SharedFillCounter().Add();
      }
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      *out = it->second.summary;
      return false;
    }
    if (fills_in_flight_.insert(key).second) {
      ++misses_;  // the whole herd counts as one miss: the owner's
      MissCounter().Add();
      return true;
    }
    // Another thread owns the fill; sleep until it finishes, then re-check.
    // If the owner failed (or its insert was rejected as stale), the entry is
    // still absent and this waiter claims ownership on the next iteration —
    // no caller ever leaves empty-handed because an owner errored out.
    waited = true;
    fill_cv_.wait(lock);
  }
}

void SummaryCache::FinishFill(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fills_in_flight_.erase(key);
  }
  fill_cv_.notify_all();
}

uint64_t SummaryCache::GenerationFor(const std::string& base_table) const {
  std::string lowered = ToLower(base_table);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = generations_.find(lowered);
  return it == generations_.end() ? 0 : it->second;
}

void SummaryCache::Insert(const std::string& key, const Table& summary,
                          uint64_t generation, const SummaryRecipe* recipe) {
  std::string base = ToLower(key.substr(0, key.find('|')));
  // Copying the table outside the lock keeps fills from serializing lookups.
  auto snapshot = std::make_shared<const Table>(summary);
  size_t approx = ApproxTableBytes(*snapshot);
  std::lock_guard<std::mutex> lock(mutex_);
  auto gen_it = generations_.find(base);
  uint64_t current = gen_it == generations_.end() ? 0 : gen_it->second;
  if (current != generation) {
    ++stale_inserts_;  // base table invalidated while the fill was computing
    StaleCounter().Add();
    return;
  }
  Entry entry;
  entry.base_table = std::move(base);
  entry.summary = std::move(snapshot);
  if (recipe != nullptr) {
    entry.recipe = *recipe;
    entry.has_recipe = true;
  }
  entry.generation = generation;
  entry.approx_bytes = approx;
  InsertLocked(key, std::move(entry));
}

void SummaryCache::Insert(const std::string& key, const Table& summary) {
  std::string base = ToLower(key.substr(0, key.find('|')));
  Insert(key, summary, GenerationFor(base));
}

void SummaryCache::InvalidateTable(const std::string& base_table) {
  std::string lowered = ToLower(base_table);
  InvalidationCounter().Add();
  std::lock_guard<std::mutex> lock(mutex_);
  ++generations_[lowered];
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.base_table == lowered) {
      auto next = std::next(it);
      EraseLocked(it);
      it = next;
    } else {
      ++it;
    }
  }
  PublishBytesLocked();
}

std::vector<SummaryCache::PendingMerge> SummaryCache::BeginAppend(
    const std::string& base_table, size_t* dropped) {
  std::string lowered = ToLower(base_table);
  std::vector<PendingMerge> pending;
  size_t dropped_count = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t target = ++generations_[lowered];
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.base_table != lowered) {
      ++it;
      continue;
    }
    Entry& e = it->second;
    if (e.has_recipe && RecipeIsMergeable(e.recipe)) {
      pending.push_back(PendingMerge{it->first, std::move(e.summary),
                                     std::move(e.recipe), target});
    } else {
      ++dropped_count;
    }
    auto next = std::next(it);
    EraseLocked(it);
    it = next;
  }
  PublishBytesLocked();
  if (dropped != nullptr) *dropped = dropped_count;
  return pending;
}

std::vector<SummaryCache::AncestorCandidate> SummaryCache::MergeableEntriesFor(
    const std::string& base_table) const {
  std::string lowered = ToLower(base_table);
  std::vector<AncestorCandidate> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, entry] : entries_) {
    if (entry.base_table != lowered) continue;
    if (!entry.has_recipe || !RecipeIsMergeable(entry.recipe)) continue;
    out.push_back(AncestorCandidate{key, entry.summary, entry.recipe});
  }
  return out;
}

bool SummaryCache::CompleteMerge(const PendingMerge& pending,
                                 const Table& merged) {
  auto snapshot = std::make_shared<const Table>(merged);
  size_t approx = ApproxTableBytes(*snapshot);
  std::string base = ToLower(pending.key.substr(0, pending.key.find('|')));
  std::lock_guard<std::mutex> lock(mutex_);
  auto gen_it = generations_.find(base);
  uint64_t current = gen_it == generations_.end() ? 0 : gen_it->second;
  if (current != pending.target_generation) {
    ++stale_inserts_;  // a later write landed while the merge was computing
    StaleCounter().Add();
    return false;
  }
  auto existing = entries_.find(pending.key);
  if (existing != entries_.end() &&
      existing->second.generation >= pending.target_generation) {
    // A lookup that missed during the append window recomputed this entry
    // from the post-append table. That fill is equivalent; keep it.
    return false;
  }
  Entry entry;
  entry.base_table = std::move(base);
  entry.summary = std::move(snapshot);
  entry.recipe = pending.recipe;
  entry.has_recipe = true;
  entry.generation = pending.target_generation;
  entry.approx_bytes = approx;
  InsertLocked(pending.key, std::move(entry));
  return true;
}

void SummaryCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, entry] : entries_) ++generations_[entry.base_table];
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  PublishBytesLocked();
}

void SummaryCache::set_capacity_bytes(size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_bytes_ = bytes;
  EvictToBudgetLocked();
  PublishBytesLocked();
}

size_t SummaryCache::capacity_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_bytes_;
}

void SummaryCache::EvictToBudgetLocked() {
  while (bytes_ > capacity_bytes_ && !lru_.empty()) {
    auto it = entries_.find(lru_.back());
    EraseLocked(it);
    ++evictions_;
    EvictionCounter().Add();
  }
}

void SummaryCache::EraseLocked(std::map<std::string, Entry>::iterator it) {
  bytes_ -= it->second.approx_bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

void SummaryCache::InsertLocked(const std::string& key, Entry entry) {
  auto existing = entries_.find(key);
  if (existing != entries_.end()) EraseLocked(existing);
  lru_.push_front(key);
  entry.lru_pos = lru_.begin();
  bytes_ += entry.approx_bytes;
  entries_.emplace(key, std::move(entry));
  EvictToBudgetLocked();
  PublishBytesLocked();
}

void SummaryCache::PublishBytesLocked() {
  BytesGauge().Set(static_cast<double>(bytes_));
}

size_t SummaryCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t SummaryCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

size_t SummaryCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

size_t SummaryCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

size_t SummaryCache::stale_inserts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stale_inserts_;
}

size_t SummaryCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

size_t SummaryCache::shared_fills() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shared_fills_;
}

}  // namespace pctagg
