#include "core/summary_cache.h"

#include "common/string_util.h"
#include "obs/metrics.h"

namespace pctagg {

namespace {

// Process-wide mirrors of the per-cache counters, so the STATS verb sees
// cache behaviour without reaching into individual PctDatabase instances.
// Registration is hoisted into function-local statics (GetCounter locks).
obs::Counter& HitCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_summary_cache_hits_total",
      "Summary-cache lookups answered without a scan");
  return c;
}
obs::Counter& MissCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_summary_cache_misses_total", "Summary-cache lookups that missed");
  return c;
}
obs::Counter& StaleCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_summary_cache_stale_inserts_total",
      "Cache fills rejected because the base table changed mid-scan");
  return c;
}
obs::Counter& InvalidationCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_summary_cache_invalidations_total",
      "Base-table invalidations (table replaced or cache cleared)");
  return c;
}

}  // namespace

std::string SummaryCache::KeyFor(const std::string& base_table,
                                 const std::vector<std::string>& group_by,
                                 const std::string& rendered_aggs) {
  std::vector<std::string> lowered;
  lowered.reserve(group_by.size());
  for (const std::string& g : group_by) lowered.push_back(ToLower(g));
  return ToLower(base_table) + "|" + Join(lowered, ",") + "|" + rendered_aggs;
}

std::shared_ptr<const Table> SummaryCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    MissCounter().Add();
    return nullptr;
  }
  ++hits_;
  HitCounter().Add();
  return it->second.summary;
}

uint64_t SummaryCache::GenerationFor(const std::string& base_table) const {
  std::string lowered = ToLower(base_table);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = generations_.find(lowered);
  return it == generations_.end() ? 0 : it->second;
}

void SummaryCache::Insert(const std::string& key, const Table& summary,
                          uint64_t generation) {
  std::string base = ToLower(key.substr(0, key.find('|')));
  // Copying the table outside the lock keeps fills from serializing lookups.
  auto snapshot = std::make_shared<const Table>(summary);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = generations_.find(base);
  uint64_t current = it == generations_.end() ? 0 : it->second;
  if (current != generation) {
    ++stale_inserts_;  // base table invalidated while the fill was computing
    StaleCounter().Add();
    return;
  }
  entries_.insert_or_assign(key, Entry{std::move(base), std::move(snapshot)});
}

void SummaryCache::Insert(const std::string& key, const Table& summary) {
  std::string base = ToLower(key.substr(0, key.find('|')));
  Insert(key, summary, GenerationFor(base));
}

void SummaryCache::InvalidateTable(const std::string& base_table) {
  std::string lowered = ToLower(base_table);
  InvalidationCounter().Add();
  std::lock_guard<std::mutex> lock(mutex_);
  ++generations_[lowered];
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.base_table == lowered) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void SummaryCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, entry] : entries_) ++generations_[entry.base_table];
  entries_.clear();
}

size_t SummaryCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t SummaryCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

size_t SummaryCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

size_t SummaryCache::stale_inserts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stale_inserts_;
}

}  // namespace pctagg
