#include "core/summary_cache.h"

#include "common/string_util.h"

namespace pctagg {

std::string SummaryCache::KeyFor(const std::string& base_table,
                                 const std::vector<std::string>& group_by,
                                 const std::string& rendered_aggs) {
  std::vector<std::string> lowered;
  lowered.reserve(group_by.size());
  for (const std::string& g : group_by) lowered.push_back(ToLower(g));
  return ToLower(base_table) + "|" + Join(lowered, ",") + "|" + rendered_aggs;
}

std::shared_ptr<const Table> SummaryCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second.summary;
}

void SummaryCache::Insert(const std::string& key, const Table& summary) {
  std::string base = ToLower(key.substr(0, key.find('|')));
  auto snapshot = std::make_shared<const Table>(summary);
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.insert_or_assign(key, Entry{std::move(base), std::move(snapshot)});
}

void SummaryCache::InvalidateTable(const std::string& base_table) {
  std::string lowered = ToLower(base_table);
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.base_table == lowered) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void SummaryCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

size_t SummaryCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t SummaryCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

size_t SummaryCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace pctagg
