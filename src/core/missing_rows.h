#ifndef PCTAGG_CORE_MISSING_ROWS_H_
#define PCTAGG_CORE_MISSING_ROWS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/table.h"

namespace pctagg {

// Implements the two optional missing-row treatments of paper Section 3.1.

// Post-processing: inserts into `result` one row for every
// (totals-group x BY-combination) pair that is absent. Totals groups are the
// distinct `totals_by` values already in `result`; BY combinations are the
// distinct `by_columns` values of `fact` (the F-wide domain the paper
// prescribes). Inserted rows carry 0 in every `pct_columns` entry and NULL in
// any other non-key column. `totals_by` may be empty (grand-total queries).
Status InsertMissingResultRows(const Table& fact,
                               const std::vector<std::string>& totals_by,
                               const std::vector<std::string>& by_columns,
                               const std::vector<std::string>& pct_columns,
                               Table* result);

// Pre-processing: returns a copy of `fact` extended with one zero-measure row
// per missing (totals-group x BY-combination) pair. The appended rows hold
// the pair's dimension values, 0 in each of `measure_columns`, and NULL
// everywhere else — which is why a subsequent Vpct(1) row-count percentage
// over the expanded table is (deliberately, per the paper) wrong.
Result<Table> ExpandFactWithMissingRows(
    const Table& fact, const std::vector<std::string>& totals_by,
    const std::vector<std::string>& by_columns,
    const std::vector<std::string>& measure_columns);

}  // namespace pctagg

#endif  // PCTAGG_CORE_MISSING_ROWS_H_
