#include "core/horizontal_planner.h"

#include <utility>

#include "common/string_util.h"
#include "engine/aggregate.h"
#include "engine/join.h"
#include "engine/pivot.h"
#include "engine/table_ops.h"

namespace pctagg {

namespace {

// The aggregate evaluated against the fact table for one horizontal term.
Result<AggFunc> DirectFunc(const AnalyzedTerm& t) {
  switch (t.func) {
    case TermFunc::kHpct:
    case TermFunc::kSum:
      return AggFunc::kSum;
    case TermFunc::kCount:
      return AggFunc::kCount;
    case TermFunc::kCountStar:
      return AggFunc::kCountStar;
    case TermFunc::kAvg:
      return AggFunc::kAvg;
    case TermFunc::kMin:
      return AggFunc::kMin;
    case TermFunc::kMax:
      return AggFunc::kMax;
    default:
      return Status::Internal("not a horizontal term");
  }
}

// How per-(D1..Dk) partial aggregates in FV are combined into cells. Only
// distributive functions qualify (the reason avg has no from-FV strategy).
Result<AggFunc> CombineFunc(AggFunc direct) {
  switch (direct) {
    case AggFunc::kSum:
    case AggFunc::kCount:       // counts combine by summing
    case AggFunc::kCountStar:
      return AggFunc::kSum;
    case AggFunc::kMin:
      return AggFunc::kMin;
    case AggFunc::kMax:
      return AggFunc::kMax;
    case AggFunc::kAvg:
      return Status::InvalidArgument(
          "avg() is not distributive: use a direct (from F) strategy");
  }
  return Status::Internal("unknown aggregate");
}

// Equality conjunction matching one distinct BY combination; NULL dimension
// values match via IS NULL so every fact row lands in exactly one column.
ExprPtr ComboPredicate(const Table& combos, size_t row) {
  std::vector<ExprPtr> terms;
  for (size_t c = 0; c < combos.num_columns(); ++c) {
    const std::string& name = combos.schema().column(c).name;
    Value v = combos.column(c).GetValue(row);
    terms.push_back(v.is_null() ? IsNull(Col(name)) : Eq(Col(name), Lit(v)));
  }
  return AndAll(std::move(terms));
}

// Runtime parameters of one horizontal term's block computation.
struct BlockSpec {
  std::vector<std::string> group_by;
  std::vector<std::string> by_columns;
  ExprPtr value;  // null only for count(*)
  AggFunc func = AggFunc::kSum;
  bool percent = false;       // divide cells by the group total (Hpct direct)
  bool default_zero = false;  // coalesce NULL cells to 0
  std::string cell_prefix;    // disambiguates cells across terms
  // avg() through FV is computed algebraically: cells combine partial sums
  // (`value`) and partial counts (`count_value`) and divide at the end.
  ExprPtr count_value;  // non-null enables the avg decomposition
};

// Renames cell columns (everything after the group columns) with `prefix`.
Status PrefixCells(Table* block, size_t num_keys, const std::string& prefix) {
  if (prefix.empty()) return Status::OK();
  for (size_t c = num_keys; c < block->num_columns(); ++c) {
    PCTAGG_RETURN_IF_ERROR(
        block->RenameColumn(c, prefix + block->schema().column(c).name));
  }
  return Status::OK();
}

// CASE-strategy block: one GROUP BY pass over `source`, either via the
// hash-dispatch pivot operator or by literally evaluating the N generated
// CASE expressions (the unoptimized plan both papers measure).
Result<Table> ComputeCaseBlock(const Table& source, const BlockSpec& spec,
                               bool hash_dispatch) {
  if (hash_dispatch) {
    PivotOptions options;
    options.func = spec.func;
    options.default_zero = spec.default_zero;
    options.percent_of_group_total = spec.percent;
    PCTAGG_ASSIGN_OR_RETURN(
        Table block, HashDispatchPivot(source, spec.group_by, spec.by_columns,
                                       spec.value, options));
    PCTAGG_RETURN_IF_ERROR(
        PrefixCells(&block, spec.group_by.size(), spec.cell_prefix));
    return block;
  }

  // Naive O(N)-CASE evaluation of the same statement. Combinations are
  // sorted so the result columns line up with the hash-dispatch pivot.
  PCTAGG_ASSIGN_OR_RETURN(Table combos, Distinct(source, spec.by_columns));
  PCTAGG_ASSIGN_OR_RETURN(combos, Sort(combos, spec.by_columns));
  const size_t n_cells = combos.num_rows();
  std::vector<std::string> cell_names;
  cell_names.reserve(n_cells);
  for (size_t i = 0; i < n_cells; ++i) {
    cell_names.push_back(PivotColumnName(combos, i));
  }

  std::vector<AggSpec> aggs;
  for (size_t i = 0; i < n_cells; ++i) {
    ExprPtr pred = ComboPredicate(combos, i);
    ExprPtr cell_input;
    AggFunc cell_func = spec.func;
    if (spec.percent) {
      // sum(CASE WHEN <combo> THEN A ELSE 0 END)
      cell_input = CaseWhen({{pred, spec.value}}, Lit(Value::Int64(0)));
      cell_func = AggFunc::kSum;
    } else {
      switch (spec.func) {
        case AggFunc::kCountStar:
          // sum(CASE WHEN <combo> THEN 1 ELSE null END)
          cell_input = CaseWhen({{pred, Lit(Value::Int64(1))}}, nullptr);
          cell_func = AggFunc::kSum;
          break;
        case AggFunc::kCount:
          // sum(CASE WHEN <combo> THEN (arg non-null ? 1 : 0) ELSE null END)
          cell_input = CaseWhen(
              {{pred, CaseWhen({{Not(IsNull(spec.value)),
                                 Lit(Value::Int64(1))}},
                               Lit(Value::Int64(0)))}},
              nullptr);
          cell_func = AggFunc::kSum;
          break;
        default:
          // f(CASE WHEN <combo> THEN A ELSE null END)
          cell_input = CaseWhen({{pred, spec.value}}, nullptr);
          break;
      }
    }
    aggs.push_back({cell_func, cell_input, "__cell_" + std::to_string(i)});
  }
  if (spec.percent) {
    aggs.push_back({AggFunc::kSum, spec.value, "__total"});
  }
  PCTAGG_ASSIGN_OR_RETURN(Table agg,
                          HashAggregate(source, spec.group_by, aggs));

  // Post-projection: divisions for percent mode, DEFAULT-0 coalescing, and
  // the final cell names.
  std::vector<ProjectSpec> specs;
  for (size_t k = 0; k < spec.group_by.size(); ++k) {
    specs.push_back({Col(spec.group_by[k]), spec.group_by[k]});
  }
  for (size_t i = 0; i < n_cells; ++i) {
    ExprPtr cell = Col("__cell_" + std::to_string(i));
    if (spec.percent) {
      cell = Div(CaseWhen({{IsNull(cell), Lit(Value::Int64(0))}}, cell),
                 Col("__total"));
    }
    if (spec.default_zero) {
      cell = CaseWhen({{IsNull(cell), Lit(Value::Float64(0.0))}}, cell);
    }
    specs.push_back({cell, spec.cell_prefix + cell_names[i]});
  }
  return Project(agg, specs);
}

// SPJ-strategy block: one aggregate table per cell plus N left outer joins
// (DMKD Section 3.4), generalized with the group-total division for Hpct.
Result<Table> ComputeSpjBlock(const Table& source, const BlockSpec& spec) {
  PCTAGG_ASSIGN_OR_RETURN(Table combos, Distinct(source, spec.by_columns));
  PCTAGG_ASSIGN_OR_RETURN(combos, Sort(combos, spec.by_columns));
  const size_t n_cells = combos.num_rows();
  std::vector<std::string> cell_names;
  cell_names.reserve(n_cells);
  for (size_t i = 0; i < n_cells; ++i) {
    cell_names.push_back("__cell_" + std::to_string(i));
  }

  AggFunc cell_func = spec.percent ? AggFunc::kSum : spec.func;

  if (spec.group_by.empty()) {
    // Single result row: assemble the global aggregates column by column.
    Table block;
    for (size_t i = 0; i < n_cells; ++i) {
      PCTAGG_ASSIGN_OR_RETURN(Table filtered,
                              Filter(source, ComboPredicate(combos, i)));
      PCTAGG_ASSIGN_OR_RETURN(
          Table fi,
          HashAggregate(filtered, {}, {{cell_func, spec.value, cell_names[i]}}));
      PCTAGG_RETURN_IF_ERROR(block.AddColumn(fi.schema().column(0),
                                             fi.column(0)));
    }
    if (spec.percent) {
      PCTAGG_ASSIGN_OR_RETURN(
          Table tot,
          HashAggregate(source, {}, {{AggFunc::kSum, spec.value, "__total"}}));
      PCTAGG_RETURN_IF_ERROR(
          block.AddColumn(tot.schema().column(0), tot.column(0)));
    }
    // Fall through to the shared projection below via a rename pass.
    std::vector<ProjectSpec> specs;
    for (size_t i = 0; i < n_cells; ++i) {
      ExprPtr cell = Col(cell_names[i]);
      if (spec.percent) {
        cell = Div(CaseWhen({{IsNull(cell), Lit(Value::Int64(0))}}, cell),
                   Col("__total"));
      }
      if (spec.default_zero) {
        cell = CaseWhen({{IsNull(cell), Lit(Value::Float64(0.0))}}, cell);
      }
      specs.push_back({cell, spec.cell_prefix + PivotColumnName(combos, i)});
    }
    return Project(block, specs);
  }

  // F0 defines the result rows; for Hpct it also carries the group totals.
  Table current;
  if (spec.percent) {
    PCTAGG_ASSIGN_OR_RETURN(
        current, HashAggregate(source, spec.group_by,
                               {{AggFunc::kSum, spec.value, "__total"}}));
  } else {
    PCTAGG_ASSIGN_OR_RETURN(current, Distinct(source, spec.group_by));
  }

  for (size_t i = 0; i < n_cells; ++i) {
    PCTAGG_ASSIGN_OR_RETURN(Table filtered,
                            Filter(source, ComboPredicate(combos, i)));
    PCTAGG_ASSIGN_OR_RETURN(
        Table fi, HashAggregate(filtered, spec.group_by,
                                {{cell_func, spec.value, cell_names[i]}}));
    std::vector<JoinOutput> outputs;
    for (size_t c = 0; c < current.num_columns(); ++c) {
      outputs.push_back(JoinOutput::Left(current.schema().column(c).name));
    }
    outputs.push_back(JoinOutput::Right(cell_names[i]));
    PCTAGG_ASSIGN_OR_RETURN(
        current, HashJoin(current, fi, spec.group_by, spec.group_by,
                          JoinKind::kLeftOuter, outputs, nullptr,
                          /*null_safe=*/true));
  }

  std::vector<ProjectSpec> specs;
  for (const std::string& g : spec.group_by) specs.push_back({Col(g), g});
  for (size_t i = 0; i < n_cells; ++i) {
    ExprPtr cell = Col(cell_names[i]);
    if (spec.percent) {
      cell = Div(CaseWhen({{IsNull(cell), Lit(Value::Int64(0))}}, cell),
                 Col("__total"));
    }
    if (spec.default_zero) {
      cell = CaseWhen({{IsNull(cell), Lit(Value::Float64(0.0))}}, cell);
    }
    specs.push_back({cell, spec.cell_prefix + PivotColumnName(combos, i)});
  }
  return Project(current, specs);
}

// avg-through-FV: cells = (pivot of partial sums) / (pivot of partial
// counts), paired positionally — both pivots see the same input, so groups
// and combination columns line up exactly.
Result<Table> ComputeAvgRatioBlock(const Table& source, const BlockSpec& spec,
                                   bool spj, bool hash_dispatch) {
  BlockSpec sums = spec;
  sums.count_value = nullptr;
  sums.cell_prefix.clear();
  BlockSpec counts = sums;
  counts.value = spec.count_value;
  PCTAGG_ASSIGN_OR_RETURN(
      Table sum_block, spj ? ComputeSpjBlock(source, sums)
                           : ComputeCaseBlock(source, sums, hash_dispatch));
  PCTAGG_ASSIGN_OR_RETURN(
      Table cnt_block, spj ? ComputeSpjBlock(source, counts)
                           : ComputeCaseBlock(source, counts, hash_dispatch));
  if (sum_block.num_rows() != cnt_block.num_rows() ||
      sum_block.num_columns() != cnt_block.num_columns()) {
    return Status::Internal("avg decomposition blocks disagree");
  }
  Table out;
  const size_t keys = spec.group_by.size();
  for (size_t c = 0; c < keys; ++c) {
    PCTAGG_RETURN_IF_ERROR(
        out.AddColumn(sum_block.schema().column(c), sum_block.column(c)));
  }
  for (size_t c = keys; c < sum_block.num_columns(); ++c) {
    const Column& s = sum_block.column(c);
    const Column& n = cnt_block.column(c);
    Column cell(DataType::kFloat64);
    cell.Reserve(sum_block.num_rows());
    for (size_t i = 0; i < sum_block.num_rows(); ++i) {
      if (s.IsNull(i) || n.IsNull(i) || n.NumericAt(i) == 0.0) {
        cell.AppendNull();
      } else {
        cell.AppendFloat64(s.NumericAt(i) / n.NumericAt(i));
      }
    }
    PCTAGG_RETURN_IF_ERROR(out.AddColumn(
        {spec.cell_prefix + sum_block.schema().column(c).name,
         DataType::kFloat64},
        std::move(cell)));
  }
  if (spec.default_zero) {
    for (size_t c = keys; c < out.num_columns(); ++c) {
      Column& cell = out.mutable_column(c);
      for (size_t i = 0; i < cell.size(); ++i) {
        if (cell.IsNull(i)) {
          PCTAGG_RETURN_IF_ERROR(cell.SetValue(i, Value::Float64(0.0)));
        }
      }
    }
  }
  return out;
}

// SQL text of the canonical CASE statement for one term (for plan output).
// `value_sql` is what the pivot actually aggregates: the term argument when
// reading F directly, or the FV column (__pv / __v) in indirect strategies.
std::string RenderCaseSql(const std::string& dest, const std::string& src,
                          const AnalyzedTerm& t, const std::string& value_sql,
                          const std::vector<std::string>& group_by,
                          bool percent) {
  std::string cell = "sum(CASE WHEN " + Join(t.by_columns, ",") +
                     " = v_1..v_N THEN " + value_sql +
                     (percent ? " ELSE 0 END) / sum(" + value_sql + ")"
                              : " ELSE NULL END)");
  std::string sql = "INSERT INTO " + dest + " SELECT " +
                    (group_by.empty() ? "" : Join(group_by, ", ") + ", ") +
                    cell + ", ...xN FROM " + src;
  if (!group_by.empty()) sql += " GROUP BY " + Join(group_by, ", ");
  return sql;
}

}  // namespace

const char* HorizontalMethodName(HorizontalMethod method) {
  switch (method) {
    case HorizontalMethod::kCaseDirect:
      return "CASE-from-F";
    case HorizontalMethod::kCaseFromFV:
      return "CASE-from-FV";
    case HorizontalMethod::kSpjDirect:
      return "SPJ-from-F";
    case HorizontalMethod::kSpjFromFV:
      return "SPJ-from-FV";
  }
  return "?";
}

Result<Plan> PlanHorizontalQuery(const AnalyzedQuery& query,
                                 const HorizontalStrategy& strategy) {
  if (query.query_class != QueryClass::kHorizontal) {
    return Status::InvalidArgument(
        "PlanHorizontalQuery requires a horizontal query");
  }
  const bool from_fv = strategy.method == HorizontalMethod::kCaseFromFV ||
                       strategy.method == HorizontalMethod::kSpjFromFV;
  const bool spj = strategy.method == HorizontalMethod::kSpjDirect ||
                   strategy.method == HorizontalMethod::kSpjFromFV;

  Plan plan;
  std::string source = query.table_name;
  if (query.where != nullptr) {
    std::string fw = NewTempName("Fw");
    ExprPtr where = query.where;
    plan.AddStep("INSERT INTO " + fw + " SELECT * FROM " + source + " WHERE " +
                     where->ToString(),
                 [src = source, fw, where](ExecContext* ctx) -> Status {
                   PCTAGG_ASSIGN_OR_RETURN(const Table* input,
                                           ctx->catalog->GetTable(src));
                   PCTAGG_ASSIGN_OR_RETURN(Table out, Filter(*input, where));
                   ctx->catalog->CreateOrReplaceTable(fw, std::move(out));
                   return Status::OK();
                 });
    plan.AddTempTable(fw);
    source = fw;
  }

  // Separate horizontal terms from the extra vertical aggregates.
  std::vector<const AnalyzedTerm*> horizontal_terms;
  std::vector<AggSpec> extra_aggs;
  for (const AnalyzedTerm& t : query.terms) {
    if (t.func == TermFunc::kScalar) continue;
    if (t.has_by) {
      horizontal_terms.push_back(&t);
    } else {
      PCTAGG_ASSIGN_OR_RETURN(AggFunc func, DirectFunc(t));
      if (t.distinct) {
        return Status::InvalidArgument(
            "count(DISTINCT ...) without BY is not supported here");
      }
      extra_aggs.push_back({func, t.argument, t.output_name});
    }
  }
  // Cell names only need disambiguation when two horizontal terms could
  // produce the same combination columns.
  const bool multi_horizontal = horizontal_terms.size() > 1;

  // One block per horizontal term.
  std::vector<std::string> block_names;
  for (size_t ti = 0; ti < horizontal_terms.size(); ++ti) {
    const AnalyzedTerm& t = *horizontal_terms[ti];
    PCTAGG_ASSIGN_OR_RETURN(AggFunc direct_func, DirectFunc(t));
    const bool is_pct = t.func == TermFunc::kHpct;

    BlockSpec spec;
    spec.group_by = query.group_by;
    spec.by_columns = t.by_columns;
    spec.default_zero = t.has_default;  // DEFAULT only ever written as 0
    spec.cell_prefix = multi_horizontal ? t.output_name + "." : "";

    std::string block_source = source;
    if (t.distinct) {
      // count(DISTINCT A BY ...): pre-project the distinct tuples, then a
      // plain per-cell count over them. Direct strategies only.
      if (from_fv) {
        return Status::InvalidArgument(
            "count(DISTINCT ...) requires a direct (from F) strategy");
      }
      std::string arg = t.argument->ToString();
      if (!query.schema.HasColumn(arg)) {
        return Status::InvalidArgument(
            "count(DISTINCT ...) requires a plain column argument");
      }
      std::string fd = NewTempName("Fd");
      std::vector<std::string> cols = query.group_by;
      cols.insert(cols.end(), t.by_columns.begin(), t.by_columns.end());
      cols.push_back(arg);
      plan.AddStep(
          "INSERT INTO " + fd + " SELECT DISTINCT " + Join(cols, ", ") +
              " FROM " + block_source,
          [src = block_source, fd, cols](ExecContext* ctx) -> Status {
            PCTAGG_ASSIGN_OR_RETURN(const Table* input,
                                    ctx->catalog->GetTable(src));
            PCTAGG_ASSIGN_OR_RETURN(Table out, Distinct(*input, cols));
            ctx->catalog->CreateOrReplaceTable(fd, std::move(out));
            return Status::OK();
          });
      plan.AddTempTable(fd);
      block_source = fd;
      spec.func = AggFunc::kCount;
      spec.value = Col(arg);
      spec.percent = false;
    } else if (from_fv) {
      if (is_pct) {
        // FV = the full vertical-percentage result, then transpose it.
        AnalyzedQuery sub;
        sub.table_name = block_source;
        sub.schema = query.schema;
        sub.query_class = QueryClass::kVpct;
        sub.has_group_by = true;
        sub.group_by = query.group_by;
        sub.group_by.insert(sub.group_by.end(), t.by_columns.begin(),
                            t.by_columns.end());
        for (const std::string& g : sub.group_by) {
          AnalyzedTerm sterm;
          sterm.func = TermFunc::kScalar;
          sterm.argument = Col(g);
          sterm.scalar_column = g;
          sterm.output_name = g;
          sub.terms.push_back(std::move(sterm));
        }
        AnalyzedTerm vterm;
        vterm.func = TermFunc::kVpct;
        vterm.argument = t.argument;
        vterm.has_by = true;
        vterm.by_columns = t.by_columns;
        vterm.totals_by = query.group_by;
        vterm.output_name = "__pv";
        sub.terms.push_back(std::move(vterm));
        PCTAGG_ASSIGN_OR_RETURN(Plan sub_plan,
                                PlanVpctQuery(sub, strategy.vpct));
        std::string fv = plan.AppendPlan(std::move(sub_plan));
        block_source = fv;
        spec.func = AggFunc::kSum;
        spec.value = Col("__pv");
        spec.percent = false;
        spec.default_zero = true;  // absent combinations are 0%
      } else if (direct_func == AggFunc::kAvg) {
        // avg() is algebraic, not distributive: FV carries the (sum, count)
        // pair and the cells divide the re-aggregated partials.
        std::string fv = NewTempName("FVh");
        std::vector<std::string> fv_group = query.group_by;
        fv_group.insert(fv_group.end(), t.by_columns.begin(),
                        t.by_columns.end());
        // The (sum, count) decomposition is distributive, so when FVh comes
        // straight off the base table the shared cacheable step makes it
        // append-maintainable — unlike a cached avg column.
        AddCacheableAggregateStep(&plan, block_source, fv, fv_group,
                                  {{AggFunc::kSum, t.argument, "__vs"},
                                   {AggFunc::kCount, t.argument, "__vc"}},
                                  /*cacheable=*/block_source ==
                                      query.table_name);
        block_source = fv;
        spec.func = AggFunc::kSum;
        spec.value = Col("__vs");
        spec.count_value = Col("__vc");
        spec.percent = false;
      } else {
        // FV = the vertical aggregate at level D1..Dj, Dh..Dk.
        PCTAGG_ASSIGN_OR_RETURN(AggFunc combine, CombineFunc(direct_func));
        std::string fv = NewTempName("FVh");
        std::vector<std::string> fv_group = query.group_by;
        fv_group.insert(fv_group.end(), t.by_columns.begin(),
                        t.by_columns.end());
        AddCacheableAggregateStep(&plan, block_source, fv, fv_group,
                                  {{direct_func, t.argument, "__v"}},
                                  /*cacheable=*/block_source ==
                                      query.table_name);
        block_source = fv;
        spec.func = combine;
        spec.value = Col("__v");
        spec.percent = false;
      }
    } else {
      spec.func = direct_func;
      spec.value = t.func == TermFunc::kCountStar ? nullptr : t.argument;
      spec.percent = is_pct;
    }

    std::string block = NewTempName("FH");
    std::string value_sql =
        spec.value != nullptr
            ? spec.value->ToString()
            : (t.func == TermFunc::kCountStar ? "1" : t.argument->ToString());
    std::string sql =
        spj ? "/* SPJ: F0 + one F_I per combination, N left outer joins */ "
              "INSERT INTO " + block + " SELECT ... FROM " + block_source
            : RenderCaseSql(block, block_source, t, value_sql, query.group_by,
                            spec.percent);
    plan.AddStep(sql, [block_source, block, spec, spj,
                       hash_dispatch = strategy.hash_dispatch](
                          ExecContext* ctx) -> Status {
      PCTAGG_ASSIGN_OR_RETURN(const Table* input,
                              ctx->catalog->GetTable(block_source));
      Result<Table> out = [&]() -> Result<Table> {
        if (spec.count_value != nullptr) {
          return ComputeAvgRatioBlock(*input, spec, spj, hash_dispatch);
        }
        return spj ? ComputeSpjBlock(*input, spec)
                   : ComputeCaseBlock(*input, spec, hash_dispatch);
      }();
      if (!out.ok()) return out.status();
      ctx->catalog->CreateOrReplaceTable(block, std::move(out).value());
      return Status::OK();
    });
    plan.AddTempTable(block);
    block_names.push_back(block);
  }

  // Vertical-aggregate block (sum(salesAmt) etc. grouped by D1..Dj).
  if (!extra_aggs.empty()) {
    std::string va = NewTempName("FA");
    std::vector<std::string> rendered = query.group_by;
    for (const AggSpec& a : extra_aggs) {
      std::string arg = a.func == AggFunc::kCountStar ? "*" : a.input->ToString();
      rendered.push_back(std::string(AggFuncName(a.func)) + "(" + arg +
                         ") AS " + a.output_name);
    }
    std::string sql = "INSERT INTO " + va + " SELECT " + Join(rendered, ", ") +
                      " FROM " + source;
    if (!query.group_by.empty()) sql += " GROUP BY " + Join(query.group_by, ", ");
    plan.AddStep(sql, [src = source, va, group_by = query.group_by,
                       extra_aggs](ExecContext* ctx) -> Status {
      PCTAGG_ASSIGN_OR_RETURN(const Table* input, ctx->catalog->GetTable(src));
      PCTAGG_ASSIGN_OR_RETURN(Table out,
                              HashAggregate(*input, group_by, extra_aggs));
      ctx->catalog->CreateOrReplaceTable(va, std::move(out));
      return Status::OK();
    });
    plan.AddTempTable(va);
    block_names.push_back(va);
  }

  if (block_names.empty()) {
    return Status::Internal("horizontal query produced no blocks");
  }

  // Assemble blocks into the final FH.
  std::string fh = NewTempName("FHout");
  if (block_names.size() == 1) {
    plan.AddStep("/* FH = " + block_names[0] + " */",
                 [b = block_names[0], fh](ExecContext* ctx) -> Status {
                   PCTAGG_ASSIGN_OR_RETURN(Table* t, ctx->catalog->GetTable(b));
                   ctx->catalog->CreateOrReplaceTable(fh, std::move(*t));
                   return Status::OK();
                 });
  } else {
    std::string sql = "INSERT INTO " + fh + " SELECT * FROM " +
                      Join(block_names, " LEFT OUTER JOIN ") +
                      (query.group_by.empty()
                           ? ""
                           : " ON " + Join(query.group_by, ", "));
    plan.AddStep(sql, [blocks = block_names, fh,
                       group_by = query.group_by](ExecContext* ctx) -> Status {
      PCTAGG_ASSIGN_OR_RETURN(Table* first, ctx->catalog->GetTable(blocks[0]));
      Table current = std::move(*first);
      for (size_t b = 1; b < blocks.size(); ++b) {
        PCTAGG_ASSIGN_OR_RETURN(const Table* next,
                                ctx->catalog->GetTable(blocks[b]));
        if (group_by.empty()) {
          // Single-row blocks: concatenate columns.
          for (size_t c = 0; c < next->num_columns(); ++c) {
            PCTAGG_RETURN_IF_ERROR(current.AddColumn(
                next->schema().column(c), next->column(c)));
          }
          continue;
        }
        std::vector<JoinOutput> outputs;
        for (size_t c = 0; c < current.num_columns(); ++c) {
          outputs.push_back(JoinOutput::Left(current.schema().column(c).name));
        }
        for (size_t c = 0; c < next->num_columns(); ++c) {
          const std::string& name = next->schema().column(c).name;
          bool is_key = false;
          for (const std::string& g : group_by) {
            if (EqualsIgnoreCase(g, name)) {
              is_key = true;
              break;
            }
          }
          if (!is_key) outputs.push_back(JoinOutput::Right(name));
        }
        PCTAGG_ASSIGN_OR_RETURN(
            current, HashJoin(current, *next, group_by, group_by,
                              JoinKind::kLeftOuter, outputs, nullptr,
                              /*null_safe=*/true));
      }
      ctx->catalog->CreateOrReplaceTable(fh, std::move(current));
      return Status::OK();
    });
  }
  plan.AddTempTable(fh);

  if (strategy.order_result && !query.group_by.empty()) {
    plan.AddStep("/* display */ ORDER BY " + Join(query.group_by, ", "),
                 [fh, group_by = query.group_by](ExecContext* ctx) -> Status {
                   PCTAGG_ASSIGN_OR_RETURN(Table* t, ctx->catalog->GetTable(fh));
                   PCTAGG_ASSIGN_OR_RETURN(Table sorted, Sort(*t, group_by));
                   *t = std::move(sorted);
                   return Status::OK();
                 });
  }

  plan.set_result_table(fh);
  return plan;
}

}  // namespace pctagg
