#ifndef PCTAGG_CORE_PARTITION_H_
#define PCTAGG_CORE_PARTITION_H_

#include <vector>

#include "common/result.h"
#include "engine/table.h"

namespace pctagg {

// Handles the practical limit both papers call out: a horizontal result can
// exceed the DBMS's maximum column count (Hpct Section "Issues", DMKD
// Section 3.6). The prescribed fix is vertical partitioning — split FH into
// several tables, each carrying the primary key D1..Dj plus at most
// `max_columns` total columns.
//
// `key_columns` must be a prefix-independent subset of `wide`'s columns; the
// remaining (cell) columns are distributed over partitions in order. Errors
// if max_columns cannot even hold the key plus one cell.
Result<std::vector<Table>> VerticallyPartition(
    const Table& wide, const std::vector<std::string>& key_columns,
    size_t max_columns);

}  // namespace pctagg

#endif  // PCTAGG_CORE_PARTITION_H_
