#include "core/pipeline_plan.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/string_util.h"
#include "engine/aggregate.h"
#include "engine/expression.h"
#include "engine/join.h"
#include "engine/pipeline.h"
#include "engine/pivot.h"

namespace pctagg {

namespace {

// Maps a non-percentage SELECT term onto the engine aggregate, exactly as
// the materialized planners do. Fails for terms neither planner accepts.
Result<AggFunc> TermAggFunc(TermFunc func) {
  switch (func) {
    case TermFunc::kSum:
      return AggFunc::kSum;
    case TermFunc::kCount:
      return AggFunc::kCount;
    case TermFunc::kCountStar:
      return AggFunc::kCountStar;
    case TermFunc::kAvg:
      return AggFunc::kAvg;
    case TermFunc::kMin:
      return AggFunc::kMin;
    case TermFunc::kMax:
      return AggFunc::kMax;
    default:
      return Status::Internal("not a vertical aggregate term");
  }
}

// Same rendering AddCacheableAggregateStep uses, so the fused pipeline and
// the materialized plans share summary-cache entries for identical work.
std::string RenderAggs(const std::vector<AggSpec>& aggs) {
  std::vector<std::string> rendered;
  rendered.reserve(aggs.size());
  for (const AggSpec& a : aggs) {
    std::string arg = a.func == AggFunc::kCountStar ? "*" : a.input->ToString();
    rendered.push_back(std::string(AggFuncName(a.func)) + "(" + arg + ") AS " +
                       a.output_name);
  }
  return Join(rendered, ",");
}

// SQL-ish description of one fused stage for EXPLAIN ANALYZE.
std::string RenderStage(const std::string& what,
                        const std::vector<std::string>& group_by,
                        const std::vector<AggSpec>& aggs,
                        const std::string& from, const ExprPtr& where) {
  std::vector<std::string> cols = group_by;
  for (const AggSpec& a : aggs) {
    std::string arg = a.func == AggFunc::kCountStar ? "*" : a.input->ToString();
    cols.push_back(std::string(AggFuncName(a.func)) + "(" + arg + ") AS " +
                   a.output_name);
  }
  std::string sql = what + " SELECT " + Join(cols, ", ") + " FROM " + from;
  if (where != nullptr) sql += " WHERE " + where->ToString();
  if (!group_by.empty()) sql += " GROUP BY " + Join(group_by, ", ");
  return sql;
}

Result<size_t> ColIndex(const Table& t, const std::string& name) {
  for (size_t c = 0; c < t.num_columns(); ++c) {
    if (EqualsIgnoreCase(t.schema().column(c).name, name)) return c;
  }
  return Status::Internal("fused pipeline lost column: " + name);
}

// Same lattice subsumption test as the materialized Vpct planner.
bool Subsumes(const std::vector<std::string>& outer,
              const std::vector<std::string>& inner) {
  for (const std::string& i : inner) {
    bool found = false;
    for (const std::string& o : outer) {
      if (EqualsIgnoreCase(o, i)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

// Runs `fn` with the fused Fk/FVh stage traced, consulting and filling the
// summary cache under the materialized planner's key so both paths share
// entries (unfiltered scans of the base table only).
Result<Table> CachedFusedAggregate(const AnalyzedQuery& query,
                                   const Table& fact,
                                   const std::vector<std::string>& group_by,
                                   const std::vector<AggSpec>& aggs,
                                   SummaryCache* summaries,
                                   obs::QueryTrace* trace, size_t dop) {
  std::string cache_key;
  uint64_t generation = 0;
  std::shared_ptr<const Table> cached;
  bool own_fill = false;
  if (query.where == nullptr && summaries != nullptr) {
    cache_key =
        SummaryCache::KeyFor(query.table_name, group_by, RenderAggs(aggs));
    // Single-flight: identical concurrent misses block here while one of
    // them scans; the owner reads the generation only after claiming the
    // fill, so the stale-insert check still covers its whole scan window.
    own_fill = summaries->LookupOrBeginFill(cache_key, &cached);
    if (own_fill) generation = summaries->GenerationFor(query.table_name);
  }
  SummaryCache::ScopedFill fill(own_fill ? summaries : nullptr, cache_key);
  obs::TraceNode* node =
      trace != nullptr
          ? trace->root().AddChild(
                "fused", RenderStage("fused-scan:", group_by, aggs,
                                     query.table_name, query.where))
          : nullptr;
  obs::ScopedTraceNode scope(node);
  if (cached != nullptr) {
    obs::MarkCacheHit();
    return *cached;
  }
  PCTAGG_ASSIGN_OR_RETURN(Table out,
                          FusedAggregate(fact, query.where, group_by, aggs, dop));
  if (own_fill) {
    SummaryRecipe recipe{group_by, aggs};
    summaries->Insert(cache_key, out, generation, &recipe);
  }
  return out;
}

// Plan-time bookkeeping for one fused Vpct term (mirrors the materialized
// planner's VpctTermInfo, minus the temp-table names).
struct FusedVpctTerm {
  ExprPtr argument;
  std::vector<std::string> totals_by;
  std::string sum_col;
  std::string tot_col;
  std::string output_name;
};

}  // namespace

bool VpctPipelineSupported(const AnalyzedQuery& query) {
  if (query.query_class != QueryClass::kVpct) return false;
  bool has_vpct = false;
  for (const AnalyzedTerm& t : query.terms) {
    if (t.func == TermFunc::kVpct) {
      has_vpct = true;
    } else if (t.func != TermFunc::kScalar) {
      // DISTINCT falls back so the materialized planner stays the single
      // error surface; avg and friends are fine (plain Fk columns).
      if (t.distinct || !TermAggFunc(t.func).ok()) return false;
    }
  }
  return has_vpct;
}

bool HorizontalPipelineSupported(const AnalyzedQuery& query,
                                 size_t fact_rows) {
  if (query.query_class != QueryClass::kHorizontal) return false;
  // The materialized plan emits a global result row even when the WHERE
  // clause removes every fact row; the fused FVh would be empty. Keep those
  // edges (and empty facts) on the materialized path.
  if (fact_rows == 0) return false;
  if (query.group_by.empty() && query.where != nullptr) return false;
  size_t by_terms = 0;
  for (const AnalyzedTerm& t : query.terms) {
    if (t.func == TermFunc::kScalar) continue;
    if (t.has_by) {
      ++by_terms;
      if (t.distinct) return false;
      // avg is algebraic: the pivot sink cannot combine partial avgs.
      if (t.func == TermFunc::kAvg) return false;
      if (t.func != TermFunc::kHpct && !TermAggFunc(t.func).ok()) return false;
    } else {
      if (t.distinct || !TermAggFunc(t.func).ok()) return false;
      // Extras align with the pivot block positionally; a global (no GROUP
      // BY) block would need the single-row concatenation path instead.
      if (query.group_by.empty()) return false;
    }
  }
  return by_terms == 1;
}

Result<Table> ExecuteVpctPipeline(const AnalyzedQuery& query,
                                  const Table& fact, SummaryCache* summaries,
                                  obs::QueryTrace* trace, size_t dop) {
  // Collect terms exactly like the materialized planner: Vpct sums first (in
  // SELECT order), then the extra vertical aggregates.
  std::vector<FusedVpctTerm> terms;
  std::vector<AggSpec> extra_aggs;
  for (const AnalyzedTerm& t : query.terms) {
    if (t.func == TermFunc::kVpct) {
      FusedVpctTerm info;
      info.argument = t.argument;
      info.totals_by = t.totals_by;
      info.sum_col = "__psum_" + std::to_string(terms.size() + 1);
      info.tot_col = "__ptot_" + std::to_string(terms.size() + 1);
      info.output_name = t.output_name;
      terms.push_back(std::move(info));
    } else if (t.func != TermFunc::kScalar) {
      PCTAGG_ASSIGN_OR_RETURN(AggFunc func, TermAggFunc(t.func));
      extra_aggs.push_back({func, t.argument, t.output_name});
    }
  }
  if (terms.empty()) {
    return Status::Internal("fused Vpct pipeline without Vpct terms");
  }

  // Fk: one fused filter+aggregate pass over the fact table.
  std::vector<AggSpec> fk_aggs;
  for (const FusedVpctTerm& t : terms) {
    fk_aggs.push_back({AggFunc::kSum, t.argument, t.sum_col});
  }
  for (const AggSpec& a : extra_aggs) fk_aggs.push_back(a);
  PCTAGG_ASSIGN_OR_RETURN(
      Table fk, CachedFusedAggregate(query, fact, query.group_by, fk_aggs,
                                     summaries, trace, dop));

  // Fj per term, fine to coarse, reusing the smallest already-computed level
  // whose grouping subsumes the term's totals (same lattice walk as the
  // materialized planner, over in-memory tables instead of temp names).
  struct Level {
    const Table* table;
    std::string sum_col;
    std::vector<std::string> group_cols;
    std::string measure;
  };
  std::vector<Level> levels;
  std::vector<size_t> term_order(terms.size());
  for (size_t i = 0; i < term_order.size(); ++i) term_order[i] = i;
  std::stable_sort(term_order.begin(), term_order.end(),
                   [&terms](size_t a, size_t b) {
                     return terms[a].totals_by.size() >
                            terms[b].totals_by.size();
                   });
  std::vector<std::unique_ptr<Table>> fj_store(terms.size());
  for (size_t oi : term_order) {
    const FusedVpctTerm& t = terms[oi];
    const Table* src = &fk;
    std::string src_col = t.sum_col;
    const Level* best = nullptr;
    for (const Level& level : levels) {
      if (level.measure != t.argument->ToString()) continue;
      if (!Subsumes(level.group_cols, t.totals_by)) continue;
      if (best == nullptr || level.group_cols.size() < best->group_cols.size()) {
        best = &level;
      }
    }
    if (best != nullptr) {
      src = best->table;
      src_col = best->sum_col;
    }
    std::vector<AggSpec> fj_aggs = {{AggFunc::kSum, Col(src_col), t.tot_col}};
    obs::TraceNode* node =
        trace != nullptr
            ? trace->root().AddChild(
                  "fused", RenderStage("fused-totals:", t.totals_by, fj_aggs,
                                       src == &fk ? "Fk" : "Fj", nullptr))
            : nullptr;
    obs::ScopedTraceNode scope(node);
    PCTAGG_ASSIGN_OR_RETURN(Table fj,
                            HashAggregate(*src, t.totals_by, fj_aggs, dop));
    fj_store[oi] = std::make_unique<Table>(std::move(fj));
    levels.push_back(
        {fj_store[oi].get(), t.tot_col, t.totals_by, t.argument->ToString()});
  }

  // Grand totals read their single row up front (like ReadScalarTotal).
  std::vector<Value> scalar_totals(terms.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    if (!terms[i].totals_by.empty()) continue;
    const Table& fj = *fj_store[i];
    if (fj.num_rows() != 1) {
      return Status::Internal("grand-total table must have exactly one row");
    }
    PCTAGG_ASSIGN_OR_RETURN(size_t tc, ColIndex(fj, terms[i].tot_col));
    scalar_totals[i] = fj.column(tc).GetValue(0);
  }

  // Divide stage: fetch each term's totals column (the keyed join the
  // materialized INSERT strategy performs), then the vectorized divisions,
  // emitted in SELECT-list order.
  obs::TraceNode* node =
      trace != nullptr
          ? trace->root().AddChild("fused",
                                   "fused-divide: FV = Fk x Fj percentages")
          : nullptr;
  obs::ScopedTraceNode scope(node);
  Table current = fk;
  for (size_t i = 0; i < terms.size(); ++i) {
    const FusedVpctTerm& t = terms[i];
    if (t.totals_by.empty()) continue;
    PCTAGG_ASSIGN_OR_RETURN(
        Column totals, LookupColumn(current, *fj_store[i], t.totals_by,
                                    t.totals_by, t.tot_col, nullptr));
    PCTAGG_RETURN_IF_ERROR(
        current.AddColumn({t.tot_col, totals.type()}, std::move(totals)));
  }
  obs::OpScope op("divide");
  Table out;
  size_t v = 0;
  for (const AnalyzedTerm& term : query.terms) {
    if (term.func == TermFunc::kScalar) {
      PCTAGG_ASSIGN_OR_RETURN(size_t c, ColIndex(current, term.scalar_column));
      PCTAGG_RETURN_IF_ERROR(out.AddColumn(
          {term.output_name, current.schema().column(c).type},
          current.column(c)));
    } else if (term.func == TermFunc::kVpct) {
      const FusedVpctTerm& t = terms[v];
      PCTAGG_ASSIGN_OR_RETURN(size_t sc, ColIndex(current, t.sum_col));
      Column cell(DataType::kFloat64);
      if (t.totals_by.empty()) {
        PCTAGG_ASSIGN_OR_RETURN(
            cell, PercentDivideScalar(current.column(sc), scalar_totals[v]));
      } else {
        PCTAGG_ASSIGN_OR_RETURN(size_t tc, ColIndex(current, t.tot_col));
        PCTAGG_ASSIGN_OR_RETURN(cell, PercentDivideColumns(
                                          current.column(sc),
                                          current.column(tc)));
      }
      PCTAGG_RETURN_IF_ERROR(out.AddColumn({t.output_name, DataType::kFloat64},
                                           std::move(cell)));
      ++v;
    } else {
      PCTAGG_ASSIGN_OR_RETURN(size_t c, ColIndex(current, term.output_name));
      PCTAGG_RETURN_IF_ERROR(out.AddColumn(
          {term.output_name, current.schema().column(c).type},
          current.column(c)));
    }
  }
  op.SetRows(current.num_rows(), out.num_rows());
  op.SetDetail("vectorized divide, terms=" + std::to_string(terms.size()));
  return out;
}

Result<Table> ExecuteHorizontalPipeline(const AnalyzedQuery& query,
                                        const Table& fact,
                                        SummaryCache* summaries,
                                        obs::QueryTrace* trace, size_t dop) {
  // The single BY term and the extra vertical aggregates.
  const AnalyzedTerm* hterm = nullptr;
  std::vector<const AnalyzedTerm*> extra_terms;
  for (const AnalyzedTerm& t : query.terms) {
    if (t.func == TermFunc::kScalar) continue;
    if (t.has_by) {
      hterm = &t;
    } else {
      extra_terms.push_back(&t);
    }
  }
  if (hterm == nullptr) {
    return Status::Internal("fused horizontal pipeline without a BY term");
  }
  const bool is_pct = hterm->func == TermFunc::kHpct;
  AggFunc direct = AggFunc::kSum;
  if (!is_pct) {
    PCTAGG_ASSIGN_OR_RETURN(direct, TermAggFunc(hterm->func));
  }
  // Distributive combine of the per-(group x BY) partials; the support gate
  // excluded avg.
  AggFunc combine = direct;
  if (direct == AggFunc::kCount || direct == AggFunc::kCountStar) {
    combine = AggFunc::kSum;
  }

  // FVh: one fused pass at GROUP BY ∪ BY carrying the pivot measure and the
  // decomposed extras (avg splits into sum+count, which keeps every partial
  // distributive and the cache entry mergeable on append).
  struct FusedExtra {
    const AnalyzedTerm* term;
    AggFunc func;           // the term's own aggregate
    AggFunc combine;        // re-aggregation of the partial column
    std::string partial;    // partial column in FVh
    std::string count_col;  // avg only: partial count column
  };
  std::vector<std::string> fv_group = query.group_by;
  fv_group.insert(fv_group.end(), hterm->by_columns.begin(),
                  hterm->by_columns.end());
  std::vector<AggSpec> fv_aggs;
  fv_aggs.push_back(
      {is_pct ? AggFunc::kSum : direct, hterm->argument, "__v"});
  std::vector<FusedExtra> extras;
  for (size_t i = 0; i < extra_terms.size(); ++i) {
    const AnalyzedTerm* t = extra_terms[i];
    PCTAGG_ASSIGN_OR_RETURN(AggFunc func, TermAggFunc(t->func));
    FusedExtra e;
    e.term = t;
    e.func = func;
    if (func == AggFunc::kAvg) {
      e.partial = "__exs_" + std::to_string(i + 1);
      e.count_col = "__exc_" + std::to_string(i + 1);
      e.combine = AggFunc::kSum;
      fv_aggs.push_back({AggFunc::kSum, t->argument, e.partial});
      fv_aggs.push_back({AggFunc::kCount, t->argument, e.count_col});
    } else {
      e.partial = "__ex_" + std::to_string(i + 1);
      e.combine =
          (func == AggFunc::kCount || func == AggFunc::kCountStar ||
           func == AggFunc::kSum)
              ? AggFunc::kSum
              : func;
      fv_aggs.push_back({func, t->argument, e.partial});
    }
    extras.push_back(std::move(e));
  }
  PCTAGG_ASSIGN_OR_RETURN(Table fvh,
                          CachedFusedAggregate(query, fact, fv_group, fv_aggs,
                                               summaries, trace, dop));

  // Pivot sink straight off the in-memory FVh. For Hpct the group total is
  // the sum of the partial sums, so percent-of-group-total over FVh equals
  // the direct computation over F.
  Table block;
  {
    PivotOptions popt;
    popt.func = is_pct ? AggFunc::kSum : combine;
    popt.default_zero = hterm->has_default;
    popt.percent_of_group_total = is_pct;
    obs::TraceNode* node =
        trace != nullptr
            ? trace->root().AddChild(
                  "fused", "fused-pivot: " + std::string(AggFuncName(popt.func)) +
                               "(__v) BY " + Join(hterm->by_columns, ", ") +
                               (is_pct ? " percent-of-group-total" : ""))
            : nullptr;
    obs::ScopedTraceNode scope(node);
    PCTAGG_ASSIGN_OR_RETURN(
        block, HashDispatchPivot(fvh, query.group_by, hterm->by_columns,
                                 Col("__v"), popt, dop));
  }

  // Extras re-aggregate the same FVh at GROUP BY level. Both the pivot and
  // this aggregation emit groups in first-seen order over FVh, so the rows
  // align positionally and the blocks concatenate without a join.
  if (!extras.empty()) {
    std::vector<AggSpec> reagg;
    for (const FusedExtra& e : extras) {
      reagg.push_back({e.combine, Col(e.partial), e.partial});
      if (e.func == AggFunc::kAvg) {
        reagg.push_back({AggFunc::kSum, Col(e.count_col), e.count_col});
      }
    }
    obs::TraceNode* node =
        trace != nullptr
            ? trace->root().AddChild(
                  "fused", RenderStage("fused-extras:", query.group_by, reagg,
                                       "FVh", nullptr))
            : nullptr;
    obs::ScopedTraceNode scope(node);
    PCTAGG_ASSIGN_OR_RETURN(Table ex,
                            HashAggregate(fvh, query.group_by, reagg, dop));
    if (ex.num_rows() != block.num_rows()) {
      return Status::Internal("fused extras misaligned with pivot block");
    }
    for (const FusedExtra& e : extras) {
      PCTAGG_ASSIGN_OR_RETURN(size_t pc, ColIndex(ex, e.partial));
      if (e.func == AggFunc::kAvg) {
        PCTAGG_ASSIGN_OR_RETURN(size_t cc, ColIndex(ex, e.count_col));
        const Column& s = ex.column(pc);
        const Column& n = ex.column(cc);
        Column cell(DataType::kFloat64);
        cell.Reserve(ex.num_rows());
        for (size_t i = 0; i < ex.num_rows(); ++i) {
          if (s.IsNull(i) || n.IsNull(i) || n.NumericAt(i) == 0.0) {
            cell.AppendNull();
          } else {
            cell.AppendFloat64(s.NumericAt(i) / n.NumericAt(i));
          }
        }
        PCTAGG_RETURN_IF_ERROR(block.AddColumn(
            {e.term->output_name, DataType::kFloat64}, std::move(cell)));
      } else {
        PCTAGG_RETURN_IF_ERROR(block.AddColumn(
            {e.term->output_name, ex.schema().column(pc).type},
            ex.column(pc)));
      }
    }
  }
  return block;
}

}  // namespace pctagg
