#ifndef PCTAGG_CORE_PIPELINE_PLAN_H_
#define PCTAGG_CORE_PIPELINE_PLAN_H_

#include "common/result.h"
#include "core/summary_cache.h"
#include "engine/table.h"
#include "obs/trace.h"
#include "sql/analyzer.h"

namespace pctagg {

// Fused push-based lowering of the percentage plans: instead of generating a
// multi-statement Plan with temporary catalog tables (Fw, Fk, Fj, FV), the
// whole Fk -> Fj -> divide chain (Vpct) or FVh -> pivot chain (horizontal)
// runs as one or two passes over in-memory tables, with the WHERE clause
// folded into the aggregation scan as a selection mask
// (engine/pipeline.h::FusedAggregate).
//
// Results match the materialized plans exactly: both paths share the
// accumulation kernels and emit groups in first-seen order, and the divide
// stage performs the same IEEE operations as the Div expression. Integer
// aggregates are bit-identical at every dop; float sums can differ from the
// materialized plan only through reassociation (different fold grouping), the
// same caveat that already applies across dop values (docs/PARALLELISM.md).

// True when the query shape can run through the fused Vpct pipeline: any
// number of Vpct terms plus distributive extra aggregates, with or without
// WHERE. DISTINCT is not supported (mirrors the materialized planner's
// rejection, which stays the error surface).
bool VpctPipelineSupported(const AnalyzedQuery& query);

// True for the fused horizontal pipeline: exactly one BY term (Hpct or a
// distributive Hagg — avg and count(DISTINCT) fall back), extra vertical
// aggregates only under a non-empty GROUP BY, and a non-empty fact; an empty
// GROUP BY additionally requires no WHERE (the materialized plan emits a
// global row even when the filter removes every fact row).
bool HorizontalPipelineSupported(const AnalyzedQuery& query, size_t fact_rows);

// Executes the fused Vpct pipeline: one fused filter+aggregate pass to Fk
// (consulting/filling the summary cache with the same key the materialized
// planner uses when unfiltered), per-term Fj re-aggregation with lattice
// reuse, then the vectorized percentage divide. Returns the result in SELECT
// order; the caller applies HAVING/ORDER BY/LIMIT.
Result<Table> ExecuteVpctPipeline(const AnalyzedQuery& query,
                                  const Table& fact, SummaryCache* summaries,
                                  obs::QueryTrace* trace, size_t dop);

// Executes the fused horizontal pipeline: one fused pass to the FVh partial
// aggregate at GROUP BY ∪ BY, a hash-dispatch pivot sink over it, and
// (under a non-empty GROUP BY) the extra vertical aggregates re-aggregated
// from the same FVh and column-concatenated — both sides emit groups in
// first-seen order over FVh, so no join is needed.
Result<Table> ExecuteHorizontalPipeline(const AnalyzedQuery& query,
                                        const Table& fact,
                                        SummaryCache* summaries,
                                        obs::QueryTrace* trace, size_t dop);

}  // namespace pctagg

#endif  // PCTAGG_CORE_PIPELINE_PLAN_H_
