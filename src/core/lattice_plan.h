#ifndef PCTAGG_CORE_LATTICE_PLAN_H_
#define PCTAGG_CORE_LATTICE_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/summary_cache.h"
#include "engine/table.h"
#include "obs/trace.h"
#include "sql/analyzer.h"

namespace pctagg {

// Shared-scan evaluation of grouping-set lattices (GROUP BY CUBE / ROLLUP /
// GROUPING SETS), the Data Cube generalization of the paper's Fj-from-Fk
// reuse: one fused scan of the fact table computes distributive partials
// (sum/count/min/max; avg decomposed into sum+count) at the finest requested
// level, and every coarser level re-aggregates the smallest already-computed
// ancestor instead of rescanning the fact table. Per-level results carry the
// requested percentages (Vpct divide / Hpct pivot) plus GROUPING() ids and
// are concatenated in the order the statement requested the levels.
//
// Every lattice level lands in the SummaryCache under its own SummaryRecipe
// (grouping columns + the distributive partial list), so AppendRows
// delta-maintains all of them and a dashboard hitting every rollup level is
// all cache hits after the first query.
//
// The per-level mode (shared_scan = false) recomputes each level with its own
// fused scan of the fact table — same results bit for bit on integer
// measures (both paths share the accumulation kernels and emit groups in
// first-seen fact order; float sums can differ only by reassociation, the
// standard cross-dop caveat) — and exists as the cost-model's alternative
// and the benchmark baseline.

// True when the grouping-sets query can run through the lattice executor;
// otherwise `*why` (when non-null) receives the reason. The lattice is the
// only executor for grouping sets, so a false here surfaces as
// InvalidArgument to the caller.
bool LatticeSupported(const AnalyzedQuery& query, std::string* why = nullptr);

// Executes the lattice: computes every level (shared rollup or per-level
// fused scans), assembles the per-level output blocks in SELECT order
// (vertical/Vpct) or group ∪ pivot order (horizontal), and concatenates them
// in the statement's level order. The caller applies HAVING/ORDER BY/LIMIT.
Result<Table> ExecuteLatticeQuery(const AnalyzedQuery& query, const Table& fact,
                                  SummaryCache* summaries,
                                  obs::QueryTrace* trace, size_t dop,
                                  bool shared_scan);

// Human-readable script of the lattice evaluation for plain EXPLAIN: one
// pseudo-statement per level (fused scan or rollup source) plus the assembly
// note.
std::string RenderLatticeScript(const AnalyzedQuery& query, bool shared_scan);

// --- Distributed partial aggregation (docs/SHARDING.md) ---------------------
//
// A sharded query is the lattice machinery run across processes: every
// supported query — plain vertical, Vpct, horizontal, or grouping sets — is
// treated as a (possibly single-level) lattice whose finest level is the
// union of grouped columns (+ the BY columns for horizontal terms). Each
// shard computes the finest-level distributive partials over its rows; the
// coordinator merges the per-shard partial tables (MergeSummaries with the
// translating KeyEncoder) and assembles percentages exactly as the
// single-node lattice assembles from its fused scan.

// True when `query` decomposes into distributive partials that merge across
// shards; otherwise `*why` (when non-null) receives the reason. Grouping-set
// queries defer to LatticeSupported; count(DISTINCT) and window terms are
// never distributable.
bool DistributedSupported(const AnalyzedQuery& query,
                          std::string* why = nullptr);

// The worker-side request for one query: the finest grouping level, the
// deduplicated partial aggregates (named __l1, __l2, ...), the merge spec
// for gathered partials, and the rendered partial-aggregation SELECT each
// shard executes locally (a plain GROUP BY statement).
struct DistPartialPlan {
  std::vector<std::string> finest_cols;
  std::vector<AggSpec> partials;
  std::vector<AggSpec> combine;
  std::string partial_sql;
};
Result<DistPartialPlan> BuildDistributedPartialPlan(const AnalyzedQuery& query);

// Final coordinator-side step: rolls coarser lattice levels up from the
// merged finest-level partial table and assembles the percentage result
// (divide / pivot / GROUPING ids), bit-identical to the single-node path on
// integer measures. The caller applies HAVING/ORDER BY/LIMIT.
Result<Table> AssembleFromPartials(const AnalyzedQuery& query,
                                   std::shared_ptr<const Table> finest,
                                   obs::QueryTrace* trace, size_t dop);

// Partial-lattice reuse for plain GROUP BY queries (no grouping sets in the
// statement): when the summary cache holds a mergeable entry whose grouping
// subsumes the query's and whose recipe covers every needed partial, answer
// by rolling the smallest such ancestor up instead of rescanning the fact
// table. Row order and values match the direct computation exactly
// (first-seen group order survives rollups). `*answered` reports whether a
// cached ancestor was found; when false the returned table is empty and the
// caller runs the normal scan path.
Result<Table> AnswerFromCachedAncestor(const AnalyzedQuery& query,
                                       SummaryCache* summaries,
                                       obs::QueryTrace* trace, size_t dop,
                                       bool* answered);

}  // namespace pctagg

#endif  // PCTAGG_CORE_LATTICE_PLAN_H_
