#ifndef PCTAGG_CORE_LATTICE_PLAN_H_
#define PCTAGG_CORE_LATTICE_PLAN_H_

#include <string>

#include "common/result.h"
#include "core/summary_cache.h"
#include "engine/table.h"
#include "obs/trace.h"
#include "sql/analyzer.h"

namespace pctagg {

// Shared-scan evaluation of grouping-set lattices (GROUP BY CUBE / ROLLUP /
// GROUPING SETS), the Data Cube generalization of the paper's Fj-from-Fk
// reuse: one fused scan of the fact table computes distributive partials
// (sum/count/min/max; avg decomposed into sum+count) at the finest requested
// level, and every coarser level re-aggregates the smallest already-computed
// ancestor instead of rescanning the fact table. Per-level results carry the
// requested percentages (Vpct divide / Hpct pivot) plus GROUPING() ids and
// are concatenated in the order the statement requested the levels.
//
// Every lattice level lands in the SummaryCache under its own SummaryRecipe
// (grouping columns + the distributive partial list), so AppendRows
// delta-maintains all of them and a dashboard hitting every rollup level is
// all cache hits after the first query.
//
// The per-level mode (shared_scan = false) recomputes each level with its own
// fused scan of the fact table — same results bit for bit on integer
// measures (both paths share the accumulation kernels and emit groups in
// first-seen fact order; float sums can differ only by reassociation, the
// standard cross-dop caveat) — and exists as the cost-model's alternative
// and the benchmark baseline.

// True when the grouping-sets query can run through the lattice executor;
// otherwise `*why` (when non-null) receives the reason. The lattice is the
// only executor for grouping sets, so a false here surfaces as
// InvalidArgument to the caller.
bool LatticeSupported(const AnalyzedQuery& query, std::string* why = nullptr);

// Executes the lattice: computes every level (shared rollup or per-level
// fused scans), assembles the per-level output blocks in SELECT order
// (vertical/Vpct) or group ∪ pivot order (horizontal), and concatenates them
// in the statement's level order. The caller applies HAVING/ORDER BY/LIMIT.
Result<Table> ExecuteLatticeQuery(const AnalyzedQuery& query, const Table& fact,
                                  SummaryCache* summaries,
                                  obs::QueryTrace* trace, size_t dop,
                                  bool shared_scan);

// Human-readable script of the lattice evaluation for plain EXPLAIN: one
// pseudo-statement per level (fused scan or rollup source) plus the assembly
// note.
std::string RenderLatticeScript(const AnalyzedQuery& query, bool shared_scan);

}  // namespace pctagg

#endif  // PCTAGG_CORE_LATTICE_PLAN_H_
