#include "core/missing_rows.h"

#include <unordered_set>

#include "engine/table_ops.h"

namespace pctagg {

namespace {

// Key bytes of `columns` at `row`.
Result<std::string> KeyAt(const Table& t, const std::vector<std::string>& columns,
                          size_t row) {
  std::vector<size_t> idx;
  idx.reserve(columns.size());
  for (const std::string& c : columns) {
    PCTAGG_ASSIGN_OR_RETURN(size_t i, t.schema().FindColumn(c));
    idx.push_back(i);
  }
  std::string key;
  t.AppendKeyBytes(row, idx, &key);
  return key;
}

}  // namespace

Status InsertMissingResultRows(const Table& fact,
                               const std::vector<std::string>& totals_by,
                               const std::vector<std::string>& by_columns,
                               const std::vector<std::string>& pct_columns,
                               Table* result) {
  // Domain of BY combinations comes from all of F.
  PCTAGG_ASSIGN_OR_RETURN(Table combos, Distinct(fact, by_columns));
  // Groups present in the result (one entry when totals_by is empty).
  Table groups;
  if (totals_by.empty()) {
    groups = Table(Schema());
  } else {
    PCTAGG_ASSIGN_OR_RETURN(groups, Distinct(*result, totals_by));
  }
  size_t num_groups = totals_by.empty() ? 1 : groups.num_rows();

  // Existing (group, combo) keys in the result.
  std::vector<std::string> full_key_cols = totals_by;
  full_key_cols.insert(full_key_cols.end(), by_columns.begin(),
                       by_columns.end());
  std::unordered_set<std::string> existing;
  existing.reserve(result->num_rows());
  for (size_t row = 0; row < result->num_rows(); ++row) {
    PCTAGG_ASSIGN_OR_RETURN(std::string key, KeyAt(*result, full_key_cols, row));
    existing.insert(std::move(key));
  }

  // Classify result columns once.
  enum class Role { kTotals, kBy, kPct, kOther };
  std::vector<Role> roles(result->num_columns(), Role::kOther);
  std::vector<size_t> src_in_groups(result->num_columns(), 0);
  std::vector<size_t> src_in_combos(result->num_columns(), 0);
  for (size_t c = 0; c < result->num_columns(); ++c) {
    const std::string& name = result->schema().column(c).name;
    if (!totals_by.empty()) {
      Result<size_t> gi = groups.schema().FindColumn(name);
      if (gi.ok()) {
        roles[c] = Role::kTotals;
        src_in_groups[c] = gi.value();
        continue;
      }
    }
    Result<size_t> ci = combos.schema().FindColumn(name);
    if (ci.ok()) {
      roles[c] = Role::kBy;
      src_in_combos[c] = ci.value();
      continue;
    }
    for (const std::string& p : pct_columns) {
      Result<size_t> pi = result->schema().FindColumn(p);
      if (pi.ok() && pi.value() == c) {
        roles[c] = Role::kPct;
        break;
      }
    }
  }

  // Cross product: append whatever is absent.
  std::string key;
  for (size_t g = 0; g < num_groups; ++g) {
    for (size_t m = 0; m < combos.num_rows(); ++m) {
      key.clear();
      if (!totals_by.empty()) {
        std::vector<size_t> gidx(groups.num_columns());
        for (size_t i = 0; i < groups.num_columns(); ++i) gidx[i] = i;
        groups.AppendKeyBytes(g, gidx, &key);
      }
      std::vector<size_t> cidx(combos.num_columns());
      for (size_t i = 0; i < combos.num_columns(); ++i) cidx[i] = i;
      combos.AppendKeyBytes(m, cidx, &key);
      if (existing.count(key) > 0) continue;
      std::vector<Value> row;
      row.reserve(result->num_columns());
      for (size_t c = 0; c < result->num_columns(); ++c) {
        switch (roles[c]) {
          case Role::kTotals:
            row.push_back(groups.column(src_in_groups[c]).GetValue(g));
            break;
          case Role::kBy:
            row.push_back(combos.column(src_in_combos[c]).GetValue(m));
            break;
          case Role::kPct:
            row.push_back(Value::Float64(0.0));
            break;
          case Role::kOther:
            row.push_back(Value::Null());
            break;
        }
      }
      PCTAGG_RETURN_IF_ERROR(result->AppendRow(row));
    }
  }
  return Status::OK();
}

Result<Table> ExpandFactWithMissingRows(
    const Table& fact, const std::vector<std::string>& totals_by,
    const std::vector<std::string>& by_columns,
    const std::vector<std::string>& measure_columns) {
  PCTAGG_ASSIGN_OR_RETURN(Table combos, Distinct(fact, by_columns));
  Table groups;
  size_t num_groups = 1;
  if (!totals_by.empty()) {
    PCTAGG_ASSIGN_OR_RETURN(groups, Distinct(fact, totals_by));
    num_groups = groups.num_rows();
  }

  std::vector<std::string> full_key_cols = totals_by;
  full_key_cols.insert(full_key_cols.end(), by_columns.begin(),
                       by_columns.end());
  std::unordered_set<std::string> existing;
  existing.reserve(fact.num_rows());
  for (size_t row = 0; row < fact.num_rows(); ++row) {
    PCTAGG_ASSIGN_OR_RETURN(std::string key, KeyAt(fact, full_key_cols, row));
    existing.insert(std::move(key));
  }

  Table out(fact.schema());
  out.Reserve(fact.num_rows());
  for (size_t row = 0; row < fact.num_rows(); ++row) {
    out.AppendRowFrom(fact, row);
  }

  // Per-column roles for the synthesized rows.
  enum class Role { kTotals, kBy, kMeasure, kOther };
  std::vector<Role> roles(fact.num_columns(), Role::kOther);
  std::vector<size_t> src_in_groups(fact.num_columns(), 0);
  std::vector<size_t> src_in_combos(fact.num_columns(), 0);
  for (size_t c = 0; c < fact.num_columns(); ++c) {
    const std::string& name = fact.schema().column(c).name;
    if (!totals_by.empty()) {
      Result<size_t> gi = groups.schema().FindColumn(name);
      if (gi.ok()) {
        roles[c] = Role::kTotals;
        src_in_groups[c] = gi.value();
        continue;
      }
    }
    Result<size_t> ci = combos.schema().FindColumn(name);
    if (ci.ok()) {
      roles[c] = Role::kBy;
      src_in_combos[c] = ci.value();
      continue;
    }
    for (const std::string& m : measure_columns) {
      Result<size_t> mi = fact.schema().FindColumn(m);
      if (mi.ok() && mi.value() == c) {
        roles[c] = Role::kMeasure;
        break;
      }
    }
  }

  std::string key;
  for (size_t g = 0; g < num_groups; ++g) {
    for (size_t m = 0; m < combos.num_rows(); ++m) {
      key.clear();
      if (!totals_by.empty()) {
        std::vector<size_t> gidx(groups.num_columns());
        for (size_t i = 0; i < groups.num_columns(); ++i) gidx[i] = i;
        groups.AppendKeyBytes(g, gidx, &key);
      }
      std::vector<size_t> cidx(combos.num_columns());
      for (size_t i = 0; i < combos.num_columns(); ++i) cidx[i] = i;
      combos.AppendKeyBytes(m, cidx, &key);
      if (existing.count(key) > 0) continue;
      std::vector<Value> row;
      row.reserve(fact.num_columns());
      for (size_t c = 0; c < fact.num_columns(); ++c) {
        switch (roles[c]) {
          case Role::kTotals:
            row.push_back(groups.column(src_in_groups[c]).GetValue(g));
            break;
          case Role::kBy:
            row.push_back(combos.column(src_in_combos[c]).GetValue(m));
            break;
          case Role::kMeasure:
            row.push_back(fact.schema().column(c).type == DataType::kInt64
                              ? Value::Int64(0)
                              : Value::Float64(0.0));
            break;
          case Role::kOther:
            row.push_back(Value::Null());
            break;
        }
      }
      PCTAGG_RETURN_IF_ERROR(out.AppendRow(row));
    }
  }
  return out;
}

}  // namespace pctagg
