#ifndef PCTAGG_CORE_DATABASE_H_
#define PCTAGG_CORE_DATABASE_H_

#include <memory>
#include <optional>
#include <string>

#include "common/result.h"
#include "core/advisor.h"
#include "core/horizontal_planner.h"
#include "core/vpct_planner.h"
#include "engine/catalog.h"
#include "engine/table.h"
#include "obs/trace.h"
#include "storage/storage.h"

namespace pctagg {

// How an append maintains the cached summaries of its table. kAuto asks the
// CostModel per entry (delta cardinality vs base cardinality, dop-aware);
// the forced modes exist for benchmarking and tests.
enum class AppendPolicy {
  kAuto,
  kMerge,      // always delta-merge mergeable entries
  kRecompute,  // always drop entries (recompute lazily on next lookup)
};

// Whether percentage queries run through the fused push-based pipeline
// (core/pipeline_plan.h) or the materialized multi-statement plans. kAuto
// asks the StrategyAdvisor per query; kFused forces the pipeline whenever
// the query shape supports it (silently falling back otherwise); forcing a
// Vpct/horizontal strategy or the OLAP baseline always materializes.
enum class ExecutionMode {
  kAuto,
  kFused,
  kMaterialized,
};

// How grouping-set queries (GROUP BY CUBE/ROLLUP/GROUPING SETS) evaluate
// their lattice (core/lattice_plan.h; SET lattice in sessions). kShared
// computes the finest level with one fused scan and rolls every coarser
// level up from cached partials; kPerLevel recomputes each level from the
// fact table; kAuto asks the StrategyAdvisor.
enum class LatticeMode {
  kAuto,
  kShared,
  kPerLevel,
};

// Whether the server's multi-query batching gate (server/mqo_gate.h;
// SET mqo in sessions) may merge a statement into a shared scan with
// concurrently admitted compatible reads (core/mqo_plan.h). kAuto prices
// batch-vs-solo with CostModel::MqoBatchCost; kOn always batches compatible
// queries; kOff never batches. Embedded PctDatabase::Query ignores the
// setting — batching happens at server admission, above the database.
enum class MqoMode {
  kAuto,
  kOn,
  kOff,
};

// Per-call overrides for PctDatabase::Query. Server sessions carry one of
// these so concurrent callers can force strategies or toggle the summary
// cache without mutating shared database state.
struct QueryOptions {
  // Force the Vpct / horizontal evaluation strategy instead of asking the
  // StrategyAdvisor.
  std::optional<VpctStrategy> vpct_strategy;
  std::optional<HorizontalStrategy> horizontal_strategy;
  // Overrides EnableSummaryCache() for this call only.
  std::optional<bool> use_summary_cache;
  // Evaluate a Vpct query through the ANSI OLAP window-function baseline.
  bool olap_baseline = false;
  // Fused-pipeline dispatch (see ExecutionMode above; SET exec in sessions).
  ExecutionMode execution = ExecutionMode::kAuto;
  // Grouping-set lattice strategy (see LatticeMode above; SET lattice).
  LatticeMode lattice = LatticeMode::kAuto;
  // Multi-query shared-scan batching (see MqoMode above; SET mqo).
  MqoMode mqo = MqoMode::kAuto;
  // Degree of parallelism for the engine's morsel-driven operator kernels
  // (aggregate, pivot, join probe, window). 1 = serial (default), 0 = auto
  // (the shared worker pool's size), n = use up to n workers. Results are
  // identical at every setting apart from float-sum rounding — see
  // docs/PARALLELISM.md.
  size_t degree_of_parallelism = 1;
  // When set, Query fills it with the executed-plan trace: planning metadata
  // (query class, strategy, cost-model predictions) plus one node per
  // generated statement with per-operator stats. Owned by the caller; must
  // outlive the Query call. See docs/OBSERVABILITY.md.
  obs::QueryTrace* trace = nullptr;
  // Summary-maintenance policy when Execute runs an INSERT/COPY.
  AppendPolicy append_policy = AppendPolicy::kAuto;
};

// What an append did, returned by AppendRows/Execute(INSERT/COPY).
struct AppendOutcome {
  size_t rows_appended = 0;
  size_t summaries_merged = 0;      // cache entries delta-merged in place
  size_t summaries_recomputed = 0;  // entries dropped for lazy recompute
};

// The top-level facade: a catalog of tables plus the percentage-query
// framework. This is the piece the paper's Java program played — take a
// query written with the proposed aggregations, generate the evaluation
// plan, run it against the (here: embedded) engine.
//
//   PctDatabase db;
//   db.CreateTable("sales", BuildSalesTable());
//   Result<Table> r = db.Query(
//       "SELECT state, city, Vpct(salesAmt BY city) "
//       "FROM sales GROUP BY state, city ORDER BY state, city");
class PctDatabase {
 public:
  PctDatabase() = default;

  PctDatabase(const PctDatabase&) = delete;
  PctDatabase& operator=(const PctDatabase&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  // Registers a new base table (and, with storage attached, writes its
  // segment and manifest entry).
  Status CreateTable(const std::string& name, Table table);

  // Enables/disables the cross-query shared-summary cache (paper future
  // work: repeated percentage queries on the same table reuse the Fk-level
  // aggregate instead of re-scanning F). Off by default. Assumes base
  // tables are only replaced through CreateTable/ReplaceTable.
  void EnableSummaryCache(bool enabled) { summary_cache_enabled_ = enabled; }
  bool summary_cache_enabled() const { return summary_cache_enabled_; }
  SummaryCache& summaries() { return summaries_; }

  // Parses and analyzes a plain SELECT against the current catalog without
  // executing it. The server's MQO batching gate (server/mqo_gate.h) uses
  // this to extract a statement's partial requirements before admission;
  // callers hold the same reader lock they would hold for Query.
  Result<AnalyzedQuery> PrepareQuery(const std::string& sql) const {
    return Prepare(sql);
  }

  // Replaces a base table, invalidating its cached summaries (and, with
  // storage attached, superseding its segment and any earlier WAL records).
  Status ReplaceTable(const std::string& name, Table table);

  // Drops a base table from the catalog, its cached summaries, and (with
  // storage attached) its segment file and manifest entry. Returns true when
  // a table was dropped, false for the benign if_exists-and-absent case.
  Result<bool> DropTable(const std::string& name, bool if_exists = false);

  // --- Durable storage (optional) ------------------------------------------
  //
  // Attaches a data directory: recovers its tables into the catalog
  // (manifest -> segments -> WAL tail), then makes every subsequent append
  // WAL-logged (WAL-before-data) and every DDL segment-backed. Call once,
  // before serving traffic; without it the database is purely in-memory.
  Status OpenStorage(storage::StorageOptions options);
  bool HasStorage() const { return storage_ != nullptr; }
  storage::StorageManager* storage() { return storage_.get(); }

  // Flushes every base table to fresh segments and truncates the WAL, under
  // the caller's writer exclusivity. A no-op (zero stats) without storage.
  Result<storage::StorageManager::CheckpointStats> Checkpoint();

  // Appends `delta` (same column arity/types as the table) to base table
  // `name` and delta-maintains its cached summaries: the delta is aggregated
  // once per mergeable cache entry with the entry's own recipe and merged by
  // keyed upsert (engine/merge.h); entries whose aggregates are not
  // distributive — or where the CostModel prefers it — are dropped and
  // recomputed lazily by the next query. Dictionary codes of string columns
  // are resolved against the table's existing per-column dictionaries.
  //
  // This is a write: callers must keep it exclusive against concurrent
  // queries on the same database (the server's QueryExecutor classifies
  // INSERT/COPY as exclusive writers; library users synchronize themselves).
  Result<AppendOutcome> AppendRows(const std::string& name, const Table& delta) {
    return AppendRows(name, delta, QueryOptions{});
  }
  Result<AppendOutcome> AppendRows(const std::string& name, const Table& delta,
                                   const QueryOptions& options);

  // Full statement dispatch: SELECT / EXPLAIN [ANALYZE] go to Query;
  // INSERT INTO ... VALUES and COPY ... FROM ... (APPEND) — including their
  // EXPLAIN ANALYZE forms — run through AppendRows and return a one-row
  // summary (rows_appended, summaries_merged, summaries_recomputed).
  // DROP TABLE [IF EXISTS] and CHECKPOINT return one-row summaries too.
  // Non-const because writes mutate the catalog; see AppendRows for the
  // writer-exclusivity contract.
  Result<Table> Execute(const std::string& sql) {
    return Execute(sql, QueryOptions{});
  }
  Result<Table> Execute(const std::string& sql, const QueryOptions& options);

  // CREATE TABLE <name> AS <select>: materializes a query result as a new
  // base table. This is how the paper's "F can be a temporary table
  // resulting from some query or a view" works here — denormalize or
  // pre-filter once, then run percentage queries against the result.
  Status CreateTableAs(const std::string& name, const std::string& sql);

  // Parses, analyzes, plans (strategies picked by the StrategyAdvisor),
  // executes and returns the result. Temporary tables are cleaned up.
  //
  // Query is *logically* const and safe to call from many threads at once:
  // every table it materializes has a process-unique temporary name, the
  // catalog and summary cache are internally synchronized, and all temps are
  // dropped before returning. What it does NOT protect against is a
  // concurrent CreateTable/ReplaceTable/.load of a table some query is
  // reading — callers that mix queries with DDL must impose reader/writer
  // discipline themselves (the server's QueryExecutor does exactly that).
  Result<Table> Query(const std::string& sql) const {
    return Query(sql, QueryOptions{});
  }
  Result<Table> Query(const std::string& sql, const QueryOptions& options) const;

  // Shorthands for forced-strategy evaluation (the benchmark harness drives
  // these); equivalent to Query with the strategy set in QueryOptions.
  Result<Table> QueryVpct(const std::string& sql,
                          const VpctStrategy& strategy) const;
  Result<Table> QueryHorizontal(const std::string& sql,
                                const HorizontalStrategy& strategy) const;

  // Evaluates a Vpct query through the ANSI OLAP window-function baseline.
  Result<Table> QueryOlapBaseline(const std::string& sql) const;

  // The generated multi-statement SQL script for `sql` under the advised (or
  // given) strategy, without executing it.
  Result<std::string> Explain(const std::string& sql) const;

  // EXPLAIN ANALYZE: executes `sql` with tracing on and returns the rendered
  // executed plan — strategy chosen (and why: advisor vs forced), cost-model
  // predicted vs actual, and per-operator stats for every generated
  // statement. The query's result table is discarded.
  Result<std::string> ExplainAnalyze(const std::string& sql) const {
    return ExplainAnalyze(sql, QueryOptions{});
  }
  Result<std::string> ExplainAnalyze(const std::string& sql,
                                     const QueryOptions& options) const;

 private:
  // Statement bodies of Execute (EXPLAIN prefix already stripped).
  Result<AppendOutcome> ExecuteInsert(const std::string& sql,
                                      const QueryOptions& options);
  Result<AppendOutcome> ExecuteCopy(const std::string& sql,
                                    const QueryOptions& options);

  // Shared tail: execute `plan`, pull out the result, drop temps.
  Result<Table> RunPlan(const Plan& plan, const AnalyzedQuery& query,
                        bool use_cache,
                        obs::QueryTrace* trace = nullptr) const;

  Result<AnalyzedQuery> Prepare(const std::string& sql) const;

  // Mutable because Query() is logically const: it registers (and drops)
  // process-uniquely-named temporaries in the internally synchronized
  // catalog and fills the internally synchronized summary cache.
  mutable Catalog catalog_;
  StrategyAdvisor advisor_;
  mutable SummaryCache summaries_;
  bool summary_cache_enabled_ = false;
  std::unique_ptr<storage::StorageManager> storage_;
};

// Applies a statement's tail — HAVING, ORDER BY, LIMIT, in SQL's order — to
// an already-assembled result. Exposed for the distributed coordinator,
// which assembles query results outside PctDatabase::Query but must match
// its tail semantics exactly.
Result<Table> ApplyQueryTail(Table table, const AnalyzedQuery& query);

}  // namespace pctagg

#endif  // PCTAGG_CORE_DATABASE_H_
