#include "core/advisor.h"

#include <algorithm>
#include <unordered_set>

#include "core/cost_model.h"

namespace pctagg {

VpctStrategy StrategyAdvisor::AdviseVpct(const Table& fact,
                                         const AnalyzedQuery& query,
                                         size_t dop) const {
  if (dop > 1) {
    // Parallel scans change the trade-offs Table 4 was measured under, so
    // rank the strategy space with the dop-aware cost model instead.
    const AnalyzedTerm* term = nullptr;
    for (const AnalyzedTerm& t : query.terms) {
      if (t.has_by) {
        term = &t;
        break;
      }
    }
    if (term != nullptr) {
      CostModel model;
      Result<FactStats> stats = model.EstimateStats(
          fact, query.group_by, term->by_columns, /*by=*/{});
      if (stats.ok()) {
        FactStats s = stats.value();
        s.dop = static_cast<double>(dop);
        return model.PickVpct(s);
      }
    }
  }
  // Table 4's winner in every configuration: create matching indexes on the
  // common subkey, compute Fj from Fk (sum() is distributive) and produce FV
  // with INSERT rather than UPDATE.
  return VpctStrategy{};
}

HorizontalStrategy StrategyAdvisor::AdviseHorizontal(
    const Table& fact, const AnalyzedQuery& query, size_t dop) const {
  if (dop > 1) return AdviseHorizontalByCost(fact, query, dop);
  HorizontalStrategy strategy;
  strategy.method = HorizontalMethod::kCaseDirect;  // CASE always beats SPJ

  // Gather the union of BY columns across horizontal terms.
  size_t max_by = 0;
  bool all_low_selectivity = true;
  for (const AnalyzedTerm& t : query.terms) {
    if (!t.has_by) continue;
    max_by = std::max(max_by, t.by_columns.size());
    for (const std::string& b : t.by_columns) {
      Result<size_t> card = EstimateCardinality(fact, b);
      if (!card.ok() || card.value() > kLowSelectivityThreshold) {
        all_low_selectivity = false;
      }
    }
  }
  // The paper's recommendation: direct from F for <=2 low-selectivity BY
  // columns, otherwise compute FV first and transpose the (much smaller) FV.
  if (max_by > 2 || !all_low_selectivity) {
    strategy.method = HorizontalMethod::kCaseFromFV;
  }
  // count(DISTINCT) has no indirect form (avg goes through FV via its
  // algebraic sum/count decomposition); fall back to direct.
  for (const AnalyzedTerm& t : query.terms) {
    if (t.has_by && t.distinct) {
      strategy.method = HorizontalMethod::kCaseDirect;
      break;
    }
  }
  return strategy;
}

HorizontalStrategy StrategyAdvisor::AdviseHorizontalByCost(
    const Table& fact, const AnalyzedQuery& query, size_t dop) const {
  const AnalyzedTerm* term = nullptr;
  for (const AnalyzedTerm& t : query.terms) {
    if (t.has_by) {
      term = &t;
      break;
    }
  }
  if (term == nullptr) return AdviseHorizontal(fact, query);
  CostModel model;
  std::vector<std::string> full_group = query.group_by;
  full_group.insert(full_group.end(), term->by_columns.begin(),
                    term->by_columns.end());
  Result<FactStats> stats =
      model.EstimateStats(fact, full_group, query.group_by, term->by_columns);
  if (!stats.ok()) return AdviseHorizontal(fact, query);
  FactStats s = stats.value();
  s.dop = static_cast<double>(dop < 1 ? 1 : dop);
  HorizontalStrategy strategy = model.PickHorizontal(s);
  // DISTINCT terms still require a direct strategy.
  if (term->distinct) strategy.method = HorizontalMethod::kCaseDirect;
  return strategy;
}

bool StrategyAdvisor::AdviseVpctFused(const Table& fact,
                                      const AnalyzedQuery& query,
                                      size_t dop) const {
  if (fact.num_rows() < kFusedMinRows) return false;
  const AnalyzedTerm* term = nullptr;
  for (const AnalyzedTerm& t : query.terms) {
    if (t.has_by) {
      term = &t;
      break;
    }
  }
  CostModel model;
  Result<FactStats> stats = model.EstimateStats(
      fact, query.group_by,
      term != nullptr ? term->by_columns : std::vector<std::string>{},
      /*by=*/{});
  if (!stats.ok()) return false;
  FactStats s = stats.value();
  s.dop = static_cast<double>(dop < 1 ? 1 : dop);
  const VpctStrategy materialized = AdviseVpct(fact, query, dop);
  return model.FusedVpctCost(s) < model.VpctCost(s, materialized);
}

bool StrategyAdvisor::AdviseHorizontalFused(const Table& fact,
                                            const AnalyzedQuery& query,
                                            size_t dop) const {
  if (fact.num_rows() < kFusedMinRows) return false;
  const AnalyzedTerm* term = nullptr;
  for (const AnalyzedTerm& t : query.terms) {
    if (t.has_by) {
      term = &t;
      break;
    }
  }
  if (term == nullptr) return false;
  CostModel model;
  std::vector<std::string> full_group = query.group_by;
  full_group.insert(full_group.end(), term->by_columns.begin(),
                    term->by_columns.end());
  Result<FactStats> stats =
      model.EstimateStats(fact, full_group, query.group_by, term->by_columns);
  if (!stats.ok()) return false;
  FactStats s = stats.value();
  s.dop = static_cast<double>(dop < 1 ? 1 : dop);
  const HorizontalStrategy materialized = AdviseHorizontal(fact, query, dop);
  return model.FusedHorizontalCost(s) < model.HorizontalCost(s, materialized);
}

bool StrategyAdvisor::AdviseLatticeShared(const Table& fact,
                                          const AnalyzedQuery& query,
                                          size_t dop) const {
  CostModel model;
  Result<std::vector<double>> level_rows =
      model.EstimateLatticeLevelRows(fact, query);
  if (!level_rows.ok()) return true;
  Result<FactStats> stats =
      model.EstimateStats(fact, query.group_by, /*totals_by=*/{}, /*by=*/{});
  if (!stats.ok()) return true;
  FactStats s = stats.value();
  s.dop = static_cast<double>(dop < 1 ? 1 : dop);
  return model.LatticeSharedCost(s, level_rows.value()) <=
         model.LatticePerLevelCost(s, level_rows.value());
}

Result<size_t> StrategyAdvisor::EstimateCardinality(
    const Table& fact, const std::string& column) const {
  PCTAGG_ASSIGN_OR_RETURN(size_t idx, fact.schema().FindColumn(column));
  const Column& col = fact.column(idx);
  if (col.type() == DataType::kString) {
    // Exact for dictionary-encoded columns: every distinct value the column
    // ever held has a code. Shared dictionaries can overcount (codes this
    // column never uses), which only errs toward the safer FV-first plan.
    return std::min(col.dict()->size(), fact.num_rows());
  }
  const size_t limit = std::min(fact.num_rows(), kSampleRows);
  std::unordered_set<std::string> seen;
  std::string key;
  const std::vector<size_t> cols = {idx};
  for (size_t row = 0; row < limit; ++row) {
    key.clear();
    fact.AppendKeyBytes(row, cols, &key);
    seen.insert(key);
  }
  return seen.size();
}

}  // namespace pctagg
