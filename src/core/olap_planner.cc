#include "core/olap_planner.h"

#include "common/string_util.h"
#include "engine/aggregate.h"
#include "engine/table_ops.h"
#include "engine/window.h"

namespace pctagg {

namespace {

Result<AggFunc> WindowFunc(TermFunc func) {
  switch (func) {
    case TermFunc::kSum:
      return AggFunc::kSum;
    case TermFunc::kCount:
      return AggFunc::kCount;
    case TermFunc::kCountStar:
      return AggFunc::kCountStar;
    case TermFunc::kAvg:
      return AggFunc::kAvg;
    case TermFunc::kMin:
      return AggFunc::kMin;
    case TermFunc::kMax:
      return AggFunc::kMax;
    default:
      return Status::Internal("not a window-capable function");
  }
}

}  // namespace

Result<Plan> PlanOlapPercentageQuery(const AnalyzedQuery& query) {
  if (query.query_class != QueryClass::kVpct) {
    return Status::InvalidArgument(
        "the OLAP baseline evaluates vertical percentage queries");
  }
  Plan plan;
  std::string source = query.table_name;
  if (query.where != nullptr) {
    std::string fw = NewTempName("Fw");
    ExprPtr where = query.where;
    plan.AddStep("INSERT INTO " + fw + " SELECT * FROM " + source + " WHERE " +
                     where->ToString(),
                 [src = source, fw, where](ExecContext* ctx) -> Status {
                   PCTAGG_ASSIGN_OR_RETURN(const Table* input,
                                           ctx->catalog->GetTable(src));
                   PCTAGG_ASSIGN_OR_RETURN(Table out, Filter(*input, where));
                   ctx->catalog->CreateOrReplaceTable(fw, std::move(out));
                   return Status::OK();
                 });
    plan.AddTempTable(fw);
    source = fw;
  }

  // Render the paper's single-statement formulation.
  std::vector<std::string> select_parts;
  for (const AnalyzedTerm& t : query.terms) {
    if (t.func == TermFunc::kScalar) {
      select_parts.push_back(t.scalar_column);
    } else if (t.func == TermFunc::kVpct) {
      select_parts.push_back(
          "sum(" + t.argument->ToString() + ") OVER (PARTITION BY " +
          Join(query.group_by, ", ") + ") / sum(" + t.argument->ToString() +
          ") OVER (" +
          (t.totals_by.empty() ? "" : "PARTITION BY " + Join(t.totals_by, ", ")) +
          ") AS " + t.output_name);
    } else {
      select_parts.push_back(std::string(TermFuncName(t.func)) + "(" +
                             (t.func == TermFunc::kCountStar
                                  ? "*"
                                  : t.argument->ToString()) +
                             ") OVER (PARTITION BY " +
                             Join(query.group_by, ", ") + ") AS " +
                             t.output_name);
    }
  }
  std::string fv = NewTempName("Folap");
  std::string sql = "INSERT INTO " + fv + " SELECT DISTINCT " +
                    Join(select_parts, ", ") + " FROM " + source;

  plan.AddStep(sql, [source, fv, terms = query.terms,
                     group_by = query.group_by](ExecContext* ctx) -> Status {
    PCTAGG_ASSIGN_OR_RETURN(const Table* input, ctx->catalog->GetTable(source));
    // Evaluate every window over all n fact rows.
    Table wide;
    for (const std::string& g : group_by) {
      PCTAGG_ASSIGN_OR_RETURN(const Column* c, input->ColumnByName(g));
      PCTAGG_ASSIGN_OR_RETURN(size_t idx, input->schema().FindColumn(g));
      PCTAGG_RETURN_IF_ERROR(wide.AddColumn(input->schema().column(idx), *c));
    }
    std::vector<std::string> output_order;
    for (const AnalyzedTerm& t : terms) {
      if (t.func == TermFunc::kScalar) {
        output_order.push_back(t.scalar_column);
        continue;
      }
      if (t.func == TermFunc::kVpct) {
        PCTAGG_ASSIGN_OR_RETURN(
            Column num,
            WindowAggregate(*input, group_by, AggFunc::kSum, t.argument));
        PCTAGG_ASSIGN_OR_RETURN(
            Column den,
            WindowAggregate(*input, t.totals_by, AggFunc::kSum, t.argument));
        // Row-wise division over all n rows (NULL on zero/NULL divisor).
        Table pair;
        PCTAGG_RETURN_IF_ERROR(
            pair.AddColumn({"__num", num.type()}, std::move(num)));
        PCTAGG_RETURN_IF_ERROR(
            pair.AddColumn({"__den", den.type()}, std::move(den)));
        PCTAGG_ASSIGN_OR_RETURN(Column pct,
                                Div(Col("__num"), Col("__den"))->Evaluate(pair));
        PCTAGG_RETURN_IF_ERROR(
            wide.AddColumn({t.output_name, DataType::kFloat64}, std::move(pct)));
      } else {
        PCTAGG_ASSIGN_OR_RETURN(AggFunc func, WindowFunc(t.func));
        PCTAGG_ASSIGN_OR_RETURN(
            Column agg, WindowAggregate(*input, group_by, func, t.argument));
        PCTAGG_RETURN_IF_ERROR(
            wide.AddColumn({t.output_name, agg.type()}, std::move(agg)));
      }
      output_order.push_back(t.output_name);
    }
    // DISTINCT over the full n-row select list shrinks to the group level.
    std::vector<std::string> all_cols;
    for (size_t c = 0; c < wide.num_columns(); ++c) {
      all_cols.push_back(wide.schema().column(c).name);
    }
    PCTAGG_ASSIGN_OR_RETURN(Table distinct, Distinct(wide, all_cols));
    // Keep only the SELECT-list columns, in order.
    std::vector<ProjectSpec> specs;
    for (const AnalyzedTerm& t : terms) {
      std::string name =
          t.func == TermFunc::kScalar ? t.scalar_column : t.output_name;
      specs.push_back({Col(name), name});
    }
    PCTAGG_ASSIGN_OR_RETURN(Table out, Project(distinct, specs));
    ctx->catalog->CreateOrReplaceTable(fv, std::move(out));
    return Status::OK();
  });
  plan.AddTempTable(fv);
  plan.set_result_table(fv);
  return plan;
}

Result<Plan> PlanWindowQuery(const AnalyzedQuery& query) {
  if (query.query_class != QueryClass::kWindow) {
    return Status::InvalidArgument("PlanWindowQuery requires window terms");
  }
  Plan plan;
  std::string source = query.table_name;
  std::string out_name = NewTempName("Fwin");
  std::vector<std::string> select_parts;
  for (const AnalyzedTerm& t : query.terms) {
    select_parts.push_back(t.func == TermFunc::kScalar
                               ? t.scalar_column
                               : t.output_name);
  }
  std::string sql = "INSERT INTO " + out_name + " SELECT " +
                    Join(select_parts, ", ") + " FROM " + source;
  plan.AddStep(sql, [source, out_name, terms = query.terms,
                     where = query.where](ExecContext* ctx) -> Status {
    PCTAGG_ASSIGN_OR_RETURN(const Table* base, ctx->catalog->GetTable(source));
    Table filtered;
    const Table* input = base;
    if (where != nullptr) {
      PCTAGG_ASSIGN_OR_RETURN(filtered, Filter(*base, where));
      input = &filtered;
    }
    Table out;
    for (const AnalyzedTerm& t : terms) {
      if (t.func == TermFunc::kScalar) {
        PCTAGG_ASSIGN_OR_RETURN(size_t idx,
                                input->schema().FindColumn(t.scalar_column));
        ColumnDef def = input->schema().column(idx);
        def.name = t.output_name;
        PCTAGG_RETURN_IF_ERROR(out.AddColumn(def, input->column(idx)));
      } else {
        PCTAGG_ASSIGN_OR_RETURN(AggFunc func, WindowFunc(t.func));
        PCTAGG_ASSIGN_OR_RETURN(
            Column agg,
            WindowAggregate(*input, t.partition_by, func, t.argument));
        PCTAGG_RETURN_IF_ERROR(
            out.AddColumn({t.output_name, agg.type()}, std::move(agg)));
      }
    }
    ctx->catalog->CreateOrReplaceTable(out_name, std::move(out));
    return Status::OK();
  });
  plan.AddTempTable(out_name);
  plan.set_result_table(out_name);
  return plan;
}

}  // namespace pctagg
