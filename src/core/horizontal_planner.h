#ifndef PCTAGG_CORE_HORIZONTAL_PLANNER_H_
#define PCTAGG_CORE_HORIZONTAL_PLANNER_H_

#include "common/result.h"
#include "core/plan.h"
#include "core/vpct_planner.h"
#include "sql/analyzer.h"

namespace pctagg {

// Evaluation methods for horizontal terms (Hpct and horizontal
// aggregations). These are the strategies compared in SIGMOD Table 5 and
// DMKD Table 3.
enum class HorizontalMethod {
  // One scan of F; each output column is a sum(CASE WHEN <combo> THEN A ...)
  // term of a single GROUP BY D1..Dj statement.
  kCaseDirect,
  // Compute the equivalent vertical result FV first (for Hpct: the full
  // vertical percentage query; for Hagg: the vertical aggregate at level
  // D1..Dk), then transpose FV with the CASE statement.
  kCaseFromFV,
  // Pure relational evaluation: one aggregate table F_I per result column,
  // assembled with N left outer joins against F0 (DMKD Section 3.4).
  kSpjDirect,
  // SPJ, but the F_I tables aggregate the smaller FV instead of F.
  kSpjFromFV,
};

const char* HorizontalMethodName(HorizontalMethod method);

struct HorizontalStrategy {
  HorizontalMethod method = HorizontalMethod::kCaseDirect;
  // CASE evaluation mode: true uses the hash-based O(1)-per-row dispatch the
  // papers propose as the optimizer improvement; false literally evaluates
  // all N disjoint CASE conjunctions per row (the O(N) behaviour both papers
  // criticize). Results are identical.
  bool hash_dispatch = true;
  // Sub-strategy for the embedded vertical-percentage plan of
  // Hpct + kCaseFromFV / kSpjFromFV (defaults to the paper's best strategy).
  VpctStrategy vpct;
  // ORDER BY the grouping columns at the end (off for benchmarks).
  bool order_result = false;
};

// Generates the evaluation plan for a horizontal query
// (QueryClass::kHorizontal): any number of Hpct()/Hagg-BY terms plus
// standard vertical aggregates on the same GROUP BY D1..Dj. Each horizontal
// term contributes one result column per distinct combination of its BY
// columns; result blocks are assembled on D1..Dj.
Result<Plan> PlanHorizontalQuery(const AnalyzedQuery& query,
                                 const HorizontalStrategy& strategy);

}  // namespace pctagg

#endif  // PCTAGG_CORE_HORIZONTAL_PLANNER_H_
