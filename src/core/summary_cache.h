#ifndef PCTAGG_CORE_SUMMARY_CACHE_H_
#define PCTAGG_CORE_SUMMARY_CACHE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/table.h"

namespace pctagg {

// Materialized-summary cache across percentage queries, implementing the
// paper's future-work idea that "a set of percentage queries on the same
// table may be efficiently evaluated using shared summaries": the Fk-level
// aggregate of one query answers any later query asking for the same
// (table, grouping, aggregates) combination, no matter the strategy.
//
// Keys are built by the planner from the *generated SQL fragments* (base
// table, grouping columns, rendered aggregate list), so two textually
// different queries with the same aggregation share an entry. Entries store
// full table copies; the cache assumes base tables are immutable while
// cached (PctDatabase invalidates on CreateTable/CreateOrReplace through its
// API).
class SummaryCache {
 public:
  SummaryCache() = default;

  SummaryCache(const SummaryCache&) = delete;
  SummaryCache& operator=(const SummaryCache&) = delete;

  // Canonical cache key for an aggregation step.
  static std::string KeyFor(const std::string& base_table,
                            const std::vector<std::string>& group_by,
                            const std::string& rendered_aggs);

  // The cached summary, or nullptr. Counts a hit/miss. The returned snapshot
  // stays valid even if the entry is concurrently replaced or invalidated
  // (entries are immutable once stored).
  std::shared_ptr<const Table> Lookup(const std::string& key);

  // The current invalidation generation of `base_table` (starts at 0, bumped
  // by InvalidateTable/Clear). A filler reads this *before* scanning the base
  // table and hands it back to Insert, which rejects the entry if the table
  // was invalidated in between — otherwise a slow fill racing a ReplaceTable
  // would re-insert a summary of the old data after the invalidation ran
  // (the check-then-insert race).
  uint64_t GenerationFor(const std::string& base_table) const;

  // Stores a copy of `summary` (replacing any previous entry) iff
  // `base_table` of the key is still at `generation`. Counts a rejected
  // stale insert in stale_inserts().
  void Insert(const std::string& key, const Table& summary,
              uint64_t generation);

  // Unconditional insert: shorthand for Insert at the current generation.
  void Insert(const std::string& key, const Table& summary);

  // Drops every entry derived from `base_table` and bumps its generation.
  void InvalidateTable(const std::string& base_table);

  void Clear();

  size_t size() const;
  size_t hits() const;
  size_t misses() const;
  size_t stale_inserts() const;

 private:
  struct Entry {
    std::string base_table;  // lower-cased, for invalidation
    std::shared_ptr<const Table> summary;
  };
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  // Invalidation generation per lower-cased base table; absent means 0.
  std::map<std::string, uint64_t> generations_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t stale_inserts_ = 0;
};

}  // namespace pctagg

#endif  // PCTAGG_CORE_SUMMARY_CACHE_H_
