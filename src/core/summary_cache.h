#ifndef PCTAGG_CORE_SUMMARY_CACHE_H_
#define PCTAGG_CORE_SUMMARY_CACHE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/table.h"

namespace pctagg {

// Materialized-summary cache across percentage queries, implementing the
// paper's future-work idea that "a set of percentage queries on the same
// table may be efficiently evaluated using shared summaries": the Fk-level
// aggregate of one query answers any later query asking for the same
// (table, grouping, aggregates) combination, no matter the strategy.
//
// Keys are built by the planner from the *generated SQL fragments* (base
// table, grouping columns, rendered aggregate list), so two textually
// different queries with the same aggregation share an entry. Entries store
// full table copies; the cache assumes base tables are immutable while
// cached (PctDatabase invalidates on CreateTable/CreateOrReplace through its
// API).
class SummaryCache {
 public:
  SummaryCache() = default;

  SummaryCache(const SummaryCache&) = delete;
  SummaryCache& operator=(const SummaryCache&) = delete;

  // Canonical cache key for an aggregation step.
  static std::string KeyFor(const std::string& base_table,
                            const std::vector<std::string>& group_by,
                            const std::string& rendered_aggs);

  // The cached summary, or nullptr. Counts a hit/miss. The returned snapshot
  // stays valid even if the entry is concurrently replaced or invalidated
  // (entries are immutable once stored).
  std::shared_ptr<const Table> Lookup(const std::string& key);

  // Stores a copy of `summary` (replacing any previous entry).
  void Insert(const std::string& key, const Table& summary);

  // Drops every entry derived from `base_table`.
  void InvalidateTable(const std::string& base_table);

  void Clear();

  size_t size() const;
  size_t hits() const;
  size_t misses() const;

 private:
  struct Entry {
    std::string base_table;  // lower-cased, for invalidation
    std::shared_ptr<const Table> summary;
  };
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace pctagg

#endif  // PCTAGG_CORE_SUMMARY_CACHE_H_
