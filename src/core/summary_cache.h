#ifndef PCTAGG_CORE_SUMMARY_CACHE_H_
#define PCTAGG_CORE_SUMMARY_CACHE_H_

#include <condition_variable>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "engine/aggregate.h"
#include "engine/table.h"

namespace pctagg {

// How an entry's summary table was computed from its base table: the GROUP BY
// columns and the aggregate list handed to HashAggregate. The append path
// replays the recipe over just the appended rows (the delta) and merges the
// result into the cached summary instead of rescanning the whole table.
struct SummaryRecipe {
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggs;  // ExprPtr members are shared, immutable
};

// True when every aggregate in the recipe is distributive under append-only
// writes (sum/count/count(*)/min/max): merging per-group delta values into
// the cached values yields exactly the recompute-from-scratch result. avg is
// not in the set — planners decompose it into sum+count when they want a
// mergeable entry; a cached avg column would need its inputs to re-derive.
bool RecipeIsMergeable(const SummaryRecipe& recipe);

// Materialized-summary cache across percentage queries, implementing the
// paper's future-work idea that "a set of percentage queries on the same
// table may be efficiently evaluated using shared summaries": the Fk-level
// aggregate of one query answers any later query asking for the same
// (table, grouping, aggregates) combination, no matter the strategy.
//
// Keys are built by the planner from the *generated SQL fragments* (base
// table, grouping columns, rendered aggregate list), so two textually
// different queries with the same aggregation share an entry.
//
// Entries store full table copies, bounded by a byte-budget LRU
// (set_capacity_bytes / SET summary_cache_mb): inserting past the budget
// evicts least-recently-looked-up entries first.
//
// Writes: wholesale table replacement goes through InvalidateTable (drop
// everything derived from the table). Appends go through BeginAppend /
// CompleteMerge: entries whose recipe is distributive are handed back to the
// caller for delta maintenance; the rest are dropped for lazy recompute.
class SummaryCache {
 public:
  SummaryCache() = default;

  SummaryCache(const SummaryCache&) = delete;
  SummaryCache& operator=(const SummaryCache&) = delete;

  // Canonical cache key for an aggregation step.
  static std::string KeyFor(const std::string& base_table,
                            const std::vector<std::string>& group_by,
                            const std::string& rendered_aggs);

  // The cached summary, or nullptr. Counts a hit/miss and refreshes the
  // entry's LRU position. The returned snapshot stays valid even if the
  // entry is concurrently replaced, invalidated or evicted (entries are
  // immutable once stored).
  std::shared_ptr<const Table> Lookup(const std::string& key);

  // Combined lookup + in-flight fill registration (single-flight): returns
  // true when the caller now *owns* the fill for `key` — counted as the one
  // miss — and must Insert the computed summary and then FinishFill(key), on
  // success and on error alike (ScopedFill below automates the release).
  // Returns false when the entry was present, either immediately or after
  // blocking on another thread's in-flight fill of the same key; `*out`
  // receives the summary (counted as a hit; callers that had to wait are
  // additionally counted in shared_fills()). A waiter whose owner failed —
  // or whose fill was rejected as stale — re-checks and claims ownership
  // itself, so a false return always carries a non-null *out. This is the
  // thundering-herd fix: N identical concurrent misses run one scan, not N.
  bool LookupOrBeginFill(const std::string& key,
                         std::shared_ptr<const Table>* out);

  // Releases the in-flight registration taken by LookupOrBeginFill and wakes
  // every waiter (each re-runs its lookup loop).
  void FinishFill(const std::string& key);

  // RAII release of fill ownership, so early error returns between
  // LookupOrBeginFill and Insert never strand waiters. A null cache is a
  // no-op (for callers that only conditionally own a fill).
  class ScopedFill {
   public:
    ScopedFill(SummaryCache* cache, std::string key)
        : cache_(cache), key_(std::move(key)) {}
    ~ScopedFill() {
      if (cache_ != nullptr) cache_->FinishFill(key_);
    }
    ScopedFill(const ScopedFill&) = delete;
    ScopedFill& operator=(const ScopedFill&) = delete;

   private:
    SummaryCache* cache_;
    std::string key_;
  };

  // The current invalidation generation of `base_table` (starts at 0, bumped
  // by InvalidateTable/Clear/BeginAppend). A filler reads this *before*
  // scanning the base table and hands it back to Insert, which rejects the
  // entry if the table changed in between — otherwise a slow fill racing a
  // ReplaceTable or an append would re-insert a summary of the old data
  // after the write ran (the check-then-insert race).
  uint64_t GenerationFor(const std::string& base_table) const;

  // Stores a copy of `summary` (replacing any previous entry) iff
  // `base_table` of the key is still at `generation`. Counts a rejected
  // stale insert in stale_inserts(). A non-null `recipe` marks the entry
  // maintainable by the append path (BeginAppend below); without one the
  // entry is dropped on any write to its base table.
  void Insert(const std::string& key, const Table& summary,
              uint64_t generation, const SummaryRecipe* recipe = nullptr);

  // Unconditional insert: shorthand for Insert at the current generation.
  void Insert(const std::string& key, const Table& summary);

  // Drops every entry derived from `base_table` and bumps its generation.
  void InvalidateTable(const std::string& base_table);

  // One cached summary checked out for delta maintenance during an append.
  // `summary` is the pre-append snapshot; `target_generation` is the
  // generation the append moved the table to, which CompleteMerge needs so a
  // merged result never lands after a *later* write invalidated it.
  struct PendingMerge {
    std::string key;
    std::shared_ptr<const Table> summary;
    SummaryRecipe recipe;
    uint64_t target_generation = 0;
  };

  // Starts delta maintenance for an append to `base_table`: bumps the
  // table's generation (so in-flight fills that scanned the pre-append rows
  // are rejected on Insert), removes every entry derived from the table, and
  // returns the ones whose recipe is mergeable for the caller to delta-merge
  // and hand back via CompleteMerge. Entries without a mergeable recipe are
  // dropped (recomputed lazily on next lookup); their count lands in
  // `*dropped` when non-null. Removing entries for the whole append window —
  // rather than patching them in place — keeps concurrent lookups from ever
  // seeing a summary that disagrees with the already-extended base table.
  std::vector<PendingMerge> BeginAppend(const std::string& base_table,
                                        size_t* dropped = nullptr);

  // One live mergeable entry derived from a base table, as seen by the
  // partial-lattice planner: answer a plain GROUP BY by rolling up the
  // smallest cached ancestor whose grouping subsumes the query's.
  struct AncestorCandidate {
    std::string key;
    std::shared_ptr<const Table> summary;
    SummaryRecipe recipe;
  };

  // Snapshot of every entry derived from `base_table` that carries a
  // mergeable recipe (distributive partials only — exactly the entries whose
  // rollup to a coarser grouping equals a recompute). Refreshes no LRU
  // positions and counts no hits; the caller reports a hit on the entry it
  // actually uses by calling Lookup on its key.
  std::vector<AncestorCandidate> MergeableEntriesFor(
      const std::string& base_table) const;

  // Re-inserts a delta-merged summary checked out by BeginAppend. The entry
  // lands iff the table is still at `pending.target_generation` and no
  // fresher fill claimed the key meanwhile (per-entry generations: a lookup
  // that missed during the append window may have recomputed from the
  // post-append table and inserted at the same generation — that fill is
  // equivalent, so it wins and the merge is discarded). Returns whether the
  // merged summary was stored.
  bool CompleteMerge(const PendingMerge& pending, const Table& merged);

  void Clear();

  // Byte budget for cached summaries (default 256 MiB). Shrinking evicts
  // immediately. A budget of 0 disables storage (every insert evicts
  // itself), which tests use to exercise the eviction path.
  void set_capacity_bytes(size_t bytes);
  size_t capacity_bytes() const;

  size_t size() const;
  size_t bytes() const;
  size_t hits() const;
  size_t misses() const;
  size_t stale_inserts() const;
  size_t evictions() const;
  // Lookups answered by waiting on another thread's in-flight fill instead
  // of running their own scan (a subset of hits()).
  size_t shared_fills() const;

 private:
  struct Entry {
    std::string base_table;  // lower-cased, for invalidation
    std::shared_ptr<const Table> summary;
    // Recipe for delta maintenance; group_by/aggs both empty => not
    // maintainable (the entry predates recipes or carries derived columns).
    SummaryRecipe recipe;
    bool has_recipe = false;
    // Table generation this entry was computed at. CompleteMerge compares
    // against it so a merge never clobbers a fresher fill of the same key.
    uint64_t generation = 0;
    size_t approx_bytes = 0;
    std::list<std::string>::iterator lru_pos;  // into lru_, front = hottest
  };

  // All four require mutex_ held.
  void EvictToBudgetLocked();
  void EraseLocked(std::map<std::string, Entry>::iterator it);
  void InsertLocked(const std::string& key, Entry entry);
  void PublishBytesLocked();

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // keys, most-recently-used first
  // Invalidation generation per lower-cased base table; absent means 0.
  std::map<std::string, uint64_t> generations_;
  // Keys whose fill some thread currently owns (LookupOrBeginFill returned
  // true and FinishFill has not run yet). Waiters sleep on fill_cv_.
  std::set<std::string> fills_in_flight_;
  std::condition_variable fill_cv_;
  size_t capacity_bytes_ = 256ull << 20;
  size_t bytes_ = 0;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t stale_inserts_ = 0;
  size_t evictions_ = 0;
  size_t shared_fills_ = 0;
};

}  // namespace pctagg

#endif  // PCTAGG_CORE_SUMMARY_CACHE_H_
