#include "core/mqo_plan.h"

#include <utility>

#include "common/string_util.h"
#include "core/database.h"
#include "core/lattice_plan.h"
#include "engine/pipeline.h"
#include "obs/metrics.h"

namespace pctagg {

namespace {

// Same (func, argument) rendering PartialSet dedups on, so partials written
// by any planner — and recipes cached by any path — identify the same way.
std::string RenderKey(AggFunc func, const ExprPtr& arg) {
  return std::string(AggFuncName(func)) + "(" +
         (func == AggFunc::kCountStar ? "*" : arg->ToString()) + ")";
}

bool ContainsIgnoreCase(const std::vector<std::string>& haystack,
                        const std::string& needle) {
  for (const std::string& h : haystack) {
    if (EqualsIgnoreCase(h, needle)) return true;
  }
  return false;
}

}  // namespace

bool MqoSupported(const AnalyzedQuery& query, std::string* why) {
  // Batching is the distributed decomposition run in-process: one scan
  // produces finest-level distributive partials, each member assembles from
  // them. Anything the scatter path can't decompose, a batch can't either.
  return DistributedSupported(query, why);
}

std::string MqoCompatibilityKey(const AnalyzedQuery& query) {
  // The union scan runs under one predicate, so WHERE compatibility is
  // textual equality of the rendered expression (normalized by the parser);
  // semantically equivalent but differently spelled predicates simply land
  // in different batches — correct, just less sharing.
  std::string key = ToLower(query.table_name) + "|";
  if (query.where != nullptr) key += query.where->ToString();
  return key;
}

Result<MqoBatchPlan> PlanMqoBatch(
    const std::vector<const AnalyzedQuery*>& queries) {
  if (queries.empty()) {
    return Status::InvalidArgument("mqo: empty batch");
  }
  MqoBatchPlan plan;
  plan.table = queries[0]->table_name;
  plan.where = queries[0]->where;
  const std::string key = MqoCompatibilityKey(*queries[0]);
  std::vector<std::string> union_keys;  // render keys, parallel to partials

  for (const AnalyzedQuery* query : queries) {
    if (MqoCompatibilityKey(*query) != key) {
      return Status::InvalidArgument(
          "mqo: incompatible batch member (table or WHERE differs)");
    }
    PCTAGG_ASSIGN_OR_RETURN(DistPartialPlan dp,
                            BuildDistributedPartialPlan(*query));
    MqoMemberPlan member;
    member.query = query;
    member.finest_cols = dp.finest_cols;
    member.partials_requested = dp.partials.size();
    plan.partials_requested += dp.partials.size();
    for (const std::string& col : dp.finest_cols) {
      if (!ContainsIgnoreCase(plan.scan_cols, col)) {
        plan.scan_cols.push_back(col);
      }
    }
    for (size_t i = 0; i < dp.partials.size(); ++i) {
      const AggSpec& p = dp.partials[i];
      const std::string want = RenderKey(p.func, p.input);
      size_t slot = union_keys.size();
      for (size_t u = 0; u < union_keys.size(); ++u) {
        if (union_keys[u] == want) {
          slot = u;
          break;
        }
      }
      if (slot == union_keys.size()) {
        union_keys.push_back(want);
        plan.scan_partials.push_back(
            {p.func, p.input, "__b" + std::to_string(slot + 1)});
      }
      // Member partial __lN = combine of the batch column __b(slot+1); the
      // combine func comes from the member's own plan (min->min, max->max,
      // counts and sums re-sum).
      member.rollup.push_back({dp.combine[i].func,
                               Col(plan.scan_partials[slot].output_name),
                               p.output_name});
      member.count_typed.push_back(p.func == AggFunc::kCount ||
                                   p.func == AggFunc::kCountStar);
    }
    plan.members.push_back(std::move(member));
  }

  plan.scan_combine.reserve(plan.scan_partials.size());
  for (const AggSpec& p : plan.scan_partials) {
    AggFunc combine = p.func == AggFunc::kMin   ? AggFunc::kMin
                      : p.func == AggFunc::kMax ? AggFunc::kMax
                                                : AggFunc::kSum;
    plan.scan_combine.push_back(
        {combine, Col(p.output_name), p.output_name});
  }

  // Rendered exactly like DistPartialPlan.partial_sql so shard workers run
  // the batch's union scan through their ordinary PARTIAL verb.
  std::vector<std::string> cols = plan.scan_cols;
  for (const AggSpec& a : plan.scan_partials) {
    std::string arg = a.func == AggFunc::kCountStar ? "*" : a.input->ToString();
    cols.push_back(std::string(AggFuncName(a.func)) + "(" + arg + ") AS " +
                   a.output_name);
  }
  plan.scan_sql = "SELECT " + Join(cols, ", ") + " FROM " + plan.table;
  if (plan.where != nullptr) {
    plan.scan_sql += " WHERE " + plan.where->ToString();
  }
  if (!plan.scan_cols.empty()) {
    plan.scan_sql += " GROUP BY " + Join(plan.scan_cols, ", ");
  }
  return plan;
}

Result<Table> AssembleMqoMember(const MqoMemberPlan& member,
                                const Table& batch_partials,
                                obs::QueryTrace* trace, size_t dop) {
  Table finest;
  {
    obs::TraceNode* node =
        trace != nullptr
            ? trace->root().AddChild(
                  "mqo", "mqo-rollup: level " +
                             (member.finest_cols.empty()
                                  ? std::string("()")
                                  : Join(member.finest_cols, ", ")) +
                             " from shared batch partials")
            : nullptr;
    obs::ScopedTraceNode scope(node);
    PCTAGG_ASSIGN_OR_RETURN(
        finest,
        HashAggregate(batch_partials, member.finest_cols, member.rollup, dop));
    if (member.finest_cols.empty() && batch_partials.num_rows() == 0) {
      // Rolling up zero groups leaves the global row's count partials NULL
      // where a direct scan of the empty fact emits 0 — the same patch every
      // other rollup path applies.
      for (size_t a = 0; a < member.rollup.size(); ++a) {
        if (!member.count_typed[a] || !finest.column(a).IsNull(0)) continue;
        PCTAGG_RETURN_IF_ERROR(
            finest.mutable_column(a).SetValue(0, Value::Int64(0)));
      }
    }
  }
  auto shared = std::make_shared<const Table>(std::move(finest));
  PCTAGG_ASSIGN_OR_RETURN(
      Table assembled,
      AssembleFromPartials(*member.query, std::move(shared), trace, dop));
  return ApplyQueryTail(std::move(assembled), *member.query);
}

Result<std::vector<Table>> ExecuteMqoBatch(
    const MqoBatchPlan& plan, const Table& fact, SummaryCache* summaries,
    const std::vector<obs::QueryTrace*>& traces, size_t dop,
    MqoBatchStats* stats) {
  std::vector<std::string> partial_renders;
  partial_renders.reserve(plan.scan_partials.size());
  for (const AggSpec& a : plan.scan_partials) {
    partial_renders.push_back(RenderKey(a.func, a.input) + " AS " +
                              a.output_name);
  }
  const std::string rendered = Join(partial_renders, ",");

  std::string cache_key;
  uint64_t generation = 0;
  std::shared_ptr<const Table> cached;
  bool own_fill = false;
  const bool cacheable = plan.where == nullptr && summaries != nullptr;
  if (cacheable) {
    cache_key = SummaryCache::KeyFor(plan.table, plan.scan_cols, rendered);
    own_fill = summaries->LookupOrBeginFill(cache_key, &cached);
    if (own_fill) generation = summaries->GenerationFor(plan.table);
  }
  std::shared_ptr<const Table> batch;
  {
    SummaryCache::ScopedFill fill(own_fill ? summaries : nullptr, cache_key);
    if (cached != nullptr) {
      obs::MarkCacheHit();
      if (stats != nullptr) stats->cache_hit = true;
      batch = std::move(cached);
    } else {
      PCTAGG_ASSIGN_OR_RETURN(
          Table t, FusedAggregate(fact, plan.where, plan.scan_cols,
                                  plan.scan_partials, dop));
      if (own_fill) {
        SummaryRecipe recipe{plan.scan_cols, plan.scan_partials};
        summaries->Insert(cache_key, t, generation, &recipe);
        if (stats != nullptr) stats->cache_filled = true;
      }
      if (stats != nullptr) stats->rows_scanned = fact.num_rows();
      batch = std::make_shared<const Table>(std::move(t));
    }
  }

  std::vector<Table> results;
  results.reserve(plan.members.size());
  for (size_t i = 0; i < plan.members.size(); ++i) {
    obs::QueryTrace* trace = i < traces.size() ? traces[i] : nullptr;
    if (trace != nullptr) {
      trace->root().AddChild(
          "mqo",
          StrFormat("mqo-batch: %zu queries share one scan of %s "
                    "(%zu partials deduped from %zu; rows scanned once: "
                    "%llu instead of %zu times)",
                    plan.members.size(), plan.table.c_str(),
                    plan.scan_partials.size(), plan.partials_requested,
                    static_cast<unsigned long long>(fact.num_rows()),
                    plan.members.size()));
    }
    PCTAGG_ASSIGN_OR_RETURN(
        Table r, AssembleMqoMember(plan.members[i], *batch, trace, dop));
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace pctagg
