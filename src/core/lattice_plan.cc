#include "core/lattice_plan.h"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <utility>

#include "common/string_util.h"
#include "engine/aggregate.h"
#include "engine/expression.h"
#include "engine/join.h"
#include "engine/pipeline.h"
#include "engine/pivot.h"
#include "engine/table_ops.h"

namespace pctagg {

namespace {

constexpr size_t kNone = static_cast<size_t>(-1);

// Maps a non-percentage SELECT term onto the engine aggregate (same table as
// the materialized planners and the fused pipelines).
Result<AggFunc> TermAggFunc(TermFunc func) {
  switch (func) {
    case TermFunc::kSum:
      return AggFunc::kSum;
    case TermFunc::kCount:
      return AggFunc::kCount;
    case TermFunc::kCountStar:
      return AggFunc::kCountStar;
    case TermFunc::kAvg:
      return AggFunc::kAvg;
    case TermFunc::kMin:
      return AggFunc::kMin;
    case TermFunc::kMax:
      return AggFunc::kMax;
    default:
      return Status::Internal("not a vertical aggregate term");
  }
}

// Same rendering as the fused pipeline / AddCacheableAggregateStep, so a
// lattice level and a plain GROUP BY of the same shape share one summary
// cache entry.
std::string RenderAggs(const std::vector<AggSpec>& aggs) {
  std::vector<std::string> rendered;
  rendered.reserve(aggs.size());
  for (const AggSpec& a : aggs) {
    std::string arg = a.func == AggFunc::kCountStar ? "*" : a.input->ToString();
    rendered.push_back(std::string(AggFuncName(a.func)) + "(" + arg + ") AS " +
                       a.output_name);
  }
  return Join(rendered, ",");
}

// SQL-ish description of one lattice stage for EXPLAIN ANALYZE.
std::string RenderStage(const std::string& what,
                        const std::vector<std::string>& group_by,
                        const std::vector<AggSpec>& aggs,
                        const std::string& from, const ExprPtr& where) {
  std::vector<std::string> cols = group_by;
  for (const AggSpec& a : aggs) {
    std::string arg = a.func == AggFunc::kCountStar ? "*" : a.input->ToString();
    cols.push_back(std::string(AggFuncName(a.func)) + "(" + arg + ") AS " +
                   a.output_name);
  }
  std::string sql = what + " SELECT " + Join(cols, ", ") + " FROM " + from;
  if (where != nullptr) sql += " WHERE " + where->ToString();
  if (!group_by.empty()) sql += " GROUP BY " + Join(group_by, ", ");
  return sql;
}

Result<size_t> ColIndex(const Table& t, const std::string& name) {
  for (size_t c = 0; c < t.num_columns(); ++c) {
    if (EqualsIgnoreCase(t.schema().column(c).name, name)) return c;
  }
  return Status::Internal("lattice plan lost column: " + name);
}

bool ContainsColumn(const std::vector<std::string>& cols,
                    const std::string& name) {
  for (const std::string& c : cols) {
    if (EqualsIgnoreCase(c, name)) return true;
  }
  return false;
}

bool Subsumes(const std::vector<std::string>& outer,
              const std::vector<std::string>& inner) {
  for (const std::string& i : inner) {
    if (!ContainsColumn(outer, i)) return false;
  }
  return true;
}

std::string LevelName(const std::vector<std::string>& cols) {
  return "(" + Join(cols, ", ") + ")";
}

// One deduplicated distributive partial carried through every lattice level:
// the finest-level aggregate over the fact table plus the re-aggregation that
// rolls its column up to a coarser level.
struct Partial {
  AggSpec spec;
  AggFunc combine;
  bool count_typed;  // the empty-source () rollup patches NULL back to 0
};

// Builds the partial list, deduplicating by (func, argument) so e.g.
// Vpct(x BY a) and Vpct(x BY b) — or Hpct(x BY d) and sum(x) — share one sum
// partial. avg is never added directly; callers decompose it into sum+count,
// which keeps every partial distributive and the cache recipes mergeable.
class PartialSet {
 public:
  size_t Add(AggFunc func, const ExprPtr& argument) {
    std::string key =
        std::string(AggFuncName(func)) + "(" +
        (func == AggFunc::kCountStar ? "*" : argument->ToString()) + ")";
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    Partial p;
    p.spec = {func, argument, "__l" + std::to_string(partials_.size() + 1)};
    p.count_typed = func == AggFunc::kCount || func == AggFunc::kCountStar;
    p.combine = func == AggFunc::kMin   ? AggFunc::kMin
                : func == AggFunc::kMax ? AggFunc::kMax
                                        : AggFunc::kSum;
    index_[key] = partials_.size();
    partials_.push_back(std::move(p));
    return partials_.size() - 1;
  }

  const std::vector<Partial>& partials() const { return partials_; }
  const std::string& name(size_t i) const {
    return partials_[i].spec.output_name;
  }

  std::vector<AggSpec> Specs() const {
    std::vector<AggSpec> out;
    out.reserve(partials_.size());
    for (const Partial& p : partials_) out.push_back(p.spec);
    return out;
  }

  // The rollup aggregates: each partial column re-aggregated under its own
  // name, so every level's table has an identical schema.
  std::vector<AggSpec> CombineSpecs() const {
    std::vector<AggSpec> out;
    out.reserve(partials_.size());
    for (const Partial& p : partials_) {
      out.push_back({p.combine, Col(p.spec.output_name), p.spec.output_name});
    }
    return out;
  }

 private:
  std::vector<Partial> partials_;
  std::map<std::string, size_t> index_;
};

// Which partials a vertical/Vpct SELECT term reads at assembly time.
struct TermPlan {
  size_t main = kNone;
  size_t count = kNone;  // avg only
};

Status BuildVerticalPartials(const AnalyzedQuery& query, PartialSet* pset,
                             std::vector<TermPlan>* plans) {
  plans->assign(query.terms.size(), TermPlan{});
  for (size_t i = 0; i < query.terms.size(); ++i) {
    const AnalyzedTerm& t = query.terms[i];
    TermPlan& p = (*plans)[i];
    switch (t.func) {
      case TermFunc::kScalar:
      case TermFunc::kGrouping:
        break;
      case TermFunc::kVpct:
        p.main = pset->Add(AggFunc::kSum, t.argument);
        break;
      case TermFunc::kAvg:
        p.main = pset->Add(AggFunc::kSum, t.argument);
        p.count = pset->Add(AggFunc::kCount, t.argument);
        break;
      default: {
        PCTAGG_ASSIGN_OR_RETURN(AggFunc func, TermAggFunc(t.func));
        p.main = pset->Add(func, t.argument);
        break;
      }
    }
  }
  // A pure grouping query (scalars + GROUPING() only) still needs one
  // concrete column per level so the () level materializes its single row.
  if (pset->partials().empty()) pset->Add(AggFunc::kCountStar, nullptr);
  return Status::OK();
}

// The single BY term, its pivot shape, and the extra vertical aggregates of
// a horizontal lattice query.
struct HorizontalPlan {
  const AnalyzedTerm* hterm = nullptr;
  bool is_pct = false;
  size_t main = kNone;
  AggFunc pivot_func = AggFunc::kSum;
  struct Extra {
    const AnalyzedTerm* term;
    AggFunc func;
    size_t main = kNone;
    size_t count = kNone;  // avg only
  };
  std::vector<Extra> extras;
};

Status BuildHorizontalPartials(const AnalyzedQuery& query, PartialSet* pset,
                               HorizontalPlan* plan) {
  for (const AnalyzedTerm& t : query.terms) {
    if (t.func != TermFunc::kScalar && t.func != TermFunc::kGrouping &&
        t.has_by) {
      plan->hterm = &t;
      break;
    }
  }
  if (plan->hterm == nullptr) {
    return Status::Internal("horizontal lattice without a BY term");
  }
  plan->is_pct = plan->hterm->func == TermFunc::kHpct;
  AggFunc direct = AggFunc::kSum;
  if (!plan->is_pct) {
    PCTAGG_ASSIGN_OR_RETURN(direct, TermAggFunc(plan->hterm->func));
  }
  plan->main = pset->Add(plan->is_pct ? AggFunc::kSum : direct,
                         plan->hterm->argument);
  // For Hpct the group total is the sum of the partial sums, so
  // percent-of-group-total over partials equals the direct computation.
  plan->pivot_func =
      plan->is_pct ? AggFunc::kSum : pset->partials()[plan->main].combine;
  for (const AnalyzedTerm& t : query.terms) {
    if (t.func == TermFunc::kScalar || t.func == TermFunc::kGrouping ||
        t.has_by) {
      continue;
    }
    HorizontalPlan::Extra e;
    e.term = &t;
    PCTAGG_ASSIGN_OR_RETURN(e.func, TermAggFunc(t.func));
    if (e.func == AggFunc::kAvg) {
      e.main = pset->Add(AggFunc::kSum, t.argument);
      e.count = pset->Add(AggFunc::kCount, t.argument);
    } else {
      e.main = pset->Add(e.func, t.argument);
    }
    plan->extras.push_back(e);
  }
  return Status::OK();
}

// One computed lattice level: its aggregation columns (grouping-set columns,
// plus the BY columns for horizontal queries) and the partial table.
struct LatticeLevel {
  std::vector<std::string> cols;
  std::shared_ptr<const Table> table;
};

// Computes every level's partial table, finest (widest) first. In shared-scan
// mode only the finest level touches the fact table (one fused pass); every
// coarser level re-aggregates the smallest already-computed ancestor. In
// per-level mode each level runs its own fused scan — both modes produce the
// same tables bit for bit on integer measures, so they share cache entries.
// Each level is looked up in / inserted into the summary cache under its own
// mergeable recipe (unfiltered scans of the base table only).
// When `finest_override` is non-null the finest level is not computed at all:
// the caller already holds its partial table (e.g. the coordinator's merged
// per-shard partials) and every coarser level rolls up from it. Requires
// shared_scan (there is no fact table to rescan) and disables the cache.
Result<std::vector<LatticeLevel>> ComputeLevels(
    const AnalyzedQuery& query, const Table& fact,
    const std::vector<std::vector<std::string>>& level_cols,
    const PartialSet& pset, SummaryCache* summaries, obs::QueryTrace* trace,
    size_t dop, bool shared_scan,
    std::shared_ptr<const Table> finest_override = nullptr) {
  const std::vector<AggSpec> specs = pset.Specs();
  const std::vector<AggSpec> combine = pset.CombineSpecs();
  const std::string rendered = RenderAggs(specs);
  const bool cacheable = query.where == nullptr && summaries != nullptr &&
                         finest_override == nullptr;
  if (finest_override != nullptr && !shared_scan) {
    return Status::Internal(
        "finest-override lattice requires shared-scan rollups");
  }

  std::vector<LatticeLevel> out(level_cols.size());
  std::vector<size_t> order(level_cols.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&level_cols](size_t a, size_t b) {
                     return level_cols[a].size() > level_cols[b].size();
                   });

  for (size_t oi = 0; oi < order.size(); ++oi) {
    const size_t li = order[oi];
    const std::vector<std::string>& cols = level_cols[li];
    out[li].cols = cols;

    std::string cache_key;
    uint64_t generation = 0;
    std::shared_ptr<const Table> cached;
    bool own_fill = false;
    if (cacheable) {
      cache_key = SummaryCache::KeyFor(query.table_name, cols, rendered);
      // Single-flight per level; safe against cross-query deadlock because a
      // thread releases each level's fill (ScopedFill below) before asking
      // for the next one — nobody waits while owning.
      own_fill = summaries->LookupOrBeginFill(cache_key, &cached);
      if (own_fill) {
        generation = summaries->GenerationFor(query.table_name);
      }
    }
    SummaryCache::ScopedFill fill(own_fill ? summaries : nullptr, cache_key);

    const bool fused_path = !shared_scan || oi == 0;
    const LatticeLevel* src = nullptr;
    if (!fused_path) {
      for (size_t pj = 0; pj < oi; ++pj) {
        const LatticeLevel& cand = out[order[pj]];
        if (!Subsumes(cand.cols, cols)) continue;
        if (src == nullptr || cand.table->num_rows() < src->table->num_rows()) {
          src = &cand;
        }
      }
      if (src == nullptr) {
        return Status::Internal("lattice rollup has no source level");
      }
    }

    obs::TraceNode* node = nullptr;
    if (trace != nullptr) {
      std::string detail =
          fused_path
              ? (finest_override != nullptr
                     ? "merged-partials: level " + LevelName(cols)
                     : RenderStage("fused-scan:", cols, specs,
                                   query.table_name, query.where))
              : "lattice-rollup: level " + LevelName(cols) + " from " +
                    LevelName(src->cols);
      node = trace->root().AddChild(fused_path ? "fused" : "lattice", detail);
    }
    obs::ScopedTraceNode scope(node);
    if (fused_path && finest_override != nullptr) {
      out[li].table = finest_override;
      continue;
    }
    if (cached != nullptr) {
      obs::MarkCacheHit();
      out[li].table = std::move(cached);
      continue;
    }

    Table t;
    if (fused_path) {
      PCTAGG_ASSIGN_OR_RETURN(
          t, FusedAggregate(fact, query.where, cols, specs, dop));
    } else {
      PCTAGG_ASSIGN_OR_RETURN(t,
                              HashAggregate(*src->table, cols, combine, dop));
      if (cols.empty() && src->table->num_rows() == 0) {
        // Rolling up zero groups leaves the global row's count partials NULL
        // where a direct scan of the empty fact emits 0; patch them so both
        // lattice modes agree bit for bit.
        for (size_t a = 0; a < combine.size(); ++a) {
          if (!pset.partials()[a].count_typed || !t.column(a).IsNull(0)) {
            continue;
          }
          PCTAGG_RETURN_IF_ERROR(
              t.mutable_column(a).SetValue(0, Value::Int64(0)));
        }
      }
    }
    if (own_fill) {
      SummaryRecipe recipe{cols, specs};
      summaries->Insert(cache_key, t, generation, &recipe);
    }
    out[li].table = std::make_shared<Table>(std::move(t));
  }
  return out;
}

// Vertical/Vpct assembly: one block per emitted level with the full
// SELECT-order schema (grouping columns the level rolled away become NULL,
// GROUPING() becomes its 0/1 id, Vpct divides against the level's own
// totals), concatenated in statement order.
Result<Table> AssembleVertical(const AnalyzedQuery& query,
                               const std::vector<LatticeLevel>& levels,
                               size_t emitted_count,
                               const std::vector<TermPlan>& plans,
                               const PartialSet& pset, size_t dop,
                               obs::QueryTrace* trace) {
  obs::TraceNode* node =
      trace != nullptr
          ? trace->root().AddChild(
                "lattice",
                StrFormat("lattice-assemble: %zu level(s), SELECT-order "
                          "blocks + GROUPING ids",
                          emitted_count))
          : nullptr;
  obs::ScopedTraceNode scope(node);
  obs::OpScope op("assemble");
  Table out;
  for (size_t li = 0; li < emitted_count; ++li) {
    const LatticeLevel& level = levels[li];
    const Table& t = *level.table;
    Table block;
    for (size_t ti = 0; ti < query.terms.size(); ++ti) {
      const AnalyzedTerm& term = query.terms[ti];
      const TermPlan& plan = plans[ti];
      switch (term.func) {
        case TermFunc::kScalar: {
          if (ContainsColumn(level.cols, term.scalar_column)) {
            PCTAGG_ASSIGN_OR_RETURN(size_t c,
                                    ColIndex(t, term.scalar_column));
            PCTAGG_RETURN_IF_ERROR(block.AddColumn(
                {term.output_name, t.schema().column(c).type}, t.column(c)));
          } else {
            PCTAGG_ASSIGN_OR_RETURN(size_t fc,
                                    query.schema.FindColumn(term.scalar_column));
            Column nulls(query.schema.column(fc).type);
            nulls.Reserve(t.num_rows());
            for (size_t r = 0; r < t.num_rows(); ++r) nulls.AppendNull();
            PCTAGG_RETURN_IF_ERROR(block.AddColumn(
                {term.output_name, nulls.type()}, std::move(nulls)));
          }
          break;
        }
        case TermFunc::kGrouping: {
          const int64_t id =
              ContainsColumn(level.cols, term.scalar_column) ? 0 : 1;
          Column g(DataType::kInt64);
          g.Reserve(t.num_rows());
          for (size_t r = 0; r < t.num_rows(); ++r) g.AppendInt64(id);
          PCTAGG_RETURN_IF_ERROR(block.AddColumn(
              {term.output_name, DataType::kInt64}, std::move(g)));
          break;
        }
        case TermFunc::kVpct: {
          // The level's own totals: its columns minus BY (grand total when
          // empty), matching the analyzer's totals_by reading per level.
          const std::string& sum_col = pset.name(plan.main);
          PCTAGG_ASSIGN_OR_RETURN(size_t sc, ColIndex(t, sum_col));
          std::vector<std::string> totals_by;
          if (term.has_by) {
            for (const std::string& c : level.cols) {
              if (!ContainsColumn(term.by_columns, c)) totals_by.push_back(c);
            }
          }
          std::vector<AggSpec> tot_aggs = {
              {AggFunc::kSum, Col(sum_col), "__tot"}};
          PCTAGG_ASSIGN_OR_RETURN(Table tot,
                                  HashAggregate(t, totals_by, tot_aggs, dop));
          Column cell(DataType::kFloat64);
          if (totals_by.empty()) {
            if (tot.num_rows() != 1) {
              return Status::Internal(
                  "lattice grand-total table must have exactly one row");
            }
            PCTAGG_ASSIGN_OR_RETURN(size_t tc, ColIndex(tot, "__tot"));
            PCTAGG_ASSIGN_OR_RETURN(
                cell,
                PercentDivideScalar(t.column(sc), tot.column(tc).GetValue(0)));
          } else {
            PCTAGG_ASSIGN_OR_RETURN(
                Column totals, LookupColumn(t, tot, totals_by, totals_by,
                                            "__tot", nullptr));
            PCTAGG_ASSIGN_OR_RETURN(
                cell, PercentDivideColumns(t.column(sc), totals));
          }
          PCTAGG_RETURN_IF_ERROR(block.AddColumn(
              {term.output_name, DataType::kFloat64}, std::move(cell)));
          break;
        }
        case TermFunc::kAvg: {
          PCTAGG_ASSIGN_OR_RETURN(size_t sc, ColIndex(t, pset.name(plan.main)));
          PCTAGG_ASSIGN_OR_RETURN(size_t cc,
                                  ColIndex(t, pset.name(plan.count)));
          const Column& s = t.column(sc);
          const Column& n = t.column(cc);
          Column cell(DataType::kFloat64);
          cell.Reserve(t.num_rows());
          for (size_t r = 0; r < t.num_rows(); ++r) {
            if (s.IsNull(r) || n.IsNull(r) || n.NumericAt(r) == 0.0) {
              cell.AppendNull();
            } else {
              cell.AppendFloat64(s.NumericAt(r) / n.NumericAt(r));
            }
          }
          PCTAGG_RETURN_IF_ERROR(block.AddColumn(
              {term.output_name, DataType::kFloat64}, std::move(cell)));
          break;
        }
        default: {
          PCTAGG_ASSIGN_OR_RETURN(size_t c, ColIndex(t, pset.name(plan.main)));
          PCTAGG_RETURN_IF_ERROR(block.AddColumn(
              {term.output_name, t.schema().column(c).type}, t.column(c)));
          break;
        }
      }
    }
    if (li == 0) {
      out = std::move(block);
    } else {
      PCTAGG_RETURN_IF_ERROR(InsertInto(&out, block));
    }
  }
  op.SetRows(out.num_rows(), out.num_rows());
  op.SetDetail("levels=" + std::to_string(emitted_count));
  return out;
}

// Horizontal assembly: each level pivots its partial table at its own
// grouping columns; blocks land in one result whose schema is the union
// grouping columns (NULL where rolled away) + GROUPING() ids + the union of
// all pivot columns + the extra aggregates.
Result<Table> AssembleHorizontal(
    const AnalyzedQuery& query, const std::vector<LatticeLevel>& levels,
    const std::vector<std::vector<std::string>>& emitted_sets,
    const HorizontalPlan& plan, const PartialSet& pset, size_t dop,
    obs::QueryTrace* trace) {
  const size_t emitted_count = emitted_sets.size();
  PivotOptions popt;
  popt.func = plan.pivot_func;
  popt.default_zero = plan.hterm->has_default;
  popt.percent_of_group_total = plan.is_pct;

  struct LevelBlock {
    const std::vector<std::string>* set;
    Table pivot;
    std::vector<std::string> pivot_names;
    Table extras;
    bool has_extras = false;
  };
  std::vector<LevelBlock> blocks;
  blocks.reserve(emitted_count);
  for (size_t li = 0; li < emitted_count; ++li) {
    const Table& t = *levels[li].table;
    const std::vector<std::string>& set = emitted_sets[li];
    LevelBlock b;
    b.set = &set;
    {
      obs::TraceNode* node =
          trace != nullptr
              ? trace->root().AddChild(
                    "lattice",
                    "lattice-pivot: level " + LevelName(set) + " " +
                        std::string(AggFuncName(popt.func)) + "(" +
                        pset.name(plan.main) + ") BY " +
                        Join(plan.hterm->by_columns, ", ") +
                        (plan.is_pct ? " percent-of-group-total" : ""))
              : nullptr;
      obs::ScopedTraceNode scope(node);
      PCTAGG_ASSIGN_OR_RETURN(
          b.pivot, HashDispatchPivot(t, set, plan.hterm->by_columns,
                                     Col(pset.name(plan.main)), popt, dop));
    }
    for (size_t c = set.size(); c < b.pivot.num_columns(); ++c) {
      b.pivot_names.push_back(b.pivot.schema().column(c).name);
    }
    if (!plan.extras.empty()) {
      // Both the pivot and this re-aggregation emit groups in first-seen
      // order over the same partial table, so the rows align positionally.
      std::vector<AggSpec> reagg;
      for (const HorizontalPlan::Extra& e : plan.extras) {
        reagg.push_back({pset.partials()[e.main].combine,
                         Col(pset.name(e.main)), pset.name(e.main)});
        if (e.count != kNone) {
          reagg.push_back(
              {AggFunc::kSum, Col(pset.name(e.count)), pset.name(e.count)});
        }
      }
      PCTAGG_ASSIGN_OR_RETURN(b.extras, HashAggregate(t, set, reagg, dop));
      if (b.extras.num_rows() != b.pivot.num_rows()) {
        return Status::Internal("lattice extras misaligned with pivot block");
      }
      b.has_extras = true;
    }
    blocks.push_back(std::move(b));
  }

  // Union of the per-level pivot columns, in first-appearance order across
  // blocks. Every level sees the same BY combinations of the (filtered) fact
  // in the same first-seen order, so this matches each block's own order; the
  // union form only matters if a level's pivot came up empty.
  std::vector<std::string> master;
  std::vector<DataType> master_types;
  for (const LevelBlock& b : blocks) {
    for (size_t i = 0; i < b.pivot_names.size(); ++i) {
      if (ContainsColumn(master, b.pivot_names[i])) continue;
      master.push_back(b.pivot_names[i]);
      master_types.push_back(
          b.pivot.schema().column(b.set->size() + i).type);
    }
  }

  obs::TraceNode* node =
      trace != nullptr
          ? trace->root().AddChild(
                "lattice",
                StrFormat("lattice-assemble: %zu level(s), %zu pivot "
                          "column(s) + GROUPING ids",
                          emitted_count, master.size()))
          : nullptr;
  obs::ScopedTraceNode scope(node);
  obs::OpScope op("assemble");

  Schema schema;
  for (const std::string& g : query.group_by) {
    PCTAGG_ASSIGN_OR_RETURN(size_t fc, query.schema.FindColumn(g));
    schema.AddColumn(query.schema.column(fc));
  }
  std::vector<const AnalyzedTerm*> grouping_terms;
  for (const AnalyzedTerm& term : query.terms) {
    if (term.func != TermFunc::kGrouping) continue;
    schema.AddColumn({term.output_name, DataType::kInt64});
    grouping_terms.push_back(&term);
  }
  for (size_t i = 0; i < master.size(); ++i) {
    schema.AddColumn({master[i], master_types[i]});
  }
  for (const HorizontalPlan::Extra& e : plan.extras) {
    DataType type = DataType::kFloat64;
    if (e.count == kNone) {
      PCTAGG_ASSIGN_OR_RETURN(size_t c,
                              ColIndex(blocks[0].extras, pset.name(e.main)));
      type = blocks[0].extras.schema().column(c).type;
    }
    schema.AddColumn({e.term->output_name, type});
  }

  Table out{schema};
  for (const LevelBlock& b : blocks) {
    const std::vector<std::string>& set = *b.set;
    std::vector<size_t> group_at(query.group_by.size(), kNone);
    for (size_t gi = 0; gi < query.group_by.size(); ++gi) {
      for (size_t si = 0; si < set.size(); ++si) {
        if (EqualsIgnoreCase(set[si], query.group_by[gi])) group_at[gi] = si;
      }
    }
    std::vector<size_t> pivot_at(master.size(), kNone);
    for (size_t i = 0; i < b.pivot_names.size(); ++i) {
      for (size_t mi = 0; mi < master.size(); ++mi) {
        if (EqualsIgnoreCase(master[mi], b.pivot_names[i])) {
          pivot_at[mi] = set.size() + i;
          break;
        }
      }
    }
    std::vector<size_t> extra_main(plan.extras.size(), kNone);
    std::vector<size_t> extra_count(plan.extras.size(), kNone);
    if (b.has_extras) {
      for (size_t ei = 0; ei < plan.extras.size(); ++ei) {
        PCTAGG_ASSIGN_OR_RETURN(
            extra_main[ei], ColIndex(b.extras, pset.name(plan.extras[ei].main)));
        if (plan.extras[ei].count != kNone) {
          PCTAGG_ASSIGN_OR_RETURN(
              extra_count[ei],
              ColIndex(b.extras, pset.name(plan.extras[ei].count)));
        }
      }
    }
    for (size_t r = 0; r < b.pivot.num_rows(); ++r) {
      std::vector<Value> row;
      row.reserve(schema.num_columns());
      for (size_t gi = 0; gi < query.group_by.size(); ++gi) {
        row.push_back(group_at[gi] == kNone
                          ? Value::Null()
                          : b.pivot.column(group_at[gi]).GetValue(r));
      }
      for (const AnalyzedTerm* gt : grouping_terms) {
        row.push_back(
            Value::Int64(ContainsColumn(set, gt->scalar_column) ? 0 : 1));
      }
      for (size_t mi = 0; mi < master.size(); ++mi) {
        if (pivot_at[mi] == kNone) {
          row.push_back(!popt.default_zero ? Value::Null()
                        : master_types[mi] == DataType::kInt64
                            ? Value::Int64(0)
                            : Value::Float64(0.0));
        } else {
          row.push_back(b.pivot.column(pivot_at[mi]).GetValue(r));
        }
      }
      for (size_t ei = 0; ei < plan.extras.size(); ++ei) {
        if (plan.extras[ei].count != kNone) {
          const Column& s = b.extras.column(extra_main[ei]);
          const Column& n = b.extras.column(extra_count[ei]);
          if (s.IsNull(r) || n.IsNull(r) || n.NumericAt(r) == 0.0) {
            row.push_back(Value::Null());
          } else {
            row.push_back(Value::Float64(s.NumericAt(r) / n.NumericAt(r)));
          }
        } else {
          row.push_back(b.extras.column(extra_main[ei]).GetValue(r));
        }
      }
      PCTAGG_RETURN_IF_ERROR(out.AppendRow(row));
    }
  }
  op.SetRows(out.num_rows(), out.num_rows());
  op.SetDetail("levels=" + std::to_string(emitted_count));
  return out;
}

// The requested levels plus, when the union itself was not among them, a
// synthetic finest level that only feeds rollups (computed and cached, never
// emitted).
std::vector<std::vector<std::string>> LevelsWithFinest(
    const AnalyzedQuery& query) {
  std::vector<std::vector<std::string>> sets = query.grouping_sets;
  for (const std::vector<std::string>& s : sets) {
    // Levels are normalized subsets of the union, so size equality means
    // equality.
    if (s.size() == query.group_by.size()) return sets;
  }
  sets.push_back(query.group_by);
  return sets;
}

}  // namespace

bool LatticeSupported(const AnalyzedQuery& query, std::string* why) {
  auto fail = [why](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (!query.has_grouping_sets) return fail("not a grouping-sets query");
  if (query.query_class == QueryClass::kWindow) {
    return fail("window functions cannot be combined with grouping sets");
  }
  size_t by_terms = 0;
  for (const AnalyzedTerm& t : query.terms) {
    if (t.func == TermFunc::kScalar || t.func == TermFunc::kGrouping) continue;
    if (t.distinct) {
      return fail("count(DISTINCT ...) is not supported with grouping sets");
    }
    if (t.func == TermFunc::kVpct) continue;
    if (t.has_by) {
      ++by_terms;
      if (t.func == TermFunc::kAvg) {
        return fail(
            "avg(... BY ...) is not distributive over the lattice; use "
            "sum and count terms instead");
      }
      if (t.func != TermFunc::kHpct && !TermAggFunc(t.func).ok()) {
        return fail("unsupported horizontal aggregate with grouping sets");
      }
    } else if (!TermAggFunc(t.func).ok()) {
      return fail("unsupported aggregate with grouping sets");
    }
  }
  if (query.query_class == QueryClass::kHorizontal && by_terms != 1) {
    return fail(
        "grouping sets support exactly one horizontal (BY) term per "
        "statement");
  }
  return true;
}

Result<Table> ExecuteLatticeQuery(const AnalyzedQuery& query, const Table& fact,
                                  SummaryCache* summaries,
                                  obs::QueryTrace* trace, size_t dop,
                                  bool shared_scan) {
  std::string why;
  if (!LatticeSupported(query, &why)) {
    return Status::InvalidArgument("grouping sets: " + why);
  }
  const std::vector<std::vector<std::string>> sets = LevelsWithFinest(query);
  const size_t emitted_count = query.grouping_sets.size();

  if (query.query_class == QueryClass::kHorizontal) {
    PartialSet pset;
    HorizontalPlan plan;
    PCTAGG_RETURN_IF_ERROR(BuildHorizontalPartials(query, &pset, &plan));
    std::vector<std::vector<std::string>> level_cols;
    level_cols.reserve(sets.size());
    for (const std::vector<std::string>& s : sets) {
      std::vector<std::string> cols = s;
      cols.insert(cols.end(), plan.hterm->by_columns.begin(),
                  plan.hterm->by_columns.end());
      level_cols.push_back(std::move(cols));
    }
    PCTAGG_ASSIGN_OR_RETURN(
        std::vector<LatticeLevel> levels,
        ComputeLevels(query, fact, level_cols, pset, summaries, trace, dop,
                      shared_scan));
    return AssembleHorizontal(query, levels, query.grouping_sets, plan, pset,
                              dop, trace);
  }

  PartialSet pset;
  std::vector<TermPlan> plans;
  PCTAGG_RETURN_IF_ERROR(BuildVerticalPartials(query, &pset, &plans));
  PCTAGG_ASSIGN_OR_RETURN(
      std::vector<LatticeLevel> levels,
      ComputeLevels(query, fact, sets, pset, summaries, trace, dop,
                    shared_scan));
  return AssembleVertical(query, levels, emitted_count, plans, pset, dop,
                          trace);
}

bool DistributedSupported(const AnalyzedQuery& query, std::string* why) {
  auto fail = [why](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (query.has_grouping_sets) return LatticeSupported(query, why);
  if (query.query_class == QueryClass::kProjection) {
    return fail("projection queries have no distributive partials");
  }
  if (query.query_class == QueryClass::kWindow) {
    return fail("window functions are not distributed");
  }
  size_t by_terms = 0;
  for (const AnalyzedTerm& t : query.terms) {
    if (t.func == TermFunc::kScalar || t.func == TermFunc::kGrouping) continue;
    if (t.distinct) {
      return fail("count(DISTINCT ...) is not distributive across shards");
    }
    if (t.func == TermFunc::kVpct) continue;
    if (t.has_by) {
      ++by_terms;
      if (t.func == TermFunc::kAvg) {
        return fail(
            "avg(... BY ...) is not distributive across shards; use sum "
            "and count terms instead");
      }
      if (t.func != TermFunc::kHpct && !TermAggFunc(t.func).ok()) {
        return fail("unsupported horizontal aggregate for distributed "
                    "execution");
      }
    } else if (!TermAggFunc(t.func).ok()) {
      return fail("unsupported aggregate for distributed execution");
    }
  }
  if (query.query_class == QueryClass::kHorizontal && by_terms != 1) {
    return fail(
        "distributed execution supports exactly one horizontal (BY) term "
        "per statement");
  }
  return true;
}

Result<DistPartialPlan> BuildDistributedPartialPlan(
    const AnalyzedQuery& query) {
  std::string why;
  if (!DistributedSupported(query, &why)) {
    return Status::InvalidArgument("distributed: " + why);
  }
  PartialSet pset;
  std::vector<std::string> by;
  if (query.query_class == QueryClass::kHorizontal) {
    HorizontalPlan hplan;
    PCTAGG_RETURN_IF_ERROR(BuildHorizontalPartials(query, &pset, &hplan));
    by = hplan.hterm->by_columns;
  } else {
    std::vector<TermPlan> plans;
    PCTAGG_RETURN_IF_ERROR(BuildVerticalPartials(query, &pset, &plans));
  }
  DistPartialPlan plan;
  plan.finest_cols = query.group_by;
  plan.finest_cols.insert(plan.finest_cols.end(), by.begin(), by.end());
  plan.partials = pset.Specs();
  plan.combine = pset.CombineSpecs();

  std::vector<std::string> cols = plan.finest_cols;
  for (const AggSpec& a : plan.partials) {
    std::string arg = a.func == AggFunc::kCountStar ? "*" : a.input->ToString();
    cols.push_back(std::string(AggFuncName(a.func)) + "(" + arg + ") AS " +
                   a.output_name);
  }
  plan.partial_sql = "SELECT " + Join(cols, ", ") + " FROM " + query.table_name;
  if (query.where != nullptr) {
    plan.partial_sql += " WHERE " + query.where->ToString();
  }
  if (!plan.finest_cols.empty()) {
    plan.partial_sql += " GROUP BY " + Join(plan.finest_cols, ", ");
  }
  return plan;
}

Result<Table> AssembleFromPartials(const AnalyzedQuery& query,
                                   std::shared_ptr<const Table> finest,
                                   obs::QueryTrace* trace, size_t dop) {
  std::string why;
  if (!DistributedSupported(query, &why)) {
    return Status::InvalidArgument("distributed: " + why);
  }
  const Table no_fact;  // never scanned: the finest level is the override
  const std::vector<std::vector<std::string>> emitted =
      query.has_grouping_sets
          ? query.grouping_sets
          : std::vector<std::vector<std::string>>{query.group_by};
  const std::vector<std::vector<std::string>> sets =
      query.has_grouping_sets ? LevelsWithFinest(query) : emitted;

  if (query.query_class == QueryClass::kHorizontal) {
    PartialSet pset;
    HorizontalPlan plan;
    PCTAGG_RETURN_IF_ERROR(BuildHorizontalPartials(query, &pset, &plan));
    std::vector<std::vector<std::string>> level_cols;
    level_cols.reserve(sets.size());
    for (const std::vector<std::string>& s : sets) {
      std::vector<std::string> cols = s;
      cols.insert(cols.end(), plan.hterm->by_columns.begin(),
                  plan.hterm->by_columns.end());
      level_cols.push_back(std::move(cols));
    }
    PCTAGG_ASSIGN_OR_RETURN(
        std::vector<LatticeLevel> levels,
        ComputeLevels(query, no_fact, level_cols, pset, nullptr, trace, dop,
                      /*shared_scan=*/true, std::move(finest)));
    return AssembleHorizontal(query, levels, emitted, plan, pset, dop, trace);
  }

  PartialSet pset;
  std::vector<TermPlan> plans;
  PCTAGG_RETURN_IF_ERROR(BuildVerticalPartials(query, &pset, &plans));
  PCTAGG_ASSIGN_OR_RETURN(
      std::vector<LatticeLevel> levels,
      ComputeLevels(query, no_fact, sets, pset, nullptr, trace, dop,
                    /*shared_scan=*/true, std::move(finest)));
  return AssembleVertical(query, levels, emitted.size(), plans, pset, dop,
                          trace);
}

Result<Table> AnswerFromCachedAncestor(const AnalyzedQuery& query,
                                       SummaryCache* summaries,
                                       obs::QueryTrace* trace, size_t dop,
                                       bool* answered) {
  *answered = false;
  Table none;
  if (summaries == nullptr || query.has_grouping_sets ||
      query.where != nullptr ||
      query.query_class != QueryClass::kVertical) {
    return none;
  }
  for (const AnalyzedTerm& t : query.terms) {
    if (t.distinct) return none;
  }
  PartialSet pset;
  std::vector<TermPlan> plans;
  if (!BuildVerticalPartials(query, &pset, &plans).ok()) return none;

  // Identify partials by the same (func, argument) rendering PartialSet
  // dedups on, so a recipe written by any planner matches.
  auto render_key = [](AggFunc func, const ExprPtr& arg) {
    return std::string(AggFuncName(func)) + "(" +
           (func == AggFunc::kCountStar ? "*" : arg->ToString()) + ")";
  };
  const std::vector<SummaryCache::AncestorCandidate> candidates =
      summaries->MergeableEntriesFor(query.table_name);
  const SummaryCache::AncestorCandidate* best = nullptr;
  std::vector<AggSpec> best_rollup;
  for (const SummaryCache::AncestorCandidate& cand : candidates) {
    if (!Subsumes(cand.recipe.group_by, query.group_by)) continue;
    std::vector<AggSpec> rollup;
    bool complete = true;
    for (const Partial& p : pset.partials()) {
      const std::string want = render_key(p.spec.func, p.spec.input);
      const AggSpec* found = nullptr;
      for (const AggSpec& a : cand.recipe.aggs) {
        if (render_key(a.func, a.input) == want) {
          found = &a;
          break;
        }
      }
      if (found == nullptr) {
        complete = false;
        break;
      }
      rollup.push_back(
          {p.combine, Col(found->output_name), p.spec.output_name});
    }
    if (!complete) continue;
    if (best == nullptr ||
        cand.summary->num_rows() < best->summary->num_rows()) {
      best = &cand;
      best_rollup = std::move(rollup);
    }
  }
  if (best == nullptr) return none;

  obs::TraceNode* node =
      trace != nullptr
          ? trace->root().AddChild(
                "cache", "cache-ancestor-rollup: level " +
                             LevelName(query.group_by) + " from cached " +
                             LevelName(best->recipe.group_by))
          : nullptr;
  {
    obs::ScopedTraceNode scope(node);
    obs::MarkCacheHit();
  }
  // Count the hit and refresh the LRU position of the entry actually used.
  summaries->Lookup(best->key);

  PCTAGG_ASSIGN_OR_RETURN(
      Table finest,
      HashAggregate(*best->summary, query.group_by, best_rollup, dop));
  if (query.group_by.empty() && best->summary->num_rows() == 0) {
    // Same patch as the lattice rollup: the global row's count partials come
    // back NULL from an empty source where a direct scan emits 0.
    for (size_t a = 0; a < best_rollup.size(); ++a) {
      if (!pset.partials()[a].count_typed || !finest.column(a).IsNull(0)) {
        continue;
      }
      PCTAGG_RETURN_IF_ERROR(
          finest.mutable_column(a).SetValue(0, Value::Int64(0)));
    }
  }
  std::vector<LatticeLevel> levels(1);
  levels[0].cols = query.group_by;
  levels[0].table = std::make_shared<Table>(std::move(finest));
  PCTAGG_ASSIGN_OR_RETURN(
      Table out, AssembleVertical(query, levels, 1, plans, pset, dop, trace));
  *answered = true;
  return out;
}

std::string RenderLatticeScript(const AnalyzedQuery& query, bool shared_scan) {
  PartialSet pset;
  std::vector<std::string> by;
  if (query.query_class == QueryClass::kHorizontal) {
    HorizontalPlan plan;
    if (!BuildHorizontalPartials(query, &pset, &plan).ok()) {
      return "-- lattice plan unavailable";
    }
    by = plan.hterm->by_columns;
  } else {
    std::vector<TermPlan> plans;
    if (!BuildVerticalPartials(query, &pset, &plans).ok()) {
      return "-- lattice plan unavailable";
    }
  }
  const std::vector<AggSpec> specs = pset.Specs();
  const std::vector<AggSpec> combine = pset.CombineSpecs();
  std::vector<std::string> finest = query.group_by;
  finest.insert(finest.end(), by.begin(), by.end());

  std::string out = StrFormat(
      "-- grouping-set lattice: %zu level(s) over union %s; strategy: %s\n",
      query.grouping_sets.size(), LevelName(query.group_by).c_str(),
      shared_scan ? "shared-scan rollup" : "per-level recompute");
  const std::vector<std::vector<std::string>> sets = LevelsWithFinest(query);
  for (size_t li = 0; li < sets.size(); ++li) {
    std::vector<std::string> cols = sets[li];
    cols.insert(cols.end(), by.begin(), by.end());
    const bool is_finest = cols.size() == finest.size();
    if (!shared_scan || is_finest) {
      out += RenderStage("scan:", cols, specs, query.table_name, query.where) +
             ";\n";
    } else {
      out += RenderStage("rollup:", cols, combine,
                         "lattice" + LevelName(finest), nullptr) +
             ";\n";
    }
  }
  out +=
      "-- assemble: per-level percentages + GROUPING() ids, blocks "
      "concatenated in statement order\n";
  return out;
}

}  // namespace pctagg
