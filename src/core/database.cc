#include "core/database.h"

#include <utility>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/cost_model.h"
#include "core/lattice_plan.h"
#include "core/olap_planner.h"
#include "core/pipeline_plan.h"
#include "engine/aggregate.h"
#include "engine/csv.h"
#include "engine/merge.h"
#include "engine/parallel.h"
#include "engine/table_ops.h"
#include "obs/metrics.h"
#include "sql/parser.h"

namespace pctagg {

namespace {

// Inline evaluation for plain projections and vertical aggregates (no
// percentage machinery involved).
Result<Table> EvaluateSimple(Catalog* catalog, const AnalyzedQuery& query) {
  PCTAGG_ASSIGN_OR_RETURN(const Table* base,
                          catalog->GetTable(query.table_name));
  Table filtered;
  const Table* input = base;
  if (query.where != nullptr) {
    PCTAGG_ASSIGN_OR_RETURN(filtered, Filter(*base, query.where));
    input = &filtered;
  }
  if (query.query_class == QueryClass::kProjection) {
    std::vector<ProjectSpec> specs;
    for (const AnalyzedTerm& t : query.terms) {
      specs.push_back({t.argument, t.output_name});
    }
    return Project(*input, specs);
  }
  // Vertical aggregate: group columns in SELECT order plus aggregates.
  std::vector<AggSpec> aggs;
  for (const AnalyzedTerm& t : query.terms) {
    if (t.func == TermFunc::kScalar) continue;
    AggFunc func;
    switch (t.func) {
      case TermFunc::kSum:
        func = AggFunc::kSum;
        break;
      case TermFunc::kCount:
        func = AggFunc::kCount;
        break;
      case TermFunc::kCountStar:
        func = AggFunc::kCountStar;
        break;
      case TermFunc::kAvg:
        func = AggFunc::kAvg;
        break;
      case TermFunc::kMin:
        func = AggFunc::kMin;
        break;
      case TermFunc::kMax:
        func = AggFunc::kMax;
        break;
      default:
        return Status::Internal("unexpected term in vertical aggregate");
    }
    if (t.distinct) {
      return Status::InvalidArgument(
          "count(DISTINCT ...) is only supported with a BY clause");
    }
    aggs.push_back({func, t.argument, t.output_name});
  }
  PCTAGG_ASSIGN_OR_RETURN(Table agg,
                          HashAggregate(*input, query.group_by, aggs));
  // Reorder to the SELECT list.
  std::vector<ProjectSpec> specs;
  for (const AnalyzedTerm& t : query.terms) {
    specs.push_back({Col(t.func == TermFunc::kScalar ? t.scalar_column
                                                     : t.output_name),
                     t.output_name});
  }
  return Project(agg, specs);
}

// Applies the statement tail — HAVING, ORDER BY, LIMIT — to the
// materialized result, in SQL's order.
Result<Table> ApplyTail(Table table, const AnalyzedQuery& query) {
  if (query.having != nullptr) {
    Result<Table> filtered = Filter(table, query.having);
    if (!filtered.ok()) {
      return Status::AnalysisError("HAVING failed to evaluate: " +
                                   filtered.status().message());
    }
    table = std::move(filtered).value();
  }
  if (!query.order_by.empty()) {
    std::vector<SortKey> keys;
    for (const OrderItem& item : query.order_by) {
      if (!table.schema().HasColumn(item.column)) {
        return Status::AnalysisError("ORDER BY column not in result: " +
                                     item.column);
      }
      keys.push_back({item.column, item.descending});
    }
    PCTAGG_ASSIGN_OR_RETURN(table, SortBy(table, keys));
  }
  if (query.has_limit) {
    table = Limit(table, query.limit);
  }
  return table;
}

// Human name of an executed Vpct configuration, mirroring the Table 4 knobs.
std::string VpctStrategyName(const VpctStrategy& s) {
  std::string name = s.fj_from_fk ? "Fj-from-Fk" : "Fj-from-F";
  name += s.insert_result ? "+INSERT" : "+UPDATE";
  if (!s.matching_indexes) name += "+mismatched-indexes";
  if (s.fj_from_fk && s.lattice_reuse) name += "+lattice";
  return name;
}

// First term with a BY list (the one the advisor's estimates key off).
const AnalyzedTerm* FirstByTerm(const AnalyzedQuery& query) {
  for (const AnalyzedTerm& t : query.terms) {
    if (t.has_by) return &t;
  }
  return nullptr;
}

// Records the planning metadata EXPLAIN ANALYZE audits for a Vpct query:
// executed strategy, cost-model prediction per candidate (chosen marked),
// predicted |Fk|.
void FillVpctTrace(obs::QueryTrace* trace, const Table& fact,
                   const AnalyzedQuery& query, const VpctStrategy& strategy,
                   bool olap_baseline, bool forced, size_t dop,
                   bool fused_candidate = false, bool fused_chosen = false) {
  trace->strategy =
      olap_baseline ? "OLAP-window" : VpctStrategyName(strategy);
  trace->strategy_source = forced ? "forced" : "advisor";
  const AnalyzedTerm* term = FirstByTerm(query);
  CostModel model;
  Result<FactStats> stats = model.EstimateStats(
      fact, query.group_by,
      term != nullptr ? term->by_columns : std::vector<std::string>{},
      /*by=*/{});
  if (!stats.ok()) return;
  FactStats s = stats.value();
  s.dop = static_cast<double>(dop < 1 ? 1 : dop);
  trace->predicted_group_rows = s.group_cardinality;
  auto add_candidate = [&](const char* name, bool fj_from_fk,
                           bool insert_result) {
    VpctStrategy candidate = strategy;
    candidate.fj_from_fk = fj_from_fk;
    candidate.insert_result = insert_result;
    bool chosen = !fused_chosen && !olap_baseline &&
                  strategy.fj_from_fk == fj_from_fk &&
                  strategy.insert_result == insert_result;
    trace->predicted_costs.push_back(
        {name, model.VpctCost(s, candidate), chosen});
  };
  add_candidate("Fj-from-Fk+INSERT", true, true);
  add_candidate("Fj-from-F+INSERT", false, true);
  add_candidate("Fj-from-Fk+UPDATE", true, false);
  trace->predicted_costs.push_back(
      {"OLAP-window", model.OlapCost(s), olap_baseline});
  // The fused pipeline competes only on the advisor path; a forced strategy
  // keeps the original four-candidate audit the goldens pin.
  if (fused_candidate) {
    trace->predicted_costs.push_back(
        {"fused-pipeline", model.FusedVpctCost(s), fused_chosen});
  }
}

// Same for a horizontal query: the four SIGMOD Table 5 / DMKD Table 3
// methods ranked by the model, predicted |FV|.
void FillHorizontalTrace(obs::QueryTrace* trace, const Table& fact,
                         const AnalyzedQuery& query,
                         const HorizontalStrategy& strategy, bool forced,
                         size_t dop, bool fused_candidate = false,
                         bool fused_chosen = false) {
  trace->strategy = std::string(HorizontalMethodName(strategy.method)) +
                    (strategy.hash_dispatch ? "+hash-dispatch" : "+naive-case");
  trace->strategy_source = forced ? "forced" : "advisor";
  const AnalyzedTerm* term = FirstByTerm(query);
  if (term == nullptr) return;
  std::vector<std::string> full_group = query.group_by;
  full_group.insert(full_group.end(), term->by_columns.begin(),
                    term->by_columns.end());
  CostModel model;
  Result<FactStats> stats =
      model.EstimateStats(fact, full_group, query.group_by, term->by_columns);
  if (!stats.ok()) return;
  FactStats s = stats.value();
  s.dop = static_cast<double>(dop < 1 ? 1 : dop);
  // Predict the cardinality of the first level the plan materializes, so the
  // "actual" read off the executed trace compares like with like: direct
  // methods aggregate straight to the result level D1..Dj, the from-FV
  // methods materialize FV at D1..Dj ∪ BY first.
  bool from_fv = strategy.method == HorizontalMethod::kCaseFromFV ||
                 strategy.method == HorizontalMethod::kSpjFromFV;
  // The fused pipeline materializes FVh (GROUP BY ∪ BY) first, like the
  // from-FV methods.
  trace->predicted_group_rows = from_fv || fused_chosen
                                    ? s.group_cardinality
                                    : s.totals_cardinality;
  for (HorizontalMethod method :
       {HorizontalMethod::kCaseDirect, HorizontalMethod::kCaseFromFV,
        HorizontalMethod::kSpjDirect, HorizontalMethod::kSpjFromFV}) {
    HorizontalStrategy candidate = strategy;
    candidate.method = method;
    trace->predicted_costs.push_back({HorizontalMethodName(method),
                                      model.HorizontalCost(s, candidate),
                                      !fused_chosen &&
                                          method == strategy.method});
  }
  if (fused_candidate) {
    trace->predicted_costs.push_back(
        {"fused-pipeline", model.FusedHorizontalCost(s), fused_chosen});
  }
}

// Planning metadata for a grouping-set lattice query: the executed mode,
// both candidates priced by the model, predicted finest-level cardinality.
void FillLatticeTrace(obs::QueryTrace* trace, const Table& fact,
                      const AnalyzedQuery& query, bool shared, bool forced,
                      size_t dop) {
  trace->strategy = shared ? "lattice-shared" : "lattice-per-level";
  trace->strategy_source = forced ? "forced" : "advisor";
  CostModel model;
  Result<std::vector<double>> level_rows =
      model.EstimateLatticeLevelRows(fact, query);
  Result<FactStats> stats =
      model.EstimateStats(fact, query.group_by, /*totals_by=*/{}, /*by=*/{});
  if (!level_rows.ok() || !stats.ok()) return;
  FactStats s = stats.value();
  s.dop = static_cast<double>(dop < 1 ? 1 : dop);
  trace->predicted_group_rows =
      level_rows.value().empty() ? s.group_cardinality : level_rows.value()[0];
  trace->predicted_costs.push_back(
      {"lattice-shared", model.LatticeSharedCost(s, level_rows.value()),
       shared});
  trace->predicted_costs.push_back(
      {"lattice-per-level", model.LatticePerLevelCost(s, level_rows.value()),
       !shared});
}

// Append-path delta-maintenance counters (process-wide, like the summary
// cache's own counters in core/summary_cache.cc).
obs::Counter& DeltaMergeCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_summary_delta_merges_total",
      "Cached summaries maintained by delta-merge on append");
  return c;
}
obs::Counter& DeltaRecomputeCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_summary_delta_recomputes_total",
      "Cached summaries dropped on append for lazy recompute");
  return c;
}
obs::Counter& DeltaRowsCounter() {
  static obs::Counter& c = obs::GlobalMetrics().GetCounter(
      "pctagg_summary_delta_rows_total", "Rows appended through AppendRows");
  return c;
}

// Renders multi-line text as the single-column "plan" table every surface
// (CSV, wire protocol, shell) prints without special casing.
Table TextToPlanTable(const std::string& text) {
  Schema schema;
  schema.AddColumn({"plan", DataType::kString});
  Table out(schema);
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    out.mutable_column(0).AppendString(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

// One-row result of an append statement.
Table AppendOutcomeTable(const AppendOutcome& outcome) {
  Schema schema;
  schema.AddColumn({"rows_appended", DataType::kInt64});
  schema.AddColumn({"summaries_merged", DataType::kInt64});
  schema.AddColumn({"summaries_recomputed", DataType::kInt64});
  Table out(schema);
  Status st = out.AppendRow(
      {Value::Int64(static_cast<int64_t>(outcome.rows_appended)),
       Value::Int64(static_cast<int64_t>(outcome.summaries_merged)),
       Value::Int64(static_cast<int64_t>(outcome.summaries_recomputed))});
  (void)st;
  return out;
}

// The finest aggregation level a plan materialized: rows_out of the first
// aggregate (or pivot) operator in execution order.
const obs::TraceNode* FindFirstAggregateOp(const obs::TraceNode& node) {
  if (node.label == "aggregate" || node.label == "pivot") return &node;
  for (const auto& child : node.children) {
    const obs::TraceNode* found = FindFirstAggregateOp(*child);
    if (found != nullptr) return found;
  }
  return nullptr;
}

}  // namespace

Result<AnalyzedQuery> PctDatabase::Prepare(const std::string& sql) const {
  PCTAGG_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  PCTAGG_ASSIGN_OR_RETURN(const Table* table,
                          catalog_.GetTable(stmt.from_table));
  return Analyze(stmt, table->schema());
}

Result<Table> PctDatabase::RunPlan(const Plan& plan, const AnalyzedQuery& query,
                                   bool use_cache,
                                   obs::QueryTrace* trace) const {
  Status st = plan.Execute(&catalog_, use_cache ? &summaries_ : nullptr, trace);
  if (!st.ok()) {
    plan.Cleanup(&catalog_);
    return st;
  }
  if (trace != nullptr) {
    const obs::TraceNode* agg = FindFirstAggregateOp(trace->root());
    if (agg != nullptr) {
      trace->actual_group_rows = static_cast<double>(agg->stats.rows_out);
    }
  }
  Result<Table*> result = catalog_.GetTable(plan.result_table());
  if (!result.ok()) {
    plan.Cleanup(&catalog_);
    return result.status();
  }
  Table out = std::move(*result.value());
  plan.Cleanup(&catalog_);
  return ApplyTail(std::move(out), query);
}

Result<Table> PctDatabase::Query(const std::string& sql,
                                 const QueryOptions& options) const {
  // EXPLAIN [ANALYZE] prefix: return the rendering as an ordinary
  // single-column result so every surface (CSV, wire protocol, shell) shows
  // it without special casing.
  PCTAGG_ASSIGN_OR_RETURN(ParsedStatement stmt_kind, ParseStatementKind(sql));
  if (stmt_kind.kind != ParsedStatement::Kind::kSelect) {
    return Status::InvalidArgument(
        "INSERT/COPY are write statements; run them through Execute()");
  }
  if (stmt_kind.explain) {
    Result<std::string> text = stmt_kind.analyze
                                   ? ExplainAnalyze(stmt_kind.select_sql,
                                                    options)
                                   : Explain(stmt_kind.select_sql);
    if (!text.ok()) return text.status();
    return TextToPlanTable(*text);
  }

  PCTAGG_ASSIGN_OR_RETURN(AnalyzedQuery query, Prepare(sql));
  bool use_cache = options.use_summary_cache.value_or(summary_cache_enabled_);
  // Engine kernels called anywhere below this frame (planner steps run
  // synchronously on this thread) pick the knob up via CurrentDop().
  ScopedParallelism parallelism(options.degree_of_parallelism);
  const size_t dop = CurrentDop();
  obs::QueryTrace* trace = options.trace;
  if (trace != nullptr) {
    trace->query_class = QueryClassName(query.query_class);
  }
  // Grouping-set lattice: the shared-scan/per-level executor is the only
  // evaluator for CUBE/ROLLUP/GROUPING SETS, across every query class.
  if (query.has_grouping_sets) {
    PCTAGG_ASSIGN_OR_RETURN(const Table* fact,
                            catalog_.GetTable(query.table_name));
    std::string why;
    if (!LatticeSupported(query, &why)) {
      return Status::InvalidArgument("grouping sets: " + why);
    }
    const bool forced = options.lattice != LatticeMode::kAuto;
    const bool shared = forced ? options.lattice == LatticeMode::kShared
                               : advisor_.AdviseLatticeShared(*fact, query,
                                                              dop);
    if (trace != nullptr) {
      FillLatticeTrace(trace, *fact, query, shared, forced, dop);
    }
    PCTAGG_ASSIGN_OR_RETURN(
        Table out,
        ExecuteLatticeQuery(query, *fact, use_cache ? &summaries_ : nullptr,
                            trace, dop, shared));
    if (trace != nullptr) {
      const obs::TraceNode* agg = FindFirstAggregateOp(trace->root());
      if (agg != nullptr) {
        trace->actual_group_rows = static_cast<double>(agg->stats.rows_out);
      }
    }
    return ApplyTail(std::move(out), query);
  }
  switch (query.query_class) {
    case QueryClass::kProjection:
    case QueryClass::kVertical: {
      // Partial-lattice reuse: a plain GROUP BY whose grouping is subsumed
      // by a cached mergeable summary rolls up from the cache instead of
      // rescanning the fact table (same rows, same order, bit for bit on
      // integer measures).
      if (use_cache && query.query_class == QueryClass::kVertical) {
        bool answered = false;
        PCTAGG_ASSIGN_OR_RETURN(
            Table cached, AnswerFromCachedAncestor(query, &summaries_, trace,
                                                   dop, &answered));
        if (answered) {
          if (trace != nullptr) {
            trace->strategy = "cache-ancestor";
            trace->strategy_source = "cache";
          }
          return ApplyTail(std::move(cached), query);
        }
      }
      Table out;
      if (trace != nullptr) {
        trace->strategy = "direct";
        trace->strategy_source = "n/a";
        obs::TraceNode* node = trace->root().AddChild("select", sql);
        obs::ScopedTraceNode scope(node);
        PCTAGG_ASSIGN_OR_RETURN(out, EvaluateSimple(&catalog_, query));
      } else {
        PCTAGG_ASSIGN_OR_RETURN(out, EvaluateSimple(&catalog_, query));
      }
      return ApplyTail(std::move(out), query);
    }
    case QueryClass::kVpct: {
      PCTAGG_ASSIGN_OR_RETURN(const Table* fact,
                              catalog_.GetTable(query.table_name));
      // Fused-pipeline dispatch: only on the advisor path (a forced strategy
      // or the OLAP baseline is an explicit request for that plan), and only
      // for supported shapes. SET exec fused forces it past the cost model.
      const bool forced_strategy =
          options.vpct_strategy.has_value() || options.olap_baseline;
      bool fused = false;
      if (!forced_strategy &&
          options.execution != ExecutionMode::kMaterialized &&
          VpctPipelineSupported(query)) {
        fused = options.execution == ExecutionMode::kFused ||
                advisor_.AdviseVpctFused(*fact, query, dop);
      }
      if (fused) {
        if (trace != nullptr) {
          FillVpctTrace(trace, *fact, query, VpctStrategy{},
                        /*olap_baseline=*/false, /*forced=*/false, dop,
                        /*fused_candidate=*/true, /*fused_chosen=*/true);
          trace->strategy = "fused-pipeline";
          trace->strategy_source = options.execution == ExecutionMode::kFused
                                       ? "forced"
                                       : "advisor";
        }
        PCTAGG_ASSIGN_OR_RETURN(
            Table out,
            ExecuteVpctPipeline(query, *fact,
                                use_cache ? &summaries_ : nullptr, trace,
                                dop));
        if (trace != nullptr) {
          const obs::TraceNode* agg = FindFirstAggregateOp(trace->root());
          if (agg != nullptr) {
            trace->actual_group_rows =
                static_cast<double>(agg->stats.rows_out);
          }
        }
        return ApplyTail(std::move(out), query);
      }
      Plan plan;
      VpctStrategy strategy;
      if (!options.olap_baseline) {
        if (options.vpct_strategy.has_value()) {
          strategy = *options.vpct_strategy;
        } else {
          strategy = advisor_.AdviseVpct(*fact, query, dop);
        }
        PCTAGG_ASSIGN_OR_RETURN(plan, PlanVpctQuery(query, strategy));
      } else {
        PCTAGG_ASSIGN_OR_RETURN(plan, PlanOlapPercentageQuery(query));
      }
      if (trace != nullptr) {
        FillVpctTrace(trace, *fact, query, strategy, options.olap_baseline,
                      forced_strategy, dop,
                      /*fused_candidate=*/!forced_strategy,
                      /*fused_chosen=*/false);
      }
      return RunPlan(plan, query, use_cache, trace);
    }
    case QueryClass::kHorizontal: {
      PCTAGG_ASSIGN_OR_RETURN(const Table* fact,
                              catalog_.GetTable(query.table_name));
      const bool forced_strategy = options.horizontal_strategy.has_value();
      bool fused = false;
      if (!forced_strategy &&
          options.execution != ExecutionMode::kMaterialized &&
          HorizontalPipelineSupported(query, fact->num_rows())) {
        fused = options.execution == ExecutionMode::kFused ||
                advisor_.AdviseHorizontalFused(*fact, query, dop);
      }
      if (fused) {
        if (trace != nullptr) {
          FillHorizontalTrace(trace, *fact, query, HorizontalStrategy{},
                              /*forced=*/false, dop,
                              /*fused_candidate=*/true,
                              /*fused_chosen=*/true);
          trace->strategy = "fused-pipeline";
          trace->strategy_source = options.execution == ExecutionMode::kFused
                                       ? "forced"
                                       : "advisor";
        }
        PCTAGG_ASSIGN_OR_RETURN(
            Table out,
            ExecuteHorizontalPipeline(query, *fact,
                                      use_cache ? &summaries_ : nullptr,
                                      trace, dop));
        if (trace != nullptr) {
          const obs::TraceNode* agg = FindFirstAggregateOp(trace->root());
          if (agg != nullptr) {
            trace->actual_group_rows =
                static_cast<double>(agg->stats.rows_out);
          }
        }
        return ApplyTail(std::move(out), query);
      }
      HorizontalStrategy strategy;
      if (options.horizontal_strategy.has_value()) {
        strategy = *options.horizontal_strategy;
      } else {
        strategy = advisor_.AdviseHorizontal(*fact, query, dop);
      }
      PCTAGG_ASSIGN_OR_RETURN(Plan plan, PlanHorizontalQuery(query, strategy));
      if (trace != nullptr) {
        FillHorizontalTrace(trace, *fact, query, strategy, forced_strategy,
                            dop, /*fused_candidate=*/!forced_strategy,
                            /*fused_chosen=*/false);
      }
      return RunPlan(plan, query, use_cache, trace);
    }
    case QueryClass::kWindow: {
      if (trace != nullptr) {
        trace->strategy = "OLAP-window";
        trace->strategy_source = "n/a";
      }
      PCTAGG_ASSIGN_OR_RETURN(Plan plan, PlanWindowQuery(query));
      return RunPlan(plan, query, use_cache, trace);
    }
  }
  return Status::Internal("unhandled query class");
}

Result<std::string> PctDatabase::ExplainAnalyze(
    const std::string& sql, const QueryOptions& options) const {
  obs::QueryTrace trace;
  QueryOptions traced = options;
  traced.trace = &trace;
  Stopwatch timer;
  PCTAGG_ASSIGN_OR_RETURN(Table result, Query(sql, traced));
  trace.total_ms = timer.ElapsedSeconds() * 1e3;
  (void)result;
  return trace.Render();
}

Result<Table> PctDatabase::QueryVpct(const std::string& sql,
                                     const VpctStrategy& strategy) const {
  PCTAGG_ASSIGN_OR_RETURN(AnalyzedQuery query, Prepare(sql));
  if (query.has_grouping_sets) {
    return Status::InvalidArgument(
        "forced-strategy evaluation does not support grouping sets; use "
        "Query()");
  }
  PCTAGG_ASSIGN_OR_RETURN(Plan plan, PlanVpctQuery(query, strategy));
  return RunPlan(plan, query, summary_cache_enabled_);
}

Result<Table> PctDatabase::QueryHorizontal(
    const std::string& sql, const HorizontalStrategy& strategy) const {
  PCTAGG_ASSIGN_OR_RETURN(AnalyzedQuery query, Prepare(sql));
  if (query.has_grouping_sets) {
    return Status::InvalidArgument(
        "forced-strategy evaluation does not support grouping sets; use "
        "Query()");
  }
  PCTAGG_ASSIGN_OR_RETURN(Plan plan, PlanHorizontalQuery(query, strategy));
  return RunPlan(plan, query, summary_cache_enabled_);
}

Result<Table> PctDatabase::QueryOlapBaseline(const std::string& sql) const {
  PCTAGG_ASSIGN_OR_RETURN(AnalyzedQuery query, Prepare(sql));
  if (query.has_grouping_sets) {
    return Status::InvalidArgument(
        "the OLAP baseline does not support grouping sets; use Query()");
  }
  PCTAGG_ASSIGN_OR_RETURN(Plan plan, PlanOlapPercentageQuery(query));
  return RunPlan(plan, query, summary_cache_enabled_);
}

Status PctDatabase::CreateTable(const std::string& name, Table table) {
  summaries_.InvalidateTable(name);
  PCTAGG_RETURN_IF_ERROR(catalog_.CreateTable(name, std::move(table)));
  if (storage_ != nullptr) {
    // DDL persists its full image immediately (tables are created rarely);
    // the new segment's flush LSN supersedes any same-named WAL history.
    PCTAGG_ASSIGN_OR_RETURN(const Table* stored, catalog_.GetTable(name));
    return storage_->PersistTable(ToLower(name), *stored);
  }
  return Status::OK();
}

Status PctDatabase::ReplaceTable(const std::string& name, Table table) {
  summaries_.InvalidateTable(name);
  catalog_.CreateOrReplaceTable(name, std::move(table));
  if (storage_ != nullptr) {
    PCTAGG_ASSIGN_OR_RETURN(const Table* stored, catalog_.GetTable(name));
    return storage_->PersistTable(ToLower(name), *stored);
  }
  return Status::OK();
}

Result<bool> PctDatabase::DropTable(const std::string& name, bool if_exists) {
  if (!catalog_.HasTable(name)) {
    if (if_exists) return false;
    return Status::NotFound("table not found: " + name);
  }
  summaries_.InvalidateTable(name);
  PCTAGG_RETURN_IF_ERROR(catalog_.DropTable(name));
  if (storage_ != nullptr) {
    PCTAGG_RETURN_IF_ERROR(storage_->RemoveTable(ToLower(name)));
  }
  return true;
}

Status PctDatabase::OpenStorage(storage::StorageOptions options) {
  if (storage_ != nullptr) {
    return Status::InvalidArgument("storage already attached");
  }
  PCTAGG_ASSIGN_OR_RETURN(storage_,
                          storage::StorageManager::Open(std::move(options)));
  for (auto& [name, table] : storage_->TakeRecoveredTables()) {
    // The generation bump rejects any in-flight fills keyed to a previous
    // incarnation of the table; recovered tables start with a cold cache.
    summaries_.InvalidateTable(name);
    catalog_.CreateOrReplaceTable(name, std::move(table));
  }
  return Status::OK();
}

Result<storage::StorageManager::CheckpointStats> PctDatabase::Checkpoint() {
  if (storage_ == nullptr) {
    // CHECKPOINT against an in-memory database succeeds with nothing to do,
    // so the SQL surface behaves uniformly.
    return storage::StorageManager::CheckpointStats{};
  }
  std::vector<std::pair<std::string, const Table*>> tables;
  for (const std::string& name : catalog_.TableNames()) {
    PCTAGG_ASSIGN_OR_RETURN(const Table* table,
                            std::as_const(catalog_).GetTable(name));
    tables.emplace_back(name, table);
  }
  return storage_->Checkpoint(tables);
}

Status PctDatabase::CreateTableAs(const std::string& name,
                                  const std::string& sql) {
  if (catalog_.HasTable(name)) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  PCTAGG_ASSIGN_OR_RETURN(Table result, Query(sql));
  return CreateTable(name, std::move(result));
}

Result<AppendOutcome> PctDatabase::AppendRows(const std::string& name,
                                              const Table& delta,
                                              const QueryOptions& options) {
  AppendOutcome outcome;
  outcome.rows_appended = delta.num_rows();
  PCTAGG_ASSIGN_OR_RETURN(Table* base, catalog_.GetTable(name));
  if (delta.num_rows() == 0) return outcome;

  if (storage_ != nullptr) {
    // WAL-before-data. Validate compatibility first so nothing reaches the
    // log unless the in-memory apply below is guaranteed to succeed — a
    // logged record is replayed verbatim at recovery.
    if (delta.num_columns() != base->num_columns()) {
      return Status::InvalidArgument("append arity mismatch");
    }
    for (size_t i = 0; i < base->num_columns(); ++i) {
      if (base->schema().column(i).type != delta.schema().column(i).type) {
        return Status::TypeMismatch("append column type mismatch at position " +
                                    std::to_string(i));
      }
    }
    Result<uint64_t> logged = storage_->LogAppend(ToLower(name), delta);
    if (!logged.ok()) return logged.status();
  }

  ScopedParallelism parallelism(options.degree_of_parallelism);
  const size_t dop = CurrentDop();
  obs::QueryTrace* trace = options.trace;
  if (trace != nullptr) {
    trace->query_class = "append";
    trace->strategy = "delta-maintenance";
    trace->strategy_source =
        options.append_policy == AppendPolicy::kAuto ? "cost-model" : "forced";
  }
  obs::TraceNode* node =
      trace != nullptr
          ? trace->root().AddChild(
                "append", StrFormat("INSERT INTO %s (%zu rows)", name.c_str(),
                                    delta.num_rows()))
          : nullptr;
  obs::ScopedTraceNode scope(node);

  // Check out the table's cached summaries *before* growing the base rows:
  // every entry present now was filled from pre-append data (in-flight fills
  // from the old generation get rejected by the generation bump), so each
  // checked-out summary plus the delta reproduces the post-append summary.
  size_t dropped = 0;
  std::vector<SummaryCache::PendingMerge> pending =
      summaries_.BeginAppend(name, &dropped);
  outcome.summaries_recomputed += dropped;

  const double base_rows_before = static_cast<double>(base->num_rows());
  PCTAGG_RETURN_IF_ERROR(InsertInto(base, delta));

  CostModel model;
  for (const SummaryCache::PendingMerge& p : pending) {
    const std::string group_cols = Join(p.recipe.group_by, ",");
    const double summary_rows = static_cast<double>(p.summary->num_rows());
    const double merge_cost = model.DeltaMergeCost(
        static_cast<double>(delta.num_rows()), summary_rows,
        static_cast<double>(dop));
    const double recompute_cost =
        model.RecomputeCost(base_rows_before + delta.num_rows(), summary_rows,
                            static_cast<double>(dop));
    bool merge;
    switch (options.append_policy) {
      case AppendPolicy::kMerge:
        merge = true;
        break;
      case AppendPolicy::kRecompute:
        merge = false;
        break;
      case AppendPolicy::kAuto:
      default:
        merge = merge_cost <= recompute_cost;
    }
    if (trace != nullptr) {
      trace->predicted_costs.push_back(
          {"delta-merge[" + group_cols + "]", merge_cost, merge});
      trace->predicted_costs.push_back(
          {"recompute[" + group_cols + "]", recompute_cost, !merge});
    }
    if (merge) {
      Result<Table> delta_summary =
          HashAggregate(delta, p.recipe.group_by, p.recipe.aggs, dop);
      if (delta_summary.ok()) {
        Result<Table> merged =
            MergeSummaries(*p.summary, *delta_summary,
                           p.recipe.group_by.size(), p.recipe.aggs);
        if (merged.ok() && summaries_.CompleteMerge(p, *merged)) {
          ++outcome.summaries_merged;
          DeltaMergeCounter().Add();
          continue;
        }
      }
      // A failed or superseded merge degrades to the drop-and-recompute
      // path — the entry simply stays out of the cache.
    }
    ++outcome.summaries_recomputed;
    DeltaRecomputeCounter().Add();
  }
  DeltaRowsCounter().Add(delta.num_rows());
  return outcome;
}

Result<AppendOutcome> PctDatabase::ExecuteInsert(const std::string& sql,
                                                 const QueryOptions& options) {
  PCTAGG_ASSIGN_OR_RETURN(InsertStatement stmt, ParseInsert(sql));
  PCTAGG_ASSIGN_OR_RETURN(const Table* base, catalog_.GetTable(stmt.table));
  PCTAGG_ASSIGN_OR_RETURN(Table delta,
                          BuildInsertDelta(stmt, base->schema()));
  return AppendRows(stmt.table, delta, options);
}

Result<AppendOutcome> PctDatabase::ExecuteCopy(const std::string& sql,
                                               const QueryOptions& options) {
  PCTAGG_ASSIGN_OR_RETURN(CopyStatement stmt, ParseCopy(sql));
  PCTAGG_ASSIGN_OR_RETURN(const Table* base, catalog_.GetTable(stmt.table));
  PCTAGG_ASSIGN_OR_RETURN(Table delta,
                          ReadCsvFile(stmt.path, base->schema()));
  return AppendRows(stmt.table, delta, options);
}

Result<Table> PctDatabase::Execute(const std::string& sql,
                                   const QueryOptions& options) {
  PCTAGG_ASSIGN_OR_RETURN(ParsedStatement stmt_kind, ParseStatementKind(sql));
  if (stmt_kind.kind == ParsedStatement::Kind::kSelect) {
    return Query(sql, options);
  }
  if (stmt_kind.kind == ParsedStatement::Kind::kDrop) {
    PCTAGG_ASSIGN_OR_RETURN(DropStatement stmt,
                            ParseDrop(stmt_kind.select_sql));
    if (stmt_kind.explain) {
      return TextToPlanTable(
          stmt.ToString() +
          "\n-- drop path: remove the table from the catalog, invalidate its\n"
          "-- cached summaries (generation bump), and delete its segment file\n"
          "-- and manifest entry when a data directory is attached.\n");
    }
    PCTAGG_ASSIGN_OR_RETURN(bool proceed, AnalyzeDrop(stmt, catalog_));
    bool dropped = false;
    if (proceed) {
      PCTAGG_ASSIGN_OR_RETURN(dropped, DropTable(stmt.table, stmt.if_exists));
    }
    Schema schema;
    schema.AddColumn({"dropped", DataType::kInt64});
    Table out(schema);
    (void)out.AppendRow({Value::Int64(dropped ? 1 : 0)});
    return out;
  }
  if (stmt_kind.kind == ParsedStatement::Kind::kCheckpoint) {
    if (stmt_kind.explain) {
      return TextToPlanTable(
          "CHECKPOINT;\n"
          "-- checkpoint path: write every base table to a fresh checksummed\n"
          "-- segment, start a fresh WAL, atomically publish the new manifest,\n"
          "-- then delete the previous generation's files.\n");
    }
    PCTAGG_ASSIGN_OR_RETURN(storage::StorageManager::CheckpointStats stats,
                            Checkpoint());
    Schema schema;
    schema.AddColumn({"tables", DataType::kInt64});
    schema.AddColumn({"rows", DataType::kInt64});
    schema.AddColumn({"bytes", DataType::kInt64});
    schema.AddColumn({"ms", DataType::kFloat64});
    Table out(schema);
    (void)out.AppendRow({Value::Int64(static_cast<int64_t>(stats.tables)),
                         Value::Int64(static_cast<int64_t>(stats.rows)),
                         Value::Int64(static_cast<int64_t>(stats.bytes)),
                         Value::Float64(stats.ms)});
    return out;
  }
  const bool is_insert = stmt_kind.kind == ParsedStatement::Kind::kInsert;
  if (stmt_kind.explain && !stmt_kind.analyze) {
    // Plain EXPLAIN of a write: describe the append script without running
    // it. The merge-vs-recompute choice is per cache entry at run time, so
    // the script lists the rule rather than a resolved plan.
    std::string text =
        stmt_kind.select_sql + "\n" +
        "-- append path: add rows to the base table (dictionary codes\n"
        "-- resolved against the existing per-column dictionaries), then for\n"
        "-- each cached summary of the table: aggregate only the delta with\n"
        "-- the entry's recipe and merge by keyed upsert, or drop the entry\n"
        "-- for lazy recompute (per-entry cost-model choice; see EXPLAIN\n"
        "-- ANALYZE for the resolved candidates).\n";
    return TextToPlanTable(text);
  }
  if (stmt_kind.explain) {
    obs::QueryTrace trace;
    QueryOptions traced = options;
    traced.trace = &trace;
    Stopwatch timer;
    Result<AppendOutcome> outcome =
        is_insert ? ExecuteInsert(stmt_kind.select_sql, traced)
                  : ExecuteCopy(stmt_kind.select_sql, traced);
    if (!outcome.ok()) return outcome.status();
    trace.total_ms = timer.ElapsedSeconds() * 1e3;
    return TextToPlanTable(trace.Render());
  }
  PCTAGG_ASSIGN_OR_RETURN(AppendOutcome outcome,
                          is_insert ? ExecuteInsert(stmt_kind.select_sql,
                                                    options)
                                    : ExecuteCopy(stmt_kind.select_sql,
                                                  options));
  return AppendOutcomeTable(outcome);
}

Result<std::string> PctDatabase::Explain(const std::string& sql) const {
  PCTAGG_ASSIGN_OR_RETURN(AnalyzedQuery query, Prepare(sql));
  PCTAGG_ASSIGN_OR_RETURN(const Table* fact,
                          catalog_.GetTable(query.table_name));
  if (query.has_grouping_sets) {
    std::string why;
    if (!LatticeSupported(query, &why)) {
      return Status::InvalidArgument("grouping sets: " + why);
    }
    return RenderLatticeScript(query,
                               advisor_.AdviseLatticeShared(*fact, query));
  }
  switch (query.query_class) {
    case QueryClass::kVpct: {
      VpctStrategy strategy = advisor_.AdviseVpct(*fact, query);
      PCTAGG_ASSIGN_OR_RETURN(Plan plan, PlanVpctQuery(query, strategy));
      return plan.ToSql();
    }
    case QueryClass::kHorizontal: {
      HorizontalStrategy strategy = advisor_.AdviseHorizontal(*fact, query);
      PCTAGG_ASSIGN_OR_RETURN(Plan plan, PlanHorizontalQuery(query, strategy));
      return plan.ToSql();
    }
    default:
      return std::string("/* evaluated directly, no generated script */\n");
  }
}

Result<Table> ApplyQueryTail(Table table, const AnalyzedQuery& query) {
  return ApplyTail(std::move(table), query);
}

}  // namespace pctagg
