#include "core/database.h"

#include "core/olap_planner.h"
#include "engine/aggregate.h"
#include "engine/parallel.h"
#include "engine/table_ops.h"
#include "sql/parser.h"

namespace pctagg {

namespace {

// Inline evaluation for plain projections and vertical aggregates (no
// percentage machinery involved).
Result<Table> EvaluateSimple(Catalog* catalog, const AnalyzedQuery& query) {
  PCTAGG_ASSIGN_OR_RETURN(const Table* base,
                          catalog->GetTable(query.table_name));
  Table filtered;
  const Table* input = base;
  if (query.where != nullptr) {
    PCTAGG_ASSIGN_OR_RETURN(filtered, Filter(*base, query.where));
    input = &filtered;
  }
  if (query.query_class == QueryClass::kProjection) {
    std::vector<ProjectSpec> specs;
    for (const AnalyzedTerm& t : query.terms) {
      specs.push_back({t.argument, t.output_name});
    }
    return Project(*input, specs);
  }
  // Vertical aggregate: group columns in SELECT order plus aggregates.
  std::vector<AggSpec> aggs;
  for (const AnalyzedTerm& t : query.terms) {
    if (t.func == TermFunc::kScalar) continue;
    AggFunc func;
    switch (t.func) {
      case TermFunc::kSum:
        func = AggFunc::kSum;
        break;
      case TermFunc::kCount:
        func = AggFunc::kCount;
        break;
      case TermFunc::kCountStar:
        func = AggFunc::kCountStar;
        break;
      case TermFunc::kAvg:
        func = AggFunc::kAvg;
        break;
      case TermFunc::kMin:
        func = AggFunc::kMin;
        break;
      case TermFunc::kMax:
        func = AggFunc::kMax;
        break;
      default:
        return Status::Internal("unexpected term in vertical aggregate");
    }
    if (t.distinct) {
      return Status::InvalidArgument(
          "count(DISTINCT ...) is only supported with a BY clause");
    }
    aggs.push_back({func, t.argument, t.output_name});
  }
  PCTAGG_ASSIGN_OR_RETURN(Table agg,
                          HashAggregate(*input, query.group_by, aggs));
  // Reorder to the SELECT list.
  std::vector<ProjectSpec> specs;
  for (const AnalyzedTerm& t : query.terms) {
    specs.push_back({Col(t.func == TermFunc::kScalar ? t.scalar_column
                                                     : t.output_name),
                     t.output_name});
  }
  return Project(agg, specs);
}

// Applies the statement tail — HAVING, ORDER BY, LIMIT — to the
// materialized result, in SQL's order.
Result<Table> ApplyTail(Table table, const AnalyzedQuery& query) {
  if (query.having != nullptr) {
    Result<Table> filtered = Filter(table, query.having);
    if (!filtered.ok()) {
      return Status::AnalysisError("HAVING failed to evaluate: " +
                                   filtered.status().message());
    }
    table = std::move(filtered).value();
  }
  if (!query.order_by.empty()) {
    std::vector<SortKey> keys;
    for (const OrderItem& item : query.order_by) {
      if (!table.schema().HasColumn(item.column)) {
        return Status::AnalysisError("ORDER BY column not in result: " +
                                     item.column);
      }
      keys.push_back({item.column, item.descending});
    }
    PCTAGG_ASSIGN_OR_RETURN(table, SortBy(table, keys));
  }
  if (query.has_limit) {
    table = Limit(table, query.limit);
  }
  return table;
}

}  // namespace

Result<AnalyzedQuery> PctDatabase::Prepare(const std::string& sql) const {
  PCTAGG_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  PCTAGG_ASSIGN_OR_RETURN(const Table* table,
                          catalog_.GetTable(stmt.from_table));
  return Analyze(stmt, table->schema());
}

Result<Table> PctDatabase::RunPlan(const Plan& plan, const AnalyzedQuery& query,
                                   bool use_cache) const {
  Status st = plan.Execute(&catalog_, use_cache ? &summaries_ : nullptr);
  if (!st.ok()) {
    plan.Cleanup(&catalog_);
    return st;
  }
  Result<Table*> result = catalog_.GetTable(plan.result_table());
  if (!result.ok()) {
    plan.Cleanup(&catalog_);
    return result.status();
  }
  Table out = std::move(*result.value());
  plan.Cleanup(&catalog_);
  return ApplyTail(std::move(out), query);
}

Result<Table> PctDatabase::Query(const std::string& sql,
                                 const QueryOptions& options) const {
  PCTAGG_ASSIGN_OR_RETURN(AnalyzedQuery query, Prepare(sql));
  bool use_cache = options.use_summary_cache.value_or(summary_cache_enabled_);
  // Engine kernels called anywhere below this frame (planner steps run
  // synchronously on this thread) pick the knob up via CurrentDop().
  ScopedParallelism parallelism(options.degree_of_parallelism);
  const size_t dop = CurrentDop();
  switch (query.query_class) {
    case QueryClass::kProjection:
    case QueryClass::kVertical: {
      PCTAGG_ASSIGN_OR_RETURN(Table out, EvaluateSimple(&catalog_, query));
      return ApplyTail(std::move(out), query);
    }
    case QueryClass::kVpct: {
      Plan plan;
      if (options.olap_baseline) {
        PCTAGG_ASSIGN_OR_RETURN(plan, PlanOlapPercentageQuery(query));
      } else {
        VpctStrategy strategy;
        if (options.vpct_strategy.has_value()) {
          strategy = *options.vpct_strategy;
        } else {
          PCTAGG_ASSIGN_OR_RETURN(const Table* fact,
                                  catalog_.GetTable(query.table_name));
          strategy = advisor_.AdviseVpct(*fact, query, dop);
        }
        PCTAGG_ASSIGN_OR_RETURN(plan, PlanVpctQuery(query, strategy));
      }
      return RunPlan(plan, query, use_cache);
    }
    case QueryClass::kHorizontal: {
      HorizontalStrategy strategy;
      if (options.horizontal_strategy.has_value()) {
        strategy = *options.horizontal_strategy;
      } else {
        PCTAGG_ASSIGN_OR_RETURN(const Table* fact,
                                catalog_.GetTable(query.table_name));
        strategy = advisor_.AdviseHorizontal(*fact, query, dop);
      }
      PCTAGG_ASSIGN_OR_RETURN(Plan plan, PlanHorizontalQuery(query, strategy));
      return RunPlan(plan, query, use_cache);
    }
    case QueryClass::kWindow: {
      PCTAGG_ASSIGN_OR_RETURN(Plan plan, PlanWindowQuery(query));
      return RunPlan(plan, query, use_cache);
    }
  }
  return Status::Internal("unhandled query class");
}

Result<Table> PctDatabase::QueryVpct(const std::string& sql,
                                     const VpctStrategy& strategy) const {
  PCTAGG_ASSIGN_OR_RETURN(AnalyzedQuery query, Prepare(sql));
  PCTAGG_ASSIGN_OR_RETURN(Plan plan, PlanVpctQuery(query, strategy));
  return RunPlan(plan, query, summary_cache_enabled_);
}

Result<Table> PctDatabase::QueryHorizontal(
    const std::string& sql, const HorizontalStrategy& strategy) const {
  PCTAGG_ASSIGN_OR_RETURN(AnalyzedQuery query, Prepare(sql));
  PCTAGG_ASSIGN_OR_RETURN(Plan plan, PlanHorizontalQuery(query, strategy));
  return RunPlan(plan, query, summary_cache_enabled_);
}

Result<Table> PctDatabase::QueryOlapBaseline(const std::string& sql) const {
  PCTAGG_ASSIGN_OR_RETURN(AnalyzedQuery query, Prepare(sql));
  PCTAGG_ASSIGN_OR_RETURN(Plan plan, PlanOlapPercentageQuery(query));
  return RunPlan(plan, query, summary_cache_enabled_);
}

Status PctDatabase::CreateTableAs(const std::string& name,
                                  const std::string& sql) {
  if (catalog_.HasTable(name)) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  PCTAGG_ASSIGN_OR_RETURN(Table result, Query(sql));
  summaries_.InvalidateTable(name);
  return catalog_.CreateTable(name, std::move(result));
}

Result<std::string> PctDatabase::Explain(const std::string& sql) const {
  PCTAGG_ASSIGN_OR_RETURN(AnalyzedQuery query, Prepare(sql));
  PCTAGG_ASSIGN_OR_RETURN(const Table* fact,
                          catalog_.GetTable(query.table_name));
  switch (query.query_class) {
    case QueryClass::kVpct: {
      VpctStrategy strategy = advisor_.AdviseVpct(*fact, query);
      PCTAGG_ASSIGN_OR_RETURN(Plan plan, PlanVpctQuery(query, strategy));
      return plan.ToSql();
    }
    case QueryClass::kHorizontal: {
      HorizontalStrategy strategy = advisor_.AdviseHorizontal(*fact, query);
      PCTAGG_ASSIGN_OR_RETURN(Plan plan, PlanHorizontalQuery(query, strategy));
      return plan.ToSql();
    }
    default:
      return std::string("/* evaluated directly, no generated script */\n");
  }
}

}  // namespace pctagg
