#include "core/cost_model.h"

#include <algorithm>
#include <unordered_set>

namespace pctagg {

namespace {

constexpr size_t kSampleRows = 20000;

// Mirrors the engine's direct-array aggregation threshold (aggregate.cc):
// one string group-by column whose dictionary fits this many slots skips
// hashing entirely.
constexpr size_t kDirectDictMaxSlots = 4096;

// Distinct-count estimate of one column. Dictionary-encoded string columns
// answer EXACTLY from the dictionary — every distinct value the column ever
// held has a code — for free; it can only overcount when the column shares a
// dictionary holding codes this column never uses (a derived table), which
// at worst makes the model conservative. Other types sample a bounded
// prefix, linearly extrapolated when the sample saturates (every sampled
// value distinct suggests a key-like column).
Result<double> ColumnCardinality(const Table& fact, const std::string& name) {
  PCTAGG_ASSIGN_OR_RETURN(size_t idx, fact.schema().FindColumn(name));
  const Column& col = fact.column(idx);
  if (col.type() == DataType::kString) {
    return std::min(static_cast<double>(col.dict()->size()),
                    std::max(1.0, static_cast<double>(fact.num_rows())));
  }
  const size_t limit = std::min(fact.num_rows(), kSampleRows);
  std::unordered_set<std::string> seen;
  std::string key;
  const std::vector<size_t> cols = {idx};
  for (size_t row = 0; row < limit; ++row) {
    key.clear();
    fact.AppendKeyBytes(row, cols, &key);
    seen.insert(key);
  }
  double estimate = static_cast<double>(seen.size());
  if (limit > 0 && seen.size() == limit && fact.num_rows() > limit) {
    estimate = static_cast<double>(fact.num_rows());
  }
  return estimate;
}

// Product of per-column cardinalities (independence assumption), capped at n.
Result<double> ComboCardinality(const Table& fact,
                                const std::vector<std::string>& columns) {
  double product = 1.0;
  for (const std::string& c : columns) {
    PCTAGG_ASSIGN_OR_RETURN(double card, ColumnCardinality(fact, c));
    product *= std::max(card, 1.0);
  }
  return std::min(product, std::max(1.0, static_cast<double>(fact.num_rows())));
}

}  // namespace

Result<FactStats> CostModel::EstimateStats(
    const Table& fact, const std::vector<std::string>& group_by,
    const std::vector<std::string>& totals_by,
    const std::vector<std::string>& by) const {
  FactStats stats;
  stats.rows = static_cast<double>(fact.num_rows());
  PCTAGG_ASSIGN_OR_RETURN(stats.group_cardinality,
                          ComboCardinality(fact, group_by));
  PCTAGG_ASSIGN_OR_RETURN(stats.totals_cardinality,
                          ComboCardinality(fact, totals_by));
  PCTAGG_ASSIGN_OR_RETURN(stats.by_cardinality, ComboCardinality(fact, by));
  if (group_by.size() == 1) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx,
                            fact.schema().FindColumn(group_by[0]));
    const Column& col = fact.column(idx);
    stats.group_direct_dict = col.type() == DataType::kString &&
                              col.dict()->size() + 1 <= kDirectDictMaxSlots;
  }
  return stats;
}

double CostModel::VpctCost(const FactStats& stats,
                           const VpctStrategy& strategy) const {
  const double n = stats.rows;
  const double fk = stats.group_cardinality;
  const double fj = stats.totals_cardinality;
  const double dop = std::max(1.0, stats.dop);
  double cost = 0;
  // Fk: one morsel-parallel scan of F plus |Fk| (serially) materialized rows.
  cost += n * params_.scan / dop + fk * params_.write + params_.statement;
  // Fj: from Fk (tiny) or a second parallel scan of F.
  cost += (strategy.fj_from_fk ? fk : n) * params_.scan / dop +
          fj * params_.write + params_.statement;
  // Index build on Fj: serial (worth it; mismatched indexes waste the build).
  cost += fj * params_.probe + params_.statement;
  // Division: probe Fj once per Fk row (morsel-parallel probe), then INSERT
  // (serial emission) or UPDATE (serial read-modify-write).
  cost += fk * params_.probe / dop;
  if (!strategy.matching_indexes) cost += fj * params_.probe;  // rebuild hash
  cost += fk * (strategy.insert_result ? params_.write : params_.update);
  cost += params_.statement;
  return cost;
}

double CostModel::HorizontalCost(const FactStats& stats,
                                 const HorizontalStrategy& strategy) const {
  const double n = stats.rows;
  const double groups = stats.totals_cardinality;  // result rows (D1..Dj)
  const double cells = stats.by_cardinality;       // N
  const bool from_fv = strategy.method == HorizontalMethod::kCaseFromFV ||
                       strategy.method == HorizontalMethod::kSpjFromFV;
  const bool spj = strategy.method == HorizontalMethod::kSpjDirect ||
                   strategy.method == HorizontalMethod::kSpjFromFV;
  // Rows the transposition actually reads: |FV| is the finest-level group
  // count (already includes the BY columns), capped by n.
  double fv = std::min(n, stats.group_cardinality);
  double pivot_input = from_fv ? fv : n;
  const double dop = std::max(1.0, stats.dop);
  double cost = 0;
  if (from_fv) {
    // Materialize FV first: one parallel scan of F, |FV| serial writes. The
    // write term is why from-FV loses ground as dop grows — the scan it
    // saves shrinks with dop, the materialization it adds does not.
    cost += n * params_.scan / dop + fv * params_.write + params_.statement;
  }
  if (spj) {
    // One full pass + one (parallel) aggregate per result column, then N
    // outer joins.
    cost += cells * (pivot_input * params_.scan / dop +
                     groups * params_.write + 2 * params_.statement);
    cost += cells * groups * (params_.probe + params_.write);
  } else if (strategy.hash_dispatch) {
    // One morsel-parallel scan, two probes per row (group map + combo map),
    // one result table. A small-dictionary string group key replaces its
    // hash probe with a direct array index.
    const double group_probe =
        stats.group_direct_dict ? params_.dict_probe : params_.probe;
    cost += pivot_input * (params_.scan + group_probe + params_.probe) / dop +
            groups * cells * params_.write + params_.statement;
  } else {
    // One parallel scan, N CASE evaluations per row.
    cost += pivot_input * (params_.scan + cells * params_.cell) / dop +
            groups * cells * params_.write + params_.statement;
  }
  return cost;
}

double CostModel::OlapCost(const FactStats& stats) const {
  const double n = stats.rows;
  const double dop = std::max(1.0, stats.dop);
  // Two window passes (each: probe + carry a value per fact row, phase 1
  // morsel-parallel), an n-row division, and an n-row serial DISTINCT.
  return n * 2 * (params_.scan + params_.probe) / dop + n * params_.write +
         n * (params_.scan + params_.probe) + params_.statement;
}

double CostModel::FusedVpctCost(const FactStats& stats) const {
  const double n = stats.rows;
  const double fk = stats.group_cardinality;
  const double fj = stats.totals_cardinality;
  const double dop = std::max(1.0, stats.dop);
  double cost = 0;
  // One fused scan of F straight into the Fk accumulators; the WHERE clause
  // is a selection mask inside the same pass, so filtered rows are never
  // materialized. Only the |Fk| group rows are emitted.
  cost += n * params_.scan / dop + fk * params_.write + params_.statement;
  // Fj re-aggregates the in-memory Fk; no temp tables and no index build —
  // the divide step probes Fj through the aggregate's own hash table.
  cost += fk * params_.scan / dop + fj * params_.write + params_.statement;
  // Vectorized divide: one probe per Fk row plus the FV emission.
  cost += fk * params_.probe / dop + fk * params_.write + params_.statement;
  return cost;
}

double CostModel::FusedHorizontalCost(const FactStats& stats) const {
  const double n = stats.rows;
  const double groups = stats.totals_cardinality;
  const double cells = stats.by_cardinality;
  const double fv = std::min(n, stats.group_cardinality);
  const double dop = std::max(1.0, stats.dop);
  const double group_probe =
      stats.group_direct_dict ? params_.dict_probe : params_.probe;
  double cost = 0;
  // Fused scan of F into the FVh partial aggregates (WHERE folded in); the
  // pivot sink then reads FVh from memory, saving the temp-table statement
  // the materialized from-FV plan pays between its two passes.
  cost += n * params_.scan / dop + fv * params_.write;
  cost += fv * (params_.scan + group_probe + params_.probe) / dop +
          groups * cells * params_.write + params_.statement;
  return cost;
}

double CostModel::LatticeSharedCost(
    const FactStats& stats, const std::vector<double>& level_rows) const {
  const double n = stats.rows;
  const double dop = std::max(1.0, stats.dop);
  const double finest =
      level_rows.empty() ? stats.group_cardinality : level_rows[0];
  // The one fused scan of F into the finest level's partials.
  double cost = n * params_.scan / dop + finest * params_.write +
                params_.statement;
  // Every coarser level re-aggregates cached partials. The executor rolls up
  // from the smallest subsuming ancestor; pricing every rollup against the
  // finest level keeps this a (cheap-to-compute) upper bound.
  for (size_t i = 1; i < level_rows.size(); ++i) {
    cost += finest * params_.scan / dop + level_rows[i] * params_.write +
            params_.statement;
  }
  return cost;
}

double CostModel::DistributedCost(const FactStats& stats, double num_shards,
                                  double shard_dop, double partial_cols) const {
  const double n = stats.rows;
  const double shards = std::max(1.0, num_shards);
  const double dop = std::max(1.0, shard_dop);
  const double groups = std::max(1.0, stats.group_cardinality);
  const double cols = std::max(1.0, partial_cols);
  // Shards scan concurrently: each aggregates its n/shards rows at its own
  // dop and materializes up to `groups` partial rows.
  double cost = n * params_.scan / (shards * dop) + groups * params_.write +
                params_.statement;
  // Every shard ships its partial table; the coordinator deserializes and
  // hash-upserts each cell into the merged summary as results arrive (the
  // merge overlaps in-flight shards, but is itself serial).
  cost += shards * groups * cols * params_.net;
  cost += shards * groups * (params_.probe + params_.update);
  // Coordinator-side assembly over the merged partials (divide/pivot).
  cost += groups * params_.write + params_.statement;
  return cost;
}

double CostModel::MqoBatchCost(const FactStats& stats, double num_queries,
                               double partial_cols) const {
  const double n = stats.rows;
  const double q = std::max(1.0, num_queries);
  const double groups = std::max(1.0, stats.group_cardinality);
  const double cols = std::max(1.0, partial_cols);
  const double dop = std::max(1.0, stats.dop);
  // One fused scan of F into the union-level partials, paid once for the
  // whole batch.
  double cost = n * params_.scan / dop + groups * cols * params_.write +
                params_.statement;
  // Each member rolls the union table down to its own level (a scan + probe
  // per union row) and assembles its percentages from there — proportional
  // to |union level|, not n, which is the whole point.
  cost += q * (groups * (params_.scan + params_.probe) / dop +
               groups * params_.write + params_.statement);
  return cost;
}

double CostModel::LatticePerLevelCost(
    const FactStats& stats, const std::vector<double>& level_rows) const {
  const double n = stats.rows;
  const double dop = std::max(1.0, stats.dop);
  double cost = 0;
  for (double rows : level_rows) {
    cost += n * params_.scan / dop + rows * params_.write + params_.statement;
  }
  return cost;
}

Result<std::vector<double>> CostModel::EstimateLatticeLevelRows(
    const Table& fact, const AnalyzedQuery& query) const {
  std::vector<std::string> by;
  for (const AnalyzedTerm& t : query.terms) {
    if (t.func != TermFunc::kScalar && t.func != TermFunc::kGrouping &&
        t.func != TermFunc::kVpct && t.has_by) {
      by = t.by_columns;
      break;
    }
  }
  std::vector<double> rows;
  rows.reserve(query.grouping_sets.size() + 1);
  bool has_finest = false;
  for (const std::vector<std::string>& level : query.grouping_sets) {
    std::vector<std::string> cols = level;
    cols.insert(cols.end(), by.begin(), by.end());
    PCTAGG_ASSIGN_OR_RETURN(double card, ComboCardinality(fact, cols));
    rows.push_back(card);
    has_finest = has_finest || level.size() == query.group_by.size();
  }
  if (!has_finest) {
    std::vector<std::string> cols = query.group_by;
    cols.insert(cols.end(), by.begin(), by.end());
    PCTAGG_ASSIGN_OR_RETURN(double card, ComboCardinality(fact, cols));
    rows.push_back(card);
  }
  std::sort(rows.begin(), rows.end(),
            [](double a, double b) { return a > b; });
  return rows;
}

double CostModel::DeltaMergeCost(double delta_rows, double summary_rows,
                                 double dop) const {
  dop = std::max(1.0, dop);
  // Aggregate the delta (parallel scan into at most delta_rows groups),
  // probe each delta group against the cached summary, and read-modify-
  // write the cells that hit (bounded by both cardinalities).
  const double delta_groups = std::min(delta_rows, summary_rows);
  return delta_rows * params_.scan / dop +
         delta_groups * (params_.probe + params_.update) + params_.statement;
}

double CostModel::RecomputeCost(double table_rows, double summary_rows,
                                double dop) const {
  dop = std::max(1.0, dop);
  // Rebuild from every base row on the next query: a full parallel
  // aggregation scan plus serial materialization of the summary rows.
  return table_rows * params_.scan / dop + summary_rows * params_.write +
         params_.statement;
}

VpctStrategy CostModel::PickVpct(const FactStats& stats) const {
  VpctStrategy best;
  double best_cost = VpctCost(stats, best);
  for (bool idx : {true, false}) {
    for (bool ins : {true, false}) {
      for (bool fjfk : {true, false}) {
        VpctStrategy s;
        s.matching_indexes = idx;
        s.insert_result = ins;
        s.fj_from_fk = fjfk;
        double cost = VpctCost(stats, s);
        if (cost < best_cost) {
          best_cost = cost;
          best = s;
        }
      }
    }
  }
  return best;
}

HorizontalStrategy CostModel::PickHorizontal(const FactStats& stats) const {
  HorizontalStrategy best;
  double best_cost = HorizontalCost(stats, best);
  for (HorizontalMethod method :
       {HorizontalMethod::kCaseDirect, HorizontalMethod::kCaseFromFV,
        HorizontalMethod::kSpjDirect, HorizontalMethod::kSpjFromFV}) {
    HorizontalStrategy s;
    s.method = method;
    double cost = HorizontalCost(stats, s);
    if (cost < best_cost) {
      best_cost = cost;
      best = s;
    }
  }
  return best;
}

}  // namespace pctagg
