#ifndef PCTAGG_CORE_PLAN_H_
#define PCTAGG_CORE_PLAN_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/summary_cache.h"
#include "engine/catalog.h"
#include "engine/index.h"
#include "obs/trace.h"

namespace pctagg {

// Everything a plan step can touch while running: the catalog of named
// tables, the hash indexes built by CREATE INDEX steps (keyed by table
// name), and an optional cross-query summary cache. Indexes do not outlive
// one plan execution; the cache does.
struct ExecContext {
  explicit ExecContext(Catalog* catalog_in, SummaryCache* summaries_in = nullptr)
      : catalog(catalog_in), summaries(summaries_in) {}

  Catalog* catalog;
  SummaryCache* summaries;  // may be null (caching disabled)
  std::map<std::string, HashIndex> indexes;

  const HashIndex* IndexFor(const std::string& table) const {
    auto it = indexes.find(table);
    return it == indexes.end() ? nullptr : &it->second;
  }
};

// An executable sequence of generated statements. This mirrors the paper's
// code-generation framework: each step carries the SQL text the Java
// generator would have emitted ("INSERT INTO Fk SELECT ...") together with
// the engine routine that evaluates it. Benchmarks time Execute(); tests and
// examples read the SQL via ToSql().
class Plan {
 public:
  using StepFn = std::function<Status(ExecContext*)>;

  // Appends one statement.
  void AddStep(std::string sql, StepFn run);

  // Name of the table holding the final result after Execute().
  const std::string& result_table() const { return result_table_; }
  void set_result_table(std::string name) { result_table_ = std::move(name); }

  // Registers a temporary table dropped by Cleanup(). The result table is
  // dropped too unless the caller keeps it.
  void AddTempTable(std::string name) {
    temp_tables_.push_back(std::move(name));
  }
  const std::vector<std::string>& temp_tables() const { return temp_tables_; }

  size_t num_steps() const { return steps_.size(); }

  // Splices all steps and temp tables of `other` onto this plan (used to
  // embed a Vpct subplan inside an Hpct-from-FV plan). The other plan's
  // result-table name is returned so the caller can read from it.
  std::string AppendPlan(Plan other);

  // Runs all steps in order against a fresh ExecContext. A non-null
  // `summaries` lets cache-aware steps skip recomputation. A non-null
  // `trace` collects one TraceNode per generated statement, with engine
  // operators attaching child nodes through obs::CurrentOp().
  Status Execute(Catalog* catalog, SummaryCache* summaries = nullptr,
                 obs::QueryTrace* trace = nullptr) const;

  // Drops every registered temporary table (ignores absent ones, so Cleanup
  // is safe after a failed Execute).
  void Cleanup(Catalog* catalog) const;

  // The generated SQL script, one statement per line block.
  std::string ToSql() const;

 private:
  struct Step {
    std::string sql;
    StepFn run;
  };
  std::vector<Step> steps_;
  std::vector<std::string> temp_tables_;
  std::string result_table_;
};

// Process-unique temporary table name with the given prefix ("Fk" ->
// "Fk_0007"). Plans built concurrently never collide.
std::string NewTempName(const std::string& prefix);

}  // namespace pctagg

#endif  // PCTAGG_CORE_PLAN_H_
