#ifndef PCTAGG_CORE_COST_MODEL_H_
#define PCTAGG_CORE_COST_MODEL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/horizontal_planner.h"
#include "core/vpct_planner.h"
#include "engine/table.h"
#include "sql/analyzer.h"

namespace pctagg {

// An analytic cost model for percentage-query strategies — the paper's
// future-work direction "we want to characterize our query optimization
// strategies more precisely in theoretical terms with I/O cost models",
// adapted to an in-memory engine: costs are abstract row-operation counts,
// not seconds, and are useful for *ranking* strategies, which is all the
// advisor needs.
//
// Inputs are simple statistics over the fact table: n (rows), the estimated
// number of groups |Fk| at the GROUP BY level, |Fj| at each totals level,
// and N (the number of result columns of a horizontal term).
//
// Cost terms (per row unless stated):
//   kScanCost      reading one fact row through an aggregation/pivot
//   kCellCost      evaluating one CASE conjunction for one row (naive mode)
//   kProbeCost     one hash probe (join/lookup/dispatch)
//   kDictProbeCost one direct-array lookup when a small dictionary lets the
//                  group key index the accumulators without hashing
//   kWriteCost     materializing one output row (INSERT)
//   kUpdateCost    read-modify-write of one row (UPDATE)
//   kStatementCost fixed overhead per generated statement
//   kNetCost       shipping one partial-summary cell between processes
//                  (serialize + TCP + deserialize; dwarfs an in-memory row op)
struct CostParams {
  double scan = 1.0;
  double cell = 0.15;
  double probe = 0.5;
  double dict_probe = 0.1;
  double write = 0.6;
  double update = 2.0;
  double statement = 50.0;
  double net = 2.5;
};

// Statistics the model needs; derived from a table via EstimateStats.
struct FactStats {
  double rows = 0;  // n
  // Cardinality at the finest aggregation level a plan materializes: the
  // GROUP BY level for Vpct (|Fk|), or D1..Dj ∪ BY for horizontal terms
  // (|FV|).
  double group_cardinality = 1;
  double totals_cardinality = 1;  // |Fj| / result-row estimate (D1..Dj)
  double by_cardinality = 1;      // N: product of BY-column cardinalities
  // Degree of parallelism the engine will run the plan's scans at. The
  // morsel-parallel phases — aggregation/pivot/window scans and hash-probe
  // passes — divide by this; serial phases (result materialization, UPDATE's
  // read-modify-write, index builds) do not, which is what moves the
  // from-F-vs-from-FV crossover as dop grows (see docs/PARALLELISM.md).
  double dop = 1;
  // True when the group-by set is a single dictionary-encoded string column
  // small enough for the engine's direct-array aggregation path, which
  // replaces the per-row hash probe with an array index (kDictProbeCost).
  bool group_direct_dict = false;
};

// Cardinality estimation over a bounded sample, with the standard
// independence assumption for multi-column products (capped at n).
class CostModel {
 public:
  explicit CostModel(CostParams params = CostParams()) : params_(params) {}

  // Estimates FactStats for a Vpct query shape (group_by = D1..Dk,
  // totals_by = D1..Dj) or a horizontal shape (group_by = D1..Dj,
  // by = Dh..Dk).
  Result<FactStats> EstimateStats(const Table& fact,
                                  const std::vector<std::string>& group_by,
                                  const std::vector<std::string>& totals_by,
                                  const std::vector<std::string>& by) const;

  // Abstract cost of evaluating a Vpct query under `strategy`.
  double VpctCost(const FactStats& stats, const VpctStrategy& strategy) const;

  // Abstract cost of a horizontal term under `strategy`.
  double HorizontalCost(const FactStats& stats,
                        const HorizontalStrategy& strategy) const;

  // Abstract cost of the OLAP window formulation of the same Vpct query.
  double OlapCost(const FactStats& stats) const;

  // Fused push-based pipelines (core/pipeline_plan.h). The Vpct pipeline is
  // the best materialized strategy minus the Fj index build and one
  // statement: WHERE folds into the scan, Fj is probed through its own
  // in-memory hash table, and no temporary catalog tables are created. The
  // horizontal pipeline is CASE-from-FV minus one statement — so it wins
  // exactly where from-FV already wins over direct (|FV| << n), which is the
  // crossover the advisor looks for.
  double FusedVpctCost(const FactStats& stats) const;
  double FusedHorizontalCost(const FactStats& stats) const;

  // Grouping-set lattices (core/lattice_plan.h). `level_rows` is the
  // estimated result cardinality of each lattice level, sorted descending
  // with the finest level first (the shape EstimateLatticeLevelRows
  // returns). Shared-scan: one fused pass of F builds the finest level, and
  // every coarser level re-aggregates at most |finest| cached partial rows.
  // Per-level: every level pays its own full scan of F — the n·scan term
  // multiplies by the level count, which is why shared wins whenever
  // |finest| << n.
  double LatticeSharedCost(const FactStats& stats,
                           const std::vector<double>& level_rows) const;
  double LatticePerLevelCost(const FactStats& stats,
                             const std::vector<double>& level_rows) const;

  // Estimated result cardinality of every lattice level of `query`
  // (grouping sets already expanded by the analyzer), sorted descending with
  // the finest level first; includes the synthetic finest level when the
  // union itself was not requested. For horizontal queries the single BY
  // term's columns join every level (the lattice aggregates at level ∪ BY).
  Result<std::vector<double>> EstimateLatticeLevelRows(
      const Table& fact, const AnalyzedQuery& query) const;

  // Sharded scatter/gather execution (src/dist/). Each of `num_shards`
  // workers scans its rows/num_shards share at `shard_dop` and ships a
  // partial table of ~group_cardinality rows × `partial_cols` cells; the
  // coordinator merges the shard partials as they arrive (hash upsert per
  // cell, serial) and assembles the percentages from the merged table. The
  // wall-clock win is the scan term dividing by num_shards·shard_dop — the
  // network and merge terms grow with shards, which is the fan-out tradeoff
  // EXPLAIN ANALYZE shows next to the single-node candidate.
  double DistributedCost(const FactStats& stats, double num_shards,
                         double shard_dop, double partial_cols) const;

  // Multi-query shared-scan batching (core/mqo_plan.h). `num_queries`
  // concurrently admitted compatible queries share ONE fused scan of F
  // computing `partial_cols` deduplicated union partials at the union finest
  // level (~group_cardinality rows); each member then rolls that small table
  // down to its own level and assembles percentages. The per-query cost that
  // remains after the scan is shared is proportional to the union
  // cardinality, not n — batching wins whenever |union level| << n, and the
  // solo alternative the gate compares against is num_queries independent
  // fused scans (num_queries × FusedVpctCost).
  double MqoBatchCost(const FactStats& stats, double num_queries,
                      double partial_cols) const;

  // Minimum-cost strategies according to the model.
  VpctStrategy PickVpct(const FactStats& stats) const;
  HorizontalStrategy PickHorizontal(const FactStats& stats) const;

  // Append-path maintenance of one cached summary (core/summary_cache.h).
  //
  // Delta-merge: aggregate the `delta_rows` appended rows (morsel-parallel
  // scan), then upsert at most min(delta groups, summary rows) cells into
  // the cached table — a serial read-modify-write per touched group.
  double DeltaMergeCost(double delta_rows, double summary_rows,
                        double dop) const;

  // Invalidate-recompute: drop the entry and rebuild it from all
  // `table_rows` base rows on the next query (parallel scan + serial
  // materialization of the summary).
  double RecomputeCost(double table_rows, double summary_rows,
                       double dop) const;

  const CostParams& params() const { return params_; }

 private:
  CostParams params_;
};

}  // namespace pctagg

#endif  // PCTAGG_CORE_COST_MODEL_H_
