#include "core/partition.h"

#include "common/string_util.h"

namespace pctagg {

Result<std::vector<Table>> VerticallyPartition(
    const Table& wide, const std::vector<std::string>& key_columns,
    size_t max_columns) {
  std::vector<size_t> key_idx;
  for (const std::string& k : key_columns) {
    PCTAGG_ASSIGN_OR_RETURN(size_t idx, wide.schema().FindColumn(k));
    key_idx.push_back(idx);
  }
  if (max_columns <= key_columns.size()) {
    return Status::InvalidArgument(
        "max_columns must exceed the number of key columns");
  }
  std::vector<size_t> cell_idx;
  for (size_t c = 0; c < wide.num_columns(); ++c) {
    bool is_key = false;
    for (size_t k : key_idx) {
      if (k == c) {
        is_key = true;
        break;
      }
    }
    if (!is_key) cell_idx.push_back(c);
  }

  const size_t cells_per_part = max_columns - key_columns.size();
  std::vector<Table> parts;
  for (size_t start = 0; start < cell_idx.size() || parts.empty();
       start += cells_per_part) {
    Schema schema;
    std::vector<Column> columns;
    for (size_t k : key_idx) {
      schema.AddColumn(wide.schema().column(k));
      columns.push_back(wide.column(k));
    }
    for (size_t i = start;
         i < cell_idx.size() && i < start + cells_per_part; ++i) {
      schema.AddColumn(wide.schema().column(cell_idx[i]));
      columns.push_back(wide.column(cell_idx[i]));
    }
    parts.emplace_back(std::move(schema), std::move(columns));
    if (cell_idx.empty()) break;
  }
  return parts;
}

}  // namespace pctagg
