#include "workload/generators.h"

#include <string>
#include <vector>

#include "common/rng.h"

namespace pctagg {

namespace {

Schema EmployeeSchema() {
  return Schema({{"rid", DataType::kInt64},
                 {"gender", DataType::kInt64},
                 {"marstatus", DataType::kInt64},
                 {"educat", DataType::kInt64},
                 {"age", DataType::kInt64},
                 {"salary", DataType::kFloat64}});
}

Schema SalesSchema() {
  return Schema({{"rid", DataType::kInt64},
                 {"transactionId", DataType::kInt64},
                 {"itemId", DataType::kInt64},
                 {"dweek", DataType::kInt64},
                 {"monthNo", DataType::kInt64},
                 {"store", DataType::kInt64},
                 {"city", DataType::kInt64},
                 {"state", DataType::kInt64},
                 {"dept", DataType::kInt64},
                 {"salesAmt", DataType::kFloat64}});
}

Schema TransactionLineSchema() {
  return Schema({{"rid", DataType::kInt64},
                 {"deptId", DataType::kInt64},
                 {"subdeptId", DataType::kInt64},
                 {"itemId", DataType::kInt64},
                 {"yearNo", DataType::kInt64},
                 {"monthNo", DataType::kInt64},
                 {"dayOfWeekNo", DataType::kInt64},
                 {"regionId", DataType::kInt64},
                 {"stateId", DataType::kInt64},
                 {"cityId", DataType::kInt64},
                 {"storeId", DataType::kInt64},
                 {"itemQty", DataType::kInt64},
                 {"costAmt", DataType::kFloat64},
                 {"salesAmt", DataType::kFloat64}});
}

Schema CensusSchema() {
  return Schema({{"rid", DataType::kInt64},
                 {"iSchool", DataType::kInt64},
                 {"iClass", DataType::kInt64},
                 {"iMarital", DataType::kInt64},
                 {"iSex", DataType::kInt64},
                 {"dAge", DataType::kInt64},
                 {"dIncome", DataType::kFloat64}});
}

}  // namespace

Table GenerateEmployee(size_t n, uint64_t seed) {
  Rng rng(seed);
  Table t(EmployeeSchema());
  t.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<Value> row;
    row.reserve(6);
    row.push_back(Value::Int64(static_cast<int64_t>(i + 1)));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(2))));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(4))));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(5))));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(100))));
    row.push_back(Value::Float64(20000.0 + rng.NextDouble() * 80000.0));
    t.AppendRow(row);
  }
  return t;
}

Table GenerateSales(size_t n, uint64_t seed) {
  Rng rng(seed);
  Table t(SalesSchema());
  t.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<Value> row;
    row.reserve(10);
    row.push_back(Value::Int64(static_cast<int64_t>(i + 1)));
    row.push_back(Value::Int64(static_cast<int64_t>(i + 1)));  // transactionId
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(1000))));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(7) + 1)));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(12) + 1)));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(100))));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(20))));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(5))));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(100))));
    row.push_back(Value::Float64(1.0 + rng.NextDouble() * 99.0));
    t.AppendRow(row);
  }
  return t;
}

Table GenerateSalesNamed(size_t n, uint64_t seed) {
  Rng rng(seed);
  Table t(Schema({{"rid", DataType::kInt64},
                  {"transactionId", DataType::kInt64},
                  {"itemId", DataType::kInt64},
                  {"dweek", DataType::kString},
                  {"monthNo", DataType::kString},
                  {"store", DataType::kString},
                  {"city", DataType::kString},
                  {"state", DataType::kString},
                  {"dept", DataType::kInt64},
                  {"salesAmt", DataType::kFloat64}}));
  t.Reserve(n);
  static const char* const kDweek[] = {"Mon", "Tue", "Wed", "Thu",
                                       "Fri", "Sat", "Sun"};
  static const char* const kMonth[] = {"Jan", "Feb", "Mar", "Apr",
                                       "May", "Jun", "Jul", "Aug",
                                       "Sep", "Oct", "Nov", "Dec"};
  static const char* const kState[] = {"CA", "TX", "NY", "WA", "FL"};
  std::vector<std::string> stores;
  stores.reserve(100);
  for (int s = 0; s < 100; ++s) {
    const std::string id = std::to_string(s);
    stores.push_back("store" + std::string(3 - id.size(), '0') + id);
  }
  std::vector<std::string> cities;
  cities.reserve(20);
  for (int c = 0; c < 20; ++c) {
    const std::string id = std::to_string(c);
    cities.push_back("city" + std::string(2 - id.size(), '0') + id);
  }
  for (size_t i = 0; i < n; ++i) {
    std::vector<Value> row;
    row.reserve(10);
    row.push_back(Value::Int64(static_cast<int64_t>(i + 1)));
    row.push_back(Value::Int64(static_cast<int64_t>(i + 1)));  // transactionId
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(1000))));
    row.push_back(Value::String(kDweek[rng.Uniform(7)]));
    row.push_back(Value::String(kMonth[rng.Uniform(12)]));
    row.push_back(Value::String(stores[rng.Uniform(100)]));
    row.push_back(Value::String(cities[rng.Uniform(20)]));
    row.push_back(Value::String(kState[rng.Uniform(5)]));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(100))));
    row.push_back(Value::Float64(1.0 + rng.NextDouble() * 99.0));
    t.AppendRow(row);
  }
  return t;
}

Table GenerateTransactionLine(size_t n, uint64_t seed) {
  Rng rng(seed);
  Table t(TransactionLineSchema());
  t.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t qty = static_cast<int64_t>(rng.Uniform(9) + 1);
    double cost = 0.5 + rng.NextDouble() * 49.5;
    std::vector<Value> row;
    row.reserve(14);
    row.push_back(Value::Int64(static_cast<int64_t>(i + 1)));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(10))));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(100))));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(1000))));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(4) + 2000)));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(12) + 1)));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(7) + 1)));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(4))));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(10))));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(20))));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(30))));
    row.push_back(Value::Int64(qty));
    row.push_back(Value::Float64(cost * static_cast<double>(qty)));
    row.push_back(Value::Float64(cost * 1.4 * static_cast<double>(qty)));
    t.AppendRow(row);
  }
  return t;
}

Table GenerateCensusLike(size_t n, uint64_t seed) {
  Rng rng(seed);
  Table t(CensusSchema());
  t.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<Value> row;
    row.reserve(7);
    row.push_back(Value::Int64(static_cast<int64_t>(i + 1)));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Zipf(17, 0.8))));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Zipf(9, 0.9))));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Zipf(5, 0.7))));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(2))));
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Zipf(91, 0.4))));
    row.push_back(Value::Float64(5000.0 + rng.NextDouble() * 95000.0));
    t.AppendRow(row);
  }
  return t;
}

Table PaperExampleSales() {
  Table t(Schema({{"rid", DataType::kInt64},
                  {"state", DataType::kString},
                  {"city", DataType::kString},
                  {"salesAmt", DataType::kFloat64}}));
  struct RowSpec {
    int64_t rid;
    const char* state;
    const char* city;
    double amount;
  };
  // Table 1 of the paper, verbatim.
  const RowSpec rows[] = {
      {1, "CA", "San Francisco", 13},  {2, "CA", "San Francisco", 3},
      {3, "CA", "San Francisco", 67},  {4, "CA", "Los Angeles", 23},
      {5, "TX", "Houston", 5},         {6, "TX", "Houston", 35},
      {7, "TX", "Houston", 10},        {8, "TX", "Houston", 14},
      {9, "TX", "Dallas", 53},         {10, "TX", "Dallas", 32},
  };
  for (const RowSpec& r : rows) {
    t.AppendRow({Value::Int64(r.rid), Value::String(r.state),
                 Value::String(r.city), Value::Float64(r.amount)});
  }
  return t;
}

Table PaperExampleStoreSales() {
  Table t(Schema({{"rid", DataType::kInt64},
                  {"store", DataType::kInt64},
                  {"dweek", DataType::kInt64},
                  {"salesAmt", DataType::kFloat64}}));
  // Per-store weekly profiles echoing Table 3: store 4 sells nothing on
  // Monday (dweek = 1), weekend shares dominate.
  struct RowSpec {
    int64_t store;
    int64_t dweek;
    double amount;
  };
  const RowSpec rows[] = {
      {2, 1, 175},  {2, 2, 150},  {2, 3, 200},  {2, 4, 225}, {2, 5, 400},
      {2, 6, 600},  {2, 7, 750},
      {4, 2, 360},  {4, 3, 360},  {4, 4, 360},  {4, 5, 720}, {4, 6, 800},
      {4, 7, 1400},
      {7, 1, 128},  {7, 2, 128},  {7, 3, 64},   {7, 4, 64},  {7, 5, 128},
      {7, 6, 560},  {7, 7, 528},
  };
  int64_t rid = 0;
  for (const RowSpec& r : rows) {
    t.AppendRow({Value::Int64(++rid), Value::Int64(r.store),
                 Value::Int64(r.dweek), Value::Float64(r.amount)});
  }
  return t;
}

}  // namespace pctagg
