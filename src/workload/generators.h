#ifndef PCTAGG_WORKLOAD_GENERATORS_H_
#define PCTAGG_WORKLOAD_GENERATORS_H_

#include <cstdint>

#include "engine/table.h"

namespace pctagg {

// Deterministic synthetic data sets mirroring the paper's experimental
// tables. Dimension cardinalities match the paper exactly; row counts scale.
//
// SIGMOD Section 4: "Each dimension was uniformly distributed."

// employee(RID, gender(2), marstatus(4), educat(5), age(100), salary).
// Paper size: n = 1,000,000.
Table GenerateEmployee(size_t n, uint64_t seed = 20040613);

// sales(RID, transactionId(n), itemId(1000), dweek(7), monthNo(12),
//       store(100), city(20), state(5), dept(100), salesAmt).
// Paper size: n = 10,000,000.
Table GenerateSales(size_t n, uint64_t seed = 20040618);

// The same sales workload with human-readable STRING dimensions — dweek
// ("Mon".."Sun"), monthNo ("Jan".."Dec"), store ("store000".."store099"),
// city ("city00".."city19"), state (5 state codes) — same cardinalities and
// distributions as GenerateSales. This is the string-keyed benchmark and
// test workload for dictionary-encoded columns.
Table GenerateSalesNamed(size_t n, uint64_t seed = 20040618);

// transactionLine(RID, deptId(10), subdeptId(100), itemId(1000), yearNo(4),
//                 monthNo(12), dayOfWeekNo(7), regionId(4), stateId(10),
//                 cityId(20), storeId(30), itemQty, costAmt, salesAmt).
// DMKD Section 4 sizes: n = 1,000,000 and 2,000,000.
Table GenerateTransactionLine(size_t n, uint64_t seed = 20040613);

// A census-like table standing in for the UCI US-Census data set the DMKD
// paper used (n = 200,000): mixed-cardinality categorical columns with
// skewed (Zipf) value distributions plus a numeric measure.
// Columns: RID, iSchool(17), iClass(9), iMarital(5), iSex(2), dAge(91),
//          dIncome.
Table GenerateCensusLike(size_t n, uint64_t seed = 19940401);

// The 10-row sales table of the paper's Table 1 (states/cities example).
Table PaperExampleSales();

// A small per-store, per-day-of-week sales table shaped like the data behind
// the paper's Table 3 (stores 2, 4, 7; store 4 has no Monday rows).
Table PaperExampleStoreSales();

}  // namespace pctagg

#endif  // PCTAGG_WORKLOAD_GENERATORS_H_
