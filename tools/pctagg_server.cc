// pctagg_server — the standalone query service. Serves PctProtocol (see
// docs/SERVER.md) over TCP against one shared PctDatabase.
//
//   $ ./build/tools/pctagg_server --port 7477 --gen sales:sales:100000
//   pctagg_server listening on 127.0.0.1:7477 (8 workers, 64 in flight)
//
// Flags:
//   --host <addr>          listen address        (default 127.0.0.1)
//   --port <n>             listen port, 0 = ephemeral (default 7477)
//   --threads <n>          query worker threads  (default: hardware)
//   --max-inflight <n>     admission limit       (default 64)
//   --timeout-ms <n>       default per-query deadline, 0 = none (default 30000)
//   --mqo-window-ms <n>    multi-query batching collection window; also the
//                          coordinator gate's window (default 2)
//   --mqo-max-batch <n>    queries per batch before it closes early
//                          (default 16)
//   --data-dir <path>      durable storage directory; recovers any existing
//                          tables on startup and WAL-logs appends
//   --wal-fsync <policy>   always | batch | off  (default batch)
//   --load <table>:<csv>   preload a CSV file as a base table (repeatable)
//   --gen <kind>:<name>:<rows>  preload a synthetic workload table
//                          (kind: employee|sales|transactionline|census)
//
// Coordinator mode (docs/SHARDING.md) — with at least one --worker the
// server accepts SHARD and scatters queries on sharded tables:
//   --worker <host:port>   a worker pctagg_server to shard across (repeatable;
//                          shard i goes to the i-th --worker)
//   --worker-dop <n>       dop workers run partial aggregations at
//                          (default 0 = forward the session's dop)
//   --shard-timeout-ms <n> per-shard connect/send/recv deadline (default 30000)
//   --shard-retries <n>    total attempts per shard request (default 3)
//   --shard-backoff-ms <n> initial reconnect backoff, doubling per retry up
//                          to 2000 ms (default 50)
//
// SIGINT/SIGTERM shut down gracefully: stop accepting, drain in-flight
// statements, checkpoint to the data dir, and write the CLEAN marker. A
// second signal force-exits immediately.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/string_util.h"
#include "dist/coordinator.h"
#include "engine/csv.h"
#include "server/server.h"
#include "storage/storage.h"
#include "workload/generators.h"

namespace {

using pctagg::PctDatabase;
using pctagg::Result;
using pctagg::ServerConfig;
using pctagg::Status;
using pctagg::Table;

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) {
  if (g_stop != 0) std::_Exit(130);  // second signal: give up on draining
  g_stop = 1;
}

// Splits "a:b[:c]" on ':'.
std::vector<std::string> SplitColons(const std::string& s) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t colon = s.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, colon - start));
    start = colon + 1;
  }
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host A] [--port N] [--threads N] "
               "[--max-inflight N] [--timeout-ms N] [--mqo-window-ms N] "
               "[--mqo-max-batch N] [--data-dir DIR] "
               "[--wal-fsync always|batch|off] [--load t:file.csv]... "
               "[--gen kind:name:rows]... [--worker host:port]... "
               "[--worker-dop N] [--shard-timeout-ms N] [--shard-retries N] "
               "[--shard-backoff-ms N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  PctDatabase db;
  ServerConfig config;
  config.port = 7477;
  std::string data_dir;
  std::string wal_fsync = "batch";
  // --load/--gen are deferred until storage is attached so preloaded tables
  // are persisted regardless of flag order.
  std::vector<std::string> load_specs, gen_specs;
  std::vector<pctagg::dist::WorkerEndpoint> workers;
  pctagg::dist::CoordinatorConfig dist_config;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.port = std::atoi(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.worker_threads = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--max-inflight") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.max_in_flight = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.default_timeout_ms = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--mqo-window-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.mqo_window_ms = static_cast<uint64_t>(std::atoll(v));
      dist_config.mqo_window_ms = config.mqo_window_ms;
    } else if (arg == "--mqo-max-batch") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.mqo_max_batch = static_cast<size_t>(std::atoll(v));
      dist_config.mqo_max_batch = config.mqo_max_batch;
    } else if (arg == "--data-dir") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      data_dir = v;
    } else if (arg == "--wal-fsync") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      wal_fsync = v;
    } else if (arg == "--load") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      load_specs.push_back(v);
    } else if (arg == "--gen") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      gen_specs.push_back(v);
    } else if (arg == "--worker") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      std::vector<std::string> parts = SplitColons(v);
      if (parts.size() != 2) return Usage(argv[0]);
      workers.push_back({parts[0], std::atoi(parts[1].c_str())});
    } else if (arg == "--worker-dop") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      dist_config.worker_dop = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--shard-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      dist_config.shard_timeout_ms = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--shard-retries") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      dist_config.shard_attempts = std::atoi(v);
    } else if (arg == "--shard-backoff-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      dist_config.backoff_initial_ms = static_cast<uint64_t>(std::atoll(v));
    } else {
      return Usage(argv[0]);
    }
  }

  if (!data_dir.empty()) {
    pctagg::storage::StorageOptions opts;
    opts.data_dir = data_dir;
    Result<pctagg::storage::FsyncPolicy> policy =
        pctagg::storage::ParseFsyncPolicy(wal_fsync);
    if (!policy.ok()) {
      std::fprintf(stderr, "--wal-fsync %s: %s\n", wal_fsync.c_str(),
                   policy.status().ToString().c_str());
      return 1;
    }
    opts.fsync = *policy;
    Status st = db.OpenStorage(opts);
    if (!st.ok()) {
      std::fprintf(stderr, "--data-dir %s: %s\n", data_dir.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    const pctagg::storage::RecoveryStats& rec =
        db.storage()->recovery_stats();
    std::fprintf(stderr,
                 "recovered %s: %zu tables (%llu rows) from segments, "
                 "%zu WAL records (%llu rows) replayed, %llu torn bytes "
                 "discarded%s%s, %s shutdown, %.1f ms\n",
                 data_dir.c_str(), rec.tables_loaded,
                 (unsigned long long)rec.segment_rows,
                 rec.wal_records_replayed,
                 (unsigned long long)rec.wal_rows_replayed,
                 (unsigned long long)rec.wal_discarded_bytes,
                 rec.wal_tail_reason.empty() ? "" : ": ",
                 rec.wal_tail_reason.c_str(),
                 rec.clean_shutdown ? "clean" : "unclean", rec.recovery_ms);
  } else if (wal_fsync != "batch") {
    std::fprintf(stderr, "--wal-fsync requires --data-dir\n");
    return 1;
  }

  for (const std::string& spec : load_specs) {
    std::vector<std::string> parts = SplitColons(spec);
    if (parts.size() != 2) return Usage(argv[0]);
    Result<Table> t = pctagg::ReadCsvFileAuto(parts[1]);
    if (!t.ok()) {
      std::fprintf(stderr, "--load %s: %s\n", spec.c_str(),
                   t.status().ToString().c_str());
      return 1;
    }
    Status st = db.ReplaceTable(parts[0], std::move(t).value());
    if (!st.ok()) {
      std::fprintf(stderr, "--load %s: %s\n", spec.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded %s from %s\n", parts[0].c_str(),
                 parts[1].c_str());
  }
  for (const std::string& spec : gen_specs) {
    std::vector<std::string> parts = SplitColons(spec);
    if (parts.size() != 3) return Usage(argv[0]);
    size_t rows = static_cast<size_t>(std::atoll(parts[2].c_str()));
    std::string kind = pctagg::ToLower(parts[0]);
    Table t;
    if (kind == "employee") {
      t = pctagg::GenerateEmployee(rows);
    } else if (kind == "sales") {
      t = pctagg::GenerateSales(rows);
    } else if (kind == "transactionline") {
      t = pctagg::GenerateTransactionLine(rows);
    } else if (kind == "census") {
      t = pctagg::GenerateCensusLike(rows);
    } else {
      std::fprintf(stderr, "--gen: unknown kind %s\n", parts[0].c_str());
      return 1;
    }
    Status st = db.ReplaceTable(parts[1], std::move(t));
    if (!st.ok()) {
      std::fprintf(stderr, "--gen %s: %s\n", spec.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "generated %zu %s rows into %s\n", rows,
                 kind.c_str(), parts[1].c_str());
  }

  std::unique_ptr<pctagg::dist::Coordinator> coordinator;
  if (!workers.empty()) {
    coordinator = std::make_unique<pctagg::dist::Coordinator>(
        &db, workers, dist_config);
    config.router = coordinator.get();
    std::fprintf(stderr, "coordinator mode: %s\n",
                 coordinator->Describe().c_str());
  }

  pctagg::PctServer server(&db, config);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "pctagg_server listening on %s:%d (%zu workers, %zu in "
               "flight, %llu ms timeout)\n",
               config.host.c_str(), server.port(),
               server.executor().worker_threads(), config.max_in_flight,
               (unsigned long long)config.default_timeout_ms);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    ::usleep(100 * 1000);
  }
  std::fprintf(stderr, "shutting down (%zu sessions served)\n",
               server.sessions_opened());
  // Stop() closes the listener and joins every connection thread; a
  // timed-out statement may still be draining in the worker pool, so the
  // final checkpoint runs under the executor's exclusive lock, which waits
  // it out.
  server.Stop();
  if (db.HasStorage()) {
    pctagg::storage::StorageManager::CheckpointStats stats;
    Status ck = server.executor().ExecuteWrite(
        [&db, &stats]() -> Status {
          Result<pctagg::storage::StorageManager::CheckpointStats> r =
              db.Checkpoint();
          if (!r.ok()) return r.status();
          stats = *r;
          return Status::OK();
        },
        /*timeout_ms=*/0);
    if (!ck.ok()) {
      std::fprintf(stderr, "shutdown checkpoint failed: %s\n",
                   ck.ToString().c_str());
      return 1;
    }
    Status mark = db.storage()->MarkCleanShutdown();
    if (!mark.ok()) {
      std::fprintf(stderr, "clean-shutdown marker failed: %s\n",
                   mark.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "checkpointed %zu tables (%llu rows, %llu bytes) in %.1f ms; "
                 "clean shutdown\n",
                 stats.tables, (unsigned long long)stats.rows,
                 (unsigned long long)stats.bytes, stats.ms);
  }
  return 0;
}
