// pctagg_server — the standalone query service. Serves PctProtocol (see
// docs/SERVER.md) over TCP against one shared PctDatabase.
//
//   $ ./build/tools/pctagg_server --port 7477 --gen sales:sales:100000
//   pctagg_server listening on 127.0.0.1:7477 (8 workers, 64 in flight)
//
// Flags:
//   --host <addr>          listen address        (default 127.0.0.1)
//   --port <n>             listen port, 0 = ephemeral (default 7477)
//   --threads <n>          query worker threads  (default: hardware)
//   --max-inflight <n>     admission limit       (default 64)
//   --timeout-ms <n>       default per-query deadline, 0 = none (default 30000)
//   --load <table>:<csv>   preload a CSV file as a base table (repeatable)
//   --gen <kind>:<name>:<rows>  preload a synthetic workload table
//                          (kind: employee|sales|transactionline|census)

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/string_util.h"
#include "engine/csv.h"
#include "server/server.h"
#include "workload/generators.h"

namespace {

using pctagg::PctDatabase;
using pctagg::Result;
using pctagg::ServerConfig;
using pctagg::Status;
using pctagg::Table;

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

// Splits "a:b[:c]" on ':'.
std::vector<std::string> SplitColons(const std::string& s) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t colon = s.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, colon - start));
    start = colon + 1;
  }
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host A] [--port N] [--threads N] "
               "[--max-inflight N] [--timeout-ms N] [--load t:file.csv]... "
               "[--gen kind:name:rows]...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  PctDatabase db;
  ServerConfig config;
  config.port = 7477;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.port = std::atoi(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.worker_threads = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--max-inflight") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.max_in_flight = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      config.default_timeout_ms = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--load") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      std::vector<std::string> parts = SplitColons(v);
      if (parts.size() != 2) return Usage(argv[0]);
      Result<Table> t = pctagg::ReadCsvFileAuto(parts[1]);
      if (!t.ok()) {
        std::fprintf(stderr, "--load %s: %s\n", v,
                     t.status().ToString().c_str());
        return 1;
      }
      db.ReplaceTable(parts[0], std::move(t).value());
      std::fprintf(stderr, "loaded %s from %s\n", parts[0].c_str(),
                   parts[1].c_str());
    } else if (arg == "--gen") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      std::vector<std::string> parts = SplitColons(v);
      if (parts.size() != 3) return Usage(argv[0]);
      size_t rows = static_cast<size_t>(std::atoll(parts[2].c_str()));
      std::string kind = pctagg::ToLower(parts[0]);
      Table t;
      if (kind == "employee") {
        t = pctagg::GenerateEmployee(rows);
      } else if (kind == "sales") {
        t = pctagg::GenerateSales(rows);
      } else if (kind == "transactionline") {
        t = pctagg::GenerateTransactionLine(rows);
      } else if (kind == "census") {
        t = pctagg::GenerateCensusLike(rows);
      } else {
        std::fprintf(stderr, "--gen: unknown kind %s\n", parts[0].c_str());
        return 1;
      }
      db.ReplaceTable(parts[1], std::move(t));
      std::fprintf(stderr, "generated %zu %s rows into %s\n", rows,
                   kind.c_str(), parts[1].c_str());
    } else {
      return Usage(argv[0]);
    }
  }

  pctagg::PctServer server(&db, config);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "pctagg_server listening on %s:%d (%zu workers, %zu in "
               "flight, %llu ms timeout)\n",
               config.host.c_str(), server.port(),
               server.executor().worker_threads(), config.max_in_flight,
               (unsigned long long)config.default_timeout_ms);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    ::usleep(100 * 1000);
  }
  std::fprintf(stderr, "shutting down (%zu sessions served)\n",
               server.sessions_opened());
  server.Stop();
  return 0;
}
