// pctagg_shell — an interactive (or piped) SQL shell for the percentage
// aggregation library.
//
//   $ ./build/tools/pctagg_shell
//   pctagg> .load sales data/sales.csv
//   pctagg> SELECT state, city, Vpct(salesAmt BY city)
//      ...> FROM sales GROUP BY state, city;
//   pctagg> .explain SELECT store, Hpct(salesAmt BY dweek) FROM sales
//                    GROUP BY store;
//
// Statements may span lines and end with ';'. Dot-commands are single-line:
//   .help                      this text
//   .tables                    list tables
//   .schema <table>            show a table's columns
//   .load <table> <file.csv>   load a CSV file (schema inferred)
//   .save <table> <file.csv>   write a table to CSV
//   .gen <employee|sales|transactionline|census> <name> <rows>
//                              create a synthetic paper workload table
//   .explain <sql>             print the generated evaluation script
//   .olap <sql>                run a Vpct query via the OLAP window baseline
//   .cache <on|off>            toggle the shared-summary cache
//   .quit                      exit

#include <cstdio>
#include <unistd.h>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "engine/csv.h"
#include "pctagg.h"
#include "workload/generators.h"

namespace {

using pctagg::PctDatabase;
using pctagg::Result;
using pctagg::Status;
using pctagg::Table;

std::vector<std::string> SplitWords(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> words;
  std::string word;
  while (in >> word) words.push_back(word);
  return words;
}

void PrintStatus(const Status& status) {
  std::printf("error: %s\n", status.ToString().c_str());
}

void RunDotCommand(PctDatabase* db, const std::string& line) {
  std::vector<std::string> words = SplitWords(line);
  const std::string& cmd = words[0];
  if (cmd == ".help") {
    std::printf(
        ".tables | .schema <t> | .load <t> <csv> | .save <t> <csv> |\n"
        ".gen <kind> <name> <rows> | .explain <sql> | .olap <sql> |\n"
        ".cache on|off | .quit — SQL statements end with ';'\n");
    return;
  }
  if (cmd == ".tables") {
    for (const std::string& name : db->catalog().TableNames()) {
      Result<Table*> t = db->catalog().GetTable(name);
      std::printf("%s (%zu rows, %zu columns)\n", name.c_str(),
                  t.ok() ? (*t)->num_rows() : 0,
                  t.ok() ? (*t)->num_columns() : 0);
    }
    return;
  }
  if (cmd == ".schema" && words.size() == 2) {
    Result<Table*> t = db->catalog().GetTable(words[1]);
    if (!t.ok()) {
      PrintStatus(t.status());
      return;
    }
    std::printf("%s(%s)\n", words[1].c_str(),
                (*t)->schema().ToString().c_str());
    return;
  }
  if (cmd == ".load" && words.size() == 3) {
    Result<Table> t = pctagg::ReadCsvFileAuto(words[2]);
    if (!t.ok()) {
      PrintStatus(t.status());
      return;
    }
    size_t rows = t.value().num_rows();
    db->ReplaceTable(words[1], std::move(t).value());
    std::printf("loaded %zu rows into %s\n", rows, words[1].c_str());
    return;
  }
  if (cmd == ".save" && words.size() == 3) {
    Result<Table*> t = db->catalog().GetTable(words[1]);
    if (!t.ok()) {
      PrintStatus(t.status());
      return;
    }
    Status s = pctagg::WriteCsvFile(**t, words[2]);
    if (!s.ok()) {
      PrintStatus(s);
      return;
    }
    std::printf("wrote %zu rows to %s\n", (*t)->num_rows(), words[2].c_str());
    return;
  }
  if (cmd == ".gen" && words.size() == 4) {
    size_t n = static_cast<size_t>(std::atoll(words[3].c_str()));
    std::string kind = pctagg::ToLower(words[1]);
    Table t;
    if (kind == "employee") {
      t = pctagg::GenerateEmployee(n);
    } else if (kind == "sales") {
      t = pctagg::GenerateSales(n);
    } else if (kind == "transactionline") {
      t = pctagg::GenerateTransactionLine(n);
    } else if (kind == "census") {
      t = pctagg::GenerateCensusLike(n);
    } else {
      std::printf("unknown workload kind: %s\n", words[1].c_str());
      return;
    }
    db->ReplaceTable(words[2], std::move(t));
    std::printf("generated %zu %s rows into %s\n", n, kind.c_str(),
                words[2].c_str());
    return;
  }
  if (cmd == ".explain") {
    std::string sql = line.substr(cmd.size());
    Result<std::string> script = db->Explain(sql);
    if (!script.ok()) {
      PrintStatus(script.status());
      return;
    }
    std::fputs(script->c_str(), stdout);
    return;
  }
  if (cmd == ".olap") {
    std::string sql = line.substr(cmd.size());
    Result<Table> t = db->QueryOlapBaseline(sql);
    if (!t.ok()) {
      PrintStatus(t.status());
      return;
    }
    std::fputs(t->ToString().c_str(), stdout);
    return;
  }
  if (cmd == ".cache" && words.size() == 2) {
    db->EnableSummaryCache(words[1] == "on");
    std::printf("summary cache %s\n", words[1] == "on" ? "enabled" : "disabled");
    return;
  }
  std::printf("unrecognized command (try .help): %s\n", line.c_str());
}

}  // namespace

int main() {
  PctDatabase db;
  std::string pending;
  std::string line;
  bool interactive = isatty(fileno(stdin));
  if (interactive) {
    std::printf("pctagg shell — Vpct/Hpct percentage aggregations. "
                ".help for commands.\n");
  }
  while (true) {
    if (interactive) {
      std::fputs(pending.empty() ? "pctagg> " : "   ...> ", stdout);
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    // Dot commands are single-line and only valid with no pending SQL.
    if (pending.empty() && !line.empty() && line[0] == '.') {
      if (line == ".quit" || line == ".exit") break;
      RunDotCommand(&db, line);
      continue;
    }
    pending += line;
    pending.push_back('\n');
    if (line.find(';') == std::string::npos) continue;
    std::string sql;
    sql.swap(pending);
    if (sql.find_first_not_of(" \t\n;") == std::string::npos) continue;
    Result<Table> result = db.Query(sql);
    if (!result.ok()) {
      PrintStatus(result.status());
      continue;
    }
    std::fputs(result->ToString().c_str(), stdout);
    std::printf("(%zu rows)\n", result->num_rows());
  }
  return 0;
}
